// Analyze fixture: uncharged-reach (crev_analyze --self-test).
// scan() peeks tags with no charge in the function and is reachable
// from a non-observer root -- the pass must report it.
// Not compiled -- input for the self-test only.

namespace urfix {

struct Mmu
{
    bool peekTag(unsigned long long va);
};

struct Walker
{
    unsigned tags_seen = 0;

    void scan(Mmu &mmu, unsigned long long va);
};

void
Walker::scan(Mmu &mmu, unsigned long long va)
{
    if (mmu.peekTag(va))
        ++tags_seen;
}

} // namespace urfix
