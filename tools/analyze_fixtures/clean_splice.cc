// Analyze fixture: the LEGAL remote-dealloc splice idiom (the
// drainInbox / flushBatch shape from src/alloc): a NoYield window
// whose only calls are the noyield-aware accrue and a race-checker
// domain registration, with the inbox mutation covered by that
// registration. Must stay CLEAN under every pass -- this pins the
// satellite verification of the splice and the accrue cut policy
// (accrue consults noyield_depth_ before yielding, so the window may
// charge cycles even though accrue can reach yieldSlow).
// Not compiled -- input for the self-test only.

namespace csfix {

struct SimThread
{
    unsigned long credit_ = 0;

    void yieldSlow();
    void accrue(unsigned long cycles);
    unsigned id();
    unsigned long long now();
};

void
SimThread::yieldSlow()
{
    credit_ = 0;
}

void
SimThread::accrue(unsigned long cycles)
{
    credit_ += cycles;
    if (credit_ > 1000)
        yieldSlow(); // legal: skipped while noyield_depth_ > 0
}

struct RaceChecker
{
    void onRemoteQueueAccess(unsigned tid, unsigned long long at,
                             bool atomic);
};

struct NoYield
{
    explicit NoYield(SimThread &t);
};

struct Shard
{
    unsigned long long inbox_head = 0;
    unsigned inbox_count = 0;
    RaceChecker *checker_ = nullptr;

    unsigned long long drainInbox(SimThread &t);
};

unsigned long long
Shard::drainInbox(SimThread &t)
{
    NoYield guard(t);
    if (checker_ != nullptr)
        checker_->onRemoteQueueAccess(t.id(), t.now(), true);
    t.accrue(4);
    const unsigned long long head = inbox_head;
    inbox_head = 0;
    inbox_count = 0;
    return head;
}

} // namespace csfix
