// Analyze fixture: noyield-reach (crev_analyze --self-test).
// The helper called inside the NoYield window transitively reaches
// SimMutex::lock, a park point two hops away -- the interprocedural
// pass must report it (the retired line-level lint could not).
// Not compiled -- input for the self-test only.

namespace nyfix {

struct SimThread
{
    void accrue(unsigned long cycles);
};

struct SimMutex
{
    void lock(SimThread &t);
};

void
SimMutex::lock(SimThread &t)
{
    t.accrue(1);
}

struct NoYield
{
    explicit NoYield(SimThread &t);
};

struct Inbox
{
    SimMutex lock_;

    void takeLocked(SimThread &t);
    void splice(SimThread &t);
};

void
Inbox::takeLocked(SimThread &t)
{
    lock_.lock(t);
}

void
Inbox::splice(SimThread &t)
{
    NoYield guard(t);
    takeLocked(t); // reaches SimMutex::lock inside the window
}

} // namespace nyfix
