// Analyze fixture: lock-evidence (crev_analyze --self-test).
// flipGen mutates the shared generation bit and is reachable from a
// call-graph root with no synchronisation evidence anywhere on the
// path -- the pass must report it.
// Not compiled -- input for the self-test only.

namespace lefix {

struct Mmu
{
    unsigned gen_ = 0;

    void flipGen();
};

void
Mmu::flipGen()
{
    gen_ ^= 1u;
}

} // namespace lefix
