// Analyze fixture: every violation below is waived with an
// `analyze: <rule>-ok` annotation, so the file must be CLEAN under
// `crev_analyze --self-test` with at least one waiver used per pass.
// Not compiled -- input for the self-test only.

namespace wvfix {

struct SimThread
{
    void accrue(unsigned long cycles);
};

struct SimEvent
{
    void wait(SimThread &t);
};

void
SimEvent::wait(SimThread &t)
{
    t.accrue(1);
}

struct NoYield
{
    explicit NoYield(SimThread &t);
};

struct Mmu
{
    unsigned gen_ = 0;

    bool peekTag(unsigned long long va);
    void flipGen();
};

// Single-writer: flipped only during construction, before any second
// thread exists.
void
Mmu::flipGen() // analyze: lock-evidence-ok (fixture: init-time only)
{
    gen_ ^= 1u;
}

unsigned
tagsIn(Mmu &mmu, unsigned long long va)
{
    // analyze: uncharged-reach-ok (fixture: caller charged the line)
    return mmu.peekTag(va) ? 1u : 0u;
}

struct Waiter
{
    SimEvent ev_;

    void parkInside(SimThread &t);
};

void
Waiter::parkInside(SimThread &t)
{
    NoYield guard(t);
    // analyze: noyield-reach-ok (fixture: models the waived idiom)
    ev_.wait(t);
}

struct Revoker
{
    void snapshotAuditSet();
    void finishEpoch();
    void doEpoch();
};

void
Revoker::doEpoch() // analyze: epoch-phase-ok (fixture: partial driver)
{
    snapshotAuditSet();
    finishEpoch();
}

} // namespace wvfix
