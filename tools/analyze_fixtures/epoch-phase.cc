// Analyze fixture: epoch-phase (crev_analyze --self-test).
// The driver opens a paint bracket before snapshotAuditSet pins the
// audit set -- the pass must report the ordering violation.
// Not compiled -- input for the self-test only.

namespace epfix {

struct Revoker
{
    void advance();
    void snapshotAuditSet();
    void tracePhaseBegin(int p);
    void tracePhaseEnd(int p);
    void finishEpoch();
    void doEpoch();
};

void
Revoker::doEpoch()
{
    advance();
    tracePhaseBegin(kPaint); // bracket before snapshotAuditSet
    snapshotAuditSet();
    tracePhaseEnd(kPaint);
    finishEpoch();
}

} // namespace epfix
