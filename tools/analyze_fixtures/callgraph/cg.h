// Call-graph fixture (crev_analyze --self-test): a mini-project whose
// resolved edges are asserted EXACTLY against
// CALLGRAPH_EXPECTED_EDGES in tools/crev_analyze/driver.py.
//
// It exercises every resolution rule: ctor edges (make_driver ->
// Base::Base), initializer-list base construction, virtual dispatch
// over-approximation (Driver::run -> every work()), overload
// collapsing (both overloaded() definitions are one node), free
// functions, and the two documented unresolved-site cases (a
// std::function field call and a std:: library call).
// Not compiled -- input for the self-test only.

#ifndef CGFIX_CG_H_
#define CGFIX_CG_H_

#include <functional>

namespace cgfix {

struct Registry
{
    void note(const char *who);
};

class Base
{
  public:
    explicit Base(Registry &r);
    virtual ~Base() = default;
    virtual int work(int v);
};

class DerivedA : public Base
{
  public:
    using Base::Base;
    int work(int v) override;
};

class DerivedB : public Base
{
  public:
    using Base::Base;
    int work(int v) override;

  private:
    int detail(int v);
};

int overloaded(int v);
int overloaded(double v);
int free_helper(int v);

class Driver
{
  public:
    explicit Driver(Base &b) : b_(b) {}

    int run(int v);
    int runAll(int n);

    std::function<int(int)> tap;

  private:
    Base &b_;
};

Base &make_driver(Registry &r);

} // namespace cgfix

#endif // CGFIX_CG_H_
