// Call-graph fixture implementation; see cg.h for what each edge
// pins. Not compiled -- input for the self-test only.

#include "cg.h"

namespace cgfix {

void
Registry::note(const char *who)
{
    (void)who;
}

Base::Base(Registry &r)
{
    r.note("Base");
}

int
Base::work(int v)
{
    return v;
}

int
DerivedA::work(int v)
{
    return free_helper(v);
}

int
DerivedB::work(int v)
{
    return detail(v) * 2;
}

int
DerivedB::detail(int v)
{
    return v + 3;
}

int
overloaded(int v)
{
    return v;
}

int
overloaded(double v)
{
    return static_cast<int>(v);
}

int
free_helper(int v)
{
    return overloaded(v) + 1;
}

int
Driver::run(int v)
{
    if (tap)
        v = tap(v); // std::function field: unresolved site #1
    return b_.work(v) + overloaded(v);
}

int
Driver::runAll(int n)
{
    int acc = 0;
    for (int i = 0; i < std::min(n, 8); ++i) // unresolved site #2
        acc += run(i);
    return acc;
}

Base &
make_driver(Registry &r)
{
    static Base b(r);
    return b;
}

} // namespace cgfix
