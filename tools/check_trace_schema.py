#!/usr/bin/env python3
"""Validate an exported trace against the Chrome trace-event schema.

Checks the subset of the Trace Event Format (JSON Array Format wrapped
in an object, as chrome://tracing and Perfetto load it) that our
exporter emits:

  - top level is an object with a "traceEvents" array;
  - every event has string "name"/"ph" and integer "pid"/"tid";
  - "ph" is one of M (metadata), X (complete), i (instant);
  - X events carry non-negative integer "ts" and "dur";
  - i events carry integer "ts" and a scope "s" of g/p/t;
  - M events are process_name/thread_name with args.name;
  - "args", when present, is an object.

Exits non-zero with a diagnostic on the first malformed event.
Usage: check_trace_schema.py TRACE.json
"""

import json
import sys


def fail(msg, i=None, ev=None):
    where = "" if i is None else f" (event {i}: {json.dumps(ev)[:200]})"
    print(f"check_trace_schema: FAIL: {msg}{where}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail("event is not an object", i, ev)
    for key, typ in (("name", str), ("ph", str)):
        if not isinstance(ev.get(key), typ):
            fail(f'missing or non-string "{key}"', i, ev)
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
            fail(f'missing or non-integer "{key}"', i, ev)
    if "args" in ev and not isinstance(ev["args"], dict):
        fail('"args" is not an object', i, ev)

    ph = ev["ph"]
    if ph == "M":
        if ev["name"] not in ("process_name", "thread_name"):
            fail("unknown metadata event", i, ev)
        if not isinstance(ev.get("args", {}).get("name"), str):
            fail("metadata event without args.name", i, ev)
    elif ph == "X":
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f'X event without non-negative integer "{key}"', i, ev)
    elif ph == "i":
        v = ev.get("ts")
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail('i event without non-negative integer "ts"', i, ev)
        if ev.get("s", "t") not in ("g", "p", "t"):
            fail('i event with invalid scope "s"', i, ev)
    else:
        fail(f'unexpected phase "{ph}"', i, ev)


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {argv[1]}: {e}")
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        fail('top level is not an object with a "traceEvents" array')
    if not doc["traceEvents"]:
        fail("traceEvents is empty")
    counts = {}
    for i, ev in enumerate(doc["traceEvents"]):
        check_event(i, ev)
        counts[ev["ph"]] = counts.get(ev["ph"], 0) + 1
    summary = " ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"check_trace_schema: OK: {len(doc['traceEvents'])} events "
          f"({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
