"""Driver: file discovery, graph assembly, pass execution, report
emission, and the self-test.

Usage:
  python3 tools/crev_analyze [--compile-commands build/compile_commands.json]
                             [--report crev_analyze_report.json]
  python3 tools/crev_analyze --self-test

Exit status: 0 clean, 1 findings (or self-test failure), 2
usage/environment error.
"""

import argparse
import json
import os
import sys

from . import VERSION
from .cpptok import tokenize
from .extract import extract_file
from .callgraph import Graph, body_sites
from .facts import make_facts, is_observer_file, is_vm_file
from .passes import ALL_PASSES, RULES
from .report import build_report, render_report, write_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "analyze_fixtures")

COMPILE_COMMANDS_HINT = (
    "crev_analyze: configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
    "(cmake -B build -S . exports it by default here; any repo preset "
    "does too) and point --compile-commands at "
    "build/compile_commands.json")


class Context:
    """Everything the passes need: merged nodes, the graph, waivers."""

    def __init__(self, repo_root, fixture_dir):
        self.repo_root = repo_root
        self.fixture_dir = fixture_dir
        self.nodes = {}
        self.graph = Graph()
        self.annotations = {}
        self.waivers_used = set()
        self.stats = {}

    def relpath(self, path):
        if path.startswith(self.repo_root + os.sep):
            rel = os.path.relpath(path, self.repo_root)
        else:
            rel = os.path.basename(path)
        return rel.replace(os.sep, "/")

    def _waived_at(self, rule, path, line):
        ann = self.annotations.get(path, {})
        for li in (line, line - 1):
            if rule in ann.get(li, ()):
                self.waivers_used.add(
                    "%s:%d %s" % (self.relpath(path), li, rule))
                return True
        return False

    def fn_waived(self, rule, qname):
        fn = self.nodes[qname]["fn"]
        return self._waived_at(rule, fn.file, fn.line)

    def line_waived(self, rule, path, line):
        return self._waived_at(rule, path, line)

    def is_observer(self, qname):
        return is_observer_file(self.nodes[qname]["fn"].file,
                                self.repo_root, self.fixture_dir)

    def is_vm(self, qname):
        return is_vm_file(self.nodes[qname]["fn"].file,
                          self.repo_root, self.fixture_dir)


def _empty_facts():
    return {"layer": None, "evidence": [], "charges": [],
            "uncharged": [], "mutations": [], "epoch_ops": []}


def analyze(paths, repo_root=REPO_ROOT, fixture_dir=FIXTURE_DIR):
    """Build the call graph over @p paths and run all passes.
    Returns (ctx, findings)."""
    ctx = Context(repo_root, fixture_dir)
    classes = {"NoYield"}
    tokens_by_path = {}
    lines_by_path = {}
    per_file_funcs = []
    for p in sorted(paths):
        with open(p, "r", encoding="utf-8") as f:
            text = f.read()
        toks, ann = tokenize(text)
        funcs, cls = extract_file(toks, p)
        classes |= cls
        ctx.annotations[p] = ann
        tokens_by_path[p] = toks
        lines_by_path[p] = text.split("\n")
        per_file_funcs.append((p, funcs))

    # Merge definitions onto one node per qualified name (overloads
    # collapse; facts union — the documented over-approximation).
    for p, funcs in per_file_funcs:
        for fn in funcs:
            sites, windows = body_sites(tokens_by_path[p], fn, classes)
            facts = make_facts(fn, tokens_by_path[p], sites, windows,
                               lines_by_path[p], repo_root, fixture_dir)
            node = ctx.nodes.get(fn.qname)
            if node is None:
                node = {"fn": fn, "sites": [], "windows": [],
                        "window_calls": [], "facts": _empty_facts()}
                ctx.nodes[fn.qname] = node
                ctx.graph.add_node(fn.qname)
            woff = len(node["windows"])
            node["windows"].extend(windows)
            for s in sites:
                if s.window is not None:
                    s = s._replace(window=s.window + woff)
                node["sites"].append(s)
            for key in ("evidence", "charges", "uncharged",
                        "mutations", "epoch_ops"):
                node["facts"][key].extend(facts[key])
            if node["facts"]["layer"] is None:
                node["facts"]["layer"] = facts["layer"]

    ctx.graph.finalize_names()
    for qname in sorted(ctx.nodes):
        node = ctx.nodes[qname]
        for s in node["sites"]:
            callees = ctx.graph.add_call(qname, s)
            if s.window is not None and callees:
                node["window_calls"].append((s, callees))

    findings = []
    for _rule, fn_pass in ALL_PASSES:
        findings.extend(fn_pass(ctx))

    ctx.stats = {
        "files": len(paths),
        "functions": len(ctx.nodes),
        "edges": sum(len(e) for e in ctx.graph.edges.values()),
        "roots": len(ctx.graph.roots()),
        "unresolved_call_sites": ctx.graph.dropped,
        "findings": len(findings),
    }
    return ctx, findings


def tree_files():
    """Analysis covers src/ only: bench/ and tests/ are excluded so
    that public entry points surface as call-graph roots rather than
    importing every unit test as a spurious mutation path."""
    paths = []
    for root, _dirs, files in os.walk(os.path.join(REPO_ROOT, "src")):
        for f in sorted(files):
            if f.endswith((".h", ".cc", ".cpp")):
                paths.append(os.path.join(root, f))
    return paths


def check_compile_commands(db_path, paths):
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    compiled = {os.path.realpath(e["file"]) for e in db}
    return [p for p in paths
            if p.endswith(".cc") and os.path.realpath(p) not in compiled]


def print_findings(findings):
    for f in sorted(findings, key=lambda f: (f.rule, f.file, f.line,
                                             f.function, f.message)):
        print("%s:%d: [%s] %s: %s" % (f.file, f.line, f.rule,
                                      f.function, f.message))
        if len(f.callpath) > 1:
            print("    call path: %s" % " -> ".join(f.callpath))


# ---------------------------------------------------------------------
# Self-test.
# ---------------------------------------------------------------------

#: Exact expected edges of the callgraph mini-project (see
#: tools/analyze_fixtures/callgraph/). The virtual call through
#: `Base &b` edges to every overrider — the documented dispatch
#: over-approximation — and the std::function field produces no edge
#: at all (it is counted in unresolved_call_sites instead).
CALLGRAPH_EXPECTED_EDGES = [
    ("cgfix::Base::Base", "cgfix::Registry::note"),
    ("cgfix::DerivedA::work", "cgfix::free_helper"),
    ("cgfix::DerivedB::work", "cgfix::DerivedB::detail"),
    ("cgfix::Driver::run", "cgfix::Base::work"),
    ("cgfix::Driver::run", "cgfix::DerivedA::work"),
    ("cgfix::Driver::run", "cgfix::DerivedB::work"),
    ("cgfix::Driver::run", "cgfix::overloaded"),
    ("cgfix::Driver::runAll", "cgfix::Driver::run"),
    ("cgfix::free_helper", "cgfix::overloaded"),
    ("cgfix::make_driver", "cgfix::Base::Base"),
]
CALLGRAPH_EXPECTED_UNRESOLVED = 2


def _fixture_paths(*names):
    return [os.path.join(FIXTURE_DIR, n) for n in names]


def run_self_test():
    ok = True

    # 1. Every pass fixture must fail its own pass.
    for rule in RULES:
        fixture = os.path.join(FIXTURE_DIR, rule + ".cc")
        if not os.path.exists(fixture):
            print("self-test: missing fixture for rule %s" % rule)
            ok = False
            continue
        _ctx, findings = analyze([fixture])
        got = {f.rule for f in findings}
        if rule not in got:
            print("self-test: fixture %s did NOT fail pass %s (got %s)"
                  % (os.path.basename(fixture), rule,
                     sorted(got) or "clean"))
            ok = False
        else:
            print("self-test: %-20s fails as required" % rule)

    # 2. The waiver fixture trips every pass but waives every finding.
    waiver = os.path.join(FIXTURE_DIR, "waivers.cc")
    if os.path.exists(waiver):
        ctx, findings = analyze([waiver])
        if findings:
            print("self-test: waiver fixture raised:")
            print_findings(findings)
            ok = False
        elif len(ctx.waivers_used) < len(RULES):
            print("self-test: waiver fixture used only %d waiver(s): %s"
                  % (len(ctx.waivers_used), sorted(ctx.waivers_used)))
            ok = False
        else:
            print("self-test: %-20s clean as required" % "waivers")
    else:
        print("self-test: missing waivers.cc fixture")
        ok = False

    # 3. The clean-splice fixture pins the legal remote-dealloc splice
    #    idiom (NoYield window around the inbox RMW, with charging via
    #    the noyield-aware accrue): it must stay clean.
    clean = os.path.join(FIXTURE_DIR, "clean_splice.cc")
    if os.path.exists(clean):
        _ctx, findings = analyze([clean])
        if findings:
            print("self-test: clean_splice fixture raised:")
            print_findings(findings)
            ok = False
        else:
            print("self-test: %-20s clean as required" % "clean_splice")
    else:
        print("self-test: missing clean_splice.cc fixture")
        ok = False

    # 4. Call-graph extractor ground truth.
    cg_dir = os.path.join(FIXTURE_DIR, "callgraph")
    cg_paths = []
    if os.path.isdir(cg_dir):
        for f in sorted(os.listdir(cg_dir)):
            if f.endswith((".h", ".cc")):
                cg_paths.append(os.path.join(cg_dir, f))
    if not cg_paths:
        print("self-test: missing callgraph fixture project")
        ok = False
    else:
        ctx, _findings = analyze(cg_paths)
        got_edges = sorted(
            (caller, callee)
            for caller, callees in ctx.graph.edges.items()
            for callee in callees)
        if got_edges != sorted(CALLGRAPH_EXPECTED_EDGES):
            print("self-test: callgraph edges mismatch")
            for e in sorted(set(got_edges)
                            - set(CALLGRAPH_EXPECTED_EDGES)):
                print("  unexpected: %s -> %s" % e)
            for e in sorted(set(CALLGRAPH_EXPECTED_EDGES)
                            - set(got_edges)):
                print("  missing:    %s -> %s" % e)
            ok = False
        elif ctx.graph.dropped != CALLGRAPH_EXPECTED_UNRESOLVED:
            print("self-test: callgraph unresolved-site count %d != %d"
                  % (ctx.graph.dropped, CALLGRAPH_EXPECTED_UNRESOLVED))
            ok = False
        else:
            print("self-test: %-20s edges match exactly" % "callgraph")

    # 5. Report determinism: two independent runs over the fixtures
    #    must render byte-identical reports.
    all_fix = [os.path.join(FIXTURE_DIR, f)
               for f in sorted(os.listdir(FIXTURE_DIR))
               if f.endswith(".cc")]
    renders = []
    for _ in range(2):
        ctx, findings = analyze(all_fix)
        renders.append(render_report(build_report(
            findings, ctx.stats, ctx.waivers_used)))
    if renders[0] != renders[1]:
        print("self-test: report is not byte-deterministic")
        ok = False
    else:
        print("self-test: %-20s byte-identical across runs" % "report")

    return ok


def main(argv):
    ap = argparse.ArgumentParser(
        prog="crev_analyze",
        description="interprocedural call-graph analysis "
                    "(DESIGN.md section 16)")
    ap.add_argument("--compile-commands", default=None,
                    help="compilation database; build-coverage check "
                         "is skipped with a note if the default is "
                         "absent, but an explicit path must exist")
    ap.add_argument("--report", default=None,
                    help="write the deterministic JSON report here")
    ap.add_argument("--self-test", action="store_true",
                    help="verify fixtures fail their passes and the "
                         "extractor matches the callgraph ground truth")
    ap.add_argument("--dump-graph", action="store_true",
                    help="print the resolved edges and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return 0 if run_self_test() else 1

    paths = tree_files()
    if not paths:
        print("crev_analyze: nothing to analyze under %s" % REPO_ROOT)
        return 2

    db = args.compile_commands
    if db is not None:
        if not os.path.exists(db):
            print("crev_analyze: error: %s not found" % db)
            print(COMPILE_COMMANDS_HINT)
            return 2
    else:
        db = os.path.join(REPO_ROOT, "build", "compile_commands.json")
        if not os.path.exists(db):
            print("crev_analyze: note: %s absent; skipping "
                  "build-coverage check"
                  % os.path.relpath(db, REPO_ROOT))
            db = None
    if db is not None:
        for p in check_compile_commands(db, paths):
            print("crev_analyze: warning: %s not in "
                  "compile_commands.json"
                  % os.path.relpath(p, REPO_ROOT))

    ctx, findings = analyze(paths)

    if args.dump_graph:
        for caller in sorted(ctx.graph.edges):
            for callee in ctx.graph.sorted_callees(caller):
                print("%s -> %s" % (caller, callee))
        return 0

    print_findings(findings)
    if args.report:
        write_report(build_report(findings, ctx.stats,
                                  ctx.waivers_used), args.report)
    if findings:
        print("crev_analyze: %d finding(s) across %d function(s)"
              % (len(findings), len({f.function for f in findings})))
        return 1
    print("crev_analyze: %d files, %d functions, %d edges clean (%s)"
          % (ctx.stats["files"], ctx.stats["functions"],
             ctx.stats["edges"], ", ".join(RULES)))
    if ctx.waivers_used:
        for w in sorted(ctx.waivers_used):
            print("crev_analyze: waiver applied: %s" % w)
    return 0
