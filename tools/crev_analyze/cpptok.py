"""Token stream for the crev_analyze C++ front end.

This is a lexer, not a parser: it produces identifiers, numbers,
literals, and punctuators with line numbers, drops preprocessor lines
wholesale, and harvests `analyze: <rule>-ok` waiver annotations from
comments. Everything else (scopes, functions, calls) is recovered by
token-level pattern matching in extract.py / callgraph.py; the
soundness caveats of that approach are documented in DESIGN.md
section 16.
"""

import re
from collections import namedtuple

#: kind is one of "id", "num", "str", "chr", "punct".
Token = namedtuple("Token", ["kind", "text", "line"])

#: Waiver annotation, mirroring crev_lint's `lint: <rule>-ok` syntax.
ANNOT = re.compile(r"analyze:\s*([a-z][a-z0-9-]*)-ok")

_TOKEN = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<rawstr>R"(?P<rdelim>[^()\\\s]{0,16})\(.*?\)(?P=rdelim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<chr>'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||
                [-+*/%&|^!=<>]=|.)
    """,
    re.VERBOSE | re.DOTALL,
)

_KIND_BY_GROUP = {
    "rawstr": "str",
    "str": "str",
    "chr": "chr",
    "num": "num",
    "id": "id",
    "punct": "punct",
}


def _blank_preprocessor(text):
    """Blank out preprocessor directives (including continuation
    lines) so macro bodies never masquerade as definitions."""
    out = []
    in_directive = False
    for line in text.split("\n"):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            out.append(line)
    return "\n".join(out)


def tokenize(text):
    """Return (tokens, annotations).

    annotations maps 1-based line number -> set of waiver rule names
    found in comments on that line.
    """
    text = _blank_preprocessor(text)
    tokens = []
    annotations = {}
    line = 1
    pos = 0
    for m in _TOKEN.finditer(text):
        assert m.start() == pos, "lexer lost sync at offset %d" % pos
        pos = m.end()
        group = m.lastgroup
        if group == "rdelim":  # inner group of rawstr
            group = "rawstr"
        frag = m.group(0)
        if group in ("lcomment", "bcomment"):
            for am in ANNOT.finditer(frag):
                at = line + frag[: am.start()].count("\n")
                annotations.setdefault(at, set()).add(am.group(1))
        elif group != "ws":
            tokens.append(Token(_KIND_BY_GROUP[group], frag, line))
        line += frag.count("\n")
    return tokens, annotations
