"""Call-site extraction and repo-wide call graph construction.

Resolution policy (best effort, documented in DESIGN.md section 16):

  * Calls resolve by the last name segment against the table of
    extracted definitions. Overloads collapse onto one node per
    qualified name; a call to an overloaded name edges to every
    definition of that name.
  * Qualified calls (`A::f(...)`) prefer definitions whose qualified
    name ends with the written qualifier; if none match, they fall
    back to name-only resolution.
  * Method calls (`x.f(...)`, `x->f(...)`) resolve to *every* class's
    `f` — this deliberately over-approximates virtual dispatch: a
    call through a base class edges to all overriders.
  * Constructions (`Type v(args)`, including `Base(...)` in ctor
    initializer lists) edge to `Type::Type` when Type is a known
    class; `NoYield` constructions additionally open a no-yield
    window spanning the rest of the enclosing brace scope.
  * Names with no extracted definition (std::, members, function
    pointers, std::function fields, macros) are dropped and counted;
    indirect calls therefore produce no edges, which is why functions
    invoked only through them surface as call-graph roots.
"""

from collections import namedtuple

from .extract import KEYWORDS

#: kind: "call" (unqualified), "method" (. / ->), "qualified"
#: (A::f), "ctor" (Type v(...)). qual: list of qualifier segments or
#: None. window: id of the innermost enclosing NoYield window in this
#: body, or None.
CallSite = namedtuple("CallSite", ["kind", "name", "qual", "line", "window"])

#: A NoYield window: the construction line and its brace depth.
Window = namedtuple("Window", ["line", "depth"])

#: Identifier-like tokens that look like calls but never are.
_NOT_CALLS = frozenset(
    ("assert", "defined", "__builtin_expect", "__builtin_unreachable")
)


def _chain_back(tokens, k, lo):
    """Walk a `a::b::c` chain backwards ending at token k (an id).
    Returns the segment list."""
    segs = [tokens[k].text]
    m = k - 1
    while m - 1 >= lo and tokens[m].text == "::" \
            and tokens[m - 1].kind == "id" \
            and tokens[m - 1].text not in KEYWORDS:
        segs.insert(0, tokens[m - 1].text)
        m -= 2
    return segs


def body_sites(tokens, fn, class_names):
    """Scan one function body. Returns (sites, windows)."""
    sites = []
    windows = []
    active = []  # indices into windows, innermost last
    depth = 0
    lo, hi = fn.body_begin + 1, fn.body_end
    k = lo
    while k < hi:
        t = tokens[k]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            while active and windows[active[-1]].depth > depth:
                active.pop()
        elif t.kind == "id" and t.text not in KEYWORDS \
                and t.text not in _NOT_CALLS \
                and k + 1 < hi and tokens[k + 1].text == "(":
            win = active[-1] if active else None
            prev = tokens[k - 1] if k - 1 >= fn.body_begin else None
            if prev is not None and prev.text in (".", "->"):
                sites.append(CallSite("method", t.text, None, t.line, win))
            elif prev is not None and prev.text == "::":
                segs = _chain_back(tokens, k, fn.body_begin)
                sites.append(CallSite(
                    "qualified", segs[-1], segs[:-1], t.line, win))
            elif prev is not None and prev.kind == "id" \
                    and prev.text not in KEYWORDS:
                # `Type name(args)`: a construction, with the type
                # possibly qualified (sim::SimThread::NoYield g(t)).
                tsegs = _chain_back(tokens, k - 1, fn.body_begin)
                cls = tsegs[-1]
                if cls in class_names:
                    sites.append(CallSite("ctor", cls, tsegs[:-1],
                                          t.line, win))
                    if cls == "NoYield":
                        windows.append(Window(t.line, depth))
                        active.append(len(windows) - 1)
            else:
                sites.append(CallSite("call", t.text, None, t.line, win))
        k += 1
    # Ctor initializer lists run in the constructor's body for our
    # purposes (base-class construction edges).
    for isegs, line in fn.init_calls:
        name = isegs[-1]
        if name in class_names:
            sites.append(CallSite("ctor", name, isegs[:-1], line, None))
    return sites, windows


class Graph:
    """The resolved call graph over merged function nodes."""

    def __init__(self):
        self.nodes = {}       # qname -> merged node dict (see driver)
        self.by_name = {}     # last segment -> sorted [qname]
        self.edges = {}       # qname -> {callee_qname: first line}
        self.indegree = {}    # qname -> int
        self.dropped = 0      # call sites with no resolution

    def add_node(self, qname):
        if qname in self.nodes:
            return
        self.nodes[qname] = None
        self.by_name.setdefault(qname.split("::")[-1], []).append(qname)
        self.edges[qname] = {}
        self.indegree[qname] = 0

    def finalize_names(self):
        for lst in self.by_name.values():
            lst.sort()

    def resolve(self, site):
        """Return the sorted list of callee qnames for a site."""
        cands = self.by_name.get(site.name, [])
        if site.kind == "ctor":
            want = [site.name, site.name]
            cands = self.by_name.get(site.name, [])
            cands = [q for q in cands
                     if q.split("::")[-2:] == want]
        if site.kind in ("qualified", "ctor") and site.qual:
            suffix = list(site.qual) + [site.name]
            if site.kind == "ctor":
                suffix = list(site.qual) + [site.name, site.name]
            narrowed = [q for q in cands
                        if q.split("::")[-len(suffix):] == suffix]
            if narrowed:
                cands = narrowed
        return cands

    def add_call(self, caller, site):
        callees = self.resolve(site)
        if not callees:
            self.dropped += 1
            return []
        for q in callees:
            if q not in self.edges[caller]:
                self.edges[caller][q] = site.line
                self.indegree[q] += 1
        return callees

    def roots(self):
        """Zero-in-edge nodes: thread bodies, public entry points,
        and anything reached only through indirect calls."""
        return sorted(q for q, d in self.indegree.items() if d == 0)

    def sorted_callees(self, qname):
        return sorted(self.edges.get(qname, ()))

    def find_path(self, start, is_target, cut=None):
        """Deterministic BFS from `start` to the first node matching
        `is_target`, refusing to expand nodes matching `cut`. Returns
        the qname path (including both ends) or None."""
        if is_target(start):
            return [start]
        if cut is not None and cut(start):
            return None
        parent = {start: None}
        queue = [start]
        while queue:
            nxt = []
            for q in queue:
                for c in self.sorted_callees(q):
                    if c in parent:
                        continue
                    parent[c] = q
                    if is_target(c):
                        path = [c]
                        while path[-1] is not None:
                            p = parent[path[-1]]
                            if p is None:
                                break
                            path.append(p)
                        path.reverse()
                        return path
                    if cut is None or not cut(c):
                        nxt.append(c)
            queue = nxt
        return None

    def exposed_from_roots(self, protects):
        """BFS from every root, refusing to expand nodes for which
        `protects` holds. Returns {qname: parent} for every node
        reachable along at least one unprotected path (protected
        nodes themselves appear, marking where propagation stopped,
        but their callees do not inherit exposure through them)."""
        parent = {}
        queue = []
        for r in self.roots():
            parent[r] = None
            queue.append(r)
        while queue:
            nxt = []
            for q in queue:
                if protects(q):
                    continue
                for c in self.sorted_callees(q):
                    if c in parent:
                        continue
                    parent[c] = q
                    nxt.append(c)
            queue = nxt
        return parent

    @staticmethod
    def path_to(parent, qname):
        path = [qname]
        while parent.get(path[-1]) is not None:
            path.append(parent[path[-1]])
        path.reverse()
        return path
