"""crev_analyze: interprocedural call-graph analysis for the
Cornucopia Reloaded simulator (DESIGN.md section 16).

Where crev_lint checks lines, crev_analyze checks paths: it builds a
repo-wide call graph from a token-level C++ front end and runs four
reachability passes over it (no-yield reachability, lock-evidence
propagation, uncharged-access reachability, epoch-phase ordering).
"""

VERSION = "1.0"
