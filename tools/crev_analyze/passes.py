"""The four interprocedural passes (DESIGN.md section 16).

Each pass takes the analysis context built by driver.py — the call
graph, the per-function facts, and the waiver table — and yields
Finding records. All iteration is over sorted keys and BFS with
sorted adjacency, so the findings (and hence the JSON report) are
byte-deterministic.
"""

from collections import namedtuple

from . import facts as F

Finding = namedtuple(
    "Finding", ["rule", "function", "file", "line", "callpath", "message"])

RULES = ("noyield-reach", "lock-evidence", "uncharged-reach",
         "epoch-phase")


# ---------------------------------------------------------------------
# Pass 1: no-yield reachability.
# ---------------------------------------------------------------------

def pass_noyield_reach(ctx):
    """No function invoked inside a NoYield window may transitively
    reach a yield/park/block point.

    The search cuts at: noyield-aware functions (they consult
    noyield_depth_ before yielding), wake-side scheduler primitives
    (the caller never parks inside them), off-clock observers (they
    run outside the simulated clock and cannot yield on the guarded
    thread's behalf), and explicitly waived helpers."""
    findings = []
    graph = ctx.graph

    def cut(q):
        return (F.is_noyield_aware(q) or F.is_notify_safe(q)
                or ctx.is_observer(q)
                or ctx.fn_waived("noyield-reach", q))

    memo = {}

    def path_to_sink(q):
        if q not in memo:
            memo[q] = graph.find_path(q, F.is_yield_sink, cut)
        return memo[q]

    for qname in sorted(ctx.nodes):
        node = ctx.nodes[qname]
        if not node["windows"]:
            continue
        if ctx.fn_waived("noyield-reach", qname):
            continue
        seen = set()
        for site, callees in node["window_calls"]:
            if ctx.line_waived("noyield-reach", node["fn"].file,
                               site.line):
                continue
            for callee in callees:
                path = path_to_sink(callee)
                if path is None:
                    continue
                key = (site.line, path[-1])
                if key in seen:
                    continue
                seen.add(key)
                win = node["windows"][site.window]
                findings.append(Finding(
                    rule="noyield-reach",
                    function=qname,
                    file=ctx.relpath(node["fn"].file),
                    line=site.line,
                    callpath=[qname] + path,
                    message="call inside the NoYield window opened at "
                            "line %d can reach yield point %s; a yield "
                            "mid-critical-section breaks the windowed "
                            "atomicity the guard models"
                            % (win.line, path[-1]),
                ))
    return findings


# ---------------------------------------------------------------------
# Pass 2: lock-evidence propagation.
# ---------------------------------------------------------------------

def pass_lock_evidence(ctx):
    """A shared-state mutation is clean if every call path from a
    root (thread body, public entry point, indirect-call target)
    passes through synchronisation evidence — the interprocedural
    replacement for crev_lint's retired in-function heuristic."""
    findings = []
    graph = ctx.graph

    def protects(q):
        node = ctx.nodes[q]
        return (bool(node["facts"]["evidence"])
                or ctx.is_observer(q)
                or ctx.fn_waived("lock-evidence", q))

    exposed = graph.exposed_from_roots(protects)

    for qname in sorted(ctx.nodes):
        node = ctx.nodes[qname]
        muts = node["facts"]["mutations"]
        if not muts:
            continue
        if protects(qname):
            continue
        if qname not in exposed:
            continue  # every inbound path passes through evidence
        path = graph.path_to(exposed, qname)
        reported = set()
        for member, what, line in muts:
            if member in reported:
                continue
            if ctx.line_waived("lock-evidence", node["fn"].file, line):
                continue
            reported.add(member)
            findings.append(Finding(
                rule="lock-evidence",
                function=qname,
                file=ctx.relpath(node["fn"].file),
                line=line,
                callpath=path,
                message="mutation of %s with no synchronisation "
                        "evidence on the call path shown "
                        "(assertHeld/heldBy, stopTheWorld/stwOwnedBy, "
                        "or an on* race-checker hook): register the "
                        "domain somewhere on the path or waive with "
                        "the single-writer argument" % what,
            ))
    return findings


# ---------------------------------------------------------------------
# Pass 3: uncharged-access reachability.
# ---------------------------------------------------------------------

def pass_uncharged_reach(ctx):
    """Uncharged accessors may only be reached from off-clock
    observer roots or the vm cost-model layer; a simulation path
    caller must show a charge (chargeRead/chargeWrite/...) in the
    same function."""
    findings = []
    graph = ctx.graph

    def protects(q):
        return ctx.is_observer(q) or ctx.fn_waived("uncharged-reach", q)

    exposed = graph.exposed_from_roots(protects)

    for qname in sorted(ctx.nodes):
        node = ctx.nodes[qname]
        uncharged = node["facts"]["uncharged"]
        if not uncharged:
            continue
        if protects(qname) or ctx.is_vm(qname):
            continue
        if node["facts"]["charges"]:
            continue  # charge discipline shown locally
        if qname not in exposed:
            continue  # only observers can reach it
        path = graph.path_to(exposed, qname)
        for acc, line in uncharged:
            if ctx.line_waived("uncharged-reach", node["fn"].file, line):
                continue
            findings.append(Finding(
                rule="uncharged-reach",
                function=qname,
                file=ctx.relpath(node["fn"].file),
                line=line,
                callpath=path,
                message="uncharged accessor %s() reachable from a "
                        "non-observer root with no charge in the "
                        "calling function: use the charging API or "
                        "charge the cycles before peeking" % acc,
            ))
    return findings


# ---------------------------------------------------------------------
# Pass 4: epoch-phase ordering.
# ---------------------------------------------------------------------

def _check_ops(ops):
    """Validate one epoch driver's operation sequence. Returns
    [(message, line)]. Legal shape: open with advance; snapshot the
    audit set before any phase bracket; phase brackets properly
    nested; every stop-the-world resumed; close (finishEpoch, or a
    second advance for the emergency path) last."""
    errs = []
    if not ops:
        errs.append(("epoch driver performs no epoch-protocol "
                     "operations (must open with "
                     "EpochCounter::advance)", 0))
        return errs
    if ops[0][0] != "advance":
        errs.append(("epoch must open with EpochCounter::advance "
                     "(first operation is %s)" % ops[0][0], ops[0][2]))
    advances = 0
    closed_at = None
    stw_open = None
    phase_stack = []
    first_phase = None
    first_snapshot = None
    for op, phase, line in ops:
        if closed_at is not None:
            errs.append(("%s after the epoch already closed at line %d"
                         % (op, closed_at), line))
            continue
        if op == "advance":
            advances += 1
            if advances >= 2:
                closed_at = line  # emergency completion
        elif op == "snapshot":
            if first_snapshot is None:
                first_snapshot = line
        elif op == "stw":
            if stw_open is not None:
                errs.append(("stop-the-world at line %d never resumed"
                             % stw_open, line))
            stw_open = line
        elif op == "resume":
            if stw_open is None:
                errs.append(("resumeWorld without a stop-the-world",
                             line))
            stw_open = None
        elif op == "phase_begin":
            if first_phase is None:
                first_phase = line
            phase_stack.append((phase, line))
        elif op == "phase_end":
            if not phase_stack or phase_stack[-1][0] != phase:
                errs.append(("tracePhaseEnd(%s) does not match the "
                             "open bracket %s"
                             % (phase, phase_stack[-1][0]
                                if phase_stack else "<none>"), line))
            else:
                phase_stack.pop()
        elif op == "finish":
            if phase_stack:
                errs.append(("finishEpoch with phase bracket %s still "
                             "open (opened line %d)"
                             % phase_stack[-1], line))
            if stw_open is not None:
                errs.append(("finishEpoch inside the stop-the-world "
                             "opened at line %d" % stw_open, line))
            closed_at = line
    if first_phase is not None and (first_snapshot is None
                                    or first_snapshot > first_phase):
        errs.append(("phase bracket opened before snapshotAuditSet: "
                     "the audit set must be pinned before any "
                     "paint/scan work", first_phase))
    if stw_open is not None:
        errs.append(("stop-the-world never resumed", stw_open))
    if phase_stack:
        errs.append(("phase bracket %s never closed" % phase_stack[-1][0],
                     phase_stack[-1][1]))
    if closed_at is None:
        errs.append(("epoch never closes: finishEpoch (or the "
                     "emergency path's completing advance) missing",
                     ops[-1][2]))
    return errs


def pass_epoch_phase(ctx):
    findings = []
    for qname in sorted(ctx.nodes):
        node = ctx.nodes[qname]
        if node["fn"].name not in F.EPOCH_DRIVERS:
            continue
        if node["facts"]["layer"] not in ("revoker", "fixture"):
            continue
        ops = node["facts"]["epoch_ops"]
        if ctx.fn_waived("epoch-phase", qname):
            continue
        for message, line in _check_ops(ops):
            findings.append(Finding(
                rule="epoch-phase",
                function=qname,
                file=ctx.relpath(node["fn"].file),
                line=line or node["fn"].line,
                callpath=[qname],
                message=message,
            ))
    return findings


ALL_PASSES = (
    ("noyield-reach", pass_noyield_reach),
    ("lock-evidence", pass_lock_evidence),
    ("uncharged-reach", pass_uncharged_reach),
    ("epoch-phase", pass_epoch_phase),
)
