import os
import sys

if __package__ in (None, ""):
    # Executed as `python3 tools/crev_analyze`: make the package
    # importable by name.
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from crev_analyze.driver import main
else:
    from .driver import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
