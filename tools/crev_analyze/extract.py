"""Function extraction: scope-tracking recovery of function
definitions from the token stream.

The extractor walks a file's tokens maintaining a namespace/class
scope stack, consumes function bodies wholesale, and emits a
Function record per definition with the fully qualified name and the
token span of the body. It is deliberately a recogniser, not a
parser: constructs it cannot classify are skipped token-by-token, so
an unmodelled corner of C++ degrades coverage, never correctness of
what *was* extracted (DESIGN.md section 16 lists the caveats).
"""

from collections import namedtuple

#: qname: fully qualified "a::b::C::f". cls: innermost class the
#: definition belongs to (None for free functions). body_begin /
#: body_end: token indices of the '{' and matching '}'.
#: init_calls: [(name_segments, line)] from the ctor initializer list.
Function = namedtuple(
    "Function",
    ["qname", "name", "cls", "file", "line",
     "body_begin", "body_end", "init_calls"],
)

KEYWORDS = frozenset(
    """alignas alignof asm auto bool break case catch char char8_t
    char16_t char32_t class concept const consteval constexpr
    constinit const_cast continue co_await co_return co_yield
    decltype default delete do double dynamic_cast else enum explicit
    export extern false final float for friend goto if inline int
    long mutable namespace new noexcept nullptr operator override
    private protected public register reinterpret_cast requires
    return short signed sizeof static static_assert static_cast
    struct switch template this thread_local throw true try typedef
    typeid typename union unsigned using virtual void volatile
    wchar_t while""".split()
)

#: Tokens that may follow the parameter list of a definition.
_TRAILER_SIMPLE = frozenset(
    ("const", "noexcept", "override", "final", "mutable",
     "volatile", "&", "&&")
)


class _Extractor:
    def __init__(self, tokens, path):
        self.toks = tokens
        self.n = len(tokens)
        self.path = path
        self.functions = []
        self.classes = set()
        # stack of ("ns"|"class"|"brace", name-or-None)
        self.scopes = []

    # -- token helpers -------------------------------------------------

    def _skip_balanced(self, j, open_t, close_t):
        """tokens[j] is open_t; return index one past the match."""
        depth = 0
        while j < self.n:
            t = self.toks[j].text
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return j + 1
            j += 1
        return self.n

    def _skip_angles_loose(self, j):
        """tokens[j] is '<'; skip a template argument list, counting
        '>>' as two closers. Used only after `template`, where the
        angles are guaranteed to be brackets."""
        depth = 0
        while j < self.n:
            t = self.toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            j += 1
        return self.n

    def _try_angles_in_name(self, j):
        """tokens[j] is '<' inside a name chain. Accept it as template
        arguments only when the contents look type-ish and it closes
        quickly; otherwise it is a comparison and we bail."""
        depth = 0
        k = j
        for _ in range(64):
            if k >= self.n:
                return None
            t = self.toks[k]
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return k + 1
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return k + 1
            elif t.kind in ("id", "num") or t.text in (
                    ",", "::", "*", "&", "...", "(", ")"):
                pass
            else:
                return None
            k += 1
        return None

    def _parse_chain(self, j):
        """Parse a (possibly qualified) declarator name starting at
        tokens[j]: `A::B<T>::f`, `~D`, `operator==`. Returns
        (segments, next_index) or None."""
        toks = self.toks
        segs = []
        while True:
            tilde = ""
            if j < self.n and toks[j].text == "~":
                tilde = "~"
                j += 1
            if j >= self.n or toks[j].kind != "id":
                return None
            t = toks[j]
            if t.text == "operator" and not tilde:
                j += 1
                if j + 1 < self.n and toks[j].text == "(" \
                        and toks[j + 1].text == ")":
                    segs.append("operator()")
                    j += 2
                elif j + 1 < self.n and toks[j].text == "[" \
                        and toks[j + 1].text == "]":
                    segs.append("operator[]")
                    j += 2
                else:
                    op = ""
                    while j < self.n and toks[j].kind == "punct" \
                            and toks[j].text != "(":
                        op += toks[j].text
                        j += 1
                    if not op:
                        return None  # conversion operators: unmodelled
                    segs.append("operator" + op)
            else:
                if t.text in KEYWORDS:
                    return None
                name = tilde + t.text
                j += 1
                if j < self.n and toks[j].text == "<" and not tilde:
                    k = self._try_angles_in_name(j)
                    # Template args only count as part of the name when
                    # the chain continues (SimQueue<T>::push).
                    if k is not None and k < self.n \
                            and toks[k].text == "::":
                        j = k
                segs.append(name)
            if j < self.n and toks[j].text == "::":
                j += 1
                continue
            return segs, j

    # -- scope-level constructs ----------------------------------------

    def _innermost_class(self):
        for kind, name in reversed(self.scopes):
            if kind == "class":
                return name
        return None

    def _scope_parts(self):
        parts = []
        for kind, name in self.scopes:
            if kind in ("ns", "class") and name:
                parts.extend(name.split("::"))
        return parts

    def _classify_trailer(self, k, segs):
        """tokens[k] is just past the ')' of a candidate parameter
        list. Decide definition vs declaration vs something else.
        Returns ("func", body_open_index, init_calls) or
        ("skip", resume_index)."""
        toks = self.toks
        init_calls = []
        while k < self.n:
            tt = toks[k].text
            if tt in _TRAILER_SIMPLE:
                k += 1
                continue
            if tt == "(":  # noexcept(...), attribute-like macros
                k = self._skip_balanced(k, "(", ")")
                continue
            if tt == "->":  # trailing return type
                k += 1
                while k < self.n and (
                        toks[k].kind in ("id", "num")
                        or toks[k].text in ("::", "<", ">", "*", "&",
                                            ",", "[", "]")):
                    k += 1
                continue
            if tt in (";", "=", ","):
                return ("skip", k + 1)
            if tt == ":":
                return self._classify_ctor_init(k + 1, segs, init_calls)
            if tt == "{":
                return ("func", k, init_calls)
            return ("skip", k + 1)
        return ("skip", self.n)

    def _classify_ctor_init(self, k, segs, init_calls):
        """Parse `: base(...), member_{...} ... {`. Only plausible
        constructors qualify; anything else is skipped."""
        toks = self.toks
        last = segs[-1]
        encl = segs[-2].split("<")[0] if len(segs) >= 2 else None
        if last != encl and last != self._innermost_class():
            return ("skip", k)
        while k < self.n:
            r = self._parse_chain(k)
            if r is None:
                return ("skip", k)
            isegs, k2 = r
            if k2 >= self.n or toks[k2].text not in ("(", "{"):
                return ("skip", k)
            open_t = toks[k2].text
            close_t = ")" if open_t == "(" else "}"
            init_calls.append((isegs, toks[k2].line))
            k = self._skip_balanced(k2, open_t, close_t)
            if k < self.n and toks[k].text == ",":
                k += 1
                continue
            break
        if k < self.n and toks[k].text == "{":
            return ("func", k, init_calls)
        return ("skip", k)

    def _handle_namespace(self, i):
        toks = self.toks
        j = i + 1
        name_parts = []
        while j < self.n and toks[j].kind == "id" \
                and toks[j].text not in KEYWORDS:
            name_parts.append(toks[j].text)
            j += 1
            if j < self.n and toks[j].text == "::":
                j += 1
                continue
            break
        if j < self.n and toks[j].text == "{":
            self.scopes.append(("ns", "::".join(name_parts)))
            return j + 1
        # namespace alias / using-directive: skip the statement.
        while j < self.n and toks[j].text != ";":
            j += 1
        return j + 1

    def _handle_enum(self, i):
        j = i + 1
        while j < self.n and self.toks[j].text not in ("{", ";"):
            j += 1
        if j < self.n and self.toks[j].text == "{":
            j = self._skip_balanced(j, "{", "}")
        return j

    def _handle_class(self, i):
        """class/struct/union: record the name, push a class scope if
        a body follows (skipping any base clause)."""
        toks = self.toks
        j = i + 1
        name = None
        angle = 0
        while j < self.n:
            tt = toks[j].text
            if tt == "<":
                angle += 1
            elif tt == ">":
                angle -= 1
            elif tt == ">>":
                angle -= 2
            elif angle == 0:
                if tt == "{":
                    if name:
                        self.classes.add(name)
                        self.scopes.append(("class", name))
                    else:
                        self.scopes.append(("brace", None))
                    return j + 1
                if tt in (";", "=", ")"):
                    if name:
                        self.classes.add(name)
                    return j  # fwd decl / `class` in a template head
                if toks[j].kind == "id" and tt not in KEYWORDS \
                        and name is None:
                    name = tt
            j += 1
        return self.n

    # -- main loop -----------------------------------------------------

    def run(self):
        toks = self.toks
        i = 0
        while i < self.n:
            t = toks[i]
            if t.kind == "id":
                if t.text == "template" and i + 1 < self.n \
                        and toks[i + 1].text == "<":
                    i = self._skip_angles_loose(i + 1)
                    continue
                if t.text == "namespace":
                    i = self._handle_namespace(i)
                    continue
                if t.text == "enum":
                    i = self._handle_enum(i)
                    continue
                if t.text in ("class", "struct", "union"):
                    i = self._handle_class(i)
                    continue
                if t.text in ("using", "typedef", "friend"):
                    while i < self.n and toks[i].text != ";":
                        if toks[i].text == "{":
                            i = self._skip_balanced(i, "{", "}")
                            continue
                        i += 1
                    i += 1
                    continue
                if t.text in ("public", "private", "protected"):
                    i += 1
                    if i < self.n and toks[i].text == ":":
                        i += 1
                    continue
            if t.text == "{" or (t.text == "~" or t.kind == "id") \
                    and t.text not in KEYWORDS:
                if t.text != "{":
                    i = self._try_function(i)
                    continue
                self.scopes.append(("brace", None))
                i += 1
                continue
            if t.text == "}":
                if self.scopes:
                    self.scopes.pop()
                i += 1
                continue
            i += 1
        return self.functions, self.classes

    def _try_function(self, i):
        toks = self.toks
        r = self._parse_chain(i)
        if r is None:
            return i + 1
        segs, j = r
        if j >= self.n or toks[j].text != "(":
            return i + 1
        close = self._skip_balanced(j, "(", ")")
        kind, at, *rest = self._classify_trailer(close, segs)
        if kind != "func":
            return max(at, i + 1)
        init_calls = rest[0]
        body_open = at
        body_close = self._skip_balanced(body_open, "{", "}") - 1
        parts = self._scope_parts() + [s.split("<")[0] for s in segs]
        name = parts[-1]
        if len(segs) >= 2:
            cls = segs[-2].split("<")[0]
        else:
            cls = self._innermost_class()
        self.functions.append(Function(
            qname="::".join(parts),
            name=name,
            cls=cls,
            file=self.path,
            line=toks[i].line,
            body_begin=body_open,
            body_end=body_close,
            init_calls=init_calls,
        ))
        return body_close + 1


def extract_file(tokens, path):
    """Return ([Function], {class names}) for one file."""
    return _Extractor(tokens, path).run()
