"""Byte-deterministic JSON report.

The report is an artifact of the gating CI job, so it must be a pure
function of the source tree: findings are fully sorted, keys are
sorted, and nothing host-dependent (timestamps, hostnames, absolute
paths) appears. tools/check_analyze_schema.py validates the shape.
"""

import json

from . import VERSION
from .passes import RULES


def finding_key(f):
    return (f.rule, f.file, f.line, f.function, f.message)


def build_report(findings, stats, waivers_used):
    return {
        "tool": "crev_analyze",
        "version": VERSION,
        "rules": list(RULES),
        "findings": [
            {
                "rule": f.rule,
                "function": f.function,
                "file": f.file,
                "line": f.line,
                "callpath": list(f.callpath),
                "message": f.message,
            }
            for f in sorted(findings, key=finding_key)
        ],
        "waivers_used": sorted(waivers_used),
        "stats": {k: stats[k] for k in sorted(stats)},
    }


def render_report(report):
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(report, path):
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_report(report))
