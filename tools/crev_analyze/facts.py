"""Per-function fact summaries: the vocabulary the four passes reason
over. Facts are computed from a function's call sites and body lines;
the pass logic itself lives in passes.py.

The shared-state table and mutation grammar moved here from
crev_lint.py when the line-level `shared-mutation` and
`uncharged-access` rules were superseded by the interprocedural
passes (DESIGN.md section 16).
"""

import os
import re

# ---------------------------------------------------------------------
# Name sets, matched against the last one or two qname segments.
# ---------------------------------------------------------------------

#: Yield / park / block points: reaching one of these inside a
#: NoYield window would let the scheduler run mid-critical-section.
YIELD_SINKS = frozenset([
    ("SimThread", "yieldNow"),
    ("SimThread", "yieldSlow"),
    ("SimThread", "sleep"),
    ("SimThread", "sleepUntil"),
    ("Scheduler", "block"),
    ("Scheduler", "stopTheWorld"),
    ("SimMutex", "lock"),
    ("SimEvent", "wait"),
    ("QuarantineShim", "maybeBlock"),
])

#: Functions that consult noyield_depth_ before yielding: they are
#: safe to call inside a window and cut the reachability search.
NOYIELD_AWARE = frozenset([
    ("SimThread", "accrue"),
    ("SimThread", "accrueNoYield"),
])

#: Wake-side scheduler primitives: they make *other* threads
#: runnable and return; the calling thread never parks inside them,
#: so the no-yield search does not descend through them (descending
#: would reach yield points that belong to the woken thread's
#: context, not the caller's).
NOTIFY_SAFE = frozenset([
    ("SimEvent", "notifyAll"),
    ("SimEvent", "notifyOne"),
    ("Scheduler", "wake"),
    ("Scheduler", "wakeMany"),
    ("SimMutex", "unlock"),
])

#: Call names that are synchronisation evidence: explicit lock
#: discipline, a stop-the-world window, or a race-checker domain
#: registration (an on* hook, called as a method).
EVIDENCE_NAMES = frozenset(
    ("assertHeld", "heldBy", "stwOwnedBy", "stopTheWorld"))
_ON_HOOK = re.compile(r"on[A-Z]\w*\Z")

#: Uncharged accessors and the charging APIs that account for them.
UNCHARGED_ACCESSORS = frozenset(
    ("peekTag", "peekCap", "peekByte", "peekLineTagNibble",
     "probeQuiet", "frameUncached"))
CHARGE_NAMES = frozenset(
    ("chargeRead", "chargeWrite", "chargeReadPaddr", "chargeAccess"))

#: Epoch drivers checked by the phase-ordering pass.
EPOCH_DRIVERS = frozenset(("doEpoch", "emergencyEpoch"))

# ---------------------------------------------------------------------
# Shared revocation state (the race-checker domains of DESIGN.md
# section 11), keyed by the layer whose files may legally name the
# member.
# ---------------------------------------------------------------------


def mutation_re(member):
    """Mutation of @p member: assignment / compound assignment /
    increment (optionally through an index chain, so summary words
    like blocks_[b][w] ^= ... count) or a container-mutating call."""
    m = re.escape(member)
    mutators = (r"push_back|pop_back|emplace_back|emplace|insert|"
                r"erase|clear|resize|assign|swap")
    return re.compile(
        r"\b(?:this\s*->\s*)?" + m + r"(?:\[[^]]*\])*\s*"
        r"(?:(?:[+\-*/%|&^]|<<|>>)?=(?!=)|\+\+|--)"
        r"|(?:\+\+|--)\s*(?:this\s*->\s*)?" + m + r"\b"
        r"|\b(?:this\s*->\s*)?" + m + r"\s*\.\s*(?:" + mutators +
        r")\s*\(")


SHARED_STATE = [
    (mutation_re("gen_"), "gen_", "vm",
     "the MMU's load-barrier generation bit (domain: gen-flip)"),
    (mutation_re("pages_"), "pages_", "vm",
     "the page-table map (domains: pte-publish/pte-teardown)"),
    (mutation_re("pt_epoch_"), "pt_epoch_", "vm",
     "the PTE-pointer-cache epoch (domain: pte-teardown)"),
    (mutation_re("newly_quarantined_"), "newly_quarantined_", "vm",
     "the unmap->reap hand-off queue (domain: quarantine)"),
    (mutation_re("blocks_"), "blocks_", "revoker",
     "the shadow-summary level-0 words (domain: shadow)"),
    (mutation_re("l1_"), "l1_", "revoker",
     "the shadow-summary level-1 bitmap (domain: shadow)"),
    (mutation_re("block_counts_"), "block_counts_", "revoker",
     "the shadow-summary block counts (domain: shadow)"),
    (mutation_re("count_"), "count_", "revoker",
     "the shadow-summary population count (domain: shadow)"),
    (mutation_re("inbox_head"), "inbox_head", "alloc",
     "the remote-dealloc inbox chain head (domain: remote-queue)"),
    (mutation_re("inbox_head_cap"), "inbox_head_cap", "alloc",
     "the remote-dealloc inbox head capability (domain: remote-queue)"),
    (mutation_re("inbox_count"), "inbox_count", "alloc",
     "the remote-dealloc inbox length (domain: remote-queue)"),
]

#: Off-clock observer components: they run outside the simulated cost
#: model and are audited by construction (DESIGN.md section 11), so
#: they are legal roots for uncharged access and count as evidence
#: boundaries for lock propagation.
OBSERVER_DIRS = (
    os.path.join("src", "check"),
    os.path.join("src", "trace"),
)
OBSERVER_FILES = frozenset(
    ("auditor.cc", "auditor.h", "prescan.cc", "prescan.h"))

VM_DIR = os.path.join("src", "vm")

_STRIP_NOISE = re.compile(r'//.*$|"(?:[^"\\]|\\.)*"')


def _layer_of(path, repo_root, fixture_dir):
    if path.startswith(fixture_dir + os.sep):
        return "fixture"
    rel = os.path.relpath(path, repo_root)
    if rel.startswith(os.path.join("src", "vm") + os.sep):
        return "vm"
    if rel.startswith(os.path.join("src", "revoker") + os.sep):
        return "revoker"
    if rel.startswith(os.path.join("src", "alloc") + os.sep):
        return "alloc"
    return None


def is_observer_file(path, repo_root, fixture_dir):
    if path.startswith(fixture_dir + os.sep):
        return False
    rel = os.path.relpath(path, repo_root)
    if any(rel.startswith(d + os.sep) for d in OBSERVER_DIRS):
        return True
    return os.path.basename(path) in OBSERVER_FILES


def is_vm_file(path, repo_root, fixture_dir):
    if path.startswith(fixture_dir + os.sep):
        return False
    return os.path.relpath(path, repo_root).startswith(VM_DIR + os.sep)


def _qname_tail2(qname):
    parts = qname.split("::")
    if len(parts) >= 2:
        return (parts[-2], parts[-1])
    return (None, parts[-1])


def is_yield_sink(qname):
    return _qname_tail2(qname) in YIELD_SINKS


def is_noyield_aware(qname):
    return _qname_tail2(qname) in NOYIELD_AWARE


def is_notify_safe(qname):
    return _qname_tail2(qname) in NOTIFY_SAFE


_PHASE_ARG = re.compile(r"k[A-Z]\w*\Z")


def epoch_ops(tokens, fn):
    """Linear sequence of epoch-protocol operations in a driver body:
    [(op, phase-or-None, line)]."""
    ops = []
    k = fn.body_begin + 1
    while k < fn.body_end:
        t = tokens[k]
        if t.kind == "id" and k + 1 < fn.body_end \
                and tokens[k + 1].text == "(":
            name = t.text
            if name == "advance":
                ops.append(("advance", None, t.line))
            elif name == "snapshotAuditSet":
                ops.append(("snapshot", None, t.line))
            elif name in ("stwBegin", "stopTheWorld"):
                ops.append(("stw", None, t.line))
            elif name == "resumeWorld":
                ops.append(("resume", None, t.line))
            elif name == "finishEpoch":
                ops.append(("finish", None, t.line))
            elif name in ("tracePhaseBegin", "tracePhaseEnd"):
                phase = None
                depth = 0
                j = k + 1
                while j < fn.body_end:
                    tt = tokens[j]
                    if tt.text == "(":
                        depth += 1
                    elif tt.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tt.kind == "id" and _PHASE_ARG.match(tt.text):
                        phase = tt.text
                    j += 1
                op = ("phase_begin" if name == "tracePhaseBegin"
                      else "phase_end")
                ops.append((op, phase, t.line))
        k += 1
    return ops


def make_facts(fn, tokens, sites, windows, file_lines, repo_root,
               fixture_dir):
    """Compute the fact summary for one function definition."""
    layer = _layer_of(fn.file, repo_root, fixture_dir)
    evidence = []
    charges = []
    uncharged = []
    for s in sites:
        if s.name in EVIDENCE_NAMES:
            evidence.append((s.name, s.line))
        elif s.kind in ("method", "qualified") and _ON_HOOK.match(s.name):
            evidence.append((s.name, s.line))
        if s.name in CHARGE_NAMES:
            charges.append((s.name, s.line))
        if s.kind in ("method", "qualified") \
                and s.name in UNCHARGED_ACCESSORS:
            uncharged.append((s.name, s.line))

    mutations = []
    if layer is not None:
        begin = tokens[fn.body_begin].line
        end = tokens[fn.body_end].line
        for li in range(begin, min(end, len(file_lines)) + 1):
            text = _STRIP_NOISE.sub("", file_lines[li - 1])
            for pat, member, mlayer, what in SHARED_STATE:
                if layer != "fixture" and mlayer != layer:
                    continue
                if pat.search(text):
                    mutations.append((member, what, li))

    ops = []
    if fn.name in EPOCH_DRIVERS and (
            layer in ("revoker", "fixture")):
        ops = epoch_ops(tokens, fn)

    return {
        "layer": layer,
        "evidence": evidence,
        "charges": charges,
        "uncharged": uncharged,
        "mutations": mutations,
        "epoch_ops": ops,
    }
