#!/usr/bin/env python3
"""Validate a BENCH_TRAJECTORY.json determinism record.

The trajectory file accumulates one entry per bench_all run (DESIGN.md
§9). Every entry self-reports whether the host-optimization determinism
contract held during that run; this tool turns those self-reports into
a CI gate:

  - every run's "end_to_end.sim_results_match" must be true;
  - every run's sweep_microbench rows must have "sim_cycles_match"
    true;
  - runs must carry a non-empty "label" and at least one microbench
    row (catches truncated/hand-edited files).

Exits non-zero with a diagnostic naming the offending run label.
Usage: check_trajectory.py BENCH_TRAJECTORY.json
"""

import json
import sys


def fail(msg):
    print(f"check_trajectory: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail('no "runs" array (not a trajectory file?)')

    for i, run in enumerate(runs):
        label = run.get("label")
        if not isinstance(label, str) or not label:
            fail(f"run {i} has no label")
        rows = run.get("sweep_microbench")
        if not isinstance(rows, list) or not rows:
            fail(f'run "{label}" has no sweep_microbench rows')
        for row in rows:
            if row.get("sim_cycles_match") is not True:
                fail(
                    f'run "{label}" regime "{row.get("regime")}": '
                    "simulated cycles diverged between fast and "
                    "reference sweeps"
                )
        e2e = run.get("end_to_end", {})
        if e2e.get("sim_results_match") is not True:
            fail(
                f'run "{label}": simulated results diverged across '
                "host configurations"
            )

    print(
        f"check_trajectory: OK: {len(runs)} run(s), determinism "
        "contract held in all"
    )


if __name__ == "__main__":
    main()
