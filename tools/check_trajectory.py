#!/usr/bin/env python3
"""Validate accumulating bench records (BENCH_TRAJECTORY.json,
BENCH_SOAK.json).

Both files accumulate one entry per run and self-report whether the
run's contract held; this tool turns those self-reports into a CI
gate. The file kind is dispatched on the top-level "bench" key.

bench_all trajectory files (DESIGN.md §9):
  - every run's "end_to_end.sim_results_match" must be true;
  - every run's sweep_microbench rows must have "sim_cycles_match"
    true;
  - runs carrying an "intra_cell" record (DESIGN.md §14) must have
    "sim_results_match" true (serial token engine and lockstep engine
    produced identical RunMetrics) and "intra_cell_speedup" >= 1.0
    (the lockstep engine is never slower than the reference);
  - runs carrying an "alloc_shard" record (DESIGN.md §15) must have
    "sim_results_match" true (serial and lockstep engines agreed at
    every shard count) and "remote_free_sends" > 0 (the sharded cell
    really drove the remote-dealloc queues); records that emit a
    "min_leg_seconds" floor must have every timed leg at or above it
    (sub-threshold legs are pure host jitter, not measurements);
  - runs carrying a "kernels" record (DESIGN.md §17) must have
    "sim_results_match" true (forced-scalar and dispatched kernel
    legs produced identical simulated work), every leg's
    "sim_cycles_match" true, and the record-level "host_speedup"
    (aggregate off/on ns across regimes) >= 1.0 — per-leg ratios are
    informational because a regime with no tag work measures pure
    host jitter;
  - runs carrying a "kernels" record that also ran with
    "host_threads" >= 2 must have "end_to_end.parallel_speedup"
    >= 1.15 (the arbiter keeps cross-cell scaling from decaying; a
    single-slot cpuset cannot scale cross-cell, so it is exempt);
  - among full-mode (non-quick) runs, the newest run's
    "end_to_end.fast_parallel_seconds" must not exceed 1.25x the best
    earlier full-mode run (host-noise tolerance; catches gross e2e
    regressions while the per-run sim_results_match catches
    correctness drift);
  - runs must carry a non-empty "label" and at least one microbench
    row (catches truncated/hand-edited files).

soak files (DESIGN.md §13):
  - every strategy of every run must have "survived" true and
    "oracle_violations" == 0 (the machine outlived its fault schedule
    with zero temporal-safety violations);
  - every run's "oracle_e2e.sim_cycles_match" must be true (attaching
    the oracle did not perturb simulated time).

Exits non-zero with a diagnostic naming the offending run label.
Usage: check_trajectory.py FILE [FILE ...]
"""

import json
import sys


def fail(msg):
    print(f"check_trajectory: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trajectory_runs(runs):
    for i, run in enumerate(runs):
        label = run.get("label")
        if not isinstance(label, str) or not label:
            fail(f"run {i} has no label")
        rows = run.get("sweep_microbench")
        if not isinstance(rows, list) or not rows:
            fail(f'run "{label}" has no sweep_microbench rows')
        for row in rows:
            if row.get("sim_cycles_match") is not True:
                fail(
                    f'run "{label}" regime "{row.get("regime")}": '
                    "simulated cycles diverged between fast and "
                    "reference sweeps"
                )
        e2e = run.get("end_to_end", {})
        if e2e.get("sim_results_match") is not True:
            fail(
                f'run "{label}": simulated results diverged across '
                "host configurations"
            )
        # Older runs predate the intra-cell engine comparison; gate it
        # only where recorded.
        intra = run.get("intra_cell")
        if intra is not None:
            if intra.get("sim_results_match") is not True:
                fail(
                    f'run "{label}" cell "{intra.get("cell")}": '
                    "serial and lockstep engines diverged"
                )
            speedup = intra.get("intra_cell_speedup")
            if not isinstance(speedup, (int, float)) or speedup < 1.0:
                fail(
                    f'run "{label}" cell "{intra.get("cell")}": '
                    f"lockstep engine slower than serial "
                    f"(speedup {speedup})"
                )
        # Older runs predate the sharded-allocator comparison; gate it
        # only where recorded.
        ashard = run.get("alloc_shard")
        if ashard is not None:
            if ashard.get("sim_results_match") is not True:
                fail(
                    f'run "{label}" alloc_shard: serial and lockstep '
                    "engines diverged on the sharded heap"
                )
            sends = ashard.get("remote_free_sends")
            if not isinstance(sends, int) or sends <= 0:
                fail(
                    f'run "{label}" alloc_shard: sharded cell drove '
                    f"no remote frees (remote_free_sends {sends})"
                )
            # Records that emit a noise floor promise every timed leg
            # clears it (older records predate the field).
            floor = ashard.get("min_leg_seconds")
            if isinstance(floor, (int, float)):
                for leg in (
                    "single_serial_seconds",
                    "single_lockstep_seconds",
                    "sharded_serial_seconds",
                    "sharded_lockstep_seconds",
                ):
                    secs = ashard.get(leg)
                    if not isinstance(secs, (int, float)) or \
                            secs < floor:
                        fail(
                            f'run "{label}" alloc_shard leg "{leg}": '
                            f"{secs}s is below the {floor}s noise "
                            "floor (noise-sized A/B measurement)"
                        )
        # Older runs predate the kernels A/B; gate it only where
        # recorded.
        kernels = run.get("kernels")
        if kernels is not None:
            if kernels.get("sim_results_match") is not True:
                fail(
                    f'run "{label}" kernels: simulated results '
                    "diverged between scalar and dispatched legs"
                )
            legs = kernels.get("legs")
            if not isinstance(legs, list) or not legs:
                fail(f'run "{label}" kernels: no legs recorded')
            for leg in legs:
                regime = leg.get("regime")
                if leg.get("sim_cycles_match") is not True:
                    fail(
                        f'run "{label}" kernels regime "{regime}": '
                        "simulated cycles diverged between legs"
                    )
            speedup = kernels.get("host_speedup")
            if not isinstance(speedup, (int, float)) or speedup < 1.0:
                fail(
                    f'run "{label}" kernels: dispatched kernels '
                    f"slower than scalar overall "
                    f"(host_speedup {speedup})"
                )
            # With the arbiter in place, cross-cell scaling must not
            # decay — but only a multi-slot cpuset can scale at all.
            threads = run.get("host_threads")
            par = run.get("end_to_end", {}).get("parallel_speedup")
            if isinstance(threads, int) and threads >= 2:
                if not isinstance(par, (int, float)) or par < 1.15:
                    fail(
                        f'run "{label}": parallel_speedup {par} below '
                        "the 1.15 floor despite "
                        f"{threads} host threads"
                    )

    # End-to-end host-time regression: the newest full-mode run vs the
    # best earlier full-mode run, with 1.25x host-noise headroom.
    full = [
        (r.get("label"), r.get("end_to_end", {}).get(
            "fast_parallel_seconds"))
        for r in runs
        if r.get("quick") is not True
    ]
    full = [(l, s) for l, s in full if isinstance(s, (int, float))]
    if len(full) >= 2:
        best_prior = min(s for _, s in full[:-1])
        label, latest = full[-1]
        if latest > 1.25 * best_prior:
            fail(
                f'run "{label}": fast-parallel e2e regressed to '
                f"{latest:.3f}s (best prior full run "
                f"{best_prior:.3f}s, 1.25x budget)"
            )
    return "determinism contract held in all"


def check_soak_runs(runs):
    for i, run in enumerate(runs):
        label = run.get("label")
        if not isinstance(label, str) or not label:
            fail(f"soak run {i} has no label")
        strategies = run.get("strategies")
        if not isinstance(strategies, list) or not strategies:
            fail(f'soak run "{label}" has no strategies')
        for s in strategies:
            name = s.get("strategy", "?")
            if s.get("survived") is not True:
                fail(
                    f'soak run "{label}" strategy "{name}": did not '
                    "survive its fault schedule"
                )
            if s.get("oracle_violations") != 0:
                fail(
                    f'soak run "{label}" strategy "{name}": '
                    f'{s.get("oracle_violations")} temporal-safety '
                    "oracle violation(s)"
                )
        e2e = run.get("oracle_e2e", {})
        if e2e.get("sim_cycles_match") is not True:
            fail(
                f'soak run "{label}": attaching the oracle perturbed '
                "simulated time"
            )
    return "all strategies survived, zero oracle violations"


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f'{path}: no "runs" array (not an accumulating '
             "bench file?)")

    kind = doc.get("bench", "bench_all")
    if kind == "soak":
        verdict = check_soak_runs(runs)
    else:
        verdict = check_trajectory_runs(runs)
    print(f"check_trajectory: OK: {path}: {len(runs)} run(s), "
          f"{verdict}")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
