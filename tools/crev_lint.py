#!/usr/bin/env python3
"""crev_lint: repo-invariant static lint for the Cornucopia Reloaded
simulator (DESIGN.md section 11.2).

The simulator's claims rest on invariants no general-purpose linter
knows about. This tool enforces them as named rules over the source
tree, using the CMake compilation database (compile_commands.json) to
confirm every linted translation unit is actually part of the build:

  host-nondeterminism   nothing in src/ may consult host entropy or
                        wall clocks: every simulated observable must be
                        a pure function of (config, seed).
  unordered-iteration   no range-for over std::unordered_* containers
                        in src/: iteration order is host-dependent, so
                        anything derived from it (metrics, reports,
                        traces) would break bit-for-bit determinism.
  raw-threading         host threading primitives (std::mutex,
                        std::thread, std::atomic, ...) are confined to
                        src/sim (the cooperative scheduler's
                        implementation) and the host-parallel bench
                        runner; simulated code must use SimMutex /
                        SimEvent so every blocking point is a
                        deterministic scheduling point.
  pte-publish           in-place writes of PTE revocation fields (clg,
                        cap_load_trap, cap_dirty, cap_ever) are
                        confined to the vm layer and the
                        SweepEngine::publishPage choke point, which
                        pairs them with PTE-pointer-cache invalidation
                        and TLB shootdown (the PR 3 stale-PTE-cache bug
                        class); a file using them must also invalidate.
  uncharged-access      uncharged accessors (peekTag, peekCap,
                        peekByte, peekLineTagNibble, probeQuiet) are
                        reserved for off-clock observers (auditor, race
                        checker, tracer, safety oracle) and the vm
                        layer that owns the cost model; simulation
                        paths must use the charging APIs.
  shared-mutation       mutations of cross-thread revocation state
                        (the MMU generation bit, the PTE map and its
                        pointer-cache epoch, the unmap->reap hand-off
                        queue, the shadow-summary words) in
                        src/revoker and src/vm must sit in a function
                        that shows its synchronisation discipline: a
                        SimMutex assertHeld/heldBy, a stop-the-world
                        window, or a race-checker domain registration
                        (an on* hook call). Silent mutations are how
                        the simulated-race detector gets blindsided.

Exemptions are explicit and greppable: a line (or its predecessor)
carrying `lint: <rule>-ok` is skipped for that rule, so every waiver
documents itself at the site.

Usage:
  crev_lint.py [--compile-commands build/compile_commands.json]
  crev_lint.py --self-test    # each fixture must fail its rule

Exit status: 0 clean, 1 violations (or a self-test fixture that did
not fail as required), 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint_fixtures")


class Violation:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.text)


def exempt(lines, idx, rule):
    """True when line idx (0-based) carries or follows a waiver."""
    tag = "lint: %s-ok" % rule
    if tag in lines[idx]:
        return True
    return idx > 0 and tag in lines[idx - 1]


# ---------------------------------------------------------------------
# Rules. Each takes (path, lines) and yields Violations.
# ---------------------------------------------------------------------

NONDET_PATTERNS = [
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono wall clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\b(localtime|gmtime)\s*\("), "calendar time"),
    (re.compile(r"\bgetpid\s*\(\s*\)"), "getpid()"),
]


def rule_host_nondeterminism(path, lines):
    if not in_dir(path, "src"):
        return
    for i, line in enumerate(lines):
        for pat, what in NONDET_PATTERNS:
            if pat.search(line) and not exempt(lines, i, "nondet"):
                yield Violation(
                    "host-nondeterminism", path, i + 1,
                    "%s: simulated observables must be pure functions "
                    "of (config, seed)" % what)


UNORDERED_DECL = re.compile(
    r"std::unordered_(?:set|map|multiset|multimap)\s*<[^;{]*?[&\s]"
    r"(\w+)\s*(?:[;={(]|$)")
RANGE_FOR = re.compile(r"\bfor\s*\([^;]*?:\s*([^)]+)\)")


def unordered_names(all_lines_by_path):
    """Identifiers (members, locals, accessors) declared with an
    unordered container type anywhere in the linted tree."""
    names = set()
    for lines in all_lines_by_path.values():
        for line in lines:
            for m in UNORDERED_DECL.finditer(line):
                names.add(m.group(1))
    return names


def rule_unordered_iteration(path, lines, names):
    if not in_dir(path, "src"):
        return
    for i, line in enumerate(lines):
        m = RANGE_FOR.search(line)
        if m is None:
            continue
        expr = m.group(1).strip()
        # The iterated identifier: last name in the expression,
        # possibly an accessor call ("bitmap.painted()", "painted_").
        ident = re.search(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
        if ident is None:
            continue
        if ident.group(1) in names and not exempt(lines, i, "unordered"):
            yield Violation(
                "unordered-iteration", path, i + 1,
                "range-for over unordered container '%s': iteration "
                "order is host-dependent; sort into an ordered "
                "container first" % ident.group(1))


THREADING_PATTERNS = [
    (re.compile(r"std::(mutex|recursive_mutex|shared_mutex)\b"),
     "std::mutex"),
    (re.compile(r"std::(thread|jthread)\b"), "std::thread"),
    (re.compile(r"std::condition_variable\b"),
     "std::condition_variable"),
    (re.compile(r"std::atomic\b"), "std::atomic"),
    (re.compile(r"\bpthread_\w+"), "pthreads"),
]


def rule_raw_threading(path, lines):
    if not (in_dir(path, "src") or in_dir(path, "bench")):
        return
    if in_dir(path, os.path.join("src", "sim")):
        return  # the scheduler's own implementation
    if os.path.basename(path).startswith("bench_runner"):
        return  # the host-parallel bench runner
    for i, line in enumerate(lines):
        for pat, what in THREADING_PATTERNS:
            if pat.search(line) and not exempt(lines, i, "threading"):
                yield Violation(
                    "raw-threading", path, i + 1,
                    "%s outside src/sim and the bench runner: use "
                    "SimMutex/SimEvent so blocking is a deterministic "
                    "scheduling point" % what)


PTE_WRITE = re.compile(
    r"(?:\.|->)\s*(clg|cap_load_trap|cap_dirty|cap_ever)\s*"
    r"(?:=[^=]|\|=|&=|\^=)")
PTE_INVALIDATE = re.compile(
    r"\b(shootdownPage|invalidatePteCache|flushTlbs)\s*\(")


def rule_pte_publish(path, lines):
    if not in_dir(path, "src") or in_dir(path, os.path.join("src", "vm")):
        return
    choke = path.endswith(os.path.join("revoker", "sweep.cc"))
    file_invalidates = any(PTE_INVALIDATE.search(l) for l in lines)
    for i, line in enumerate(lines):
        m = PTE_WRITE.search(line)
        if m is None or exempt(lines, i, "pte-publish"):
            continue
        if not choke:
            yield Violation(
                "pte-publish", path, i + 1,
                "in-place write of Pte::%s outside the vm layer and "
                "SweepEngine::publishPage: route it through "
                "publishPage so cache invalidation and shootdown are "
                "paired with the mutation" % m.group(1))
        elif not file_invalidates:
            yield Violation(
                "pte-publish", path, i + 1,
                "Pte::%s written in a file that never invalidates "
                "PTE-pointer caches (shootdownPage/invalidatePteCache "
                "missing): the PR 3 stale-cache bug class" % m.group(1))


UNCHARGED_CALL = re.compile(
    r"(?:\.|->)\s*(peekTag|peekCap|peekByte|peekLineTagNibble|"
    r"probeQuiet)\s*\(")
UNCHARGED_ALLOWED_DIRS = [
    os.path.join("src", "vm"),
    os.path.join("src", "check"),
    os.path.join("src", "trace"),
]
UNCHARGED_ALLOWED_FILES = ["auditor.cc", "auditor.h"]


def rule_uncharged_access(path, lines):
    if not in_dir(path, "src"):
        return
    if any(in_dir(path, d) for d in UNCHARGED_ALLOWED_DIRS):
        return
    if os.path.basename(path) in UNCHARGED_ALLOWED_FILES:
        return
    for i, line in enumerate(lines):
        m = UNCHARGED_CALL.search(line)
        if m is not None and not exempt(lines, i, "uncharged"):
            yield Violation(
                "uncharged-access", path, i + 1,
                "uncharged accessor %s() on a simulation path: either "
                "use the charging API or annotate the site with where "
                "the cycles are charged" % m.group(1))


def shared_mutation_re(member):
    """Mutation of @p member: assignment / compound assignment /
    increment (optionally through an index chain, so summary words
    like blocks_[b][w] ^= ... count) or a container-mutating call."""
    m = re.escape(member)
    mutators = (r"push_back|pop_back|emplace_back|emplace|insert|"
                r"erase|clear|resize|assign|swap")
    return re.compile(
        r"\b(?:this\s*->\s*)?" + m + r"(?:\[[^]]*\])*\s*"
        r"(?:(?:[+\-*/%|&^]|<<|>>)?=(?!=)|\+\+|--)"
        r"|(?:\+\+|--)\s*(?:this\s*->\s*)?" + m + r"\b"
        r"|\b(?:this\s*->\s*)?" + m + r"\s*\.\s*(?:" + mutators +
        r")\s*\(")


# Cross-thread revocation state with a declared race-checker domain
# (DESIGN.md section 11): member name, layer it lives in, and what it
# is. Mutating any of these in a function with no synchronisation
# evidence means the simulated-race detector cannot see the access.
SHARED_STATE = [
    (shared_mutation_re("gen_"), "vm",
     "the MMU's load-barrier generation bit (domain: gen-flip)"),
    (shared_mutation_re("pages_"), "vm",
     "the page-table map (domains: pte-publish/pte-teardown)"),
    (shared_mutation_re("pt_epoch_"), "vm",
     "the PTE-pointer-cache epoch (domain: pte-teardown)"),
    (shared_mutation_re("newly_quarantined_"), "vm",
     "the unmap->reap hand-off queue (domain: quarantine)"),
    (shared_mutation_re("blocks_"), "revoker",
     "the shadow-summary level-0 words (domain: shadow)"),
    (shared_mutation_re("l1_"), "revoker",
     "the shadow-summary level-1 bitmap (domain: shadow)"),
    (shared_mutation_re("block_counts_"), "revoker",
     "the shadow-summary block counts (domain: shadow)"),
    (shared_mutation_re("count_"), "revoker",
     "the shadow-summary population count (domain: shadow)"),
    (shared_mutation_re("inbox_head"), "alloc",
     "the remote-dealloc inbox chain head (domain: remote-queue)"),
    (shared_mutation_re("inbox_head_cap"), "alloc",
     "the remote-dealloc inbox head capability (domain: "
     "remote-queue)"),
    (shared_mutation_re("inbox_count"), "alloc",
     "the remote-dealloc inbox length (domain: remote-queue)"),
]

# ShadowSummary owns its words outright: every caller reaches them
# through Bitmap's paint/clear choke points (which register
# onShadowWrite/onShadowRmw*) or the auditor's off-clock repair path,
# so the owning translation unit is exempt rather than waived
# line-by-line.
SHARED_STATE_CHOKE_FILES = ("shadow_summary.cc",)

# Synchronisation evidence inside the enclosing function: explicit
# lock discipline, a stop-the-world window, or a race-checker domain
# registration (any on<Domain>() hook call).
SHARED_COVERAGE = re.compile(
    r"\bassertHeld\s*\(|\bheldBy\s*\(|\bstwOwnedBy\s*\(|"
    r"\bstopTheWorld\s*\(|(?:\.|->)\s*on[A-Z]\w*\s*\(")

# An out-of-line definition ("AddressSpace::unmap(...)" at column
# zero, repo style) starts a new function scope; mutations before the
# first such line are checked against the whole file.
FUNC_START = re.compile(r"^[A-Za-z_~][\w:<>~]*::~?\w+\s*\(")


def rule_shared_mutation(path, lines):
    if not path.endswith((".cc", ".cpp")):
        return
    is_fixture = path.startswith(FIXTURE_DIR + os.sep)
    in_rev = is_fixture or in_dir(path, os.path.join("src", "revoker"))
    in_vm = is_fixture or in_dir(path, os.path.join("src", "vm"))
    in_alloc = is_fixture or in_dir(path, os.path.join("src", "alloc"))
    if not (in_rev or in_vm or in_alloc):
        return
    if os.path.basename(path) in SHARED_STATE_CHOKE_FILES:
        return
    func_starts = [i for i, l in enumerate(lines)
                   if FUNC_START.match(l)]
    for i, line in enumerate(lines):
        for pat, layer, what in SHARED_STATE:
            if layer == "vm" and not in_vm:
                continue
            if layer == "revoker" and not in_rev:
                continue
            if layer == "alloc" and not in_alloc:
                continue
            if pat.search(line) is None:
                continue
            if exempt(lines, i, "shared-mutation"):
                continue
            begin, end = 0, len(lines)
            for j, fs in enumerate(func_starts):
                if fs > i:
                    break
                begin = fs
                end = (func_starts[j + 1]
                       if j + 1 < len(func_starts) else len(lines))
            if any(SHARED_COVERAGE.search(l)
                   for l in lines[begin:end]):
                continue
            yield Violation(
                "shared-mutation", path, i + 1,
                "mutation of %s in a function with no "
                "synchronisation evidence (assertHeld/heldBy, "
                "stopTheWorld/stwOwnedBy, or an on* race-checker "
                "hook): register the domain or annotate why the "
                "access is single-writer" % what)
            break


RULES = ("host-nondeterminism", "unordered-iteration", "raw-threading",
         "pte-publish", "uncharged-access", "shared-mutation")


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def in_dir(path, rel):
    # Self-test fixtures stand in for ordinary src/ files.
    if path.startswith(FIXTURE_DIR + os.sep):
        return rel == "src"
    return os.path.relpath(path, REPO_ROOT).startswith(rel + os.sep)


def strip_comments_keep_annotations(text):
    """Blank out string literals so tokens inside them don't trip
    rules; comments are kept (annotations live there)."""
    out = []
    for line in text.splitlines():
        # Cheap and adequate for this codebase: no multi-line strings.
        out.append(re.sub(r'"(?:[^"\\]|\\.)*"', '""', line))
    return out


def lint_files(paths):
    lines_by_path = {}
    for p in paths:
        with open(p, "r", encoding="utf-8") as f:
            lines_by_path[p] = strip_comments_keep_annotations(f.read())
    names = unordered_names(lines_by_path)
    violations = []
    for p, lines in sorted(lines_by_path.items()):
        violations += list(rule_host_nondeterminism(p, lines))
        violations += list(rule_unordered_iteration(p, lines, names))
        violations += list(rule_raw_threading(p, lines))
        violations += list(rule_pte_publish(p, lines))
        violations += list(rule_uncharged_access(p, lines))
        violations += list(rule_shared_mutation(p, lines))
    return violations


def tree_files():
    paths = []
    for top in ("src", "bench"):
        for root, _dirs, files in os.walk(os.path.join(REPO_ROOT, top)):
            for f in sorted(files):
                if f.endswith((".h", ".cc", ".cpp")):
                    paths.append(os.path.join(root, f))
    return paths


def check_compile_commands(db_path, paths):
    """Every src/ translation unit we lint must be in the build; a
    source the build ignores would make a green lint meaningless."""
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    compiled = {os.path.realpath(e["file"]) for e in db}
    missing = [
        p for p in paths
        if p.endswith(".cc") and in_dir(p, "src")
        and os.path.realpath(p) not in compiled
    ]
    return missing


def run_self_test():
    """Each fixture must trip exactly its own rule; the waiver fixture
    must be clean."""
    ok = True
    for rule in RULES:
        fixture = os.path.join(FIXTURE_DIR, rule + ".cc")
        if not os.path.exists(fixture):
            print("self-test: missing fixture for rule %s" % rule)
            ok = False
            continue
        got = {v.rule for v in lint_files([fixture])}
        if rule not in got:
            print("self-test: fixture %s did NOT fail rule %s (got %s)"
                  % (os.path.basename(fixture), rule, sorted(got) or "clean"))
            ok = False
        else:
            print("self-test: %-24s fails as required" % rule)
    waiver = os.path.join(FIXTURE_DIR, "waivers.cc")
    if os.path.exists(waiver):
        vs = lint_files([waiver])
        if vs:
            print("self-test: annotated waiver fixture raised: ")
            for v in vs:
                print("  %s" % v)
            ok = False
        else:
            print("self-test: %-24s clean as required" % "waivers")
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compile-commands",
                    default=os.path.join(REPO_ROOT, "build",
                                         "compile_commands.json"),
                    help="compilation database (build coverage check; "
                         "skipped with a note if absent)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule's fixture fails")
    args = ap.parse_args(argv)

    if args.self_test:
        return 0 if run_self_test() else 1

    paths = tree_files()
    if not paths:
        print("crev_lint: nothing to lint under %s" % REPO_ROOT)
        return 2

    if os.path.exists(args.compile_commands):
        missing = check_compile_commands(args.compile_commands, paths)
        for p in missing:
            print("crev_lint: warning: %s not in compile_commands.json"
                  % os.path.relpath(p, REPO_ROOT))
    else:
        print("crev_lint: note: %s absent; skipping build-coverage "
              "check" % os.path.relpath(args.compile_commands, REPO_ROOT))

    violations = lint_files(paths)
    for v in violations:
        print(v)
    if violations:
        print("crev_lint: %d violation(s) across %d file(s)"
              % (len(violations), len({v.path for v in violations})))
        return 1
    print("crev_lint: %d files clean (%s)" % (len(paths),
                                              ", ".join(RULES)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
