#!/usr/bin/env python3
"""crev_lint: repo-invariant static lint for the Cornucopia Reloaded
simulator (DESIGN.md section 11.2).

The simulator's claims rest on invariants no general-purpose linter
knows about. This tool enforces them as named rules over the source
tree, using the CMake compilation database (compile_commands.json) to
confirm every linted translation unit is actually part of the build:

  host-nondeterminism   nothing in src/ may consult host entropy or
                        wall clocks: every simulated observable must be
                        a pure function of (config, seed).
  unordered-iteration   no range-for over std::unordered_* containers
                        in src/: iteration order is host-dependent, so
                        anything derived from it (metrics, reports,
                        traces) would break bit-for-bit determinism.
  raw-threading         host threading primitives (std::mutex,
                        std::thread, std::atomic, ...) are confined to
                        src/sim (the cooperative scheduler's
                        implementation) and the host-parallel bench
                        runner; simulated code must use SimMutex /
                        SimEvent so every blocking point is a
                        deterministic scheduling point.
  pte-publish           in-place writes of PTE revocation fields (clg,
                        cap_load_trap, cap_dirty, cap_ever) are
                        confined to the vm layer and the
                        SweepEngine::publishPage choke point, which
                        pairs them with PTE-pointer-cache invalidation
                        and TLB shootdown (the PR 3 stale-PTE-cache bug
                        class); a file using them must also invalidate.

Two former rules — uncharged-access and shared-mutation — are retired:
their line-level heuristics (a path allowlist; evidence-in-the-same-
function with a choke-file exemption) are superseded by the
interprocedural uncharged-reach and lock-evidence passes of
tools/crev_analyze (DESIGN.md section 16), which prove the same
invariants over call paths instead of lines.

Exemptions are explicit and greppable: a line (or its predecessor)
carrying `lint: <rule>-ok` is skipped for that rule, so every waiver
documents itself at the site. Waivers are themselves checked: a tag
whose line no longer violates its rule (or that names an unknown or
retired rule) is reported as stale — a warning by default, an error
under --strict-waivers — so dead waivers cannot linger as false
documentation.

Usage:
  crev_lint.py [--compile-commands build/compile_commands.json]
               [--strict-waivers]
  crev_lint.py --self-test    # each fixture must fail its rule

Exit status: 0 clean, 1 violations (or stale waivers under
--strict-waivers, or a self-test failure), 2 usage/environment error
(including an explicitly named compile_commands.json that does not
exist).
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint_fixtures")


class Violation:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.text)


# stale_waivers() flips this off so it can observe the violations a
# waiver would otherwise hide.
_exemptions_enabled = True


def exempt(lines, idx, rule):
    """True when line idx (0-based) carries or follows a waiver."""
    if not _exemptions_enabled:
        return False
    tag = "lint: %s-ok" % rule
    if tag in lines[idx]:
        return True
    return idx > 0 and tag in lines[idx - 1]


# ---------------------------------------------------------------------
# Rules. Each takes (path, lines) and yields Violations.
# ---------------------------------------------------------------------

NONDET_PATTERNS = [
    (re.compile(r"\brand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono wall clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()"),
    (re.compile(r"\b(localtime|gmtime)\s*\("), "calendar time"),
    (re.compile(r"\bgetpid\s*\(\s*\)"), "getpid()"),
]


def rule_host_nondeterminism(path, lines):
    if not in_dir(path, "src"):
        return
    for i, line in enumerate(lines):
        for pat, what in NONDET_PATTERNS:
            if pat.search(line) and not exempt(lines, i, "nondet"):
                yield Violation(
                    "host-nondeterminism", path, i + 1,
                    "%s: simulated observables must be pure functions "
                    "of (config, seed)" % what)


UNORDERED_DECL = re.compile(
    r"std::unordered_(?:set|map|multiset|multimap)\s*<[^;{]*?[&\s]"
    r"(\w+)\s*(?:[;={(]|$)")
RANGE_FOR = re.compile(r"\bfor\s*\([^;]*?:\s*([^)]+)\)")


def unordered_names(all_lines_by_path):
    """Identifiers (members, locals, accessors) declared with an
    unordered container type anywhere in the linted tree."""
    names = set()
    for lines in all_lines_by_path.values():
        for line in lines:
            for m in UNORDERED_DECL.finditer(line):
                names.add(m.group(1))
    return names


def rule_unordered_iteration(path, lines, names):
    if not in_dir(path, "src"):
        return
    for i, line in enumerate(lines):
        m = RANGE_FOR.search(line)
        if m is None:
            continue
        expr = m.group(1).strip()
        # The iterated identifier: last name in the expression,
        # possibly an accessor call ("bitmap.painted()", "painted_").
        ident = re.search(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
        if ident is None:
            continue
        if ident.group(1) in names and not exempt(lines, i, "unordered"):
            yield Violation(
                "unordered-iteration", path, i + 1,
                "range-for over unordered container '%s': iteration "
                "order is host-dependent; sort into an ordered "
                "container first" % ident.group(1))


THREADING_PATTERNS = [
    (re.compile(r"std::(mutex|recursive_mutex|shared_mutex)\b"),
     "std::mutex"),
    (re.compile(r"std::(thread|jthread)\b"), "std::thread"),
    (re.compile(r"std::condition_variable\b"),
     "std::condition_variable"),
    (re.compile(r"std::atomic\b"), "std::atomic"),
    (re.compile(r"\bpthread_\w+"), "pthreads"),
]


def rule_raw_threading(path, lines):
    if not (in_dir(path, "src") or in_dir(path, "bench")):
        return
    if in_dir(path, os.path.join("src", "sim")):
        return  # the scheduler's own implementation
    if os.path.basename(path).startswith("bench_runner"):
        return  # the host-parallel bench runner
    for i, line in enumerate(lines):
        for pat, what in THREADING_PATTERNS:
            if pat.search(line) and not exempt(lines, i, "threading"):
                yield Violation(
                    "raw-threading", path, i + 1,
                    "%s outside src/sim and the bench runner: use "
                    "SimMutex/SimEvent so blocking is a deterministic "
                    "scheduling point" % what)


PTE_WRITE = re.compile(
    r"(?:\.|->)\s*(clg|cap_load_trap|cap_dirty|cap_ever)\s*"
    r"(?:=[^=]|\|=|&=|\^=)")
PTE_INVALIDATE = re.compile(
    r"\b(shootdownPage|invalidatePteCache|flushTlbs)\s*\(")


def rule_pte_publish(path, lines):
    if not in_dir(path, "src") or in_dir(path, os.path.join("src", "vm")):
        return
    choke = path.endswith(os.path.join("revoker", "sweep.cc"))
    file_invalidates = any(PTE_INVALIDATE.search(l) for l in lines)
    for i, line in enumerate(lines):
        m = PTE_WRITE.search(line)
        if m is None or exempt(lines, i, "pte-publish"):
            continue
        if not choke:
            yield Violation(
                "pte-publish", path, i + 1,
                "in-place write of Pte::%s outside the vm layer and "
                "SweepEngine::publishPage: route it through "
                "publishPage so cache invalidation and shootdown are "
                "paired with the mutation" % m.group(1))
        elif not file_invalidates:
            yield Violation(
                "pte-publish", path, i + 1,
                "Pte::%s written in a file that never invalidates "
                "PTE-pointer caches (shootdownPage/invalidatePteCache "
                "missing): the PR 3 stale-cache bug class" % m.group(1))


RULES = ("host-nondeterminism", "unordered-iteration", "raw-threading",
         "pte-publish")

# Waiver key -> the rule it suppresses. The retired shared-mutation and
# uncharged keys are deliberately absent: a surviving tag for them is
# reported as stale so nothing keeps "documenting" a rule that no
# longer runs (the invariants moved to tools/crev_analyze).
WAIVER_TAG = re.compile(r"lint:\s*([a-z][a-z0-9-]*)-ok")
WAIVER_RULES = {
    "nondet": "host-nondeterminism",
    "unordered": "unordered-iteration",
    "threading": "raw-threading",
    "pte-publish": "pte-publish",
}


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def in_dir(path, rel):
    # Self-test fixtures stand in for ordinary src/ files.
    if path.startswith(FIXTURE_DIR + os.sep):
        return rel == "src"
    return os.path.relpath(path, REPO_ROOT).startswith(rel + os.sep)


def strip_comments_keep_annotations(text):
    """Blank out string literals so tokens inside them don't trip
    rules; comments are kept (annotations live there)."""
    out = []
    for line in text.splitlines():
        # Cheap and adequate for this codebase: no multi-line strings.
        out.append(re.sub(r'"(?:[^"\\]|\\.)*"', '""', line))
    return out


def read_files(paths):
    lines_by_path = {}
    for p in paths:
        with open(p, "r", encoding="utf-8") as f:
            lines_by_path[p] = strip_comments_keep_annotations(f.read())
    return lines_by_path


def lint_lines(lines_by_path):
    names = unordered_names(lines_by_path)
    violations = []
    for p, lines in sorted(lines_by_path.items()):
        violations += list(rule_host_nondeterminism(p, lines))
        violations += list(rule_unordered_iteration(p, lines, names))
        violations += list(rule_raw_threading(p, lines))
        violations += list(rule_pte_publish(p, lines))
    return violations


def lint_files(paths):
    return lint_lines(read_files(paths))


def stale_waivers(lines_by_path):
    """Waiver tags that no longer earn their keep. With exemptions
    disabled, a live `lint: <key>-ok` on line i must see its rule
    violate on line i or i+1 (the two lines exempt() covers); a tag
    with no such violation, or naming an unknown/retired rule, is
    stale."""
    global _exemptions_enabled
    _exemptions_enabled = False
    try:
        raw = lint_lines(lines_by_path)
    finally:
        _exemptions_enabled = True
    hit = {(v.path, v.rule, v.line) for v in raw}
    stale = []
    for p, lines in sorted(lines_by_path.items()):
        for i, line in enumerate(lines):
            for m in WAIVER_TAG.finditer(line):
                key = m.group(1)
                rule = WAIVER_RULES.get(key)
                if rule is None:
                    stale.append(Violation(
                        "stale-waiver", p, i + 1,
                        "waiver 'lint: %s-ok' names an unknown or "
                        "retired rule; delete it" % key))
                elif ((p, rule, i + 1) not in hit and
                      (p, rule, i + 2) not in hit):
                    stale.append(Violation(
                        "stale-waiver", p, i + 1,
                        "waiver 'lint: %s-ok' no longer suppresses a "
                        "%s violation on this or the next line; "
                        "delete it" % (key, rule)))
    return stale


def tree_files():
    paths = []
    for top in ("src", "bench"):
        for root, _dirs, files in os.walk(os.path.join(REPO_ROOT, top)):
            for f in sorted(files):
                if f.endswith((".h", ".cc", ".cpp")):
                    paths.append(os.path.join(root, f))
    return paths


def check_compile_commands(db_path, paths):
    """Every src/ translation unit we lint must be in the build; a
    source the build ignores would make a green lint meaningless."""
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    compiled = {os.path.realpath(e["file"]) for e in db}
    missing = [
        p for p in paths
        if p.endswith(".cc") and in_dir(p, "src")
        and os.path.realpath(p) not in compiled
    ]
    return missing


def run_self_test():
    """Each fixture must trip exactly its own rule; the waiver fixture
    must be clean; the stale-waiver fixture must report exactly its
    dead tags; a missing explicit compilation database must exit 2."""
    ok = True
    for rule in RULES:
        fixture = os.path.join(FIXTURE_DIR, rule + ".cc")
        if not os.path.exists(fixture):
            print("self-test: missing fixture for rule %s" % rule)
            ok = False
            continue
        got = {v.rule for v in lint_files([fixture])}
        if rule not in got:
            print("self-test: fixture %s did NOT fail rule %s (got %s)"
                  % (os.path.basename(fixture), rule, sorted(got) or "clean"))
            ok = False
        else:
            print("self-test: %-24s fails as required" % rule)
    waiver = os.path.join(FIXTURE_DIR, "waivers.cc")
    if os.path.exists(waiver):
        vs = lint_files([waiver])
        if vs:
            print("self-test: annotated waiver fixture raised: ")
            for v in vs:
                print("  %s" % v)
            ok = False
        else:
            print("self-test: %-24s clean as required" % "waivers")
    sw = os.path.join(FIXTURE_DIR, "stale-waiver.cc")
    if not os.path.exists(sw):
        print("self-test: missing fixture stale-waiver.cc")
        ok = False
    else:
        # The fixture holds one live waiver (must NOT be flagged), one
        # dead waiver, and one tag for a retired rule.
        stales = stale_waivers(read_files([sw]))
        kinds = sorted("unknown" if "unknown" in v.text else "dead"
                       for v in stales)
        if kinds != ["dead", "unknown"]:
            print("self-test: stale-waiver fixture reported %s, "
                  "expected exactly one dead and one unknown tag"
                  % (kinds or "nothing"))
            for v in stales:
                print("  %s" % v)
            ok = False
        else:
            print("self-test: %-24s detected as required"
                  % "stale-waiver")
    # An explicitly named but absent compilation database is a usage
    # error, not a skippable note.
    rc = main(["--compile-commands",
               os.path.join(FIXTURE_DIR, "no_such_db.json")])
    if rc != 2:
        print("self-test: missing explicit compile_commands.json "
              "returned %d, expected 2" % rc)
        ok = False
    else:
        print("self-test: %-24s exits 2 as required" % "missing-db")
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compile-commands", default=None,
                    help="compilation database (build coverage check; "
                         "default <repo>/build/compile_commands.json, "
                         "skipped with a note if the default is "
                         "absent; an explicit path must exist)")
    ap.add_argument("--strict-waivers", action="store_true",
                    help="treat stale waivers as errors (exit 1)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule's fixture fails")
    args = ap.parse_args(argv)

    if args.self_test:
        return 0 if run_self_test() else 1

    explicit_db = args.compile_commands is not None
    db_path = args.compile_commands or os.path.join(
        REPO_ROOT, "build", "compile_commands.json")
    if explicit_db and not os.path.exists(db_path):
        print("crev_lint: error: compilation database %s does not "
              "exist.\nConfigure the build with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo's CMake "
              "presets already do) and point --compile-commands at "
              "<build>/compile_commands.json." % db_path,
              file=sys.stderr)
        return 2

    paths = tree_files()
    if not paths:
        print("crev_lint: nothing to lint under %s" % REPO_ROOT)
        return 2

    if os.path.exists(db_path):
        missing = check_compile_commands(db_path, paths)
        for p in missing:
            print("crev_lint: warning: %s not in compile_commands.json"
                  % os.path.relpath(p, REPO_ROOT))
    else:
        print("crev_lint: note: %s absent; skipping build-coverage "
              "check" % os.path.relpath(db_path, REPO_ROOT))

    lines_by_path = read_files(paths)
    violations = lint_lines(lines_by_path)
    stale = stale_waivers(lines_by_path)
    for v in violations:
        print(v)
    for s in stale:
        print("%s%s" % ("" if args.strict_waivers else "warning: ", s))
    if violations or (stale and args.strict_waivers):
        print("crev_lint: %d violation(s), %d stale waiver(s)"
              % (len(violations), len(stale)))
        return 1
    print("crev_lint: %d files clean (%s)%s"
          % (len(paths), ", ".join(RULES),
             "; %d stale waiver warning(s)" % len(stale)
             if stale else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
