// Lint fixture: must fail the shared-mutation rule.
// Not compiled — input for `crev_lint.py --self-test` only.

namespace crev {

struct BadMmu
{
    unsigned gen_ = 0;

    void
    flipWithoutRegistration()
    {
        // Flipping the load-barrier generation with no onGenFlip
        // registration and no lock or stop-the-world evidence in the
        // function: the simulated-race detector never learns the
        // flip happened, so a racing capability load on another core
        // is unreportable. Exactly the silent shared-state mutation
        // the rule exists to catch.
        gen_ ^= 1u;
    }
};

struct BadRemoteQueue
{
    unsigned long inbox_head = 0;
    unsigned long inbox_count = 0;

    void
    spliceWithoutWindow(unsigned long chain, unsigned long n)
    {
        // Splicing a remote-dealloc batch onto the owner's inbox with
        // no onRemoteQueueAccess registration and no NoYield/lock
        // evidence in the function: senders mutate the inbox without
        // the owner's shard lock, so the modeled MPSC exchange must be
        // atomic — an unregistered splice is invisible to the checker.
        inbox_head = chain;
        inbox_count += n;
    }
};

} // namespace crev
