// Lint fixture: must fail the shared-mutation rule.
// Not compiled — input for `crev_lint.py --self-test` only.

namespace crev {

struct BadMmu
{
    unsigned gen_ = 0;

    void
    flipWithoutRegistration()
    {
        // Flipping the load-barrier generation with no onGenFlip
        // registration and no lock or stop-the-world evidence in the
        // function: the simulated-race detector never learns the
        // flip happened, so a racing capability load on another core
        // is unreportable. Exactly the silent shared-state mutation
        // the rule exists to catch.
        gen_ ^= 1u;
    }
};

} // namespace crev
