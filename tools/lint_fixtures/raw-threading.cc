// Lint fixture: must fail the raw-threading rule.
// Not compiled — input for `crev_lint.py --self-test` only.
#include <mutex>
#include <thread>

namespace crev {

struct HostLockedQuarantine
{
    // Host-side locking in simulated code: the blocking point is
    // invisible to the scheduler, so it is neither deterministic nor
    // accounted in virtual time. Must use sim::SimMutex.
    std::mutex lock_;
    std::thread worker_;

    void
    push()
    {
        std::lock_guard<std::mutex> g(lock_);
    }
};

} // namespace crev
