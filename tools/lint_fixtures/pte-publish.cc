// Lint fixture: must fail the pte-publish rule.
// Not compiled — input for `crev_lint.py --self-test` only.

namespace crev {

struct Pte
{
    unsigned clg = 0;
    bool cap_load_trap = false;
    bool cap_dirty = false;
};

void
publishWithoutInvalidation(Pte &p, unsigned gen)
{
    // The PR 3 bug class: an in-place CLG/trap rewrite outside
    // SweepEngine::publishPage, with no PTE-pointer-cache
    // invalidation or TLB shootdown paired with it. A core holding a
    // cached translation would keep trapping (or worse, not trap) on
    // the stale generation.
    p.clg = gen;
    p.cap_load_trap = false;
    p.cap_dirty = false;
}

} // namespace crev
