// Lint fixture: every violation below carries a waiver annotation and
// must therefore be CLEAN under `crev_lint.py --self-test`.
// Not compiled — input for the self-test only.
#include <mutex>

namespace crev {

struct Mmu
{
    bool peekTag(unsigned long long va);
};

struct Annotated
{
    // lint: threading-ok (fixture: host-side aggregation example)
    std::mutex host_results_lock_;

    unsigned gen_;

    bool
    peeks(Mmu &mmu, unsigned long long va)
    {
        // lint: uncharged-ok (fixture: caller charges the line read)
        return mmu.peekTag(va);
    }

    void
    flips()
    {
        // lint: shared-mutation-ok (fixture: init, single-threaded)
        gen_ ^= 1u;
    }
};

} // namespace crev
