// Lint fixture: every violation below carries a waiver annotation and
// must therefore be CLEAN under `crev_lint.py --self-test`.
// Not compiled — input for the self-test only.
#include <chrono>
#include <mutex>

namespace crev {

struct Annotated
{
    // lint: threading-ok (fixture: host-side aggregation example)
    std::mutex host_results_lock_;

    long
    stamps()
    {
        // lint: nondet-ok (fixture: host-only log banner example)
        return std::chrono::steady_clock::now()
            .time_since_epoch()
            .count();
    }
};

} // namespace crev
