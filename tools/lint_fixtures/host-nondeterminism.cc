// Lint fixture: must fail the host-nondeterminism rule.
// Not compiled — input for `crev_lint.py --self-test` only.
#include <chrono>
#include <cstdlib>

namespace crev {

unsigned long long
seedFromHost()
{
    // Host entropy leaking into a simulated observable: the same
    // (config, seed) would produce different metrics per run.
    auto wall = std::chrono::system_clock::now().time_since_epoch();
    return static_cast<unsigned long long>(wall.count()) +
           static_cast<unsigned long long>(rand());
}

} // namespace crev
