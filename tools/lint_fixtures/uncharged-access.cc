// Lint fixture: must fail the uncharged-access rule.
// Not compiled — input for `crev_lint.py --self-test` only.

namespace crev {

struct Mmu
{
    bool peekTag(unsigned long long va);
};

bool
sweepGranuleFree(Mmu &mmu, unsigned long long va)
{
    // An uncharged tag peek on a simulation path with no annotation
    // saying where the cycles are charged: the sweep would read
    // memory for free and every derived timing would be wrong.
    return mmu.peekTag(va);
}

} // namespace crev
