// Lint fixture: stale-waiver detection (crev_lint.py --self-test).
// Exactly one waiver below is live; the self-test requires the other
// two to be reported stale (one dead, one naming a retired rule).
// Not compiled — input for the self-test only.
#include <mutex>

namespace crev {

struct Waivers
{
    // Live: the next line really does declare a host mutex.
    // lint: threading-ok (fixture: live waiver)
    std::mutex host_lock_;

    // Dead: nothing here trips raw-threading any more.
    // lint: threading-ok (fixture: violation was since removed)
    int plain_counter_ = 0;

    // Retired: shared-mutation moved to crev_analyze lock-evidence.
    // lint: shared-mutation-ok (fixture: rule no longer exists)
    unsigned gen_ = 0;
};

} // namespace crev
