// Lint fixture: must fail the unordered-iteration rule.
// Not compiled — input for `crev_lint.py --self-test` only.
#include <cstdint>
#include <unordered_set>

namespace crev {

struct PaintedExport
{
    std::unordered_set<std::uint64_t> painted_;

    std::uint64_t
    checksum() const
    {
        // Hash-order iteration feeding an exported value: the result
        // depends on the host's hash seed and allocator, not on the
        // simulation.
        std::uint64_t sum = 0;
        for (std::uint64_t g : painted_)
            sum = sum * 31 + g;
        return sum;
    }
};

} // namespace crev
