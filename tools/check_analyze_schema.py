#!/usr/bin/env python3
"""Validate a crev_analyze JSON report against its schema.

Checks the deterministic report emitted by `crev_analyze --report`
(the artifact the gating CI job uploads):

  - top level is an object with exactly the keys tool / version /
    rules / findings / waivers_used / stats;
  - "tool" is "crev_analyze" and "version" a non-empty string;
  - "rules" is the four analysis passes, in pass order;
  - every finding carries string rule/function/file/message, a
    positive integer line, a non-empty callpath of strings, a rule
    drawn from "rules", and a forward-slash relative file path;
  - findings are sorted by (rule, file, line, function, message) so
    the report is byte-deterministic;
  - "waivers_used" is a sorted list of strings;
  - "stats" holds non-negative integers for files / functions /
    edges / roots / unresolved_call_sites / findings, and
    stats.findings equals len(findings);
  - nothing host-dependent: no timestamp-like keys, no absolute
    paths.

Exits non-zero with a diagnostic on the first malformed entry.
Usage: check_analyze_schema.py REPORT.json
"""

import json
import sys

EXPECTED_RULES = ["noyield-reach", "lock-evidence", "uncharged-reach",
                  "epoch-phase"]
TOP_KEYS = {"tool", "version", "rules", "findings", "waivers_used",
            "stats"}
STAT_KEYS = {"files", "functions", "edges", "roots",
             "unresolved_call_sites", "findings"}
FORBIDDEN_KEY_WORDS = ("time", "date", "host")


def fail(msg, i=None, item=None):
    where = "" if i is None else f" (finding {i}: {json.dumps(item)[:200]})"
    print(f"check_analyze_schema: FAIL: {msg}{where}", file=sys.stderr)
    sys.exit(1)


def check_finding(i, f, rules):
    if not isinstance(f, dict):
        fail("finding is not an object", i, f)
    for key in ("rule", "function", "file", "message"):
        v = f.get(key)
        if not isinstance(v, str) or not v:
            fail(f'missing or empty string "{key}"', i, f)
    if f["rule"] not in rules:
        fail(f'rule "{f["rule"]}" is not a declared rule', i, f)
    line = f.get("line")
    if not isinstance(line, int) or isinstance(line, bool) or line < 1:
        fail('missing or non-positive integer "line"', i, f)
    cp = f.get("callpath")
    if not isinstance(cp, list) or not cp \
            or not all(isinstance(s, str) and s for s in cp):
        fail('"callpath" is not a non-empty list of strings', i, f)
    if f["file"].startswith("/") or "\\" in f["file"]:
        fail('"file" is not a forward-slash relative path', i, f)


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {argv[1]}: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if set(doc) != TOP_KEYS:
        fail(f"top-level keys {sorted(doc)} != {sorted(TOP_KEYS)}")
    for key in doc:
        if any(w in key.lower() for w in FORBIDDEN_KEY_WORDS):
            fail(f'host-dependent-looking top-level key "{key}"')

    if doc["tool"] != "crev_analyze":
        fail(f'"tool" is {doc["tool"]!r}, expected "crev_analyze"')
    if not isinstance(doc["version"], str) or not doc["version"]:
        fail('"version" is not a non-empty string')
    if doc["rules"] != EXPECTED_RULES:
        fail(f'"rules" {doc["rules"]} != {EXPECTED_RULES}')

    findings = doc["findings"]
    if not isinstance(findings, list):
        fail('"findings" is not a list')
    for i, f in enumerate(findings):
        check_finding(i, f, set(doc["rules"]))
    keys = [(f["rule"], f["file"], f["line"], f["function"],
             f["message"]) for f in findings]
    if keys != sorted(keys):
        fail("findings are not sorted by "
             "(rule, file, line, function, message)")

    waivers = doc["waivers_used"]
    if not isinstance(waivers, list) \
            or not all(isinstance(w, str) and w for w in waivers) \
            or waivers != sorted(waivers):
        fail('"waivers_used" is not a sorted list of strings')

    stats = doc["stats"]
    if not isinstance(stats, dict) or set(stats) != STAT_KEYS:
        fail(f'"stats" keys {sorted(stats) if isinstance(stats, dict) else stats} '
             f"!= {sorted(STAT_KEYS)}")
    for key, v in stats.items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f'stats.{key} is not a non-negative integer')
    if stats["findings"] != len(findings):
        fail(f'stats.findings {stats["findings"]} != '
             f"{len(findings)} findings")

    print(f"check_analyze_schema: OK: {len(findings)} finding(s), "
          f"{stats['functions']} functions, {stats['edges']} edges, "
          f"{len(waivers)} waiver(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
