file(REMOVE_RECURSE
  "CMakeFiles/compression_sweep_test.dir/compression_sweep_test.cpp.o"
  "CMakeFiles/compression_sweep_test.dir/compression_sweep_test.cpp.o.d"
  "compression_sweep_test"
  "compression_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
