# Empty dependencies file for compression_sweep_test.
# This may be replaced when dependencies are built.
