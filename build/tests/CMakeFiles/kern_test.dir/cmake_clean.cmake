file(REMOVE_RECURSE
  "CMakeFiles/kern_test.dir/kern_test.cpp.o"
  "CMakeFiles/kern_test.dir/kern_test.cpp.o.d"
  "kern_test"
  "kern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
