# Empty compiler generated dependencies file for crev_mem.
# This may be replaced when dependencies are built.
