file(REMOVE_RECURSE
  "libcrev_mem.a"
)
