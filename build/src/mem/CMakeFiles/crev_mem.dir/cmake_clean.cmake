file(REMOVE_RECURSE
  "CMakeFiles/crev_mem.dir/cache.cc.o"
  "CMakeFiles/crev_mem.dir/cache.cc.o.d"
  "CMakeFiles/crev_mem.dir/memory_system.cc.o"
  "CMakeFiles/crev_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/crev_mem.dir/phys_mem.cc.o"
  "CMakeFiles/crev_mem.dir/phys_mem.cc.o.d"
  "libcrev_mem.a"
  "libcrev_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
