
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/kernel.cc" "src/kern/CMakeFiles/crev_kern.dir/kernel.cc.o" "gcc" "src/kern/CMakeFiles/crev_kern.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/crev_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/crev_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crev_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crev_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
