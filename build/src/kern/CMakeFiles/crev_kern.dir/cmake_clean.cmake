file(REMOVE_RECURSE
  "CMakeFiles/crev_kern.dir/kernel.cc.o"
  "CMakeFiles/crev_kern.dir/kernel.cc.o.d"
  "libcrev_kern.a"
  "libcrev_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
