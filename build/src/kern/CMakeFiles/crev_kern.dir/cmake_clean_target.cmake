file(REMOVE_RECURSE
  "libcrev_kern.a"
)
