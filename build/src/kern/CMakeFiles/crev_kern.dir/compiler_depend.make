# Empty compiler generated dependencies file for crev_kern.
# This may be replaced when dependencies are built.
