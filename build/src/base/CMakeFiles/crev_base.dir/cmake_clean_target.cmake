file(REMOVE_RECURSE
  "libcrev_base.a"
)
