file(REMOVE_RECURSE
  "CMakeFiles/crev_base.dir/logging.cc.o"
  "CMakeFiles/crev_base.dir/logging.cc.o.d"
  "libcrev_base.a"
  "libcrev_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
