# Empty compiler generated dependencies file for crev_base.
# This may be replaced when dependencies are built.
