file(REMOVE_RECURSE
  "CMakeFiles/crev_cap.dir/capability.cc.o"
  "CMakeFiles/crev_cap.dir/capability.cc.o.d"
  "CMakeFiles/crev_cap.dir/compression.cc.o"
  "CMakeFiles/crev_cap.dir/compression.cc.o.d"
  "libcrev_cap.a"
  "libcrev_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
