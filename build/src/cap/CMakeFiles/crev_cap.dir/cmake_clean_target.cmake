file(REMOVE_RECURSE
  "libcrev_cap.a"
)
