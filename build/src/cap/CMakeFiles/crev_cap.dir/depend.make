# Empty dependencies file for crev_cap.
# This may be replaced when dependencies are built.
