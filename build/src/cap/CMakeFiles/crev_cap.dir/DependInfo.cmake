
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cap/capability.cc" "src/cap/CMakeFiles/crev_cap.dir/capability.cc.o" "gcc" "src/cap/CMakeFiles/crev_cap.dir/capability.cc.o.d"
  "/root/repo/src/cap/compression.cc" "src/cap/CMakeFiles/crev_cap.dir/compression.cc.o" "gcc" "src/cap/CMakeFiles/crev_cap.dir/compression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/crev_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
