# Empty compiler generated dependencies file for crev_revoker.
# This may be replaced when dependencies are built.
