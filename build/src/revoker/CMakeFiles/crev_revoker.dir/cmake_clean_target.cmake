file(REMOVE_RECURSE
  "libcrev_revoker.a"
)
