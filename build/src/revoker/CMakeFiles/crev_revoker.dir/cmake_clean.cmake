file(REMOVE_RECURSE
  "CMakeFiles/crev_revoker.dir/auditor.cc.o"
  "CMakeFiles/crev_revoker.dir/auditor.cc.o.d"
  "CMakeFiles/crev_revoker.dir/bitmap.cc.o"
  "CMakeFiles/crev_revoker.dir/bitmap.cc.o.d"
  "CMakeFiles/crev_revoker.dir/cheriot_filter.cc.o"
  "CMakeFiles/crev_revoker.dir/cheriot_filter.cc.o.d"
  "CMakeFiles/crev_revoker.dir/cherivoke.cc.o"
  "CMakeFiles/crev_revoker.dir/cherivoke.cc.o.d"
  "CMakeFiles/crev_revoker.dir/cornucopia.cc.o"
  "CMakeFiles/crev_revoker.dir/cornucopia.cc.o.d"
  "CMakeFiles/crev_revoker.dir/paint_only.cc.o"
  "CMakeFiles/crev_revoker.dir/paint_only.cc.o.d"
  "CMakeFiles/crev_revoker.dir/reloaded.cc.o"
  "CMakeFiles/crev_revoker.dir/reloaded.cc.o.d"
  "CMakeFiles/crev_revoker.dir/revoker.cc.o"
  "CMakeFiles/crev_revoker.dir/revoker.cc.o.d"
  "CMakeFiles/crev_revoker.dir/sweep.cc.o"
  "CMakeFiles/crev_revoker.dir/sweep.cc.o.d"
  "libcrev_revoker.a"
  "libcrev_revoker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_revoker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
