
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/revoker/auditor.cc" "src/revoker/CMakeFiles/crev_revoker.dir/auditor.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/auditor.cc.o.d"
  "/root/repo/src/revoker/bitmap.cc" "src/revoker/CMakeFiles/crev_revoker.dir/bitmap.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/bitmap.cc.o.d"
  "/root/repo/src/revoker/cheriot_filter.cc" "src/revoker/CMakeFiles/crev_revoker.dir/cheriot_filter.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/cheriot_filter.cc.o.d"
  "/root/repo/src/revoker/cherivoke.cc" "src/revoker/CMakeFiles/crev_revoker.dir/cherivoke.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/cherivoke.cc.o.d"
  "/root/repo/src/revoker/cornucopia.cc" "src/revoker/CMakeFiles/crev_revoker.dir/cornucopia.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/cornucopia.cc.o.d"
  "/root/repo/src/revoker/paint_only.cc" "src/revoker/CMakeFiles/crev_revoker.dir/paint_only.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/paint_only.cc.o.d"
  "/root/repo/src/revoker/reloaded.cc" "src/revoker/CMakeFiles/crev_revoker.dir/reloaded.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/reloaded.cc.o.d"
  "/root/repo/src/revoker/revoker.cc" "src/revoker/CMakeFiles/crev_revoker.dir/revoker.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/revoker.cc.o.d"
  "/root/repo/src/revoker/sweep.cc" "src/revoker/CMakeFiles/crev_revoker.dir/sweep.cc.o" "gcc" "src/revoker/CMakeFiles/crev_revoker.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/crev_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/crev_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/crev_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/crev_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/crev_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crev_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
