file(REMOVE_RECURSE
  "libcrev_alloc.a"
)
