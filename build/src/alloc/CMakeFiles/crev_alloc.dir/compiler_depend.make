# Empty compiler generated dependencies file for crev_alloc.
# This may be replaced when dependencies are built.
