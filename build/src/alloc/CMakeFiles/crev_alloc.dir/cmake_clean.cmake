file(REMOVE_RECURSE
  "CMakeFiles/crev_alloc.dir/quarantine.cc.o"
  "CMakeFiles/crev_alloc.dir/quarantine.cc.o.d"
  "CMakeFiles/crev_alloc.dir/snmalloc_lite.cc.o"
  "CMakeFiles/crev_alloc.dir/snmalloc_lite.cc.o.d"
  "libcrev_alloc.a"
  "libcrev_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
