# Empty dependencies file for crev_stats.
# This may be replaced when dependencies are built.
