file(REMOVE_RECURSE
  "libcrev_stats.a"
)
