file(REMOVE_RECURSE
  "CMakeFiles/crev_stats.dir/summary.cc.o"
  "CMakeFiles/crev_stats.dir/summary.cc.o.d"
  "CMakeFiles/crev_stats.dir/table.cc.o"
  "CMakeFiles/crev_stats.dir/table.cc.o.d"
  "libcrev_stats.a"
  "libcrev_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
