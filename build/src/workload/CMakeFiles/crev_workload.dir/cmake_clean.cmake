file(REMOVE_RECURSE
  "CMakeFiles/crev_workload.dir/grpc_qps.cc.o"
  "CMakeFiles/crev_workload.dir/grpc_qps.cc.o.d"
  "CMakeFiles/crev_workload.dir/pgbench.cc.o"
  "CMakeFiles/crev_workload.dir/pgbench.cc.o.d"
  "CMakeFiles/crev_workload.dir/spec.cc.o"
  "CMakeFiles/crev_workload.dir/spec.cc.o.d"
  "libcrev_workload.a"
  "libcrev_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
