file(REMOVE_RECURSE
  "libcrev_workload.a"
)
