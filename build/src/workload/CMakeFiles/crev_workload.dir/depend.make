# Empty dependencies file for crev_workload.
# This may be replaced when dependencies are built.
