# Empty dependencies file for crev_sim.
# This may be replaced when dependencies are built.
