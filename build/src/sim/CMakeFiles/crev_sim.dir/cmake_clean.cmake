file(REMOVE_RECURSE
  "CMakeFiles/crev_sim.dir/scheduler.cc.o"
  "CMakeFiles/crev_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/crev_sim.dir/sync.cc.o"
  "CMakeFiles/crev_sim.dir/sync.cc.o.d"
  "libcrev_sim.a"
  "libcrev_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
