file(REMOVE_RECURSE
  "libcrev_sim.a"
)
