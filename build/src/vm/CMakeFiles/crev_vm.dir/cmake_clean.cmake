file(REMOVE_RECURSE
  "CMakeFiles/crev_vm.dir/address_space.cc.o"
  "CMakeFiles/crev_vm.dir/address_space.cc.o.d"
  "CMakeFiles/crev_vm.dir/mmu.cc.o"
  "CMakeFiles/crev_vm.dir/mmu.cc.o.d"
  "CMakeFiles/crev_vm.dir/tlb.cc.o"
  "CMakeFiles/crev_vm.dir/tlb.cc.o.d"
  "libcrev_vm.a"
  "libcrev_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
