
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/address_space.cc" "src/vm/CMakeFiles/crev_vm.dir/address_space.cc.o" "gcc" "src/vm/CMakeFiles/crev_vm.dir/address_space.cc.o.d"
  "/root/repo/src/vm/mmu.cc" "src/vm/CMakeFiles/crev_vm.dir/mmu.cc.o" "gcc" "src/vm/CMakeFiles/crev_vm.dir/mmu.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/vm/CMakeFiles/crev_vm.dir/tlb.cc.o" "gcc" "src/vm/CMakeFiles/crev_vm.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/crev_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/crev_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crev_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crev_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
