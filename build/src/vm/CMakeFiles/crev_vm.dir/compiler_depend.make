# Empty compiler generated dependencies file for crev_vm.
# This may be replaced when dependencies are built.
