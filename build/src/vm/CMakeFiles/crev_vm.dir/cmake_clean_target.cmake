file(REMOVE_RECURSE
  "libcrev_vm.a"
)
