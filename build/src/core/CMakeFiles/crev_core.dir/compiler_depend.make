# Empty compiler generated dependencies file for crev_core.
# This may be replaced when dependencies are built.
