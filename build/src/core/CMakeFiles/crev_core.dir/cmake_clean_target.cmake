file(REMOVE_RECURSE
  "libcrev_core.a"
)
