file(REMOVE_RECURSE
  "CMakeFiles/crev_core.dir/machine.cc.o"
  "CMakeFiles/crev_core.dir/machine.cc.o.d"
  "CMakeFiles/crev_core.dir/metrics.cc.o"
  "CMakeFiles/crev_core.dir/metrics.cc.o.d"
  "CMakeFiles/crev_core.dir/mutator.cc.o"
  "CMakeFiles/crev_core.dir/mutator.cc.o.d"
  "libcrev_core.a"
  "libcrev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
