# Empty dependencies file for table1_pgbench_rates.
# This may be replaced when dependencies are built.
