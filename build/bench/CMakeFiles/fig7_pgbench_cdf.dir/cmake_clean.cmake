file(REMOVE_RECURSE
  "CMakeFiles/fig7_pgbench_cdf.dir/fig7_pgbench_cdf.cpp.o"
  "CMakeFiles/fig7_pgbench_cdf.dir/fig7_pgbench_cdf.cpp.o.d"
  "fig7_pgbench_cdf"
  "fig7_pgbench_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pgbench_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
