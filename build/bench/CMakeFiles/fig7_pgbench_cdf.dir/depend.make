# Empty dependencies file for fig7_pgbench_cdf.
# This may be replaced when dependencies are built.
