# Empty dependencies file for fig2_spec_cputime.
# This may be replaced when dependencies are built.
