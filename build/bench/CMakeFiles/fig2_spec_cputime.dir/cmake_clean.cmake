file(REMOVE_RECURSE
  "CMakeFiles/fig2_spec_cputime.dir/fig2_spec_cputime.cpp.o"
  "CMakeFiles/fig2_spec_cputime.dir/fig2_spec_cputime.cpp.o.d"
  "fig2_spec_cputime"
  "fig2_spec_cputime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_spec_cputime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
