# Empty dependencies file for ablation_quarantine_policy.
# This may be replaced when dependencies are built.
