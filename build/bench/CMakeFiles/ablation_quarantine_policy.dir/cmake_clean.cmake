file(REMOVE_RECURSE
  "CMakeFiles/ablation_quarantine_policy.dir/ablation_quarantine_policy.cpp.o"
  "CMakeFiles/ablation_quarantine_policy.dir/ablation_quarantine_policy.cpp.o.d"
  "ablation_quarantine_policy"
  "ablation_quarantine_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quarantine_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
