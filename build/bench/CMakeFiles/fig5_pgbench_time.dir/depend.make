# Empty dependencies file for fig5_pgbench_time.
# This may be replaced when dependencies are built.
