# Empty compiler generated dependencies file for ablation_clean_page_policy.
# This may be replaced when dependencies are built.
