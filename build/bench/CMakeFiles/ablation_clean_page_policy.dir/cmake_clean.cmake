file(REMOVE_RECURSE
  "CMakeFiles/ablation_clean_page_policy.dir/ablation_clean_page_policy.cpp.o"
  "CMakeFiles/ablation_clean_page_policy.dir/ablation_clean_page_policy.cpp.o.d"
  "ablation_clean_page_policy"
  "ablation_clean_page_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clean_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
