file(REMOVE_RECURSE
  "CMakeFiles/fig1_spec_wallclock.dir/fig1_spec_wallclock.cpp.o"
  "CMakeFiles/fig1_spec_wallclock.dir/fig1_spec_wallclock.cpp.o.d"
  "fig1_spec_wallclock"
  "fig1_spec_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_spec_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
