# Empty compiler generated dependencies file for fig1_spec_wallclock.
# This may be replaced when dependencies are built.
