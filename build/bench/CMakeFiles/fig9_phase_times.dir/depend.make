# Empty dependencies file for fig9_phase_times.
# This may be replaced when dependencies are built.
