# Empty compiler generated dependencies file for fig3_spec_memory.
# This may be replaced when dependencies are built.
