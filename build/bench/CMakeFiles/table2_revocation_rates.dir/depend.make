# Empty dependencies file for table2_revocation_rates.
# This may be replaced when dependencies are built.
