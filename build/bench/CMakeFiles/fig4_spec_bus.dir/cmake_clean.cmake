file(REMOVE_RECURSE
  "CMakeFiles/fig4_spec_bus.dir/fig4_spec_bus.cpp.o"
  "CMakeFiles/fig4_spec_bus.dir/fig4_spec_bus.cpp.o.d"
  "fig4_spec_bus"
  "fig4_spec_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spec_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
