# Empty dependencies file for fig4_spec_bus.
# This may be replaced when dependencies are built.
