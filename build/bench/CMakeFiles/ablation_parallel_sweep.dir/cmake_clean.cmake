file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_sweep.dir/ablation_parallel_sweep.cpp.o"
  "CMakeFiles/ablation_parallel_sweep.dir/ablation_parallel_sweep.cpp.o.d"
  "ablation_parallel_sweep"
  "ablation_parallel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
