# Empty dependencies file for ablation_parallel_sweep.
# This may be replaced when dependencies are built.
