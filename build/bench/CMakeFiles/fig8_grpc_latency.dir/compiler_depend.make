# Empty compiler generated dependencies file for fig8_grpc_latency.
# This may be replaced when dependencies are built.
