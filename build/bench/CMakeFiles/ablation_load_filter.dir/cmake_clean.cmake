file(REMOVE_RECURSE
  "CMakeFiles/ablation_load_filter.dir/ablation_load_filter.cpp.o"
  "CMakeFiles/ablation_load_filter.dir/ablation_load_filter.cpp.o.d"
  "ablation_load_filter"
  "ablation_load_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
