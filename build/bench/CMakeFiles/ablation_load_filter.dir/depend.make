# Empty dependencies file for ablation_load_filter.
# This may be replaced when dependencies are built.
