# Empty compiler generated dependencies file for fig6_pgbench_bus.
# This may be replaced when dependencies are built.
