file(REMOVE_RECURSE
  "CMakeFiles/fig6_pgbench_bus.dir/fig6_pgbench_bus.cpp.o"
  "CMakeFiles/fig6_pgbench_bus.dir/fig6_pgbench_bus.cpp.o.d"
  "fig6_pgbench_bus"
  "fig6_pgbench_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pgbench_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
