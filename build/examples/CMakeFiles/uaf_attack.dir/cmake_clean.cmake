file(REMOVE_RECURSE
  "CMakeFiles/uaf_attack.dir/uaf_attack.cpp.o"
  "CMakeFiles/uaf_attack.dir/uaf_attack.cpp.o.d"
  "uaf_attack"
  "uaf_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uaf_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
