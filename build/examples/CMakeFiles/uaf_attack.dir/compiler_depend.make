# Empty compiler generated dependencies file for uaf_attack.
# This may be replaced when dependencies are built.
