file(REMOVE_RECURSE
  "CMakeFiles/interactive_server.dir/interactive_server.cpp.o"
  "CMakeFiles/interactive_server.dir/interactive_server.cpp.o.d"
  "interactive_server"
  "interactive_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
