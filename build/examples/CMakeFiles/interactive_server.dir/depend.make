# Empty dependencies file for interactive_server.
# This may be replaced when dependencies are built.
