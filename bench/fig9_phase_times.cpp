/**
 * @file
 * Figure 9: distributions of per-epoch revocation phase times for a
 * representative set of benchmarks — CHERIvoke's single world-stopped
 * phase; Cornucopia's concurrent and world-stopped phases; Reloaded's
 * world-stopped and concurrent phases and per-epoch cumulative
 * fault-handling time.
 *
 * Paper anchors: Cornucopia's STW is ~1/10th of its concurrent
 * phase; Reloaded's STW is tens of microseconds — three or more
 * orders of magnitude below Cornucopia's on large-heap workloads —
 * and even Reloaded's cumulative fault time usually stays below
 * Cornucopia's STW.
 */

#include "bench_util.h"
#include "workload/grpc_qps.h"
#include "workload/pgbench.h"

using namespace crev;

namespace {

stats::Boxplot
phaseBox(const std::vector<revoker::EpochTiming> &epochs,
         Cycles revoker::EpochTiming::*field)
{
    stats::Samples s;
    for (const auto &e : epochs)
        s.add(cyclesToMicros(e.*field));
    return stats::boxplot(s);
}

std::string
boxStr(const stats::Boxplot &b)
{
    if (b.n == 0)
        return "-";
    return stats::Table::fmt(b.p25, 1) + "/" +
           stats::Table::fmt(b.median, 1) + "/" +
           stats::Table::fmt(b.p75, 1);
}

void
addRows(stats::Table &table, const std::string &bench,
        const std::map<std::string, std::vector<revoker::EpochTiming>>
            &per_strategy)
{
    const auto &cv = per_strategy.at("cherivoke");
    const auto &co = per_strategy.at("cornucopia");
    const auto &re = per_strategy.at("reloaded");
    table.addRow({bench, boxStr(phaseBox(cv,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(co,
                                &revoker::EpochTiming::concurrent_duration)),
                  boxStr(phaseBox(co,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::concurrent_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::fault_time_total))});
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 9: revocation phase times (p25/median/p75, "
        "microseconds)",
        "paper fig. 9");

    stats::Table table({"benchmark", "cv_stw", "corn_conc", "corn_stw",
                        "rel_stw", "rel_conc", "rel_faults"});

    benchutil::SpecRunner runner;
    const std::vector<std::string> spec_names{
        "astar", "omnetpp", "xalancbmk",
        "hmmer_retro", "gobmk", "libquantum"};
    runner.prefetch(spec_names, benchutil::kSafe);
    for (const auto &name : spec_names) {
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (core::Strategy s : benchutil::kSafe)
            per[core::strategyName(s)] = runner.run(name, s).epochs;
        addRows(table, name, per);
    }

    {
        workload::PgbenchConfig cfg;
        std::fprintf(stderr, "  running pgbench cells on %u host "
                     "threads...\n",
                     benchutil::benchThreads());
        auto results = benchutil::parallelMap(
            benchutil::kSafe.size(), [&](std::size_t i) {
                return workload::runPgbench(benchutil::kSafe[i], cfg)
                    .metrics.epochs;
            });
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (std::size_t i = 0; i < benchutil::kSafe.size(); ++i)
            per[core::strategyName(benchutil::kSafe[i])] =
                std::move(results[i]);
        addRows(table, "pgbench", per);
    }
    {
        workload::GrpcConfig cfg;
        std::fprintf(stderr, "  running grpc cells on %u host "
                     "threads...\n",
                     benchutil::benchThreads());
        auto results = benchutil::parallelMap(
            benchutil::kSafe.size(), [&](std::size_t i) {
                return workload::runGrpcQps(benchutil::kSafe[i], cfg)
                    .metrics.epochs;
            });
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (std::size_t i = 0; i < benchutil::kSafe.size(); ++i)
            per[core::strategyName(benchutil::kSafe[i])] =
                std::move(results[i]);
        addRows(table, "grpc_qps", per);
    }

    table.print();
    std::printf(
        "\nExpected shape: Cornucopia STW ~ a tenth of its "
        "concurrent phase; Reloaded STW is tens of microseconds, "
        "orders of magnitude below Cornucopia's on large-heap rows, "
        "and larger for the multi-threaded gRPC row (inter-core "
        "synchronisation); Reloaded's cumulative fault time usually "
        "stays below Cornucopia's STW.\n");
    return 0;
}
