/**
 * @file
 * Figure 9: distributions of per-epoch revocation phase times for a
 * representative set of benchmarks — CHERIvoke's single world-stopped
 * phase; Cornucopia's concurrent and world-stopped phases; Reloaded's
 * world-stopped and concurrent phases and per-epoch cumulative
 * fault-handling time.
 *
 * Paper anchors: Cornucopia's STW is ~1/10th of its concurrent
 * phase; Reloaded's STW is tens of microseconds — three or more
 * orders of magnitude below Cornucopia's on large-heap workloads —
 * and even Reloaded's cumulative fault time usually stays below
 * Cornucopia's STW.
 *
 * This bench also cross-checks the trace subsystem (DESIGN.md §10):
 * for every strategy, the per-phase totals recomputed from the event
 * trace must equal the RunMetrics phase accounting exactly.
 *
 * Usage: fig9_phase_times [--trace-out FILE] [--check-out FILE]
 *                         [--trace-check-only]
 *   --trace-out: write the Reloaded check run's Chrome trace JSON.
 *   --check-out: run with the race checker on (DESIGN.md §11.1) and
 *                write the Reloaded run's violation report JSON.
 *   --trace-check-only: run only the trace cross-check (CI).
 */

#include <cstring>

#include "bench_util.h"
#include "trace/metrics_registry.h"
#include "workload/grpc_qps.h"
#include "workload/pgbench.h"

using namespace crev;

namespace {

stats::Boxplot
phaseBox(const std::vector<revoker::EpochTiming> &epochs,
         Cycles revoker::EpochTiming::*field)
{
    stats::Samples s;
    for (const auto &e : epochs)
        s.add(cyclesToMicros(e.*field));
    return stats::boxplot(s);
}

std::string
boxStr(const stats::Boxplot &b)
{
    if (b.n == 0)
        return "-";
    return stats::Table::fmt(b.p25, 1) + "/" +
           stats::Table::fmt(b.median, 1) + "/" +
           stats::Table::fmt(b.p75, 1);
}

void
addRows(stats::Table &table, const std::string &bench,
        const std::map<std::string, std::vector<revoker::EpochTiming>>
            &per_strategy)
{
    const auto &cv = per_strategy.at("cherivoke");
    const auto &co = per_strategy.at("cornucopia");
    const auto &re = per_strategy.at("reloaded");
    table.addRow({bench, boxStr(phaseBox(cv,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(co,
                                &revoker::EpochTiming::concurrent_duration)),
                  boxStr(phaseBox(co,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::stw_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::concurrent_duration)),
                  boxStr(phaseBox(re,
                                &revoker::EpochTiming::fault_time_total))});
}

/**
 * Run one revoking profile per strategy with tracing on and check the
 * per-phase totals recomputed from the trace against the RunMetrics
 * epoch accounting, cycle for cycle. Optionally writes the Reloaded
 * run's trace JSON to @p trace_out and, when @p check_out is set,
 * runs with the race checker attached and writes its report there —
 * both subsystems are zero-simulated-cost, so the cross-check totals
 * are unaffected.
 */
bool
traceCrossCheck(const char *trace_out, const char *check_out)
{
    bool ok = true;
    for (core::Strategy s :
         {core::Strategy::kPaintOnly, core::Strategy::kCheriVoke,
          core::Strategy::kCornucopia, core::Strategy::kReloaded,
          core::Strategy::kCheriotFilter}) {
        core::MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy = workload::specPolicy();
        cfg.trace = true;
        cfg.trace_buffer_events = 1u << 20; // never drop in this run
        if (check_out != nullptr)
            cfg.check = true;
        core::Machine m(cfg);
        workload::runSpec(m, workload::specProfile("hmmer_retro"));

        const core::RunMetrics rm = m.metrics();
        const trace::PhaseSummary ps =
            trace::summarize(*m.tracerOrNull());
        if (ps.dropped != 0 || ps.unmatched != 0) {
            std::fprintf(stderr,
                         "FAIL: %s trace dropped=%llu unmatched=%llu\n",
                         core::strategyName(s),
                         static_cast<unsigned long long>(ps.dropped),
                         static_cast<unsigned long long>(ps.unmatched));
            ok = false;
        }

        Cycles stw = 0, conc = 0, fault = 0;
        for (const auto &e : rm.epochs) {
            stw += e.stw_duration;
            conc += e.concurrent_duration;
            fault += e.fault_time_total;
        }
        const struct
        {
            const char *name;
            trace::Phase phase;
            Cycles expect;
        } checks[] = {
            {"stw_scan", trace::Phase::kStwScan, stw},
            {"concurrent_sweep", trace::Phase::kConcurrentSweep, conc},
            {"load_fault_sweep", trace::Phase::kLoadFaultSweep, fault},
        };
        for (const auto &c : checks) {
            const Cycles got =
                ps.phases[static_cast<std::size_t>(c.phase)]
                    .total_cycles;
            if (got != c.expect) {
                std::fprintf(
                    stderr,
                    "FAIL: %s %s trace total %llu != metrics %llu\n",
                    core::strategyName(s), c.name,
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(c.expect));
                ok = false;
            }
        }
        std::fprintf(stderr,
                     "  trace check %-14s epochs=%zu stw=%llu "
                     "conc=%llu fault=%llu cycles: %s\n",
                     core::strategyName(s), rm.epochs.size(),
                     static_cast<unsigned long long>(stw),
                     static_cast<unsigned long long>(conc),
                     static_cast<unsigned long long>(fault),
                     ok ? "ok" : "MISMATCH");

        if (s == core::Strategy::kReloaded && trace_out != nullptr) {
            std::FILE *f = std::fopen(trace_out, "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot write %s\n", trace_out);
                ok = false;
            } else {
                const std::string json = m.traceJson();
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::fprintf(stderr, "  wrote %s\n", trace_out);
            }
        }
        if (s == core::Strategy::kReloaded && check_out != nullptr) {
            std::FILE *f = std::fopen(check_out, "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot write %s\n", check_out);
                ok = false;
            } else {
                const std::string json = m.checkReportJson();
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::fprintf(stderr, "  wrote %s\n", check_out);
            }
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_out = nullptr;
    const char *check_out = nullptr;
    bool check_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            trace_out = argv[++i];
        else if (std::strcmp(argv[i], "--check-out") == 0 &&
                 i + 1 < argc)
            check_out = argv[++i];
        else if (std::strcmp(argv[i], "--trace-check-only") == 0)
            check_only = true;
    }

    std::fprintf(stderr,
                 "  trace cross-check (phase totals vs metrics)...\n");
    const bool trace_ok = traceCrossCheck(trace_out, check_out);
    if (!trace_ok) {
        std::fprintf(stderr,
                     "fig9: trace/metrics phase accounting diverged\n");
        return 1;
    }
    if (check_only)
        return 0;

    benchutil::banner(
        "Figure 9: revocation phase times (p25/median/p75, "
        "microseconds)",
        "paper fig. 9");

    stats::Table table({"benchmark", "cv_stw", "corn_conc", "corn_stw",
                        "rel_stw", "rel_conc", "rel_faults"});

    benchutil::SpecRunner runner;
    const std::vector<std::string> spec_names{
        "astar", "omnetpp", "xalancbmk",
        "hmmer_retro", "gobmk", "libquantum"};
    runner.prefetch(spec_names, benchutil::kSafe);
    for (const auto &name : spec_names) {
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (core::Strategy s : benchutil::kSafe)
            per[core::strategyName(s)] = runner.run(name, s).epochs;
        addRows(table, name, per);
    }

    {
        workload::PgbenchConfig cfg;
        std::fprintf(stderr, "  running pgbench cells on %u host "
                     "threads...\n",
                     benchutil::benchThreads());
        auto results = benchutil::parallelMap(
            benchutil::kSafe.size(), [&](std::size_t i) {
                return workload::runPgbench(benchutil::kSafe[i], cfg)
                    .metrics.epochs;
            });
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (std::size_t i = 0; i < benchutil::kSafe.size(); ++i)
            per[core::strategyName(benchutil::kSafe[i])] =
                std::move(results[i]);
        addRows(table, "pgbench", per);
    }
    {
        workload::GrpcConfig cfg;
        std::fprintf(stderr, "  running grpc cells on %u host "
                     "threads...\n",
                     benchutil::benchThreads());
        auto results = benchutil::parallelMap(
            benchutil::kSafe.size(), [&](std::size_t i) {
                return workload::runGrpcQps(benchutil::kSafe[i], cfg)
                    .metrics.epochs;
            });
        std::map<std::string, std::vector<revoker::EpochTiming>> per;
        for (std::size_t i = 0; i < benchutil::kSafe.size(); ++i)
            per[core::strategyName(benchutil::kSafe[i])] =
                std::move(results[i]);
        addRows(table, "grpc_qps", per);
    }

    table.print();

    // Sweep work per strategy, read back through the MetricsRegistry
    // export (the same "sweep.*"/"prescan.*" names every bench's JSON
    // artifact carries): how much page/line/cap scanning each
    // strategy's phase times above actually paid for, and how much of
    // it the host pre-scan pipeline served from its snapshots.
    std::printf("\nsweep work per strategy (hmmer_retro):\n");
    stats::Table work({"strategy", "pages", "lines", "caps_seen",
                       "revoked", "prescan_pg", "prescan_hit",
                       "mismatch"});
    for (core::Strategy s : benchutil::kSafe) {
        trace::MetricsRegistry reg;
        runner.run("hmmer_retro", s).exportTo(reg);
        work.addRow(
            {core::strategyName(s),
             std::to_string(reg.counterValue("sweep.pages_swept")),
             std::to_string(reg.counterValue("sweep.lines_read")),
             std::to_string(reg.counterValue("sweep.caps_seen")),
             std::to_string(reg.counterValue("sweep.caps_revoked")),
             std::to_string(
                 reg.counterValue("prescan.pages_prescanned")),
             std::to_string(
                 reg.counterValue("prescan.validated_hits")),
             std::to_string(reg.counterValue("prescan.mismatches"))});
    }
    work.print();

    std::printf(
        "\nExpected shape: Cornucopia STW ~ a tenth of its "
        "concurrent phase; Reloaded STW is tens of microseconds, "
        "orders of magnitude below Cornucopia's on large-heap rows, "
        "and larger for the multi-threaded gRPC row (inter-core "
        "synchronisation); Reloaded's cumulative fault time usually "
        "stays below Cornucopia's STW.\n");
    return 0;
}
