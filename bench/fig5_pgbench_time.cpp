/**
 * @file
 * Figure 5: normalized time overheads for pgbench — wall-clock and
 * total CPU time per strategy, against the spatially-safe baseline.
 *
 * Paper anchors: Reloaded offers lower wall-clock and total CPU
 * overheads than Cornucopia; overheads imposed on the server thread
 * itself are nearly identical across the concurrent strategies.
 */

#include "bench_util.h"
#include "workload/pgbench.h"

using namespace crev;
using benchutil::overhead;

int
main()
{
    benchutil::banner("Figure 5: pgbench normalized time overheads",
                      "paper fig. 5");

    workload::PgbenchConfig cfg;

    // All five cells are independent machines: run them across the
    // host thread pool, keeping baseline-first output order.
    std::vector<core::Strategy> all{core::Strategy::kBaseline};
    all.insert(all.end(), benchutil::kSafeAndPaint.begin(),
               benchutil::kSafeAndPaint.end());
    std::fprintf(stderr, "  running %zu pgbench cells on %u host "
                 "threads...\n",
                 all.size(), benchutil::benchThreads());
    auto results = benchutil::parallelMap(
        all.size(),
        [&](std::size_t i) { return workload::runPgbench(all[i], cfg); });
    const auto &base = results[0];

    stats::Table table({"strategy", "wall", "cpu_total",
                        "server_thread"});
    table.addRow({"baseline(ms)",
                  stats::Table::fmt(cyclesToMillis(
                      base.metrics.wall_cycles)),
                  stats::Table::fmt(cyclesToMillis(
                      base.metrics.cpu_cycles)),
                  stats::Table::fmt(cyclesToMillis(
                      base.metrics.thread_busy.at("pg-server")))});

    for (std::size_t i = 1; i < all.size(); ++i) {
        const core::Strategy s = all[i];
        const auto &r = results[i];
        table.addRow(
            {core::strategyName(s),
             stats::Table::pct(overhead(
                 static_cast<double>(r.metrics.wall_cycles),
                 static_cast<double>(base.metrics.wall_cycles))),
             stats::Table::pct(overhead(
                 static_cast<double>(r.metrics.cpu_cycles),
                 static_cast<double>(base.metrics.cpu_cycles))),
             stats::Table::pct(overhead(
                 static_cast<double>(
                     r.metrics.thread_busy.at("pg-server")),
                 static_cast<double>(
                     base.metrics.thread_busy.at("pg-server"))))});
    }

    table.print();
    std::printf("\nExpected shape: Reloaded wall/CPU overhead <= "
                "Cornucopia's; server-thread overheads nearly "
                "identical. CPU overhead can exceed wall overhead "
                "because the server expands into idle inter-"
                "transaction time (paper §5.2 Discussion).\n");
    return 0;
}
