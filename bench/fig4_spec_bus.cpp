/**
 * @file
 * Figure 4: bus (DRAM) traffic overheads of Reloaded, Cornucopia and
 * CHERIvoke on the SPEC-like workloads, plus the baseline transaction
 * count and Reloaded's traffic as a percentage of Cornucopia's.
 *
 * Paper anchors: omnetpp 45% (Reloaded) vs 50% (Cornucopia);
 * xalancbmk 60% vs 68%; the median Reloaded:Cornucopia traffic ratio
 * is 87% — Reloaded never rescans pages, so it always moves less
 * data than Cornucopia.
 */

#include "bench_util.h"

using namespace crev;
using benchutil::overhead;

int
main()
{
    benchutil::banner("Figure 4: SPEC bus traffic overheads",
                      "paper fig. 4");

    benchutil::SpecRunner runner;
    std::vector<core::Strategy> all{core::Strategy::kBaseline};
    all.insert(all.end(), benchutil::kSafe.begin(),
               benchutil::kSafe.end());
    runner.prefetch(workload::revokingSpecNames(), all);

    stats::Table table({"benchmark", "baseline_tx", "cherivoke",
                        "cornucopia", "reloaded", "rel/corn"});

    std::vector<double> ratios;

    for (const auto &name : workload::revokingSpecNames()) {
        const auto &base = runner.run(name, core::Strategy::kBaseline);
        std::vector<std::string> row{
            name, std::to_string(base.bus_transactions_total)};
        double corn_tx = 0, rel_tx = 0;
        for (core::Strategy s : benchutil::kSafe) {
            const auto &m = runner.run(name, s);
            row.push_back(stats::Table::pct(overhead(
                static_cast<double>(m.bus_transactions_total),
                static_cast<double>(base.bus_transactions_total))));
            if (s == core::Strategy::kCornucopia)
                corn_tx = static_cast<double>(m.bus_transactions_total);
            if (s == core::Strategy::kReloaded)
                rel_tx = static_cast<double>(m.bus_transactions_total);
        }
        const double ratio = corn_tx > 0 ? rel_tx / corn_tx : 1.0;
        ratios.push_back(ratio);
        row.push_back(stats::Table::pct(ratio));
        table.addRow(row);
    }

    table.print();

    std::sort(ratios.begin(), ratios.end());
    std::printf("\nMedian Reloaded traffic as %% of Cornucopia: %s "
                "(paper: 87%%). Reloaded <= Cornucopia on every "
                "benchmark because no page is swept twice per epoch.\n",
                stats::Table::pct(ratios[ratios.size() / 2]).c_str());
    return 0;
}
