/**
 * @file
 * Figure 8: gRPC QPS latency percentiles under Reloaded and
 * Cornucopia, normalized by the baseline's value at the same
 * percentile, plus throughput reduction.
 *
 * Paper anchors: ~12.8% QPS reduction for both strategies (not
 * significantly different); modest increases at p50/p90/p95; at p99
 * Reloaded doubles latency where Cornucopia more than triples it; at
 * p99.9 both impose ~10x tails (revoker competing for CPU, §7.7).
 * (CHERIvoke is absent from the paper's figure due to a bug in their
 * implementation; we include it for completeness.)
 */

#include "bench_util.h"
#include "workload/grpc_qps.h"

using namespace crev;

int
main()
{
    benchutil::banner("Figure 8: gRPC QPS latency percentiles",
                      "paper fig. 8");

    workload::GrpcConfig cfg;

    const std::vector<core::Strategy> all{
        core::Strategy::kBaseline, core::Strategy::kCheriVoke,
        core::Strategy::kCornucopia, core::Strategy::kReloaded};
    std::fprintf(stderr,
                 "  running %zu grpc cells on %u host threads...\n",
                 all.size(), benchutil::benchThreads());
    auto results = benchutil::parallelMap(
        all.size(),
        [&](std::size_t i) { return workload::runGrpcQps(all[i], cfg); });
    const auto &base = results[0];

    const std::vector<std::pair<const char *, double>> pcts = {
        {"p50", 0.50}, {"p90", 0.90},   {"p95", 0.95},
        {"p99", 0.99}, {"p99.9", 0.999}};

    std::vector<std::string> header{"strategy"};
    for (auto &[n, q] : pcts)
        header.push_back(std::string(n) + "_x");
    header.push_back("qps_delta");
    stats::Table table(header);

    {
        std::vector<std::string> row{"baseline_ms"};
        for (auto &[n, q] : pcts)
            row.push_back(stats::Table::fmt(
                base.latency_ms.percentile(q), 4));
        row.push_back(stats::Table::fmt(base.qps, 0) + " qps");
        table.addRow(row);
    }

    for (std::size_t i = 1; i < all.size(); ++i) {
        const core::Strategy s = all[i];
        const auto &r = results[i];
        std::vector<std::string> row{core::strategyName(s)};
        for (auto &[n, q] : pcts)
            row.push_back(stats::Table::fmt(
                r.latency_ms.percentile(q) /
                    base.latency_ms.percentile(q),
                2));
        row.push_back(
            stats::Table::pct(r.qps / base.qps - 1.0, 1));
        table.addRow(row);
    }

    table.print();
    std::printf("\nExpected shape: modest inflation through p95; at "
                "p99 Reloaded's multiplier is well below "
                "Cornucopia's; long 99.9%% tails for both (the "
                "unpinned background revoker competes with the "
                "2-thread server for cores 2-3).\n");
    return 0;
}
