/**
 * @file
 * Ablation (paper §7.1, future work implemented here): split
 * Reloaded's background sweep across multiple worker threads. More
 * sweepers shorten the concurrent phase (epochs complete sooner) at
 * the cost of occupying more cores.
 */

#include "bench_util.h"

using namespace crev;

int
main()
{
    benchutil::banner(
        "Ablation: multi-threaded background revocation (Reloaded)",
        "paper §7.1");

    stats::Table table({"sweepers", "wall_ms", "cpu_ms",
                        "median_conc_us", "epochs"});

    for (unsigned sweepers : {1u, 2u}) {
        core::MachineConfig cfg;
        cfg.strategy = core::Strategy::kReloaded;
        cfg.policy = workload::specPolicy();
        cfg.background_sweepers = sweepers;
        // Give the helpers somewhere to run: cores 1 and 2.
        cfg.revoker_core_mask = (1u << 1) | (1u << 2);
        std::fprintf(stderr, "  running xalancbmk, %u sweeper(s)...\n",
                     sweepers);
        core::Machine m(cfg);
        workload::runSpec(m, workload::specProfile("xalancbmk"));
        const auto metrics = m.metrics();

        stats::Samples conc;
        for (const auto &e : metrics.epochs)
            conc.add(cyclesToMicros(e.concurrent_duration));
        table.addRow({std::to_string(sweepers),
                      stats::Table::fmt(cyclesToMillis(
                          metrics.wall_cycles)),
                      stats::Table::fmt(cyclesToMillis(
                          metrics.cpu_cycles)),
                      stats::Table::fmt(conc.median(), 1),
                      std::to_string(metrics.epochs.size())});
    }

    table.print();
    std::printf("\nExpected shape: the median concurrent-phase "
                "duration drops with a second sweeper; total CPU "
                "time does not decrease (same pages swept).\n");
    return 0;
}
