#include "bench_runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/mutator.h"
#include "revoker/bitmap.h"
#include "revoker/sweep.h"
#include "trace/metrics_registry.h"
#include "workload/spec.h"

namespace crev::benchutil {

unsigned
benchThreads()
{
    if (const char *env = std::getenv("CREV_BENCH_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

void
ParallelRunner::add(std::string name,
                    std::function<core::RunMetrics()> fn)
{
    cells_.push_back(Cell{std::move(name), std::move(fn)});
}

std::vector<CellResult>
ParallelRunner::run(unsigned threads)
{
    // Workloads memoize lazily-built statics (profile tables); touch
    // them once on this thread so workers only ever read them.
    workload::specProfiles();

    auto results = parallelMap(
        cells_.size(),
        [&](std::size_t i) {
            CellResult r;
            r.name = cells_[i].name;
            const auto start = std::chrono::steady_clock::now();
            r.metrics = cells_[i].fn();
            r.host_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return r;
        },
        threads);
    cells_.clear();
    return results;
}

const char *
sweepRegimeName(SweepRegime r)
{
    switch (r) {
      case SweepRegime::kClean:
        return "clean";
      case SweepRegime::kSparse:
        return "sparse";
      case SweepRegime::kFull:
        return "full";
    }
    return "?";
}

SweepRegimeResult
measureSweepRegime(SweepRegime regime, bool host_fast_paths,
                   std::size_t pages, std::size_t repeats)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kBaseline; // no revoker daemon
    cfg.host_fast_paths = host_fast_paths;
    core::Machine m(cfg);

    SweepRegimeResult result;
    m.spawnMutator("sweep-harness", 1u << 3, [&](core::Mutator &ctx) {
        // One arena spanning `pages` whole pages (plus alignment
        // slack), faulted in up front so the sweep never demand-zeros.
        const std::size_t arena = (pages + 1) * kPageSize;
        const cap::Capability c = ctx.malloc(arena);
        const Addr first_page = roundUp(c.base, kPageSize);
        const Addr off0 = first_page - c.base;
        for (std::size_t p = 0; p < pages; ++p)
            ctx.store64(c, off0 + p * kPageSize, 1);

        const cap::Capability v = ctx.malloc(64);
        const std::size_t caps_per_page =
            regime == SweepRegime::kClean    ? 0
            : regime == SweepRegime::kSparse ? 8
                                             : kGranulesPerPage;
        const std::size_t stride =
            caps_per_page == 0 ? 0 : kGranulesPerPage / caps_per_page;
        for (std::size_t p = 0; p < pages; ++p)
            for (std::size_t k = 0; k < caps_per_page; ++k)
                ctx.storeCap(c,
                             off0 + p * kPageSize +
                                 k * stride * kGranuleSize,
                             v);

        // Nothing is painted in this local bitmap, so probes read a
        // zero bit and never clear tags: every repeat sweeps the same
        // population.
        revoker::RevocationBitmap bitmap(ctx.machine().mmu());
        revoker::SweepEngine engine(ctx.machine().mmu(), bitmap,
                                    host_fast_paths);
        sim::SimThread &t = ctx.thread();

        // One untimed warmup pass: faults the sweep's host code and
        // data paths in so the first timed regime isn't cold.
        for (std::size_t p = 0; p < pages; ++p)
            engine.sweepPage(t, first_page + p * kPageSize);

        const Cycles sim_start = ctx.now();
        const auto host_start = std::chrono::steady_clock::now();
        for (std::size_t rep = 0; rep < repeats; ++rep)
            for (std::size_t p = 0; p < pages; ++p)
                engine.sweepPage(t, first_page + p * kPageSize);
        const double host_secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - host_start)
                .count();
        const Cycles sim_cycles = ctx.now() - sim_start;

        const double total_pages =
            static_cast<double>(pages) * static_cast<double>(repeats);
        result.host_ns_per_page = host_secs * 1e9 / total_pages;
        result.sim_cycles_per_page =
            static_cast<double>(sim_cycles) / total_pages;
        result.pages_swept = engine.stats().pages_swept;
        result.caps_seen = engine.stats().caps_seen;
    });
    m.run();
    return result;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += ch;
        }
    }
    return out;
}

std::string
metricsJson(const core::RunMetrics &m)
{
    trace::MetricsRegistry reg;
    m.exportTo(reg);
    return reg.toJson(/*indent=*/0);
}

} // namespace crev::benchutil
