#include "bench_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>

#if defined(__linux__)
#include <sched.h>
#endif

#include "base/host_budget.h"
#include "base/simd.h"
#include "core/mutator.h"
#include "revoker/bitmap.h"
#include "revoker/memo.h"
#include "revoker/prescan.h"
#include "revoker/sweep.h"
#include "trace/metrics_registry.h"
#include "workload/spec.h"

namespace crev::benchutil {

namespace {

/**
 * Most recent "host_seconds" per cell name from a trajectory file.
 * Later occurrences overwrite earlier ones, so the newest run entry
 * wins. Tolerant by construction: a missing file or any other text
 * yields an empty (or partial) map and the caller falls back to
 * static estimates.
 */
std::map<std::string, double>
loadMeasuredCosts(const std::string &path)
{
    std::map<std::string, double> costs;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return costs;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    const std::string name_key = "{\"name\": \"";
    const std::string secs_key = "\"host_seconds\": ";
    std::size_t pos = 0;
    while ((pos = text.find(name_key, pos)) != std::string::npos) {
        pos += name_key.size();
        const std::size_t name_end = text.find('"', pos);
        if (name_end == std::string::npos)
            break;
        const std::string name = text.substr(pos, name_end - pos);
        const std::size_t secs = text.find(secs_key, name_end);
        if (secs == std::string::npos)
            break;
        costs[name] =
            std::strtod(text.c_str() + secs + secs_key.size(), nullptr);
        pos = name_end;
    }
    return costs;
}

/** Relative strategy weight from the "<...>/<strategy>" name suffix. */
double
strategyWeight(const std::string &name)
{
    const std::size_t slash = name.rfind('/');
    const std::string strategy =
        slash == std::string::npos ? "" : name.substr(slash + 1);
    if (strategy == "cheriot-filter")
        return 3.5;
    if (strategy == "cherivoke" || strategy == "cornucopia")
        return 2.5;
    if (strategy == "reloaded")
        return 2.0;
    if (strategy == "paint+sync")
        return 1.5;
    return 1.0;
}

/** The "<workload>/..." prefix of a cell name (empty if flat). */
std::string
workloadPrefix(const std::string &name)
{
    const std::size_t slash = name.rfind('/');
    return slash == std::string::npos ? "" : name.substr(0, slash);
}

/**
 * Static cost estimate for cells with no measured history, from the
 * cell-name convention "<workload>/.../<strategy>". Only the ordering
 * matters, so rough relative weights are enough. This is the last
 * resort: measured siblings of the same workload are preferred (see
 * ParallelRunner::run).
 */
double
staticCostEstimate(const std::string &name)
{
    double cost = 1.0;
    if (name.compare(0, 8, "pgbench/") == 0)
        cost = 3.0;
    else if (name.compare(0, 5, "grpc/") == 0)
        cost = 2.0;
    return cost * strategyWeight(name);
}

} // namespace

unsigned
benchThreads()
{
    if (const char *env = std::getenv("CREV_BENCH_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
#if defined(__linux__)
    // hardware_concurrency() reports the machine, not the cpuset this
    // process is confined to; oversubscribing a pinned container makes
    // "parallel" runs strictly slower than serial ones.
    cpu_set_t set;
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const unsigned usable = static_cast<unsigned>(CPU_COUNT(&set));
        if (usable != 0 && (hw == 0 || usable < hw))
            hw = usable;
    }
#endif
    return hw != 0 ? hw : 1;
}

void
ParallelRunner::add(std::string name,
                    std::function<core::RunMetrics()> fn)
{
    cells_.push_back(Cell{std::move(name), std::move(fn)});
}

std::vector<CellResult>
ParallelRunner::run(unsigned threads)
{
    // Workloads memoize lazily-built statics (profile tables); touch
    // them once on this thread so workers only ever read them.
    workload::specProfiles();

    // Longest-expected-first start order. Stable sort with the
    // submission index as tiebreak keeps the order deterministic for
    // any cost map contents. Cost preference: the cell's own newest
    // measured host_seconds, else a sibling-derived estimate (measured
    // siblings of the same workload, rescaled by relative strategy
    // weight), else the static weight table.
    const std::map<std::string, double> measured =
        loadMeasuredCosts(cost_file_);
    std::vector<double> cost(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const std::string &name = cells_[i].name;
        const auto it = measured.find(name);
        if (it != measured.end()) {
            cost[i] = it->second;
            continue;
        }
        const std::string prefix = workloadPrefix(name);
        double unit_sum = 0;
        std::size_t unit_n = 0;
        for (const auto &[mn, secs] : measured) {
            if (workloadPrefix(mn) != prefix)
                continue;
            const double w = strategyWeight(mn);
            if (secs > 0 && w > 0) {
                unit_sum += secs / w;
                ++unit_n;
            }
        }
        cost[i] = unit_n != 0
                      ? (unit_sum / static_cast<double>(unit_n)) *
                            strategyWeight(name)
                      : staticCostEstimate(name);
    }
    std::vector<std::size_t> order(cells_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return cost[a] > cost[b];
                     });

    // Configure the host core-budget arbiter for the duration of the
    // run: the pool's workers are pre-charged, and each machine's
    // *defaulted* lockstep lane count is capped so workers × lanes ×
    // pre-scan stripes never oversubscribe the cpuset. An explicit
    // CREV_PAR_CORES still wins inside the cells (operator override).
    auto &budget = base::HostBudget::instance();
    const unsigned total = benchThreads();
    unsigned workers = threads != 0 ? threads : total;
    if (workers > cells_.size())
        workers = static_cast<unsigned>(cells_.size());
    if (workers == 0)
        workers = 1;
    budget.configure(total, workers,
                     std::max(1u, total / workers));

    auto by_start = parallelMap(
        cells_.size(),
        [&](std::size_t k) {
            const std::size_t i = order[k];
            CellResult r;
            r.name = cells_[i].name;
            const auto start = std::chrono::steady_clock::now();
            r.metrics = cells_[i].fn();
            r.host_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return r;
        },
        threads);

    // Snapshot the arbiter's decisions for the caller, then revert to
    // the unconfigured state so standalone code that runs after the
    // pool (single-machine figure harnesses) is not clamped.
    last_decisions_ = budget.decisions();
    budget.configure(0, 0, 0);

    // Scatter back to submission order — scheduling is invisible in
    // the results.
    std::vector<CellResult> results(cells_.size());
    for (std::size_t k = 0; k < by_start.size(); ++k)
        results[order[k]] = std::move(by_start[k]);
    cells_.clear();
    return results;
}

const char *
sweepRegimeName(SweepRegime r)
{
    switch (r) {
      case SweepRegime::kClean:
        return "clean";
      case SweepRegime::kSparse:
        return "sparse";
      case SweepRegime::kFull:
        return "full";
      case SweepRegime::kRevokeDense:
        return "revoke-dense";
    }
    return "?";
}

SweepRegimeResult
measureSweepRegime(SweepRegime regime, bool host_fast_paths,
                   std::size_t pages, std::size_t repeats, bool memo,
                   bool with_prescan)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kBaseline; // no revoker daemon
    cfg.host_fast_paths = host_fast_paths;
    core::Machine m(cfg);
    revoker::DecodeMemo decode_memo;

    SweepRegimeResult result;
    m.spawnMutator("sweep-harness", 1u << 3, [&](core::Mutator &ctx) {
        // One arena spanning `pages` whole pages (plus alignment
        // slack), faulted in up front so the sweep never demand-zeros.
        const std::size_t arena = (pages + 1) * kPageSize;
        const cap::Capability c = ctx.malloc(arena);
        const Addr first_page = roundUp(c.base, kPageSize);
        const Addr off0 = first_page - c.base;
        for (std::size_t p = 0; p < pages; ++p)
            ctx.store64(c, off0 + p * kPageSize, 1);

        const cap::Capability v = ctx.malloc(64);
        const bool revoke_dense = regime == SweepRegime::kRevokeDense;
        const std::size_t caps_per_page =
            regime == SweepRegime::kClean    ? 0
            : regime == SweepRegime::kSparse ? 8
            : revoke_dense                   ? 64
                                             : kGranulesPerPage;
        const std::size_t stride =
            caps_per_page == 0 ? 0 : kGranulesPerPage / caps_per_page;
        auto armPages = [&] {
            for (std::size_t p = 0; p < pages; ++p)
                for (std::size_t k = 0; k < caps_per_page; ++k)
                    ctx.storeCap(c,
                                 off0 + p * kPageSize +
                                     k * stride * kGranuleSize,
                                 v);
        };
        armPages();

        // Revoke-dense paints the victim, so every probe hits and the
        // sweep clears every tag it finds (a quarantine-heavy epoch).
        // The other regimes leave the local bitmap empty: probes read
        // a zero bit, never clear tags, and every repeat sweeps the
        // same population.
        revoker::RevocationBitmap bitmap(ctx.machine().mmu());
        revoker::SweepEngine engine(ctx.machine().mmu(), bitmap,
                                    host_fast_paths);
        if (memo && host_fast_paths)
            engine.setMemo(&decode_memo);
        sim::SimThread &t = ctx.thread();
        if (revoke_dense)
            bitmap.paint(t, v.base, 64);

        // The shipping fast path always pre-scans its work list
        // before sweeping (Revoker::prescanPages), and that is where
        // both optimisation tiers live: scanPage runs the
        // expand/gather kernels, and the memo's page-fresh test lets
        // the builder skip re-reading unchanged frames across
        // repeats (= epochs here). Drive the same shape — build,
        // sweep, clear — per repeat, inside the timed window.
        const bool prescan_epochs = with_prescan && host_fast_paths;
        revoker::PrescanPipeline prescan;
        std::vector<Addr> page_list;
        if (prescan_epochs) {
            page_list.reserve(pages);
            for (std::size_t p = 0; p < pages; ++p)
                page_list.push_back(first_page + p * kPageSize);
        }
        vm::Mmu &mmu = ctx.machine().mmu();
        auto epochBegin = [&] {
            if (!prescan_epochs)
                return;
            prescan.build(mmu.addressSpace(), bitmap.painted(),
                          page_list, nullptr,
                          memo ? &decode_memo : nullptr,
                          mmu.frameEpoch());
            engine.setPrescan(&prescan);
        };
        auto epochEnd = [&] {
            if (!prescan_epochs)
                return;
            engine.setPrescan(nullptr);
            prescan.clear();
        };

        // One untimed warmup pass: faults the sweep's host code and
        // data paths in so the first timed regime isn't cold.
        for (std::size_t p = 0; p < pages; ++p)
            engine.sweepPage(t, first_page + p * kPageSize);

        // Revoke-dense re-arms the tags before each repeat; only the
        // sweep sections are timed (host and simulated alike), so the
        // sim-cycles determinism check still compares pure sweep work.
        double host_secs = 0;
        Cycles sim_cycles = 0;
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            if (revoke_dense)
                armPages();
            const Cycles sim_start = ctx.now();
            const auto host_start = std::chrono::steady_clock::now();
            epochBegin();
            for (std::size_t p = 0; p < pages; ++p)
                engine.sweepPage(t, first_page + p * kPageSize);
            epochEnd();
            host_secs += std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             host_start)
                             .count();
            sim_cycles += ctx.now() - sim_start;
        }

        const double total_pages =
            static_cast<double>(pages) * static_cast<double>(repeats);
        result.host_ns_per_page = host_secs * 1e9 / total_pages;
        result.sim_cycles_per_page =
            static_cast<double>(sim_cycles) / total_pages;
        result.pages_swept = engine.stats().pages_swept;
        result.caps_seen = engine.stats().caps_seen;
    });
    m.run();
    return result;
}

KernelsAbResult
measureKernelsAb(SweepRegime regime, std::size_t pages,
                 std::size_t repeats)
{
    KernelsAbResult r;
    // Off leg first: forced-scalar kernels, no decode memo — the
    // portable reference path.
    simd::forceLevel(simd::Level::kScalar);
    r.off = measureSweepRegime(regime, /*host_fast_paths=*/true, pages,
                               repeats, /*memo=*/false,
                               /*with_prescan=*/true);
    // On leg: the environment-dispatched kernel level plus the memo.
    simd::refreshFromEnv();
    r.on = measureSweepRegime(regime, /*host_fast_paths=*/true, pages,
                              repeats, /*memo=*/true,
                              /*with_prescan=*/true);
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += ch;
        }
    }
    return out;
}

std::string
metricsJson(const core::RunMetrics &m)
{
    trace::MetricsRegistry reg;
    m.exportTo(reg);
    return reg.toJson(/*indent=*/0);
}

} // namespace crev::benchutil
