/**
 * @file
 * Figure 2: total CPU-time overheads (all cores: application thread
 * plus revoker thread) of Reloaded, Cornucopia, CHERIvoke, and
 * asynchronous quarantine management (Paint+sync).
 *
 * Paper anchor: Reloaded consumes no more CPU time than Cornucopia,
 * sometimes modestly less.
 */

#include "bench_util.h"

using namespace crev;
using benchutil::overhead;

int
main()
{
    benchutil::banner("Figure 2: SPEC CPU-time overheads (all cores)",
                      "paper fig. 2");

    benchutil::SpecRunner runner;
    std::vector<core::Strategy> all{core::Strategy::kBaseline};
    all.insert(all.end(), benchutil::kSafeAndPaint.begin(),
               benchutil::kSafeAndPaint.end());
    runner.prefetchAll(all);

    stats::Table table({"benchmark", "baseline_ms", "paint+sync",
                        "cherivoke", "cornucopia", "reloaded"});

    int rel_not_worse_than_corn = 0;
    int rows = 0;

    for (const auto &profile : workload::specProfiles()) {
        const auto &base =
            runner.run(profile.name, core::Strategy::kBaseline);
        std::vector<std::string> row{
            profile.name,
            stats::Table::fmt(cyclesToMillis(base.cpu_cycles))};
        double corn = 0, rel = 0;
        for (core::Strategy s : benchutil::kSafeAndPaint) {
            const auto &m = runner.run(profile.name, s);
            const double o =
                overhead(static_cast<double>(m.cpu_cycles),
                         static_cast<double>(base.cpu_cycles));
            row.push_back(stats::Table::pct(o));
            if (s == core::Strategy::kCornucopia)
                corn = o;
            if (s == core::Strategy::kReloaded)
                rel = o;
        }
        table.addRow(row);
        ++rows;
        if (rel <= corn + 0.02)
            ++rel_not_worse_than_corn;
    }

    table.print();
    std::printf("\nReloaded CPU time <= Cornucopia (within 2pp) on "
                "%d/%d benchmarks (paper: never more, sometimes "
                "modestly cheaper).\n",
                rel_not_worse_than_corn, rows);
    return 0;
}
