/**
 * @file
 * Shared helpers for the experiment-reproduction bench binaries.
 *
 * Each binary regenerates one table or figure from the paper's
 * evaluation (§5), printing the same rows/series. Absolute numbers are
 * simulated cycles, not Morello hardware measurements — EXPERIMENTS.md
 * records the shape comparison against the paper.
 */

#ifndef CREV_BENCH_BENCH_UTIL_H_
#define CREV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_runner.h"
#include "core/machine.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "workload/spec.h"

namespace crev::benchutil {

/** Strategies most figures compare (baseline is the denominator). */
inline const std::vector<core::Strategy> kSafe = {
    core::Strategy::kCheriVoke, core::Strategy::kCornucopia,
    core::Strategy::kReloaded};

/** Including Paint+sync (fig. 2, 5-7). */
inline const std::vector<core::Strategy> kSafeAndPaint = {
    core::Strategy::kPaintOnly, core::Strategy::kCheriVoke,
    core::Strategy::kCornucopia, core::Strategy::kReloaded};

/** test/baseline - 1, as a ratio. */
inline double
overhead(double test, double baseline)
{
    return baseline > 0 ? test / baseline - 1.0 : 0.0;
}

/**
 * Memoizing runner for the SPEC-like profiles so a bench that needs
 * both the baseline and the test conditions runs each sim once.
 */
class SpecRunner
{
  public:
    const core::RunMetrics &
    run(const std::string &profile, core::Strategy s)
    {
        const std::string key =
            profile + "/" + core::strategyName(s);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            std::fprintf(stderr, "  running %s...\n", key.c_str());
            it = cache_
                     .emplace(key, workload::runSpecOn(
                                       s, workload::specProfile(profile)))
                     .first;
        }
        return it->second;
    }

    /**
     * Fill the cache for @p profiles x @p strategies across the host
     * thread pool. Each cell owns its Machine, so results are
     * bit-identical to serial run() calls — prefetching only changes
     * how long the bench binary takes.
     */
    void
    prefetch(const std::vector<std::string> &profiles,
             const std::vector<core::Strategy> &strategies)
    {
        struct Job
        {
            std::string key;
            const workload::SpecProfile *profile;
            core::Strategy s;
        };
        std::vector<Job> jobs;
        for (const auto &p : profiles)
            for (core::Strategy s : strategies) {
                const std::string key =
                    p + "/" + core::strategyName(s);
                if (cache_.count(key) == 0)
                    jobs.push_back(
                        Job{key, &workload::specProfile(p), s});
            }
        if (jobs.empty())
            return;
        std::fprintf(stderr,
                     "  running %zu spec cells on %u host threads...\n",
                     jobs.size(), benchThreads());
        auto results = parallelMap(jobs.size(), [&](std::size_t i) {
            return workload::runSpecOn(jobs[i].s, *jobs[i].profile);
        });
        for (std::size_t i = 0; i < jobs.size(); ++i)
            cache_.emplace(jobs[i].key, std::move(results[i]));
    }

    /** prefetch() over every profile. */
    void
    prefetchAll(const std::vector<core::Strategy> &strategies)
    {
        std::vector<std::string> names;
        for (const auto &p : workload::specProfiles())
            names.push_back(p.name);
        prefetch(names, strategies);
    }

  private:
    std::map<std::string, core::RunMetrics> cache_;
};

/** Print the standard bench header. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("== %s ==\n", what);
    std::printf("(reproduces %s; simulated Morello-like machine, "
                "workloads scaled ~128x — compare shapes, "
                "not absolute values)\n\n",
                paper_ref);
}

} // namespace crev::benchutil

#endif // CREV_BENCH_BENCH_UTIL_H_
