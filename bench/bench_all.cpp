/**
 * @file
 * The host-performance trajectory bench: runs the union of the
 * fig1-fig9 simulation cells serially and then across the host thread
 * pool, measures the sweep microbench regimes with fast paths on and
 * off, and writes everything to BENCH_TRAJECTORY.json (machine-
 * readable; see DESIGN.md §9 for how to read BENCH_*.json files).
 * The trajectory file *accumulates*: each run appends one entry to
 * the top-level "runs" array, so successive PRs' CI artifacts form a
 * host-performance time series under one stable name instead of a
 * per-PR BENCH_PRn.json. Per-cell metrics are the full
 * MetricsRegistry export (counters/gauges/histograms).
 *
 * Simulated results are identical in every mode — this binary measures
 * how fast the *simulator* runs, and doubles as a regression gate for
 * the fast-path determinism contract (it fails loudly if simulated
 * cycles per page differ between fast and reference sweeps).
 *
 * Usage: bench_all [--quick] [--out FILE] [--label NAME]
 *                  [--threads N] [--intra-cell-threads M]
 *   --quick: small cell set for CI smoke runs.
 *   --label: name recorded for this run's entry (default "local").
 *   --threads: host threads for the parallel e2e leg (default: the
 *     CREV_BENCH_THREADS/affinity-derived benchThreads()).
 *   --intra-cell-threads: lockstep-engine lanes (CREV_PAR_CORES) for
 *     the fast e2e legs and the intra-cell engine comparison
 *     (default 1).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/host_budget.h"
#include "base/simd.h"
#include "bench_runner.h"
#include "bench_util.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "workload/grpc_qps.h"
#include "workload/pgbench.h"
#include "workload/spec.h"

using namespace crev;
using benchutil::CellResult;
using benchutil::ParallelRunner;
using benchutil::SweepRegime;
using benchutil::SweepRegimeResult;

namespace {

struct RegimeRow
{
    SweepRegime regime;
    SweepRegimeResult fast;
    SweepRegimeResult reference;
};

struct KernelsRow
{
    SweepRegime regime;
    benchutil::KernelsAbResult ab;
    bool sim_match = true;
};

void
addCells(ParallelRunner &runner, bool quick)
{
    // SPEC-like profiles (figs 1-4, 9). Quick mode keeps the two
    // fastest revoking profiles and the headline strategies.
    std::vector<std::string> profiles;
    std::vector<core::Strategy> spec_strategies;
    if (quick) {
        profiles = {"hmmer_retro", "astar"};
        spec_strategies = {core::Strategy::kBaseline,
                           core::Strategy::kCornucopia,
                           core::Strategy::kReloaded};
    } else {
        for (const auto &p : workload::specProfiles())
            profiles.push_back(p.name);
        spec_strategies = {core::Strategy::kBaseline};
        spec_strategies.insert(spec_strategies.end(),
                               benchutil::kSafeAndPaint.begin(),
                               benchutil::kSafeAndPaint.end());
    }
    for (const auto &name : profiles)
        for (core::Strategy s : spec_strategies)
            runner.add("spec/" + name + "/" + core::strategyName(s),
                       [s, name] {
                           return workload::runSpecOn(
                               s, workload::specProfile(name));
                       });

    // pgbench (figs 5-7, 9) and gRPC QPS (figs 8-9).
    std::vector<core::Strategy> srv_strategies{
        core::Strategy::kBaseline};
    if (quick) {
        srv_strategies.push_back(core::Strategy::kReloaded);
    } else {
        srv_strategies.insert(srv_strategies.end(),
                              benchutil::kSafeAndPaint.begin(),
                              benchutil::kSafeAndPaint.end());
    }
    for (core::Strategy s : srv_strategies)
        runner.add(std::string("pgbench/") + core::strategyName(s),
                   [s] {
                       workload::PgbenchConfig cfg;
                       return workload::runPgbench(s, cfg).metrics;
                   });
    if (!quick)
        for (core::Strategy s :
             {core::Strategy::kBaseline, core::Strategy::kCheriVoke,
              core::Strategy::kCornucopia, core::Strategy::kReloaded})
            runner.add(std::string("grpc/") + core::strategyName(s),
                       [s] {
                           workload::GrpcConfig cfg;
                           return workload::runGrpcQps(s, cfg).metrics;
                       });
}

double
timedRun(bool quick, unsigned threads, bool host_fast_paths,
         unsigned par_cores, const std::string &cost_file,
         std::vector<CellResult> *results_out,
         base::HostBudget::Decisions *decisions_out = nullptr)
{
    // The cells build their MachineConfigs internally; the env knobs
    // are the global defaults they pick up. Set before any worker
    // exists — parallelMap with 1 worker runs inline on this thread.
    // par_cores selects the engine (DESIGN.md §14): 0 pins the serial
    // token engine (the seed-equivalent reference), >= 1 the lockstep
    // engine with that many lanes.
    setenv("CREV_HOST_FAST_PATHS", host_fast_paths ? "1" : "0", 1);
    char par[16];
    std::snprintf(par, sizeof(par), "%u", par_cores);
    setenv("CREV_PAR_CORES", par, 1);
    ParallelRunner runner;
    runner.setCostFile(cost_file);
    addCells(runner, quick);
    const auto start = std::chrono::steady_clock::now();
    auto results = runner.run(threads);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    setenv("CREV_HOST_FAST_PATHS", "1", 1);
    if (results_out != nullptr)
        *results_out = std::move(results);
    if (decisions_out != nullptr)
        *decisions_out = runner.lastDecisions();
    return secs;
}

/**
 * Previously accumulated run entries from an existing trajectory
 * file: the text between "runs": [ and the final ], trimmed. Empty
 * when the file is missing or not in the trajectory format.
 */
std::string
readPreviousRuns(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    const std::string open = "\"runs\": [";
    const auto begin = text.find(open);
    const auto end = text.rfind(']');
    if (begin == std::string::npos || end == std::string::npos ||
        end <= begin)
        return "";
    std::string runs = text.substr(begin + open.size(),
                                   end - begin - open.size());
    const auto first = runs.find_first_not_of(" \n\t");
    const auto last = runs.find_last_not_of(" \n\t");
    if (first == std::string::npos)
        return "";
    return runs.substr(first, last - first + 1);
}

/** The simulated-result fields compared across host configurations
 *  (and across engines): a summary fingerprint of the run. */
bool
sameMetrics(const core::RunMetrics &a, const core::RunMetrics &b)
{
    return a.wall_cycles == b.wall_cycles &&
           a.cpu_cycles == b.cpu_cycles &&
           a.bus_transactions_total == b.bus_transactions_total &&
           a.peak_rss_pages == b.peak_rss_pages &&
           a.epochs.size() == b.epochs.size() &&
           a.sweep.caps_revoked == b.sweep.caps_revoked;
}

/** Simulated results must be identical across host configurations. */
bool
sameSimResults(const std::vector<CellResult> &a,
               const std::vector<CellResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name ||
            !sameMetrics(a[i].metrics, b[i].metrics)) {
            std::fprintf(stderr,
                         "FAIL: cell %s simulated results differ "
                         "across host configurations\n",
                         a[i].name.c_str());
            return false;
        }
    }
    return true;
}

struct IntraCellResult
{
    std::string cell;
    unsigned lanes = 1;
    double serial_seconds = 0;
    double lockstep_seconds = 0;
    bool match = true;
};

/**
 * Serial token engine vs lockstep engine on the heaviest single cell
 * (DESIGN.md §14): interleaved engine pairs with the minimum host
 * time kept per engine — the same noise treatment as the microbench —
 * and RunMetrics required identical both between engines and across
 * trials of the same engine.
 */
IntraCellResult
measureIntraCell(bool quick, unsigned lanes)
{
    IntraCellResult r;
    r.lanes = lanes;
    // Full mode takes the heaviest cell of the set (omnetpp/reloaded
    // is handoff- and revocation-dense); quick mode a light one.
    const char *profile = quick ? "hmmer_retro" : "omnetpp";
    r.cell = std::string("spec/") + profile + "/reloaded";
    const workload::SpecProfile &prof = workload::specProfile(profile);
    auto run_once = [&prof](unsigned par, double *secs) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%u", par);
        setenv("CREV_PAR_CORES", buf, 1);
        const auto start = std::chrono::steady_clock::now();
        core::RunMetrics m =
            workload::runSpecOn(core::Strategy::kReloaded, prof);
        *secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
        return m;
    };
    // Three pairs even in quick mode: the quick cell's window is only
    // tens of milliseconds, so the min needs more draws to dodge host
    // noise (the CI gate requires speedup >= 1.0).
    const std::size_t pairs = 3;
    core::RunMetrics serial_m, lockstep_m;
    for (std::size_t k = 0; k < pairs; ++k) {
        std::fprintf(stderr,
                     "  intra-cell pair %zu/%zu (%s, %u lanes)...\n",
                     k + 1, pairs, r.cell.c_str(), lanes);
        double ss = 0, ls = 0;
        core::RunMetrics sm = run_once(0, &ss);
        core::RunMetrics lm = run_once(lanes, &ls);
        if (!sameMetrics(sm, lm)) {
            std::fprintf(stderr,
                         "FAIL: %s simulated results differ between "
                         "serial and lockstep engines\n",
                         r.cell.c_str());
            r.match = false;
        }
        if (k == 0) {
            r.serial_seconds = ss;
            r.lockstep_seconds = ls;
            serial_m = std::move(sm);
            lockstep_m = std::move(lm);
        } else {
            r.serial_seconds = std::min(r.serial_seconds, ss);
            r.lockstep_seconds = std::min(r.lockstep_seconds, ls);
            if (!sameMetrics(sm, serial_m) ||
                !sameMetrics(lm, lockstep_m)) {
                std::fprintf(stderr,
                             "FAIL: %s simulated results vary across "
                             "intra-cell trials\n",
                             r.cell.c_str());
                r.match = false;
            }
        }
    }
    return r;
}

struct AllocShardResult
{
    unsigned alloc_cores = 4;
    int iters = 0;
    double single_serial_seconds = 0;
    double single_lockstep_seconds = 0;
    double sharded_serial_seconds = 0;
    double sharded_lockstep_seconds = 0;
    std::uint64_t remote_free_sends = 0;
    bool match = true;
};

/** The cross-core-free regime: a producer allocating on core 0, a
 *  consumer freeing on core 1, so with alloc_cores > 1 every consumer
 *  free rides the remote-dealloc message queues (DESIGN.md §15). */
core::RunMetrics
runXcoreCell(unsigned alloc_cores, unsigned par_cores, int iters)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy.min_bytes = 64 * 1024;
    cfg.alloc_cores = alloc_cores;
    cfg.par_cores = par_cores;
    cfg.seed = 5;
    core::Machine m(cfg);
    auto queue = std::make_shared<std::vector<cap::Capability>>();
    m.spawnMutator("prod", 1u << 0, [=](core::Mutator &ctx) {
        for (int i = 0; i < iters; ++i) {
            cap::Capability c = ctx.malloc(16 << (i % 6));
            ctx.store64(c, 0, static_cast<std::uint64_t>(i));
            queue->push_back(c);
            ctx.compute(150);
        }
    });
    m.spawnMutator("cons", 1u << 1, [=, &m](core::Mutator &ctx) {
        std::size_t taken = 0;
        while (taken < static_cast<std::size_t>(iters)) {
            if (taken < queue->size()) {
                const cap::Capability c = (*queue)[taken++];
                ctx.load64(c, 0);
                ctx.free(c);
                ctx.compute(120);
            } else {
                ctx.compute(400);
            }
        }
        m.heap().drain(ctx.thread());
    });
    m.run();
    return m.metrics();
}

/**
 * Sharded-allocator A/B: the cross-core-free cell at alloc_cores = 1
 * (single-heap reference) and alloc_cores = 4, each under both
 * engines. Engine pairs are interleaved with the minimum host time
 * kept, like the intra-cell comparison; RunMetrics must be identical
 * between engines at each shard count (across shard counts they
 * legitimately differ — that is the simulated topology changing).
 */
AllocShardResult
measureAllocShard(bool quick, unsigned lanes)
{
    AllocShardResult r;
    // Sized so every timed leg is well clear of host scheduling noise
    // (tens of milliseconds at minimum): the pr8-era 400/2000 iteration
    // counts produced 3-4 ms legs whose A/B ratios were pure jitter.
    // check_trajectory.py rejects legs below the emitted
    // min_leg_seconds floor.
    const int iters = quick ? 30000 : 60000;
    r.iters = iters;
    const std::size_t pairs = 3;
    for (const bool sharded : {false, true}) {
        const unsigned ac = sharded ? r.alloc_cores : 1;
        core::RunMetrics serial_m, lockstep_m;
        double best_s = 0, best_l = 0;
        for (std::size_t k = 0; k < pairs; ++k) {
            std::fprintf(stderr,
                         "  alloc-shard pair %zu/%zu (alloc_cores "
                         "%u)...\n",
                         k + 1, pairs, ac);
            auto once = [&](unsigned par, double *secs) {
                const auto start = std::chrono::steady_clock::now();
                core::RunMetrics m = runXcoreCell(ac, par, iters);
                *secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                return m;
            };
            double ss = 0, ls = 0;
            core::RunMetrics sm = once(0, &ss);
            core::RunMetrics lm = once(lanes, &ls);
            if (!sameMetrics(sm, lm) ||
                sm.quarantine.remote_free_sends !=
                    lm.quarantine.remote_free_sends) {
                std::fprintf(stderr,
                             "FAIL: alloc_cores %u simulated results "
                             "differ between engines\n",
                             ac);
                r.match = false;
            }
            if (k == 0) {
                best_s = ss;
                best_l = ls;
                serial_m = std::move(sm);
                lockstep_m = std::move(lm);
            } else {
                best_s = std::min(best_s, ss);
                best_l = std::min(best_l, ls);
                if (!sameMetrics(sm, serial_m) ||
                    !sameMetrics(lm, lockstep_m)) {
                    std::fprintf(stderr,
                                 "FAIL: alloc_cores %u simulated "
                                 "results vary across trials\n",
                                 ac);
                    r.match = false;
                }
            }
        }
        if (sharded) {
            r.sharded_serial_seconds = best_s;
            r.sharded_lockstep_seconds = best_l;
            r.remote_free_sends = serial_m.quarantine.remote_free_sends;
            if (r.remote_free_sends == 0) {
                std::fprintf(stderr,
                             "FAIL: sharded cell drove no remote "
                             "frees\n");
                r.match = false;
            }
        } else {
            r.single_serial_seconds = best_s;
            r.single_lockstep_seconds = best_l;
            if (serial_m.quarantine.remote_free_sends != 0) {
                std::fprintf(stderr,
                             "FAIL: single-heap cell sent remote "
                             "frees\n");
                r.match = false;
            }
        }
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_TRAJECTORY.json";
    std::string label = "local";
    unsigned threads_flag = 0; // 0 = benchThreads()
    unsigned intra_lanes = 1;
    const auto parseCount = [](const char *s) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end == s || *end != '\0' || v == 0 || v > 1024) {
            std::fprintf(stderr, "bench_all: bad thread count '%s'\n",
                         s);
            std::exit(2);
        }
        return static_cast<unsigned>(v);
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc)
            label = argv[++i];
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads_flag = parseCount(argv[++i]);
        else if (std::strcmp(argv[i], "--intra-cell-threads") == 0 &&
                 i + 1 < argc)
            intra_lanes = parseCount(argv[++i]);
    }

    benchutil::banner("Host-performance trajectory (bench_all)",
                      "simulator host perf; no paper figure");

    // --- sweep microbench: fast vs reference, four tag regimes ---
    const std::size_t pages = quick ? 16 : 64;
    const std::size_t repeats = quick ? 10 : 40;
    // Host timings on a shared box are noisy; each measurement window
    // is only tens of milliseconds. Interleave fast and reference
    // measurements over several trials and keep the minimum per side
    // (the least-disturbed run). Simulated cycles must be identical
    // across every trial of either side.
    const std::size_t trials = quick ? 2 : 5;
    std::vector<RegimeRow> regimes;
    bool determinism_ok = true;
    for (SweepRegime r :
         {SweepRegime::kClean, SweepRegime::kSparse, SweepRegime::kFull,
          SweepRegime::kRevokeDense}) {
        RegimeRow row;
        row.regime = r;
        std::fprintf(stderr, "  sweep regime %s (%zu trials)...\n",
                     benchutil::sweepRegimeName(r), trials);
        for (std::size_t k = 0; k < trials; ++k) {
            const auto fast = benchutil::measureSweepRegime(
                r, true, pages, repeats);
            const auto ref = benchutil::measureSweepRegime(
                r, false, pages, repeats);
            if (k == 0) {
                row.fast = fast;
                row.reference = ref;
                continue;
            }
            row.fast.host_ns_per_page = std::min(
                row.fast.host_ns_per_page, fast.host_ns_per_page);
            row.reference.host_ns_per_page =
                std::min(row.reference.host_ns_per_page,
                         ref.host_ns_per_page);
            if (fast.sim_cycles_per_page !=
                    row.fast.sim_cycles_per_page ||
                ref.sim_cycles_per_page !=
                    row.reference.sim_cycles_per_page) {
                std::fprintf(stderr,
                             "FAIL: regime %s simulated cycles vary "
                             "across trials\n",
                             benchutil::sweepRegimeName(r));
                determinism_ok = false;
            }
        }
        if (row.fast.sim_cycles_per_page !=
            row.reference.sim_cycles_per_page) {
            std::fprintf(stderr,
                         "FAIL: regime %s simulated cycles diverge "
                         "(fast %.1f vs reference %.1f)\n",
                         benchutil::sweepRegimeName(r),
                         row.fast.sim_cycles_per_page,
                         row.reference.sim_cycles_per_page);
            determinism_ok = false;
        }
        regimes.push_back(row);
    }

    std::printf("sweep microbench (host ns/page, %zu pages x %zu "
                "repeats):\n",
                pages, repeats);
    std::printf("  %-12s %12s %12s %9s %16s\n", "regime", "fast",
                "reference", "speedup", "sim cycles/page");
    for (const auto &row : regimes)
        std::printf("  %-12s %12.1f %12.1f %8.2fx %16.1f\n",
                    benchutil::sweepRegimeName(row.regime),
                    row.fast.host_ns_per_page,
                    row.reference.host_ns_per_page,
                    row.reference.host_ns_per_page /
                        row.fast.host_ns_per_page,
                    row.fast.sim_cycles_per_page);

    // --- kernels A/B: dispatched SIMD + decode memo vs forced
    // scalar without the memo, same regimes, same noise treatment ---
    std::vector<KernelsRow> kernel_rows;
    bool kernels_ok = true;
    for (SweepRegime r :
         {SweepRegime::kClean, SweepRegime::kSparse, SweepRegime::kFull,
          SweepRegime::kRevokeDense}) {
        KernelsRow row;
        row.regime = r;
        std::fprintf(stderr, "  kernels A/B %s (%zu trials)...\n",
                     benchutil::sweepRegimeName(r), trials);
        for (std::size_t k = 0; k < trials; ++k) {
            const auto ab =
                benchutil::measureKernelsAb(r, pages, repeats);
            if (k == 0) {
                row.ab = ab;
                continue;
            }
            row.ab.on.host_ns_per_page = std::min(
                row.ab.on.host_ns_per_page, ab.on.host_ns_per_page);
            row.ab.off.host_ns_per_page = std::min(
                row.ab.off.host_ns_per_page, ab.off.host_ns_per_page);
            if (ab.on.sim_cycles_per_page !=
                    row.ab.on.sim_cycles_per_page ||
                ab.off.sim_cycles_per_page !=
                    row.ab.off.sim_cycles_per_page) {
                std::fprintf(stderr,
                             "FAIL: kernels %s simulated cycles vary "
                             "across trials\n",
                             benchutil::sweepRegimeName(r));
                row.sim_match = false;
            }
        }
        if (!row.ab.simMatches()) {
            std::fprintf(stderr,
                         "FAIL: kernels %s simulated results diverge "
                         "between scalar and dispatched legs\n",
                         benchutil::sweepRegimeName(r));
            row.sim_match = false;
        }
        kernels_ok = kernels_ok && row.sim_match;
        kernel_rows.push_back(row);
    }
    determinism_ok = determinism_ok && kernels_ok;

    std::printf("\nkernel A/B (%s dispatch + decode memo vs scalar, "
                "host ns/page):\n",
                simd::levelName(simd::level()));
    std::printf("  %-12s %12s %12s %9s\n", "regime", "kernels",
                "scalar", "speedup");
    for (const auto &row : kernel_rows)
        std::printf("  %-12s %12.1f %12.1f %8.2fx\n",
                    benchutil::sweepRegimeName(row.regime),
                    row.ab.on.host_ns_per_page,
                    row.ab.off.host_ns_per_page, row.ab.hostSpeedup());

    // --- end-to-end cell set, three host configurations ---
    // reference-serial is the seed-equivalent host behaviour (no fast
    // paths, one thread, serial token engine); fast-serial isolates
    // the fast-path + lockstep-engine gain; fast-parallel adds the
    // thread pool. Simulated results must be identical in all three.
    // Two interleaved legs, minimum kept per configuration — the same
    // noise treatment as the microbench.
    const unsigned threads = threads_flag != 0
                                 ? threads_flag
                                 : benchutil::benchThreads();
    const std::size_t legs = 2;
    double ref_serial_secs = 0, serial_secs = 0, parallel_secs = 0;
    std::vector<CellResult> ref_cells, cells;
    base::HostBudget::Decisions arbiter;
    for (std::size_t leg = 0; leg < legs; ++leg) {
        std::fprintf(stderr,
                     "  e2e leg %zu/%zu: serial, fast paths off...\n",
                     leg + 1, legs);
        std::vector<CellResult> rc;
        const double r = timedRun(quick, 1, false, 0, out_path, &rc);
        std::fprintf(stderr,
                     "  e2e leg %zu/%zu: serial, fast paths on...\n",
                     leg + 1, legs);
        const double s =
            timedRun(quick, 1, true, intra_lanes, out_path, nullptr);
        std::fprintf(stderr,
                     "  e2e leg %zu/%zu: %u host threads...\n",
                     leg + 1, legs, threads);
        std::vector<CellResult> pc;
        const double p = timedRun(quick, threads, true, intra_lanes,
                                  out_path, &pc, &arbiter);
        determinism_ok = determinism_ok && sameSimResults(rc, pc);
        if (leg == 0) {
            ref_serial_secs = r;
            serial_secs = s;
            parallel_secs = p;
            ref_cells = std::move(rc);
            cells = std::move(pc);
        } else {
            ref_serial_secs = std::min(ref_serial_secs, r);
            serial_secs = std::min(serial_secs, s);
            parallel_secs = std::min(parallel_secs, p);
            determinism_ok =
                determinism_ok && sameSimResults(ref_cells, rc);
        }
    }

    std::printf("\nend-to-end cell set (%zu cells):\n", cells.size());
    std::printf("  reference serial (seed-equivalent): %.2fs\n",
                ref_serial_secs);
    std::printf("  fast-path serial:                   %.2fs (%.2fx)\n",
                serial_secs, ref_serial_secs / serial_secs);
    std::printf("  fast-path parallel (%2u threads):    %.2fs (%.2fx "
                "vs reference)\n",
                threads, parallel_secs,
                ref_serial_secs / parallel_secs);
    std::printf("  arbiter: %u slots (%u workers pre-charged, lane "
                "cap %u), %llu/%llu transient slots granted over "
                "%llu requests (%llu clamped)\n",
                arbiter.total_slots, arbiter.base_in_use,
                arbiter.lane_cap,
                static_cast<unsigned long long>(arbiter.granted),
                static_cast<unsigned long long>(arbiter.wanted),
                static_cast<unsigned long long>(arbiter.requests),
                static_cast<unsigned long long>(arbiter.clamped));

    // --- intra-cell engine comparison (DESIGN.md §14) ---
    std::fprintf(stderr, "  intra-cell engine comparison...\n");
    const IntraCellResult intra = measureIntraCell(quick, intra_lanes);
    determinism_ok = determinism_ok && intra.match;
    std::printf("\nintra-cell engine comparison (%s):\n",
                intra.cell.c_str());
    std::printf("  serial token engine:       %.2fs\n",
                intra.serial_seconds);
    std::printf("  lockstep engine (%u lane%s): %.2fs (%.2fx)\n",
                intra.lanes, intra.lanes == 1 ? "" : "s",
                intra.lockstep_seconds,
                intra.serial_seconds / intra.lockstep_seconds);

    // --- sharded-allocator A/B (DESIGN.md §15) ---
    std::fprintf(stderr, "  sharded-allocator comparison...\n");
    const AllocShardResult ashard = measureAllocShard(quick, intra_lanes);
    determinism_ok = determinism_ok && ashard.match;
    std::printf("\nsharded allocator (cross-core producer/consumer, "
                "alloc_cores 1 vs %u):\n",
                ashard.alloc_cores);
    std::printf("  single heap:  serial %.2fs, lockstep %.2fs\n",
                ashard.single_serial_seconds,
                ashard.single_lockstep_seconds);
    std::printf("  %u shards:     serial %.2fs, lockstep %.2fs "
                "(%llu remote frees)\n",
                ashard.alloc_cores, ashard.sharded_serial_seconds,
                ashard.sharded_lockstep_seconds,
                static_cast<unsigned long long>(
                    ashard.remote_free_sends));

    // --- BENCH_TRAJECTORY.json (accumulating) ---
    const std::string prev_runs = readPreviousRuns(out_path);
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_all\",\n");
    std::fprintf(f, "  \"runs\": [\n");
    if (!prev_runs.empty())
        std::fprintf(f, "    %s,\n", prev_runs.c_str());
    std::fprintf(f, "    {\n      \"label\": \"%s\",\n",
                 benchutil::jsonEscape(label).c_str());
    std::fprintf(f, "      \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "      \"host_threads\": %u,\n", threads);
    std::fprintf(f, "      \"sweep_microbench\": [\n");
    for (std::size_t i = 0; i < regimes.size(); ++i) {
        const auto &row = regimes[i];
        std::fprintf(
            f,
            "        {\"regime\": \"%s\", "
            "\"fast_ns_per_page\": %.2f, "
            "\"reference_ns_per_page\": %.2f, "
            "\"host_speedup\": %.3f, "
            "\"sim_cycles_per_page\": %.2f, "
            "\"sim_cycles_match\": %s}%s\n",
            benchutil::sweepRegimeName(row.regime),
            row.fast.host_ns_per_page,
            row.reference.host_ns_per_page,
            row.reference.host_ns_per_page / row.fast.host_ns_per_page,
            row.fast.sim_cycles_per_page,
            row.fast.sim_cycles_per_page ==
                    row.reference.sim_cycles_per_page
                ? "true"
                : "false",
            i + 1 < regimes.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    // Record-level host_speedup aggregates across regimes (total off
    // ns over total on ns): the gated number is dominated by the
    // regimes with real tag work, so a noise-sized clean-regime ratio
    // cannot flip the gate.
    double kernels_on_ns = 0, kernels_off_ns = 0;
    for (const auto &row : kernel_rows) {
        kernels_on_ns += row.ab.on.host_ns_per_page;
        kernels_off_ns += row.ab.off.host_ns_per_page;
    }
    std::fprintf(f, "      \"kernels\": {\"level\": \"%s\", ",
                 benchutil::jsonEscape(simd::levelName(simd::level()))
                     .c_str());
    std::fprintf(f, "\"host_speedup\": %.3f, ",
                 kernels_on_ns > 0 ? kernels_off_ns / kernels_on_ns
                                   : 0.0);
    std::fprintf(f, "\"sim_results_match\": %s, \"legs\": [\n",
                 kernels_ok ? "true" : "false");
    for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
        const auto &row = kernel_rows[i];
        std::fprintf(
            f,
            "        {\"regime\": \"%s\", "
            "\"on_ns_per_page\": %.2f, "
            "\"off_ns_per_page\": %.2f, "
            "\"host_speedup\": %.3f, "
            "\"sim_cycles_per_page\": %.2f, "
            "\"sim_cycles_match\": %s}%s\n",
            benchutil::sweepRegimeName(row.regime),
            row.ab.on.host_ns_per_page, row.ab.off.host_ns_per_page,
            row.ab.hostSpeedup(), row.ab.on.sim_cycles_per_page,
            row.sim_match ? "true" : "false",
            i + 1 < kernel_rows.size() ? "," : "");
    }
    std::fprintf(f, "      ]},\n");
    std::fprintf(f,
                 "      \"arbiter\": {\"total_slots\": %u, "
                 "\"base_in_use\": %u, "
                 "\"lane_cap\": %u, "
                 "\"requests\": %llu, "
                 "\"wanted\": %llu, "
                 "\"granted\": %llu, "
                 "\"clamped\": %llu},\n",
                 arbiter.total_slots, arbiter.base_in_use,
                 arbiter.lane_cap,
                 static_cast<unsigned long long>(arbiter.requests),
                 static_cast<unsigned long long>(arbiter.wanted),
                 static_cast<unsigned long long>(arbiter.granted),
                 static_cast<unsigned long long>(arbiter.clamped));
    std::fprintf(f,
                 "      \"end_to_end\": {\"cells\": %zu, "
                 "\"reference_serial_seconds\": %.3f, "
                 "\"fast_serial_seconds\": %.3f, "
                 "\"fast_parallel_seconds\": %.3f, "
                 "\"fast_path_speedup\": %.3f, "
                 "\"parallel_speedup\": %.3f, "
                 "\"total_speedup\": %.3f, "
                 "\"sim_results_match\": %s},\n",
                 cells.size(), ref_serial_secs, serial_secs,
                 parallel_secs, ref_serial_secs / serial_secs,
                 serial_secs / parallel_secs,
                 ref_serial_secs / parallel_secs,
                 determinism_ok ? "true" : "false");
    std::fprintf(f,
                 "      \"intra_cell\": {\"cell\": \"%s\", "
                 "\"lanes\": %u, "
                 "\"serial_seconds\": %.3f, "
                 "\"lockstep_seconds\": %.3f, "
                 "\"intra_cell_speedup\": %.3f, "
                 "\"sim_results_match\": %s},\n",
                 benchutil::jsonEscape(intra.cell).c_str(),
                 intra.lanes, intra.serial_seconds,
                 intra.lockstep_seconds,
                 intra.serial_seconds / intra.lockstep_seconds,
                 intra.match ? "true" : "false");
    std::fprintf(f,
                 "      \"alloc_shard\": "
                 "{\"regime\": \"xcore_producer_consumer\", "
                 "\"alloc_cores\": %u, "
                 "\"iters\": %d, "
                 "\"min_leg_seconds\": %.3f, "
                 "\"single_serial_seconds\": %.3f, "
                 "\"single_lockstep_seconds\": %.3f, "
                 "\"sharded_serial_seconds\": %.3f, "
                 "\"sharded_lockstep_seconds\": %.3f, "
                 "\"remote_free_sends\": %llu, "
                 "\"sim_results_match\": %s},\n",
                 ashard.alloc_cores, ashard.iters, 0.02,
                 ashard.single_serial_seconds,
                 ashard.single_lockstep_seconds,
                 ashard.sharded_serial_seconds,
                 ashard.sharded_lockstep_seconds,
                 static_cast<unsigned long long>(
                     ashard.remote_free_sends),
                 ashard.match ? "true" : "false");
    std::fprintf(f, "      \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i)
        std::fprintf(f,
                     "        {\"name\": \"%s\", "
                     "\"host_seconds\": %.4f, "
                     "\"metrics\": %s}%s\n",
                     benchutil::jsonEscape(cells[i].name).c_str(),
                     cells[i].host_seconds,
                     benchutil::metricsJson(cells[i].metrics).c_str(),
                     i + 1 < cells.size() ? "," : "");
    std::fprintf(f, "      ]\n    }\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%s run entries)\n", out_path.c_str(),
                prev_runs.empty() ? "1" : "appended to prior");

    if (!determinism_ok) {
        std::fprintf(stderr,
                     "bench_all: fast-path determinism violated\n");
        return 1;
    }
    return 0;
}
