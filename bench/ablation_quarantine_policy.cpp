/**
 * @file
 * Ablation (paper §7.2): quarantine policy tuning. Sweeps the
 * quarantine:allocated-heap ratio and the minimum quarantine size,
 * showing the trade-off the paper describes: bigger quarantines mean
 * fewer (but individually no cheaper) revocations and more memory
 * held; smaller ones revoke constantly.
 */

#include "bench_util.h"

using namespace crev;

namespace {

core::RunMetrics
runWith(double ratio, std::size_t min_bytes)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy.alloc_ratio = ratio;
    cfg.policy.min_bytes = min_bytes;
    core::Machine m(cfg);
    workload::runSpec(m, workload::specProfile("xalancbmk"));
    return m.metrics();
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: quarantine policy tuning (Reloaded, "
                      "xalancbmk)",
                      "paper §7.2");

    stats::Table table({"ratio", "min_KiB", "epochs", "wall_ms",
                        "bus_Mtx", "peak_rss_pages"});

    const std::size_t kMin = 64 * 1024;
    for (double ratio : {1.0 / 6.0, 1.0 / 3.0, 2.0 / 3.0}) {
        std::fprintf(stderr, "  running ratio=%.3f...\n", ratio);
        const auto m = runWith(ratio, kMin);
        table.addRow({stats::Table::fmt(ratio, 3),
                      std::to_string(kMin / 1024),
                      std::to_string(m.epochs.size()),
                      stats::Table::fmt(cyclesToMillis(m.wall_cycles)),
                      stats::Table::fmt(
                          static_cast<double>(
                              m.bus_transactions_total) /
                              1e6,
                          2),
                      std::to_string(m.peak_rss_pages)});
    }
    for (std::size_t min_b : {16u * 1024u, 256u * 1024u}) {
        std::fprintf(stderr, "  running min=%zu KiB...\n",
                     min_b / 1024);
        const auto m = runWith(1.0 / 3.0, min_b);
        table.addRow({stats::Table::fmt(1.0 / 3.0, 3),
                      std::to_string(min_b / 1024),
                      std::to_string(m.epochs.size()),
                      stats::Table::fmt(cyclesToMillis(m.wall_cycles)),
                      stats::Table::fmt(
                          static_cast<double>(
                              m.bus_transactions_total) /
                              1e6,
                          2),
                      std::to_string(m.peak_rss_pages)});
    }

    table.print();
    std::printf("\nExpected shape: larger ratios => fewer epochs, "
                "less total sweep traffic, higher peak RSS; and vice "
                "versa.\n");
    return 0;
}
