/**
 * @file
 * Figure 1: wall-clock overheads of Reloaded, Cornucopia, and
 * CHERIvoke over the spatially-safe baseline, per SPEC-like
 * benchmark, plus the geomean over revocation-engaging benchmarks.
 *
 * Paper anchors: worst cases xalancbmk 29.4% (Reloaded) vs 29.7%
 * (Cornucopia) and omnetpp 23.1% vs 24.8%; bzip2 and sjeng do not
 * engage revocation.
 */

#include "bench_util.h"

using namespace crev;
using benchutil::overhead;

int
main()
{
    benchutil::banner("Figure 1: SPEC CPU2006 INT wall-clock overheads",
                      "paper fig. 1");

    benchutil::SpecRunner runner;
    std::vector<core::Strategy> all{core::Strategy::kBaseline};
    all.insert(all.end(), benchutil::kSafe.begin(),
               benchutil::kSafe.end());
    runner.prefetchAll(all);

    stats::Table table({"benchmark", "baseline_ms", "cherivoke",
                        "cornucopia", "reloaded", "epochs(rel)"});

    std::map<std::string, std::vector<double>> ovh_by_strategy;

    for (const auto &profile : workload::specProfiles()) {
        const auto &base =
            runner.run(profile.name, core::Strategy::kBaseline);
        std::vector<std::string> row{
            profile.name,
            stats::Table::fmt(cyclesToMillis(base.wall_cycles))};
        std::size_t rel_epochs = 0;
        for (core::Strategy s : benchutil::kSafe) {
            const auto &m = runner.run(profile.name, s);
            const double o = overhead(
                static_cast<double>(m.wall_cycles),
                static_cast<double>(base.wall_cycles));
            row.push_back(stats::Table::pct(o));
            if (!m.epochs.empty())
                ovh_by_strategy[core::strategyName(s)].push_back(1.0 +
                                                                 o);
            if (s == core::Strategy::kReloaded)
                rel_epochs = m.epochs.size();
        }
        row.push_back(std::to_string(rel_epochs));
        table.addRow(row);
    }

    // Geomean over benchmarks that engage revocation (bzip2 and sjeng
    // are excluded, as in the paper).
    std::vector<std::string> geo{"geomean(revoking)", "-"};
    for (core::Strategy s : benchutil::kSafe) {
        const auto &v = ovh_by_strategy[core::strategyName(s)];
        geo.push_back(stats::Table::pct(stats::geomean(v) - 1.0));
    }
    geo.push_back("-");
    table.addRow(geo);

    table.print();
    std::printf("\nExpected shape: Reloaded ~= Cornucopia everywhere; "
                "xalancbmk and omnetpp are the worst cases; bzip2 and "
                "sjeng engage no revocation (0 epochs).\n");
    return 0;
}
