/**
 * @file
 * Ablation (paper §6.3): Reloaded's per-page trap-based load barrier
 * vs a CHERIoT-style per-load inline filter on the same workloads.
 *
 * The trade the paper describes: the filter eliminates trap machinery
 * and (in CHERIoT, with tightly-coupled bitmap memory) the UAF window,
 * but on an MMU-class machine it taxes *every* tagged capability load
 * with a bitmap probe through the cache hierarchy, where Reloaded
 * pays only one page sweep per page per epoch.
 */

#include "bench_util.h"
#include "workload/pgbench.h"

using namespace crev;
using benchutil::overhead;

int
main()
{
    benchutil::banner(
        "Ablation: load barrier (Reloaded) vs inline load filter "
        "(CHERIoT-style)",
        "paper §6.3");

    stats::Table table({"workload", "strategy", "wall_ovh", "cpu_ovh",
                        "bus_ovh", "worst_stw_us"});

    // Pointer-chase-heavy SPEC rows: many capability loads, so the
    // per-load probe tax shows.
    benchutil::SpecRunner runner;
    for (const auto &name : {"xalancbmk", "omnetpp"}) {
        const auto &base = runner.run(name, core::Strategy::kBaseline);
        for (core::Strategy s : {core::Strategy::kReloaded,
                                 core::Strategy::kCheriotFilter}) {
            const auto &m = runner.run(name, s);
            double worst = 0;
            for (const auto &e : m.epochs)
                worst = std::max(worst,
                                 cyclesToMicros(e.stw_duration));
            table.addRow(
                {name, core::strategyName(s),
                 stats::Table::pct(overhead(
                     static_cast<double>(m.wall_cycles),
                     static_cast<double>(base.wall_cycles))),
                 stats::Table::pct(overhead(
                     static_cast<double>(m.cpu_cycles),
                     static_cast<double>(base.cpu_cycles))),
                 stats::Table::pct(overhead(
                     static_cast<double>(m.bus_transactions_total),
                     static_cast<double>(
                         base.bus_transactions_total))),
                 stats::Table::fmt(worst, 1)});
        }
    }

    // The latency-sensitive row.
    {
        workload::PgbenchConfig cfg;
        std::fprintf(stderr, "  running pgbench/baseline...\n");
        const auto base =
            workload::runPgbench(core::Strategy::kBaseline, cfg);
        for (core::Strategy s : {core::Strategy::kReloaded,
                                 core::Strategy::kCheriotFilter}) {
            std::fprintf(stderr, "  running pgbench/%s...\n",
                         core::strategyName(s));
            const auto r = workload::runPgbench(s, cfg);
            double worst = 0;
            for (const auto &e : r.metrics.epochs)
                worst = std::max(worst,
                                 cyclesToMicros(e.stw_duration));
            table.addRow(
                {"pgbench", core::strategyName(s),
                 stats::Table::pct(overhead(
                     static_cast<double>(r.metrics.wall_cycles),
                     static_cast<double>(base.metrics.wall_cycles))),
                 stats::Table::pct(overhead(
                     static_cast<double>(r.metrics.cpu_cycles),
                     static_cast<double>(base.metrics.cpu_cycles))),
                 stats::Table::pct(overhead(
                     static_cast<double>(
                         r.metrics.bus_transactions_total),
                     static_cast<double>(
                         base.metrics.bus_transactions_total))),
                 stats::Table::fmt(worst, 1)});
        }
    }

    table.print();
    std::printf(
        "\nExpected shape: the filter's STW is as small as "
        "Reloaded's (neither re-sweeps), but the filter shifts cost "
        "onto capability-load-heavy mutators (per-load probes), "
        "where Reloaded pays per page per epoch.\n");
    return 0;
}
