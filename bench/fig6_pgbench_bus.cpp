/**
 * @file
 * Figure 6: normalized bus access overheads for pgbench, total and
 * on the application core alone.
 *
 * Paper anchor: Reloaded incurs less than half the bus-traffic
 * overhead of Cornucopia, while only slightly increasing traffic on
 * the application core — evidence that Cornucopia revisits
 * approximately all pages with the world stopped.
 */

#include "bench_util.h"
#include "workload/pgbench.h"

using namespace crev;
using benchutil::overhead;

namespace {

/** Bus transactions on the application core (3, per the pinning). */
std::uint64_t
appCoreTx(const core::RunMetrics &m)
{
    return m.core_mem.at(3).busTransactions();
}

} // namespace

int
main()
{
    benchutil::banner("Figure 6: pgbench normalized bus overheads",
                      "paper fig. 6");

    workload::PgbenchConfig cfg;
    const auto base =
        workload::runPgbench(core::Strategy::kBaseline, cfg);

    stats::Table table(
        {"strategy", "bus_total", "bus_app_core", "abs_total_tx"});
    table.addRow({"baseline", "-", "-",
                  std::to_string(base.metrics.bus_transactions_total)});

    double corn_ovh = 0, rel_ovh = 0;
    for (core::Strategy s : benchutil::kSafeAndPaint) {
        std::fprintf(stderr, "  running pgbench/%s...\n",
                     core::strategyName(s));
        const auto r = workload::runPgbench(s, cfg);
        const double total_ovh = overhead(
            static_cast<double>(r.metrics.bus_transactions_total),
            static_cast<double>(base.metrics.bus_transactions_total));
        const double app_ovh =
            overhead(static_cast<double>(appCoreTx(r.metrics)),
                     static_cast<double>(appCoreTx(base.metrics)));
        table.addRow(
            {core::strategyName(s), stats::Table::pct(total_ovh),
             stats::Table::pct(app_ovh),
             std::to_string(r.metrics.bus_transactions_total)});
        if (s == core::Strategy::kCornucopia)
            corn_ovh = total_ovh;
        if (s == core::Strategy::kReloaded)
            rel_ovh = total_ovh;
    }

    table.print();
    std::printf("\nReloaded total bus overhead is %s of Cornucopia's "
                "(paper: < 50%%).\n",
                corn_ovh > 0
                    ? stats::Table::pct(rel_ovh / corn_ovh).c_str()
                    : "n/a");
    return 0;
}
