/**
 * @file
 * Figure 3: ratio of peak memory footprint (RSS) between each test
 * condition and the baseline for a representative subset of
 * benchmarks, sorted descending by baseline peak RSS.
 *
 * Paper anchors: the general policy target is 33% of the heap in
 * quarantine (dashed line in the figure); Reloaded's impact is nearly
 * identical to Cornucopia's; benchmarks that free heavily while
 * revocation is in flight (libquantum, omnetpp, xalancbmk) overshoot
 * the target, while CHERIvoke hews closer to it; gobmk and hmmer are
 * dominated by the scaled minimum-quarantine floor.
 */

#include <algorithm>

#include "bench_util.h"

using namespace crev;

int
main()
{
    benchutil::banner(
        "Figure 3: peak RSS ratio (test / no-revocation baseline)",
        "paper fig. 3");

    // Representative subset, as in the paper's figure.
    std::vector<std::string> names = {"xalancbmk", "omnetpp",
                                      "libquantum", "astar",
                                      "gobmk",     "hmmer_nph3"};

    benchutil::SpecRunner runner;
    std::vector<core::Strategy> all{core::Strategy::kBaseline};
    all.insert(all.end(), benchutil::kSafe.begin(),
               benchutil::kSafe.end());
    runner.prefetch(names, all);

    // Sort descending by baseline RSS (MiB), as the paper does.
    std::vector<std::pair<double, std::string>> order;
    for (const auto &n : names) {
        const auto &base = runner.run(n, core::Strategy::kBaseline);
        order.push_back(
            {static_cast<double>(base.peak_rss_pages) * 4096.0 /
                 (1024.0 * 1024.0),
             n});
    }
    std::sort(order.rbegin(), order.rend());

    stats::Table table({"benchmark", "baseline_MiB", "cherivoke",
                        "cornucopia", "reloaded", "reloaded_quar%"});
    for (const auto &[mib, n] : order) {
        const auto &base = runner.run(n, core::Strategy::kBaseline);
        std::vector<std::string> row{n, stats::Table::fmt(mib, 2)};
        for (core::Strategy s : benchutil::kSafe) {
            const auto &m = runner.run(n, s);
            row.push_back(stats::Table::fmt(
                static_cast<double>(m.peak_rss_pages) /
                    static_cast<double>(base.peak_rss_pages),
                3));
        }
        // Mean quarantine at trigger relative to live heap: the
        // policy targets 33%.
        const auto &rel = runner.run(n, core::Strategy::kReloaded);
        const double q =
            rel.quarantine.meanAllocAtTrigger() > 0
                ? rel.quarantine.meanQuarantineAtTrigger() /
                      rel.quarantine.meanAllocAtTrigger()
                : 0.0;
        row.push_back(stats::Table::pct(q));
        table.addRow(row);
    }

    table.print();
    std::printf("\nPolicy target: quarantine = 33%% of allocated heap "
                "(ratio ~1.33 when slab reuse is perfect). Small-heap "
                "benchmarks are floored by the scaled 64 KiB minimum "
                "quarantine (paper: 8 MiB).\n");
    return 0;
}
