/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths:
 * capability compression, bitmap painting, page sweeping, cache
 * accesses, and the simulated allocator. These measure *host*
 * performance of the simulator itself (how fast experiments run),
 * complementing the figure/table binaries which measure *simulated*
 * behaviour.
 */

#include <benchmark/benchmark.h>

#include "cap/compression.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "mem/cache.h"
#include "workload/spec.h"

namespace {

using namespace crev;

void
BM_CapEncodeDecode(benchmark::State &state)
{
    Rng rng(1);
    std::vector<cap::Capability> caps;
    for (int i = 0; i < 256; ++i) {
        const Addr len = 16 + rng.below(1 << 16);
        const Addr base = roundUp(0x4000'0000 + rng.below(1u << 28),
                                  cap::representableAlignment(len));
        cap::Capability c;
        c.base = base;
        c.top = base + cap::representableLength(len);
        c.address = base;
        c.tag = true;
        caps.push_back(c);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const cap::CapBits bits = cap::encode(caps[i & 255]);
        benchmark::DoNotOptimize(cap::decode(bits, true));
        ++i;
    }
}
BENCHMARK(BM_CapEncodeDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheConfig{32 * 1024, 4});
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20), rng.chance(0.3)));
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatedMallocFree(benchmark::State &state)
{
    // Host cost of one simulated malloc+free round trip (baseline
    // machine, no revocation).
    const auto total = static_cast<std::uint64_t>(state.max_iterations);
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kBaseline;
    core::Machine m(cfg);
    std::uint64_t done = 0;
    m.spawnMutator("app", 1u << 3, [&](core::Mutator &ctx) {
        for (std::uint64_t i = 0; i < total; ++i) {
            auto c = ctx.malloc(64);
            ctx.free(c);
            ++done;
        }
    });
    // Drive the machine manually inside the timing loop.
    auto start = std::chrono::steady_clock::now();
    m.run();
    auto elapsed = std::chrono::steady_clock::now() - start;
    const double per_iter =
        std::chrono::duration<double>(elapsed).count() /
        static_cast<double>(total);
    for (auto _ : state) {
        // Report the measured per-op cost for each iteration.
        benchmark::DoNotOptimize(done);
    }
    state.SetIterationTime(per_iter);
    state.counters["sim_alloc_free_ns"] = per_iter * 1e9;
}
BENCHMARK(BM_SimulatedMallocFree)->Iterations(100000);

void
BM_SweepThroughput(benchmark::State &state)
{
    // Pages swept per host-second under Reloaded on a churn-heavy
    // profile; reported as a counter.
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy = workload::specPolicy();
    core::Machine m(cfg);
    auto profile = workload::specProfile("hmmer_retro");
    auto start = std::chrono::steady_clock::now();
    workload::runSpec(m, profile);
    auto elapsed = std::chrono::steady_clock::now() - start;
    const auto metrics = m.metrics();
    for (auto _ : state)
        benchmark::DoNotOptimize(metrics.sweep.pages_swept);
    state.counters["pages_swept_per_host_sec"] =
        static_cast<double>(metrics.sweep.pages_swept) /
        std::chrono::duration<double>(elapsed).count();
}
BENCHMARK(BM_SweepThroughput)->Iterations(1);

} // namespace
