/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths:
 * capability compression, bitmap painting, page sweeping, cache
 * accesses, and the simulated allocator. These measure *host*
 * performance of the simulator itself (how fast experiments run),
 * complementing the figure/table binaries which measure *simulated*
 * behaviour.
 */

#include <benchmark/benchmark.h>

#include "bench_runner.h"
#include "cap/compression.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "mem/cache.h"
#include "workload/spec.h"

namespace {

using namespace crev;

void
BM_CapEncodeDecode(benchmark::State &state)
{
    Rng rng(1);
    std::vector<cap::Capability> caps;
    for (int i = 0; i < 256; ++i) {
        const Addr len = 16 + rng.below(1 << 16);
        const Addr base = roundUp(0x4000'0000 + rng.below(1u << 28),
                                  cap::representableAlignment(len));
        cap::Capability c;
        c.base = base;
        c.top = base + cap::representableLength(len);
        c.address = base;
        c.tag = true;
        caps.push_back(c);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const cap::CapBits bits = cap::encode(caps[i & 255]);
        benchmark::DoNotOptimize(cap::decode(bits, true));
        ++i;
    }
}
BENCHMARK(BM_CapEncodeDecode);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheConfig{32 * 1024, 4});
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.below(1 << 20), rng.chance(0.3)));
}
BENCHMARK(BM_CacheAccess);

void
BM_SimulatedMallocFree(benchmark::State &state)
{
    // Host cost of one simulated malloc+free round trip (baseline
    // machine, no revocation).
    const auto total = static_cast<std::uint64_t>(state.max_iterations);
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kBaseline;
    core::Machine m(cfg);
    std::uint64_t done = 0;
    m.spawnMutator("app", 1u << 3, [&](core::Mutator &ctx) {
        for (std::uint64_t i = 0; i < total; ++i) {
            auto c = ctx.malloc(64);
            ctx.free(c);
            ++done;
        }
    });
    // Drive the machine manually inside the timing loop.
    auto start = std::chrono::steady_clock::now();
    m.run();
    auto elapsed = std::chrono::steady_clock::now() - start;
    const double per_iter =
        std::chrono::duration<double>(elapsed).count() /
        static_cast<double>(total);
    for (auto _ : state) {
        // Report the measured per-op cost for each iteration.
        benchmark::DoNotOptimize(done);
    }
    state.SetIterationTime(per_iter);
    state.counters["sim_alloc_free_ns"] = per_iter * 1e9;
}
BENCHMARK(BM_SimulatedMallocFree)->Iterations(100000);

void
BM_SweepThroughput(benchmark::State &state)
{
    // Pages swept per host-second under Reloaded on a churn-heavy
    // profile; reported as a counter.
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy = workload::specPolicy();
    core::Machine m(cfg);
    auto profile = workload::specProfile("hmmer_retro");
    auto start = std::chrono::steady_clock::now();
    workload::runSpec(m, profile);
    auto elapsed = std::chrono::steady_clock::now() - start;
    const auto metrics = m.metrics();
    for (auto _ : state)
        benchmark::DoNotOptimize(metrics.sweep.pages_swept);
    state.counters["pages_swept_per_host_sec"] =
        static_cast<double>(metrics.sweep.pages_swept) /
        std::chrono::duration<double>(elapsed).count();
}
BENCHMARK(BM_SweepThroughput)->Iterations(1);

void
BM_SweepPageRegime(benchmark::State &state,
                   benchutil::SweepRegime regime)
{
    // Host cost of sweeping one page with the fast path on, vs the
    // reference per-granule loop; simulated cycles per page must be
    // identical for both (the fast-path determinism contract).
    const auto fast = benchutil::measureSweepRegime(regime, true);
    const auto ref = benchutil::measureSweepRegime(regime, false);
    if (fast.sim_cycles_per_page != ref.sim_cycles_per_page) {
        state.SkipWithError("simulated cycles diverge fast vs ref");
        return;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(fast.pages_swept);
    state.counters["host_ns_per_page_fast"] = fast.host_ns_per_page;
    state.counters["host_ns_per_page_ref"] = ref.host_ns_per_page;
    state.counters["fast_speedup"] =
        ref.host_ns_per_page / fast.host_ns_per_page;
    state.counters["sim_cycles_per_page"] = fast.sim_cycles_per_page;
}

void
BM_SweepPageClean(benchmark::State &state)
{
    BM_SweepPageRegime(state, benchutil::SweepRegime::kClean);
}
BENCHMARK(BM_SweepPageClean)->Iterations(1);

void
BM_SweepPageSparse(benchmark::State &state)
{
    BM_SweepPageRegime(state, benchutil::SweepRegime::kSparse);
}
BENCHMARK(BM_SweepPageSparse)->Iterations(1);

void
BM_SweepPageFull(benchmark::State &state)
{
    BM_SweepPageRegime(state, benchutil::SweepRegime::kFull);
}
BENCHMARK(BM_SweepPageFull)->Iterations(1);

void
BM_SweepPageRevokeDense(benchmark::State &state)
{
    BM_SweepPageRegime(state, benchutil::SweepRegime::kRevokeDense);
}
BENCHMARK(BM_SweepPageRevokeDense)->Iterations(1);

} // namespace
