/**
 * @file
 * Figure 7: normalized CDF of per-transaction pgbench latency, with
 * 90th/99th percentile markers, plus each strategy's median
 * world-stopped duration (and Reloaded's median per-epoch cumulative
 * fault-handling time), which explain the tail spread.
 *
 * Paper anchors: all strategies share similar 85th percentiles; they
 * differentiate at the 90th; CHERIvoke's 99th is ~27 ms above the
 * median transaction, Cornucopia's just under 10, Reloaded's 5.4.
 * Median world-stopped times: 20 ms (CHERIvoke), 6.2 ms (Cornucopia);
 * Reloaded's median per-epoch fault total: 860 us.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "workload/pgbench.h"

using namespace crev;

namespace {

double
medianStw(const core::RunMetrics &m)
{
    std::vector<double> v;
    for (const auto &e : m.epochs)
        v.push_back(cyclesToMillis(e.stw_duration));
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

double
medianFaultTotal(const core::RunMetrics &m)
{
    std::vector<double> v;
    for (const auto &e : m.epochs)
        v.push_back(cyclesToMillis(e.fault_time_total));
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main()
{
    benchutil::banner(
        "Figure 7: pgbench per-transaction latency CDF",
        "paper fig. 7");

    workload::PgbenchConfig cfg;

    struct Run
    {
        const char *name;
        core::Strategy s;
        workload::PgbenchResult r;
    };
    std::vector<Run> runs;
    runs.push_back({"baseline", core::Strategy::kBaseline, {}});
    runs.push_back({"paint+sync", core::Strategy::kPaintOnly, {}});
    runs.push_back({"cherivoke", core::Strategy::kCheriVoke, {}});
    runs.push_back({"cornucopia", core::Strategy::kCornucopia, {}});
    runs.push_back({"reloaded", core::Strategy::kReloaded, {}});
    for (auto &run : runs) {
        std::fprintf(stderr, "  running pgbench/%s...\n", run.name);
        run.r = workload::runPgbench(run.s, cfg);
    }

    // CDF table at fixed latency points (ms).
    std::vector<double> points;
    {
        // Log-spaced points covering the interesting range.
        const double lo = runs[0].r.latency_ms.percentile(0.10);
        const double hi = runs[2].r.latency_ms.max() * 1.05;
        for (int i = 0; i <= 24; ++i)
            points.push_back(lo * std::pow(hi / lo, i / 24.0));
    }

    std::vector<std::string> header{"latency_ms"};
    for (auto &run : runs)
        header.push_back(run.name);
    stats::Table cdf_table(header);
    for (double p : points) {
        std::vector<std::string> row{stats::Table::fmt(p, 4)};
        for (auto &run : runs)
            row.push_back(stats::Table::fmt(
                stats::cdfAt(run.r.latency_ms, {p})[0], 4));
        cdf_table.addRow(row);
    }
    cdf_table.print();

    // Percentile & phase-marker summary.
    std::printf("\n");
    stats::Table pct_table({"strategy", "p50_ms", "p85_ms", "p90_ms",
                            "p99_ms", "p99-p50", "median_stw_ms",
                            "median_fault_ms"});
    for (auto &run : runs) {
        const auto &l = run.r.latency_ms;
        pct_table.addRow(
            {run.name, stats::Table::fmt(l.percentile(0.50), 4),
             stats::Table::fmt(l.percentile(0.85), 4),
             stats::Table::fmt(l.percentile(0.90), 4),
             stats::Table::fmt(l.percentile(0.99), 4),
             stats::Table::fmt(l.percentile(0.99) - l.percentile(0.5),
                               4),
             stats::Table::fmt(medianStw(run.r.metrics), 4),
             stats::Table::fmt(medianFaultTotal(run.r.metrics), 4)});
    }
    pct_table.print();

    std::printf(
        "\nExpected shape: similar 85th percentiles everywhere; "
        "differentiation from the 90th; (p99 - p50) ordering "
        "CHERIvoke > Cornucopia > Reloaded, each roughly tracking its "
        "median world-stopped time; Reloaded hugs paint+sync until "
        "~the 98th percentile.\n");
    return 0;
}
