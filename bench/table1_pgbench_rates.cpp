/**
 * @file
 * Table 1: pgbench latency percentiles (ms) under fixed --rate
 * schedules vs the unscheduled run, all under Reloaded.
 *
 * Paper anchors (tx/s 100/150/250/unscheduled): the long-tail 99.9th
 * percentile decreases as the offered rate drops, while — somewhat
 * counter-intuitively — short-tail percentiles (p90-p99) *increase*
 * at lower rates (also observed without revocation).
 */

#include "bench_util.h"
#include "workload/pgbench.h"

using namespace crev;

int
main()
{
    benchutil::banner(
        "Table 1: pgbench latency percentiles under fixed --rate "
        "schedules (Reloaded)",
        "paper table 1");

    // The paper's rates (100/150/250 tx/s) correspond to fractions of
    // the unscheduled throughput (~284 tx/s): ~35%, ~53%, ~88%. Our
    // simulated server runs at a different absolute rate, so we match
    // those utilisation fractions.
    workload::PgbenchConfig probe;
    probe.transactions = 1500;
    std::fprintf(stderr, "  probing unscheduled throughput...\n");
    const auto unsched_probe =
        workload::runPgbench(core::Strategy::kReloaded, probe);
    const double unsched_tps =
        static_cast<double>(probe.transactions) /
        unsched_probe.metrics.wallSeconds();

    stats::Table table({"tx/s", "p50", "p90", "p95", "p99", "p99.9"});

    const double fractions[] = {0.35, 0.53, 0.88};
    for (double f : fractions) {
        workload::PgbenchConfig cfg;
        cfg.rate_tps = unsched_tps * f;
        std::fprintf(stderr, "  running rate=%.0f tx/s...\n",
                     cfg.rate_tps);
        const auto r =
            workload::runPgbench(core::Strategy::kReloaded, cfg);
        table.addRow({stats::Table::fmt(cfg.rate_tps, 0),
                      stats::Table::fmt(r.latency_ms.percentile(0.50), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.90), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.95), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.99), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.999),
                                        4)});
    }

    {
        workload::PgbenchConfig cfg;
        std::fprintf(stderr, "  running unscheduled...\n");
        const auto r =
            workload::runPgbench(core::Strategy::kReloaded, cfg);
        table.addRow({"unscheduled",
                      stats::Table::fmt(r.latency_ms.percentile(0.50), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.90), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.95), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.99), 4),
                      stats::Table::fmt(r.latency_ms.percentile(0.999),
                                        4)});
    }

    table.print();
    std::printf("\nExpected shape: p99.9 falls as the offered rate "
                "drops; unscheduled and the highest rate look alike. "
                "Latencies are measured from actual transmission, "
                "ignoring schedule lag, as in the paper.\n");
    return 0;
}
