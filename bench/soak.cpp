/**
 * @file
 * Virtual-time soak harness (DESIGN.md §13): long fault-injected
 * campaigns per strategy, sized in simulated cycles rather than
 * iterations, with every PR-6 fault domain armed on an MTBF-style
 * schedule and the temporal-safety oracle riding along.
 *
 * Per strategy the harness reports survival (run completed, epoch
 * counter rests even, quarantine drained, zero oracle violations),
 * recovery-latency percentiles per protocol, and steady-state memory
 * overhead versus a baseline run of the same workload. A final
 * oracle-on/oracle-off pair checks the oracle's zero-simulated-cost
 * contract end to end and records its host-time overhead.
 *
 * Results accumulate in BENCH_SOAK.json (same "runs"-array pattern as
 * BENCH_TRAJECTORY.json; DESIGN.md §9), which
 * tools/check_trajectory.py gates on in CI.
 *
 * Usage: soak [--quick] [--cycles N] [--out FILE] [--label NAME]
 *   --quick:  CI-sized campaign (50M virtual cycles per strategy).
 *   --cycles: explicit virtual-cycle target per strategy
 *             (default 2,000,000,000).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_runner.h"
#include "bench_util.h"
#include "core/machine.h"
#include "core/mutator.h"

using namespace crev;

namespace {

/** The chaos-campaign churn mix, gtest-free: allocation bursts,
 *  frees, capability links, register parking, and hoards. */
void
churnBatch(core::Machine &m, core::Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7);
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, static_cast<uint64_t>(i));
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                (void)ctx.loadCap(live[a].c, 16);
            }
        } else if (dice < 0.95) {
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            (void)ctx.hoardTake(slot);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

/** Every fault domain armed at soak intensity. Probabilities are
 *  per-decision-point, so the realised mean-time-between-faults
 *  scales with workload activity; the counters in the report say
 *  what actually fired. */
sim::FaultPlan
soakFaults(std::uint64_t seed)
{
    sim::FaultPlan p;
    p.enabled = true;
    p.seed = seed;
    p.sweeper_stall_prob = 0.02;
    p.sweeper_stall_cycles = 250'000;
    p.sweeper_kill_prob = 0.05;
    p.max_sweeper_kills = 2;
    p.fault_drop_prob = 0.05;
    p.max_fault_drops = 8;
    p.fault_duplicate_prob = 0.05;
    p.stw_delay_prob = 0.10;
    p.stw_delay_cycles = 25'000;
    p.mem_spike_period = 1'000'000;
    p.mem_spike_duration = 50'000;
    p.mem_spike_extra = 30;
    p.shootdown_drop_prob = 0.10;
    p.max_shootdown_drops = 64;
    p.shootdown_late_prob = 0.10;
    p.shootdown_late_cycles = 10'000;
    p.core_stall_prob = 0.002;
    p.core_stall_cycles = 100'000;
    p.max_core_stalls = 16;
    p.summary_corrupt_prob = 0.10;
    p.max_summary_corruptions = 32;
    p.quarantine_drop_prob = 0.10;
    p.max_quarantine_drops = 16;
    p.quarantine_duplicate_prob = 0.10;
    return p;
}

struct SoakResult
{
    core::Strategy strategy;
    core::RunMetrics metrics;
    std::uint64_t final_epoch_value = 1;
    std::size_t final_quarantine_bytes = ~std::size_t{0};
    double host_seconds = 0;
    bool survived = false;
};

SoakResult
runSoak(core::Strategy s, Cycles target_cycles, bool with_faults,
        bool oracle)
{
    core::MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.oracle = oracle;
    cfg.policy.min_bytes = 64 * 1024;
    cfg.background_sweepers = 2;
    cfg.seed = 42;
    if (with_faults)
        cfg.faults = soakFaults(0x50a1c + static_cast<int>(s));

    SoakResult r;
    r.strategy = s;
    const auto host_start = std::chrono::steady_clock::now();
    core::Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&](core::Mutator &ctx) {
        while (ctx.thread().now() < target_cycles)
            churnBatch(m, ctx, 400);
        r.final_epoch_value = m.kernel().epoch().value();
        r.final_quarantine_bytes = m.heap().quarantineBytes();
    });
    m.run();
    r.host_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - host_start)
                         .count();
    r.metrics = m.metrics();
    r.survived = r.final_epoch_value % 2 == 0 &&
                 r.final_quarantine_bytes == 0 &&
                 r.metrics.oracle_violations == 0 &&
                 (s == core::Strategy::kBaseline ||
                  !r.metrics.epochs.empty());
    return r;
}

void
printRepro(const SoakResult &r, Cycles target)
{
    std::fprintf(
        stderr,
        "soak repro: strategy=%s fault_seed=%" PRIu64
        " window=[0,max) machine_seed=42 target_cycles=%" PRIu64
        " (epoch=%" PRIu64 " quar=%zu oracle_violations=%" PRIu64
        ")\n",
        core::strategyName(r.strategy),
        soakFaults(0x50a1c + static_cast<int>(r.strategy)).seed,
        static_cast<std::uint64_t>(target), r.final_epoch_value,
        r.final_quarantine_bytes, r.metrics.oracle_violations);
}

std::string
recoveryJson(const core::RunMetrics &m)
{
    std::string out = "[";
    for (unsigned i = 0; i < trace::kNumRecoveryProtocols; ++i) {
        const auto p = static_cast<trace::RecoveryProtocol>(i);
        const auto &st = m.recovery_protocols[i];
        const auto &lat = m.recovery_latency[i];
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"protocol\": \"%s\", \"tickets\": %" PRIu64
            ", \"attempts\": %" PRIu64 ", \"successes\": %" PRIu64
            ", \"retries_exhausted\": %" PRIu64
            ", \"deadline_expiries\": %" PRIu64
            ", \"latency_p50\": %.1f, \"latency_p90\": %.1f, "
            "\"latency_p99\": %.1f, \"latency_max\": %.1f}",
            i == 0 ? "" : ", ", trace::recoveryProtocolName(p),
            st.tickets, st.attempts, st.successes,
            st.retries_exhausted, st.deadline_expiries,
            lat.percentile(0.50), lat.percentile(0.90),
            lat.percentile(0.99), lat.empty() ? 0.0 : lat.max());
        out += buf;
    }
    out += "]";
    return out;
}

/** Previously accumulated run entries (same format as bench_all's
 *  trajectory file): the text between "runs": [ and the final ]. */
std::string
readPreviousRuns(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    const std::string open = "\"runs\": [";
    const auto begin = text.find(open);
    const auto end = text.rfind(']');
    if (begin == std::string::npos || end == std::string::npos ||
        end <= begin)
        return "";
    std::string runs = text.substr(begin + open.size(),
                                   end - begin - open.size());
    const auto first = runs.find_first_not_of(" \n\t");
    const auto last = runs.find_last_not_of(" \n\t");
    if (first == std::string::npos)
        return "";
    return runs.substr(first, last - first + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    Cycles target = 2'000'000'000;
    bool explicit_cycles = false;
    std::string out_path = "BENCH_SOAK.json";
    std::string label = "local";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
            target = std::strtoull(argv[++i], nullptr, 10);
            explicit_cycles = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc)
            label = argv[++i];
    }
    if (quick && !explicit_cycles)
        target = 50'000'000;

    benchutil::banner("Fault-injection soak (virtual-time MTBF)",
                      "robustness harness; no paper figure");

    // Baseline first: the memory-overhead denominator.
    std::fprintf(stderr, "  baseline (no faults) ...\n");
    const SoakResult baseline = runSoak(
        core::Strategy::kBaseline, target, false, /*oracle=*/true);

    const std::vector<core::Strategy> strategies{
        core::Strategy::kCheriVoke, core::Strategy::kCornucopia,
        core::Strategy::kReloaded, core::Strategy::kCheriotFilter};
    std::vector<SoakResult> results;
    bool all_survived = baseline.survived;
    if (!baseline.survived)
        printRepro(baseline, target);
    for (core::Strategy s : strategies) {
        std::fprintf(stderr, "  soak %s (%" PRIu64 " cycles) ...\n",
                     core::strategyName(s),
                     static_cast<std::uint64_t>(target));
        results.push_back(runSoak(s, target, true, /*oracle=*/true));
        const SoakResult &r = results.back();
        if (!r.survived) {
            printRepro(r, target);
            all_survived = false;
        }
    }

    // Oracle-on vs oracle-off: identical simulated cycles (the oracle
    // is an off-clock observer) and a bounded host-time overhead. The
    // pair reuses the soak plan at quick size to stay cheap.
    const Cycles e2e_target = std::min<Cycles>(target, 50'000'000);
    std::fprintf(stderr, "  oracle on/off e2e pair ...\n");
    const SoakResult oracle_on = runSoak(core::Strategy::kReloaded,
                                         e2e_target, true, true);
    const SoakResult oracle_off = runSoak(core::Strategy::kReloaded,
                                          e2e_target, true, false);
    const bool oracle_sim_match =
        oracle_on.metrics.wall_cycles == oracle_off.metrics.wall_cycles &&
        oracle_on.metrics.cpu_cycles == oracle_off.metrics.cpu_cycles &&
        oracle_on.final_epoch_value == oracle_off.final_epoch_value;
    if (!oracle_sim_match) {
        std::fprintf(
            stderr,
            "FAIL: oracle perturbed simulated results "
            "(wall %" PRIu64 " vs %" PRIu64 ")\n",
            static_cast<std::uint64_t>(oracle_on.metrics.wall_cycles),
            static_cast<std::uint64_t>(
                oracle_off.metrics.wall_cycles));
        all_survived = false;
    }

    std::printf("soak results (%" PRIu64 " virtual cycles/strategy):\n",
                static_cast<std::uint64_t>(target));
    std::printf("  %-14s %8s %8s %10s %9s %8s\n", "strategy",
                "survived", "epochs", "degraded", "repairs", "rss_x");
    for (const auto &r : results) {
        const double rss_x =
            baseline.metrics.peak_rss_pages > 0
                ? static_cast<double>(r.metrics.peak_rss_pages) /
                      static_cast<double>(
                          baseline.metrics.peak_rss_pages)
                : 0.0;
        std::printf("  %-14s %8s %8zu %10zu %9" PRIu64 " %7.2fx\n",
                    core::strategyName(r.strategy),
                    r.survived ? "yes" : "NO", r.metrics.epochs.size(),
                    r.metrics.degradedEpochs(),
                    r.metrics.summary_repairs, rss_x);
    }
    std::printf("  oracle e2e: sim_match=%s host %.2fs on / %.2fs "
                "off\n",
                oracle_sim_match ? "yes" : "NO",
                oracle_on.host_seconds, oracle_off.host_seconds);

    // --- BENCH_SOAK.json (accumulating, bench_all pattern) ---
    const std::string prev_runs = readPreviousRuns(out_path);
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"soak\",\n");
    std::fprintf(f, "  \"runs\": [\n");
    if (!prev_runs.empty())
        std::fprintf(f, "    %s,\n", prev_runs.c_str());
    std::fprintf(f, "    {\n      \"label\": \"%s\",\n",
                 benchutil::jsonEscape(label).c_str());
    std::fprintf(f, "      \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(f, "      \"target_cycles\": %" PRIu64 ",\n",
                 static_cast<std::uint64_t>(target));
    std::fprintf(f, "      \"strategies\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const double rss_x =
            baseline.metrics.peak_rss_pages > 0
                ? static_cast<double>(r.metrics.peak_rss_pages) /
                      static_cast<double>(
                          baseline.metrics.peak_rss_pages)
                : 0.0;
        std::fprintf(
            f,
            "        {\"strategy\": \"%s\", \"survived\": %s, "
            "\"oracle_violations\": %" PRIu64
            ", \"wall_cycles\": %" PRIu64
            ", \"host_seconds\": %.3f, \"epochs\": %zu, "
            "\"degraded_epochs\": %zu, \"summary_repairs\": %" PRIu64
            ", \"memory_overhead_vs_baseline\": %.4f, "
            "\"recovery\": %s, \"metrics\": %s}%s\n",
            core::strategyName(r.strategy),
            r.survived ? "true" : "false",
            r.metrics.oracle_violations,
            static_cast<std::uint64_t>(r.metrics.wall_cycles),
            r.host_seconds, r.metrics.epochs.size(),
            r.metrics.degradedEpochs(), r.metrics.summary_repairs,
            rss_x, recoveryJson(r.metrics).c_str(),
            benchutil::metricsJson(r.metrics).c_str(),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f,
                 "      \"oracle_e2e\": {\"sim_cycles_match\": %s, "
                 "\"oracle_on_host_seconds\": %.3f, "
                 "\"oracle_off_host_seconds\": %.3f, "
                 "\"target_cycles\": %" PRIu64 "}\n",
                 oracle_sim_match ? "true" : "false",
                 oracle_on.host_seconds, oracle_off.host_seconds,
                 static_cast<std::uint64_t>(e2e_target));
    std::fprintf(f, "    }\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%s run entries)\n", out_path.c_str(),
                prev_runs.empty() ? "1" : "appended to prior");

    if (!all_survived) {
        std::fprintf(stderr, "soak: FAILED (see repro lines above)\n");
        return 1;
    }
    return 0;
}
