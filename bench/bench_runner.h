/**
 * @file
 * Host-parallel execution of independent bench cells.
 *
 * A *cell* is one (strategy x workload x config) simulation. Cells
 * never share mutable state — each owns its Machine — so they can run
 * concurrently on host threads without affecting any simulated result:
 * every cell's virtual-time execution is bit-identical to a serial
 * run. The runner records host wall-seconds per cell and preserves
 * submission order in its results, so bench output stays
 * deterministic regardless of scheduling.
 *
 * Also here: the sweep-throughput harness used by the microbenchmarks
 * and BENCH_*.json trajectory files (DESIGN.md §9 describes the file
 * format and the simulated-vs-host cost separation rule).
 */

#ifndef CREV_BENCH_BENCH_RUNNER_H_
#define CREV_BENCH_BENCH_RUNNER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/host_budget.h"
#include "core/machine.h"

namespace crev::benchutil {

/**
 * Worker count for host-parallel benching: the CREV_BENCH_THREADS
 * environment variable when set, else hardware concurrency capped at
 * the process's CPU-affinity set (min 1).
 */
unsigned benchThreads();

/**
 * Run fn(i) for every i in [0, n) across @p threads host threads
 * (0 = benchThreads()). Results land at their own index, so output
 * order is deterministic. fn must not touch shared mutable state.
 *
 * @p threads == 0 always executes on spawned workers, even when the
 * pool has a single slot: the pooled configuration must measure the
 * pool path (worker stacks, per-thread malloc arenas), not silently
 * degrade to the caller's thread. An explicit 1 runs inline.
 */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    if (n == 0)
        return out;
    const bool always_pool = threads == 0;
    unsigned workers = threads != 0 ? threads : benchThreads();
    if (workers > n)
        workers = static_cast<unsigned>(n);
    if (workers <= 1 && !always_pool) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        return out;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                out[i] = fn(i);
            }
        });
    for (auto &t : pool)
        t.join();
    return out;
}

/** One completed bench cell. */
struct CellResult
{
    std::string name;
    double host_seconds = 0; //!< host wall time of this cell alone
    core::RunMetrics metrics;
};

/**
 * Collects named cells, then runs them across a host thread pool.
 * Results come back in submission order.
 *
 * Cells are *started* longest-expected-first: with cells spanning two
 * orders of magnitude in runtime, submission-order scheduling
 * routinely strands one slow cell on an otherwise idle pool at the
 * tail. Expected costs come from the most recent "host_seconds"
 * recorded per cell name in a prior trajectory file (setCostFile),
 * falling back to a static strategy/workload weight table for cells
 * never measured. Scheduling order never touches results: each cell
 * owns its Machine and lands at its submission index.
 */
class ParallelRunner
{
  public:
    void add(std::string name, std::function<core::RunMetrics()> fn);

    /**
     * Trajectory file to read expected per-cell costs from (default
     * BENCH_TRAJECTORY.json in the working directory; missing or
     * unparsable files just mean the static fallback costs).
     */
    void setCostFile(std::string path) { cost_file_ = std::move(path); }

    /** Run all cells on @p threads workers (0 = benchThreads(),
     *  always on spawned pool workers — see parallelMap). The host
     *  core-budget arbiter (base/host_budget.h) is configured for the
     *  duration of the run and reverted before returning. */
    std::vector<CellResult> run(unsigned threads = 0);

    /** Arbiter decision counters snapshotted at the end of the last
     *  run() (all-zero before any run). */
    const base::HostBudget::Decisions &lastDecisions() const
    {
        return last_decisions_;
    }

    std::size_t size() const { return cells_.size(); }

  private:
    struct Cell
    {
        std::string name;
        std::function<core::RunMetrics()> fn;
    };
    std::vector<Cell> cells_;
    std::string cost_file_ = "BENCH_TRAJECTORY.json";
    base::HostBudget::Decisions last_decisions_;
};

// --- sweep-throughput harness (microbench + BENCH_*.json) ---

/** Tag population of the pages the sweep harness scans. */
enum class SweepRegime {
    kClean,       //!< no tagged granules anywhere
    kSparse,      //!< 8 scattered capabilities per page
    kFull,        //!< every granule tagged (256 per page)
    kRevokeDense, //!< 64 caps per page, all aimed at painted memory:
                  //!< every probe hits and every tag is cleared, so
                  //!< the harness re-arms the pages (untimed) before
                  //!< each timed repeat
};

const char *sweepRegimeName(SweepRegime r);

/** One harness measurement. */
struct SweepRegimeResult
{
    double host_ns_per_page = 0;
    double sim_cycles_per_page = 0;
    std::uint64_t pages_swept = 0;
    std::uint64_t caps_seen = 0;
};

/**
 * Sweep @p pages resident pages populated per @p regime, @p repeats
 * times over, with the engine's host fast paths on or off, and report
 * host ns and simulated cycles per page. Simulated cycles per page
 * must come out identical for both fast-path settings (that is the
 * determinism contract); only host ns may differ.
 *
 * When @p memo is true (and fast paths are on) the harness attaches a
 * cross-epoch DecodeMemo to the sweep engine, so repeats after the
 * first replay their decodes through the bits-validated cache — the
 * steady-state shape of a long-running machine's sweep.
 *
 * When @p with_prescan is true (and fast paths are on) each repeat
 * runs the full epoch shape the revoker ships — pre-scan build over
 * the page list (with the memo wired when @p memo is set), sweep,
 * clear — all inside the timed window. This is where the
 * expand/gather kernels and the memo's page-fresh frame-read skip
 * actually execute in production; the bare-sweep form isolates the
 * sweep inner loop itself.
 */
SweepRegimeResult measureSweepRegime(SweepRegime regime,
                                     bool host_fast_paths,
                                     std::size_t pages = 64,
                                     std::size_t repeats = 40,
                                     bool memo = false,
                                     bool with_prescan = false);

/** One kernels A/B measurement: batch kernels + memo vs forced-scalar
 *  kernels without the memo, same regime and page population. */
struct KernelsAbResult
{
    SweepRegimeResult on;  //!< dispatched kernels + decode memo
    SweepRegimeResult off; //!< forced-scalar kernels, no memo
    /** off/on host-ns ratio (> 1 means the kernels won). */
    double hostSpeedup() const
    {
        return on.host_ns_per_page > 0
                   ? off.host_ns_per_page / on.host_ns_per_page
                   : 0;
    }
    /** The determinism contract: identical simulated work. */
    bool simMatches() const
    {
        return on.sim_cycles_per_page == off.sim_cycles_per_page &&
               on.pages_swept == off.pages_swept &&
               on.caps_seen == off.caps_seen;
    }
};

/**
 * Run the sweep harness twice over @p regime — once with the SIMD
 * batch kernels at their dispatched level plus the decode memo, once
 * forced scalar with the memo off — and report both legs. Both legs
 * run the full pre-scan epoch shape (see measureSweepRegime's
 * @p with_prescan), so the A/B covers the kernels where they run and
 * the memo's cross-epoch build skip, not just the sweep inner loop.
 * Restores the environment-selected kernel level before returning.
 */
KernelsAbResult measureKernelsAb(SweepRegime regime,
                                 std::size_t pages = 64,
                                 std::size_t repeats = 40);

/** Minimal JSON string escaping for bench report writers. */
std::string jsonEscape(const std::string &s);

/** All metrics of one cell as a compact MetricsRegistry JSON object
 *  ({"counters": ..., "gauges": ..., "histograms": ...}). */
std::string metricsJson(const core::RunMetrics &m);

} // namespace crev::benchutil

#endif // CREV_BENCH_BENCH_RUNNER_H_
