/**
 * @file
 * Ablation (paper §7.6): the "capability loads always trap" PTE
 * disposition for clean pages vs the default keep-generations-fresh
 * behaviour, and the effect of clean-page detection itself.
 *
 * With always-trap, capability-clean pages need no generation refresh
 * during revocation (the background pass skips them entirely); the
 * cost is an extra fault on the first tagged load from such a page.
 * The workload here (libquantum-like: a few huge pointer-free arrays
 * plus a small pointer-rich core) is the case §7.6 targets.
 */

#include "bench_util.h"

using namespace crev;

namespace {

core::RunMetrics
runWith(bool clean_detect, bool always_trap)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy = workload::specPolicy();
    cfg.reloaded_clean_detect = clean_detect;
    cfg.always_trap_clean = always_trap;
    core::Machine m(cfg);
    workload::runSpec(m, workload::specProfile("libquantum"));
    return m.metrics();
}

} // namespace

int
main()
{
    benchutil::banner(
        "Ablation: clean-page handling in Reloaded (libquantum)",
        "paper §7.6");

    stats::Table table({"mode", "wall_ms", "pages_swept",
                        "barrier_faults", "pte_updates(shootdowns)"});

    struct Mode
    {
        const char *name;
        bool detect;
        bool trap;
    };
    for (const Mode &mode :
         {Mode{"no-detect", false, false},
          Mode{"detect", true, false},
          Mode{"detect+always-trap", true, true}}) {
        std::fprintf(stderr, "  running %s...\n", mode.name);
        const auto m = runWith(mode.detect, mode.trap);
        table.addRow({mode.name,
                      stats::Table::fmt(cyclesToMillis(m.wall_cycles)),
                      std::to_string(m.sweep.pages_swept),
                      std::to_string(m.mmu.load_barrier_faults),
                      std::to_string(m.mmu.tlb_shootdowns)});
    }

    table.print();
    std::printf("\nExpected shape: clean-page detection cuts "
                "pages_swept (array pages are never re-read); the "
                "always-trap disposition additionally avoids "
                "refreshing clean pages' generations (fewer PTE "
                "updates/shootdowns) at the price of extra "
                "first-touch barrier faults.\n");
    return 0;
}
