/**
 * @file
 * Table 2: revocation-rate statistics under Reloaded for a
 * representative set of benchmarks: mean allocated heap at
 * revocation, total freed (quarantined) bytes, the freed:allocated
 * ratio, revocation count, and revocations per second.
 *
 * Paper anchors: the RSS-heavy SPEC workloads cycle orders of
 * magnitude more address space than their live heaps at < 1
 * revocation/second; pgbench cycles nearly as much as xalancbmk on a
 * ~4% heap, revoking more than an order of magnitude more often —
 * which is what separates fig. 4's bus overheads from fig. 6's.
 */

#include "bench_util.h"
#include "workload/grpc_qps.h"
#include "workload/pgbench.h"

using namespace crev;

namespace {

void
addRow(stats::Table &table, const std::string &name,
       const core::RunMetrics &m)
{
    const double mean_alloc_mib =
        m.quarantine.meanAllocAtTrigger() / (1024.0 * 1024.0);
    const double freed_mib =
        static_cast<double>(m.quarantine.sum_freed_bytes) /
        (1024.0 * 1024.0);
    const double fa =
        mean_alloc_mib > 0 ? freed_mib / mean_alloc_mib : 0.0;
    table.addRow({name, stats::Table::fmt(mean_alloc_mib, 2),
                  stats::Table::fmt(freed_mib, 1),
                  stats::Table::fmt(fa, 1),
                  std::to_string(m.epochs.size()),
                  stats::Table::fmt(m.revocationsPerSecond(), 1)});
}

} // namespace

int
main()
{
    benchutil::banner(
        "Table 2: Reloaded revocation-rate statistics",
        "paper table 2");

    stats::Table table({"benchmark", "mean_alloc_MiB", "sum_freed_MiB",
                        "F:A", "revocations", "rev/sec"});

    benchutil::SpecRunner runner;
    for (const auto &name :
         {"xalancbmk", "astar", "omnetpp", "hmmer_nph3", "hmmer_retro",
          "gobmk"}) {
        addRow(table, name,
               runner.run(name, core::Strategy::kReloaded));
    }
    {
        workload::PgbenchConfig cfg;
        std::fprintf(stderr, "  running pgbench/reloaded...\n");
        addRow(table, "pgbench",
               workload::runPgbench(core::Strategy::kReloaded, cfg)
                   .metrics);
    }
    {
        workload::GrpcConfig cfg;
        std::fprintf(stderr, "  running grpc/reloaded...\n");
        addRow(table, "grpc_qps",
               workload::runGrpcQps(core::Strategy::kReloaded, cfg)
                   .metrics);
    }

    table.print();
    std::printf(
        "\nExpected shape (paper Table 2, scaled): omnetpp and "
        "xalancbmk have the highest SPEC F:A ratios; gobmk barely "
        "revokes (F:A 1.75); pgbench's F:A dwarfs every SPEC row on "
        "a far smaller heap, at an order of magnitude more "
        "revocations per second. rev/sec values are inflated "
        "uniformly by the ~128x time compression.\n");
    return 0;
}
