/**
 * @file
 * Cross-cutting temporal-safety scenarios beyond the basic UAF tests:
 * capabilities hiding in blocked threads' register files (the §4.4
 * kernel-hoard problem), repeated mmap/munmap reservation quarantine
 * (§6.2) under churn, address-space non-reuse, and quarantine policy
 * mechanics (blocking, drain, thresholds).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "vm/address_space.h"
#include "vm/fault.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

/** Strategies that provide temporal safety. */
const Strategy kSafe[] = {Strategy::kCheriVoke, Strategy::kCornucopia,
                          Strategy::kReloaded,
                          Strategy::kCheriotFilter};

class SafetyTest : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(SafetyTest, BlockedThreadRegistersAreScanned)
{
    // A thread parked off-core holds a dangling capability in its
    // (kernel-saved) register file across a whole revocation epoch;
    // the STW scan must heal it before the thread runs again.
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);

    sim::SimThread *sleeper_thread = nullptr;
    bool checked = false;

    sleeper_thread = m.spawnMutator(
        "sleeper", 1u << 1, [&](Mutator &ctx) {
            const cap::Capability victim = ctx.malloc(128);
            ctx.thread().reg(3) = victim;
            // Park for a long time; the other thread frees and
            // revokes meanwhile.
            ctx.sleep(50'000'000);
            EXPECT_FALSE(ctx.thread().reg(3).tag)
                << "register of a parked thread escaped the scan";
            checked = true;
        });

    m.spawnMutator("worker", 1u << 3, [&](Mutator &ctx) {
        // Wait until the sleeper has allocated and parked.
        ctx.sleep(1'000'000);
        // Free the sleeper's object *by base* through the shim: model
        // a producer/consumer handoff where the worker owns the free.
        // (Reconstruct the capability from the sleeper's register.)
        const cap::Capability victim = sleeper_thread->reg(3);
        ASSERT_TRUE(victim.tag);
        ctx.free(victim);
        m.heap().drain(ctx.thread());
    });

    m.run();
    EXPECT_TRUE(checked);
}

TEST_P(SafetyTest, HoardedCapabilityAcrossManyEpochs)
{
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability victim = ctx.malloc(64);
        const std::size_t slot = ctx.hoardPut(victim);
        ctx.free(victim);
        // Keep churning: many epochs pass with the pointer hoarded.
        for (int i = 0; i < 600; ++i)
            ctx.free(ctx.malloc(1024));
        m.heap().drain(ctx.thread());
        EXPECT_FALSE(ctx.hoardTake(slot).tag);
    });
    m.run();
}

TEST_P(SafetyTest, MappingQuarantineUnderChurn)
{
    // §6.2 under load: repeatedly mmap/munmap while heap churn drives
    // revocation; stored capabilities to unmapped reservations must
    // die, and their VA ranges must never be handed out again.
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 16 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        std::vector<std::pair<Addr, Addr>> dead_ranges;
        const cap::Capability holder = ctx.malloc(256);

        for (int round = 0; round < 12; ++round) {
            const cap::Capability map =
                m.kernel().sysMmap(ctx.thread(), 4 * kPageSize);
            // No new reservation may overlap a dead one.
            for (const auto &[b, t] : dead_ranges) {
                EXPECT_TRUE(map.top <= b || map.base >= t)
                    << "unmapped reservation VA was recycled";
            }
            ctx.store64(map, 0, round);
            ctx.storeCap(holder, 16 * (round % 8), map);
            m.kernel().sysMunmap(ctx.thread(), map.base,
                                 map.length());
            dead_ranges.push_back({map.base, map.top});
            // Heap churn to force epochs.
            for (int i = 0; i < 40; ++i)
                ctx.free(ctx.malloc(512));
        }
        m.heap().drain(ctx.thread());
        for (int s = 0; s < 8; ++s) {
            EXPECT_FALSE(ctx.loadCap(holder, 16 * s).tag)
                << "capability to unmapped reservation survived";
        }
    });
    m.run();
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SafetyTest, ::testing::ValuesIn(kSafe),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::kCheriVoke:
            return "CheriVoke";
          case Strategy::kCornucopia:
            return "Cornucopia";
          case Strategy::kReloaded:
            return "Reloaded";
          case Strategy::kCheriotFilter:
            return "CheriotFilter";
          default:
            return "Other";
        }
    });

// ---------------------------------------------------------------- //
// Quarantine policy mechanics
// ---------------------------------------------------------------- //

TEST(QuarantinePolicy, BlocksWhenBothBuffersAwait)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.policy.min_bytes = 4 * 1024; // tiny: constant pressure
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        for (int i = 0; i < 400; ++i)
            ctx.free(ctx.malloc(2048));
    });
    m.run();
    EXPECT_GT(m.metrics().quarantine.blocked_ops, 0u)
        << "allocation pressure should hit the mrs blocking path";
}

TEST(QuarantinePolicy, QuarantineAtTriggerTracksThreshold)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.policy.min_bytes = 32 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        // Live heap ~1 MiB so the ratio term dominates the floor.
        std::vector<cap::Capability> live;
        for (int i = 0; i < 256; ++i)
            live.push_back(ctx.malloc(4096));
        for (int i = 0; i < 3000; ++i)
            ctx.free(ctx.malloc(1024));
        for (auto &c : live)
            ctx.free(c);
    });
    m.run();
    const auto q = m.metrics().quarantine;
    ASSERT_GT(q.revocations_triggered, 2u);
    const double ratio =
        q.meanQuarantineAtTrigger() / q.meanAllocAtTrigger();
    // Policy: trigger just past 1/3 of the allocated heap. The mean
    // overshoots because frees keep landing in the second buffer
    // while the first awaits its epoch — the paper's fig. 3
    // observation ("much of the overshoot arises from quarantine").
    EXPECT_GT(ratio, 0.30);
    EXPECT_LT(ratio, 0.80);
}

TEST(QuarantinePolicy, DrainEmptiesQuarantine)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kCornucopia;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        for (int i = 0; i < 64; ++i)
            ctx.free(ctx.malloc(512));
        EXPECT_GT(m.heap().quarantineBytes(), 0u);
        m.heap().drain(ctx.thread());
        EXPECT_EQ(m.heap().quarantineBytes(), 0u);
    });
    m.run();
}

TEST(QuarantinePolicy, PaintOnlyStillRecyclesMemory)
{
    // Paint+sync provides no safety but must still cycle quarantine
    // through its (instant) epochs, or memory would leak.
    MachineConfig cfg;
    cfg.strategy = Strategy::kPaintOnly;
    cfg.policy.min_bytes = 8 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        for (int i = 0; i < 2000; ++i)
            ctx.free(ctx.malloc(1024));
    });
    m.run();
    // If nothing recycled, peak RSS would be ~2000 KiB of pages; with
    // recycling it stays bounded by the policy.
    EXPECT_LT(m.metrics().peak_rss_pages, 400u);
}

} // namespace
} // namespace crev
