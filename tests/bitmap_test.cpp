/**
 * @file
 * Unit tests for the revocation bitmap and the sweep engine: paint /
 * clear / probe correctness including the bulk fast paths, mirror
 * consistency, traffic accounting, and page sweeps.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "kern/kernel.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"
#include "revoker/bitmap.h"
#include "revoker/sweep.h"
#include "sim/scheduler.h"
#include "vm/address_space.h"
#include "vm/mmu.h"

namespace crev::revoker {
namespace {

struct BitmapHarness
{
    BitmapHarness()
        : ms(2, mem::CacheConfig{32 * 1024, 4},
             mem::CacheConfig{256 * 1024, 8}, mem::MemLatency{}),
          sched(2, sim::CostModel{}), as(pm),
          mmu(pm, ms, as, sched.costs()), bitmap(mmu)
    {
    }

    template <typename Fn>
    void
    onThread(Fn body)
    {
        sched.spawn("t", 1,
                    [body = std::move(body)](sim::SimThread &t) {
                        body(t);
                    });
        sched.run();
    }

    mem::PhysMem pm;
    mem::MemorySystem ms;
    sim::Scheduler sched;
    vm::AddressSpace as;
    vm::Mmu mmu;
    RevocationBitmap bitmap;
};

TEST(Bitmap, PaintProbeClearSingleGranule)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = 0x4000'0000;
        EXPECT_FALSE(h.bitmap.probe(t, base));
        h.bitmap.paint(t, base, 16);
        EXPECT_TRUE(h.bitmap.probe(t, base));
        EXPECT_FALSE(h.bitmap.probe(t, base + 16));
        EXPECT_FALSE(h.bitmap.probe(t, base - 16));
        h.bitmap.clear(t, base, 16);
        EXPECT_FALSE(h.bitmap.probe(t, base));
    });
}

TEST(Bitmap, ProbeUsesGranuleOfAddress)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = 0x4000'0100;
        h.bitmap.paint(t, base, 16);
        // Any address inside the granule probes true.
        EXPECT_TRUE(h.bitmap.probe(t, base + 7));
        EXPECT_TRUE(h.bitmap.probe(t, base + 15));
    });
}

TEST(Bitmap, LargeRangeUsesBulkPathConsistently)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        // An unaligned-start range spanning head/bulk/tail paths:
        // starts mid-byte (granule 3 of 8) and ends mid-byte.
        const Addr base = 0x4000'0000 + 3 * 16;
        const Addr len = 64 * 1024 + 5 * 16;
        h.bitmap.paint(t, base, len);
        for (Addr a = base; a < base + len; a += 16)
            ASSERT_TRUE(h.bitmap.probe(t, a)) << std::hex << a;
        EXPECT_FALSE(h.bitmap.probe(t, base - 16));
        EXPECT_FALSE(h.bitmap.probe(t, base + len));
        EXPECT_EQ(h.bitmap.paintedGranules(), len / 16);

        h.bitmap.clear(t, base, len);
        for (Addr a = base; a < base + len; a += 16)
            ASSERT_FALSE(h.bitmap.probe(t, a)) << std::hex << a;
        EXPECT_EQ(h.bitmap.paintedGranules(), 0u);
    });
}

TEST(Bitmap, AdjacentRangesDoNotInterfere)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        // Two allocations sharing a shadow byte (8 granules / byte).
        const Addr a = 0x4000'0000; // granules 0..3
        const Addr b = a + 64;      // granules 4..7
        h.bitmap.paint(t, a, 64);
        h.bitmap.paint(t, b, 64);
        h.bitmap.clear(t, a, 64);
        EXPECT_FALSE(h.bitmap.probe(t, a));
        EXPECT_TRUE(h.bitmap.probe(t, b)); // untouched by the clear
    });
}

TEST(Bitmap, PaintGeneratesSimulatedTraffic)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const auto before = h.ms.counters(t.core()).accesses;
        h.bitmap.paint(t, 0x4000'0000, 1 << 20); // 1 MiB => 8 KiB shadow
        const auto writes = h.ms.counters(t.core()).accesses - before;
        // 8 KiB of shadow in <=64-byte chunks: at least 128 accesses.
        EXPECT_GE(writes, 128u);
    });
}

/**
 * Drive random paint/clear traffic and check the two-level summary
 * against a flat reference model: per-granule membership, total
 * count, and the summary's own internal invariants (L1 bits vs block
 * counts vs popcounts).
 */
void
randomPaintClearModelCheck(BitmapHarness &h, sim::SimThread &t,
                           std::uint64_t seed, bool torn)
{
    h.bitmap.setTornRmwForTest(torn);
    Rng rng(seed);
    std::set<Addr> model; // granule indices
    const Addr window = 0x4000'0000;
    const Addr window_len = 1 << 20; // 16 summary blocks
    for (int op = 0; op < 300; ++op) {
        const Addr base =
            window + Addr{rng.below(window_len / 16)} * 16;
        // Mostly short ranges (plenty of partial-byte RMW heads and
        // tails), occasionally a multi-block one.
        const Addr len = rng.chance(0.1)
                             ? Addr{1 + rng.below(8192)} * 16
                             : Addr{1 + rng.below(24)} * 16;
        const bool set = rng.chance(0.6);
        if (set)
            h.bitmap.paint(t, base, len);
        else
            h.bitmap.clear(t, base, len);
        for (Addr g = base >> 4; g < (base + len) >> 4; ++g) {
            if (set)
                model.insert(g);
            else
                model.erase(g);
        }
    }
    EXPECT_EQ(h.bitmap.paintedGranules(), model.size());
    for (int i = 0; i < 4096; ++i) {
        const Addr a = window + rng.below(window_len + 4 * kPageSize);
        ASSERT_EQ(h.bitmap.probeQuiet(a), model.count(a >> 4) != 0)
            << std::hex << a;
    }
    // Probes outside the heap hit the summary's O(1) out-of-range
    // reject, never simulated shadow memory.
    EXPECT_FALSE(h.bitmap.probeQuiet(0x1000));
    const auto violations = h.bitmap.painted().checkConsistent();
    for (const auto &v : violations)
        ADD_FAILURE() << v;
}

TEST(Bitmap, SummaryMatchesModelUnderRandomPaintClear)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        randomPaintClearModelCheck(h, t, 42, /*torn=*/false);
        // The charged probe cross-checks simulated bits against the
        // summary on every call; sample it over a painted block.
        h.bitmap.paint(t, 0x4000'0000, 64 * 16);
        for (Addr a = 0x4000'0000; a < 0x4000'0000 + 64 * 16; a += 16)
            ASSERT_TRUE(h.bitmap.probe(t, a)) << std::hex << a;
    });
}

TEST(Bitmap, SummaryConsistentThroughTornRmwWindows)
{
    // The torn-RMW test hook yields inside every partial-byte
    // read-modify-write. Single-threaded, the interleaving is benign,
    // but the summary updates inside those windows must still land at
    // the positions the race checker models — the model comparison
    // would catch a mirror drifting from the simulated bits.
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        randomPaintClearModelCheck(h, t, 1337, /*torn=*/true);
    });
}

TEST(SweepEngine, RevokesExactlyPaintedCaps)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr page = h.as.reserve(kPageSize);
        const cap::Capability victim =
            cap::Capability::root(0x5000'0000, 0x5000'0100);
        const cap::Capability keeper =
            cap::Capability::root(0x5000'1000, 0x5000'1100);
        h.mmu.storeCap(t, page, victim);
        h.mmu.storeCap(t, page + 16, keeper);
        h.bitmap.paint(t, victim.base, 0x100);

        SweepEngine sweep(h.mmu, h.bitmap);
        const bool clean = sweep.sweepPage(t, page);
        EXPECT_FALSE(clean);
        EXPECT_FALSE(h.mmu.peekTag(page));      // victim erased
        EXPECT_TRUE(h.mmu.peekTag(page + 16));  // keeper survives
        EXPECT_EQ(sweep.stats().caps_seen, 2u);
        EXPECT_EQ(sweep.stats().caps_revoked, 1u);
        EXPECT_EQ(sweep.stats().lines_read, kPageSize / kLineSize);
    });
}

TEST(SweepEngine, CleanPageReportsClean)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr page = h.as.reserve(kPageSize);
        h.mmu.storeU64(t, page, 123); // data only
        SweepEngine sweep(h.mmu, h.bitmap);
        EXPECT_TRUE(sweep.sweepPage(t, page));
        EXPECT_EQ(sweep.stats().caps_seen, 0u);
    });
}

TEST(SweepEngine, ProbesDecodedBaseNotAddress)
{
    // A capability whose cursor is deep inside (or beyond) the object
    // still probes at its *base* (paper footnote 9).
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr page = h.as.reserve(kPageSize);
        const cap::Capability obj =
            cap::Capability::root(0x6000'0000, 0x6000'1000);
        const cap::Capability inner = obj.setAddress(0x6000'0ff0);
        h.mmu.storeCap(t, page, inner);
        h.bitmap.paint(t, obj.base, 16); // only the base granule
        SweepEngine sweep(h.mmu, h.bitmap);
        sweep.sweepPage(t, page);
        EXPECT_FALSE(h.mmu.peekTag(page));
    });
}

TEST(SweepEngine, RegisterScanHealsInPlace)
{
    BitmapHarness h;
    h.onThread([&](sim::SimThread &t) {
        t.reg(0) = cap::Capability::root(0x7000'0000, 0x7000'0100);
        t.reg(1) = cap::Capability::root(0x7000'1000, 0x7000'1100);
        h.bitmap.paint(t, 0x7000'0000, 0x100);
        SweepEngine sweep(h.mmu, h.bitmap);
        sweep.scanRegisters(t, t.registerFile());
        EXPECT_FALSE(t.reg(0).tag);
        EXPECT_TRUE(t.reg(1).tag);
        EXPECT_EQ(sweep.stats().regs_revoked, 1u);
        EXPECT_EQ(sweep.stats().regs_scanned,
                  sim::SimThread::kNumRegs);
    });
}

} // namespace
} // namespace crev::revoker
