/**
 * @file
 * Parameterized property sweeps over the capability compression
 * format: per-exponent round-trip exactness, representable-range
 * geometry, monotonicity of derivation under rounding, and the
 * allocator-facing alignment/length helpers.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "cap/capability.h"
#include "cap/compression.h"

namespace crev::cap {
namespace {

/** One sweep instance per exponent. */
class ExponentSweep : public ::testing::TestWithParam<unsigned>
{
  protected:
    /** A length guaranteed to need exactly the given exponent. */
    static Addr
    lengthForExponent(unsigned e)
    {
        // kMaxUnits = 2^13; lengths in (kMaxUnits << (e-1),
        // kMaxUnits << e] need exponent e.
        const Addr max_units = Addr{1} << 13;
        if (e == 0)
            return max_units - 5;
        return (max_units << (e - 1)) + (Addr{1} << e);
    }
};

TEST_P(ExponentSweep, ExponentForIsMinimal)
{
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    EXPECT_EQ(exponentFor(len), e);
    if (e > 0) {
        // One unit less (at the smaller granularity) fits in e-1...
        EXPECT_LE(exponentFor((Addr{1} << 13) << (e - 1)), e - 1 + 1);
    }
}

TEST_P(ExponentSweep, AlignmentAndLengthAgree)
{
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    const Addr align = representableAlignment(len);
    EXPECT_EQ(align, Addr{1} << e);
    const Addr rlen = representableLength(len);
    EXPECT_GE(rlen, len);
    EXPECT_EQ(rlen % align, 0u);
    // Idempotent: an already-representable length is unchanged.
    EXPECT_EQ(representableLength(rlen), rlen);
}

TEST_P(ExponentSweep, RoundTripAtAlignedBases)
{
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    const Addr align = representableAlignment(len);
    const Addr rlen = representableLength(len);
    Rng rng(1000 + e);
    for (int i = 0; i < 400; ++i) {
        const Addr base =
            roundUp(0x1000'0000 + rng.below(1ull << 36), align);
        Capability c;
        c.base = base;
        c.top = base + rlen;
        c.address = base + rng.below(rlen + 1);
        c.perms = kPermAll;
        c.tag = true;
        const Capability d = decode(encode(c), true);
        ASSERT_EQ(d.base, c.base);
        ASSERT_EQ(d.top, c.top);
        ASSERT_EQ(d.address, c.address);
    }
}

TEST_P(ExponentSweep, ReprRangeContainsBoundsWithSlack)
{
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    const Addr align = representableAlignment(len);
    const Addr base = roundUp(Addr{0x2000'0000}, align);
    Capability c;
    c.base = base;
    c.top = base + representableLength(len);
    c.address = base;
    c.tag = true;
    const ReprRange rr = representableRange(c);
    EXPECT_LE(rr.repr_base, c.base);
    EXPECT_GE(rr.repr_top, c.top);
    // The slack below the base is 2^12 units of 2^E (clamped at 0).
    if (c.base >= (Addr{1} << (12 + e)))
        EXPECT_EQ(c.base - rr.repr_base, Addr{1} << (12 + e));
}

TEST_P(ExponentSweep, CursorEdgesOfReprRange)
{
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    const Addr align = representableAlignment(len);
    const Addr base = roundUp(Addr{0x4000'0000}, align);
    Capability c;
    c.base = base;
    c.top = base + representableLength(len);
    c.address = base;
    c.perms = kPermAll;
    c.tag = true;
    const ReprRange rr = representableRange(c);
    // Just inside: stays tagged and decodes to the same bounds.
    const Capability lo = c.setAddress(rr.repr_base);
    EXPECT_TRUE(lo.tag);
    const Capability lo_rt = decode(encode(lo), true);
    EXPECT_EQ(lo_rt.base, c.base);
    const Capability hi = c.setAddress(rr.repr_top - 1);
    EXPECT_TRUE(hi.tag);
    // Just outside: untagged.
    if (rr.repr_base > 0)
        EXPECT_FALSE(c.setAddress(rr.repr_base - 1).tag);
    EXPECT_FALSE(c.setAddress(rr.repr_top).tag);
}

TEST_P(ExponentSweep, DerivationStaysMonotonicUnderRounding)
{
    // Sub-bounds requests at arbitrary (aligned-to-16) offsets either
    // produce a subset of the parent or come back untagged — never a
    // superset.
    const unsigned e = GetParam();
    const Addr len = lengthForExponent(e);
    const Addr align = representableAlignment(len);
    const Addr base = roundUp(Addr{0x3000'0000}, align);
    const Capability parent =
        Capability::root(base, base + representableLength(len));
    Rng rng(2000 + e);
    for (int i = 0; i < 300; ++i) {
        const Addr off =
            roundDown(rng.below(parent.length()), 16);
        const Addr sub_len =
            1 + rng.below(parent.length() - off);
        const Capability sub =
            parent.setBounds(parent.base + off,
                             parent.base + off + sub_len);
        if (sub.tag) {
            ASSERT_GE(sub.base, parent.base);
            ASSERT_LE(sub.top, parent.top);
            ASSERT_GE(sub.top - sub.base, sub_len);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ExponentSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u,
                                           12u, 16u, 20u),
                         [](const ::testing::TestParamInfo<unsigned> &i) {
                             return "E" + std::to_string(i.param);
                         });

TEST(CompressionEdge, ZeroLengthCapability)
{
    const Capability c = Capability::root(0x1000, 0x1000);
    EXPECT_EQ(c.length(), 0u);
    const Capability d = decode(encode(c), true);
    EXPECT_EQ(d.base, d.top);
    EXPECT_FALSE(c.inBounds(1));
}

TEST(CompressionEdge, UntaggedGarbageDecodesWithoutFaulting)
{
    // Sweeps inspect tags before interpreting; but decode itself must
    // be total over arbitrary bit patterns.
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        CapBits bits;
        bits.lo = rng.next();
        bits.hi = rng.next();
        const Capability c = decode(bits, false);
        EXPECT_FALSE(c.tag);
    }
}

} // namespace
} // namespace crev::cap
