/**
 * @file
 * Unit tests for the statistics utilities behind every bench.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/summary.h"
#include "stats/table.h"

namespace crev::stats {
namespace {

TEST(Samples, BasicMoments)
{
    Samples s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Samples, PercentileInterpolates)
{
    Samples s;
    s.add(0.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.9), 9.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
}

TEST(Samples, PercentileSingleSample)
{
    Samples s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 7.0);
}

TEST(Samples, PercentileEmptyIsZero)
{
    Samples s;
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(Samples, PercentileClampsOutOfRangeQ)
{
    Samples s;
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    // q beyond [0,1] must clamp to the extremes, never index past
    // the sorted vector.
    EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.5), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
}

TEST(Boxplot, EmptySamplesYieldZeroSummary)
{
    Samples s;
    const Boxplot b = boxplot(s);
    EXPECT_EQ(b.n, 0u);
    EXPECT_DOUBLE_EQ(b.min, 0.0);
    EXPECT_DOUBLE_EQ(b.median, 0.0);
    EXPECT_DOUBLE_EQ(b.max, 0.0);
}

TEST(Samples, LazySortSurvivesInterleavedAdds)
{
    Samples s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Boxplot, FiveNumberSummary)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    const Boxplot b = boxplot(s);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.max, 100.0);
    EXPECT_NEAR(b.median, 50.5, 1e-9);
    EXPECT_NEAR(b.p25, 25.75, 1e-9);
    EXPECT_NEAR(b.p75, 75.25, 1e-9);
    EXPECT_EQ(b.n, 100u);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Cdf, FractionAtPoints)
{
    Samples s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    const auto cdf = cdfAt(s, {0.5, 1.0, 2.5, 4.0, 9.0});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.25);
    EXPECT_DOUBLE_EQ(cdf[2], 0.5);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
    EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

} // namespace
} // namespace crev::stats
