/**
 * @file
 * Tests for the simulation-aware race detector (DESIGN.md §11):
 * per-rule unit tests, seeded injected races that must be flagged
 * deterministically, silence on the clean tree, the zero-cost
 * contract (RunMetrics bit-identical with checking on or off, for
 * every strategy), and the hard assertions that stand in for the
 * checker when none is attached.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/race_checker.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"
#include "revoker/bitmap.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "vm/address_space.h"
#include "vm/mmu.h"
#include "workload/spec.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::RunMetrics;
using core::Strategy;

std::size_t
countRule(const check::RaceChecker &c, const std::string &rule)
{
    std::size_t n = 0;
    for (const check::Violation &v : c.violations())
        if (v.rule == rule)
            ++n;
    return n;
}

// ---------------------------------------------------------------------
// Rule unit tests (checker driven directly, no simulation).
// ---------------------------------------------------------------------

TEST(RaceCheckerRules, TeardownDuringOddEpochFlagged)
{
    check::RaceChecker c;
    c.onEpochAdvance(0, 100, 1); // epoch in progress
    c.onPteTeardown(1, 200, 0x4000'0000, /*locked=*/false);
    EXPECT_EQ(countRule(c, "pte-teardown-during-epoch"), 1u);
}

TEST(RaceCheckerRules, TeardownLockedOrBetweenEpochsSilent)
{
    check::RaceChecker c;
    c.onEpochAdvance(0, 100, 1);
    c.onPteTeardown(1, 200, 0x4000'0000, /*locked=*/true);
    c.onEpochAdvance(0, 300, 2); // epoch complete
    c.onPteTeardown(1, 400, 0x4000'1000, /*locked=*/false);
    EXPECT_TRUE(c.clean()) << c.reportJson();
}

TEST(RaceCheckerRules, DequarantineBeforeTargetFlagged)
{
    check::RaceChecker c;
    c.onDequarantineRelease(2, 500, /*target=*/4, /*counter=*/2);
    EXPECT_EQ(countRule(c, "epoch-order-violation"), 1u);
    c.onDequarantineRelease(2, 600, /*target=*/4, /*counter=*/4);
    EXPECT_EQ(c.violations().size(), 1u);
}

TEST(RaceCheckerRules, GenFlipAndStwScanRequireStwOwnership)
{
    check::RaceChecker c;
    c.onGenFlip(1, 100);
    c.onStwScan(1, 110);
    EXPECT_EQ(countRule(c, "gen-flip-outside-stw"), 1u);
    EXPECT_EQ(countRule(c, "stw-scan-outside-stw"), 1u);

    // Inside an owned stop-the-world window both are legitimate.
    c.onStwBegin(1);
    c.onGenFlip(1, 200);
    c.onStwScan(1, 210);
    c.onStwEnd(1);
    EXPECT_EQ(c.violations().size(), 2u);

    // Another thread scanning during a window it does not own races
    // the owner's walk over its register file.
    c.onStwBegin(1);
    c.onStwScan(2, 300);
    c.onStwEnd(1);
    EXPECT_EQ(countRule(c, "stw-scan-outside-stw"), 2u);
}

TEST(RaceCheckerRules, QuarantineAccessRequiresHeapLock)
{
    check::RaceChecker c;
    c.onQuarantineAccess(3, 100, /*locked=*/true);
    EXPECT_TRUE(c.clean());
    c.onQuarantineAccess(3, 200, /*locked=*/false);
    EXPECT_EQ(countRule(c, "quarantine-unlocked-access"), 1u);
}

TEST(RaceCheckerRules, MutexReleaseOrdersNextAcquirersPublishes)
{
    // Publishes of one page by two threads are ordered when a mutex
    // release → acquire edge connects them, unordered otherwise.
    int dummy_lock = 0;
    const Addr page = 0x4000'0000;

    check::RaceChecker ordered;
    ordered.onThreadSpawn(-1, 0);
    ordered.onThreadSpawn(-1, 1);
    ordered.onMutexAcquire(0, &dummy_lock);
    ordered.onPtePublish(0, 100, page, /*disciplined=*/true);
    ordered.onMutexRelease(0, &dummy_lock);
    ordered.onMutexAcquire(1, &dummy_lock);
    ordered.onPtePublish(1, 200, page, /*disciplined=*/true);
    EXPECT_TRUE(ordered.clean()) << ordered.reportJson();

    check::RaceChecker unordered;
    unordered.onThreadSpawn(-1, 0);
    unordered.onThreadSpawn(-1, 1);
    unordered.onPtePublish(0, 100, page, /*disciplined=*/true);
    unordered.onPtePublish(1, 200, page, /*disciplined=*/true);
    EXPECT_EQ(countRule(unordered, "pte-unordered-publish"), 1u);
}

TEST(RaceCheckerRules, StwWindowOrdersPublishesAcrossThreads)
{
    // STW begin joins every thread's history into the owner; STW end
    // publishes the owner's work to everyone. A publish before the
    // window and one after it are therefore ordered.
    check::RaceChecker c;
    c.onThreadSpawn(-1, 0);
    c.onThreadSpawn(-1, 1);
    const Addr page = 0x4000'0000;
    c.onPtePublish(0, 100, page, /*disciplined=*/true);
    c.onStwBegin(1);
    c.onPtePublish(1, 200, page, /*disciplined=*/true);
    c.onStwEnd(1);
    c.onPtePublish(0, 300, page, /*disciplined=*/true);
    EXPECT_TRUE(c.clean()) << c.reportJson();
}

TEST(RaceCheckerRules, ReportCapSuppressesPastLimit)
{
    check::RaceChecker c;
    for (int i = 0; i < 1005; ++i)
        c.onQuarantineAccess(0, static_cast<Cycles>(i),
                             /*locked=*/false);
    EXPECT_EQ(c.violations().size(), 1000u);
    EXPECT_EQ(c.suppressed(), 5u);
    EXPECT_NE(c.reportJson().find("\"suppressed\":5"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Seeded injected races through the real simulation paths.
// ---------------------------------------------------------------------

/** Scheduler + vmspace + bitmap with a checker attached — enough
 *  machinery to drive the instrumented paths directly. */
struct CheckHarness
{
    CheckHarness()
        : ms(2, mem::CacheConfig{32 * 1024, 4},
             mem::CacheConfig{256 * 1024, 8}, mem::MemLatency{}),
          sched(2, sim::CostModel{}), as(pm),
          mmu(pm, ms, as, sched.costs()), bitmap(mmu)
    {
        sched.setChecker(&checker);
        as.setChecker(&checker);
    }

    mem::PhysMem pm;
    mem::MemorySystem ms;
    sim::Scheduler sched;
    vm::AddressSpace as;
    vm::Mmu mmu;
    revoker::RevocationBitmap bitmap;
    check::RaceChecker checker;
};

TEST(RaceCheckerInjected, LocklessPtePublishFlagged)
{
    // Two threads publish the same page, neither holding the pmap
    // lock nor stopping the world: both publishes are undisciplined,
    // and nothing orders one against the other.
    auto run_once = [](std::string &report) {
        CheckHarness h;
        const Addr page = 0x4000'0000;
        h.sched.spawn("a", 1u << 0, [&](sim::SimThread &t) {
            h.as.notePtePublish(t, page, vm::PteContext::kLocked);
        });
        h.sched.spawn("b", 1u << 1, [&](sim::SimThread &t) {
            h.as.notePtePublish(t, page, vm::PteContext::kLocked);
        });
        h.sched.run();
        report = h.checker.reportJson();
        EXPECT_EQ(countRule(h.checker, "pte-unlocked-publish"), 2u)
            << report;
        EXPECT_EQ(countRule(h.checker, "pte-unordered-publish"), 1u)
            << report;
    };
    std::string first;
    std::string second;
    run_once(first);
    run_once(second);
    // Deterministic simulation ⇒ byte-identical reports.
    EXPECT_EQ(first, second);
}

TEST(RaceCheckerInjected, LockedPublishesAreSilent)
{
    CheckHarness h;
    const Addr page = 0x4000'0000;
    for (const char *name : {"a", "b"}) {
        h.sched.spawn(name, 1u << 0, [&](sim::SimThread &t) {
            h.as.pmapLock().lock(t);
            h.as.notePtePublish(t, page, vm::PteContext::kLocked);
            h.as.pmapLock().unlock(t);
        });
    }
    h.sched.run();
    // Disciplined, and ordered by the pmap release → acquire edge.
    EXPECT_TRUE(h.checker.clean()) << h.checker.reportJson();
}

TEST(RaceCheckerInjected, TornBitmapRmwVsProbeFlagged)
{
    // Thread a paints granules 1–2 of a shadow byte through the
    // deliberately torn read-modify-write (the token is handed away
    // between the shadow load and store). Thread b probes granule 5
    // — an unpainted granule of the *same* shadow byte — inside that
    // window: the torn-read hazard the NoYield guard prevents.
    auto run_once = [](std::string &report) {
        CheckHarness h;
        h.bitmap.setTornRmwForTest(true);
        const Addr base = 0x4000'0000;
        h.sched.spawn("a", 1u << 0, [&](sim::SimThread &t) {
            h.bitmap.paint(t, base + 1 * kGranuleSize,
                           2 * kGranuleSize);
        });
        h.sched.spawn("b", 1u << 1, [&](sim::SimThread &t) {
            EXPECT_FALSE(h.bitmap.probe(t, base + 5 * kGranuleSize));
        });
        h.sched.run();
        report = h.checker.reportJson();
        EXPECT_EQ(countRule(h.checker, "shadow-rmw-race"), 1u)
            << report;
    };
    std::string first;
    std::string second;
    run_once(first);
    run_once(second);
    EXPECT_EQ(first, second);
}

TEST(RaceCheckerInjected, TornBitmapRmwVsBulkWriteFlagged)
{
    // Same torn window, but the intruder is a bulk whole-byte paint
    // covering the byte under RMW: thread a's delayed store will
    // clobber thread b's bits (the classic lost update).
    CheckHarness h;
    h.bitmap.setTornRmwForTest(true);
    const Addr base = 0x4000'0000;
    h.sched.spawn("a", 1u << 0, [&](sim::SimThread &t) {
        h.bitmap.paint(t, base + 1 * kGranuleSize, 2 * kGranuleSize);
    });
    h.sched.spawn("b", 1u << 1, [&](sim::SimThread &t) {
        h.bitmap.paint(t, base, 64 * kGranuleSize);
    });
    h.sched.run();
    EXPECT_GE(countRule(h.checker, "shadow-rmw-race"), 1u)
        << h.checker.reportJson();
}

TEST(RaceCheckerInjected, GuardedRmwIsSilentUnderSameInterleaving)
{
    // Control: the very same thread bodies with the NoYield guard in
    // place (torn mode off) produce no window and no report.
    CheckHarness h;
    const Addr base = 0x4000'0000;
    h.sched.spawn("a", 1u << 0, [&](sim::SimThread &t) {
        h.bitmap.paint(t, base + 1 * kGranuleSize, 2 * kGranuleSize);
    });
    h.sched.spawn("b", 1u << 1, [&](sim::SimThread &t) {
        EXPECT_FALSE(h.bitmap.probe(t, base + 5 * kGranuleSize));
    });
    h.sched.run();
    EXPECT_TRUE(h.checker.clean()) << h.checker.reportJson();
}

// ---------------------------------------------------------------------
// Whole-machine: silence on the clean tree, and the zero-cost
// contract (complete RunMetrics identical with checking on or off).
// ---------------------------------------------------------------------

/** Serialise every field of RunMetrics (the determinism-suite
 *  fingerprint): any simulated observable the checker perturbs shows
 *  up as a diff. */
std::string
fingerprint(const RunMetrics &m)
{
    std::ostringstream os;
    os << "wall=" << m.wall_cycles << " cpu=" << m.cpu_cycles << "\n";
    for (const auto &[name, busy] : m.thread_busy)
        os << "busy[" << name << "]=" << busy << "\n";
    for (std::size_t c = 0; c < m.core_mem.size(); ++c) {
        const auto &mc = m.core_mem[c];
        os << "core" << c << " acc=" << mc.accesses
           << " l1m=" << mc.l1_misses << " br=" << mc.bus_reads
           << " bw=" << mc.bus_writes << "\n";
    }
    os << "bus=" << m.bus_transactions_total
       << " rss=" << m.peak_rss_pages << "\n";
    for (std::size_t e = 0; e < m.epochs.size(); ++e) {
        const auto &ep = m.epochs[e];
        os << "epoch" << e << " stw=" << ep.stw_duration
           << " conc=" << ep.concurrent_duration
           << " ft=" << ep.fault_time_total
           << " fc=" << ep.fault_count << " pg=" << ep.pages_swept
           << " rv=" << ep.caps_revoked
           << " deg=" << ep.recovery.degraded
           << " forced=" << ep.recovery.forced
           << " nudges=" << ep.recovery.nudges
           << " respawns=" << ep.recovery.respawns << "\n";
    }
    os << "sweep pg=" << m.sweep.pages_swept
       << " ln=" << m.sweep.lines_read << " seen=" << m.sweep.caps_seen
       << " rv=" << m.sweep.caps_revoked
       << " rs=" << m.sweep.regs_scanned
       << " rr=" << m.sweep.regs_revoked << "\n";
    os << "quar trig=" << m.quarantine.revocations_triggered
       << " freed=" << m.quarantine.sum_freed_bytes
       << " alloc@=" << m.quarantine.sum_alloc_at_trigger
       << " quar@=" << m.quarantine.sum_quar_at_trigger
       << " blk=" << m.quarantine.blocked_ops
       << " blkcyc=" << m.quarantine.blocked_cycles
       << " max=" << m.quarantine.max_quarantine_bytes << "\n";
    os << "alloc a=" << m.allocator.allocs
       << " f=" << m.allocator.frees
       << " ba=" << m.allocator.bytes_allocated_total
       << " bf=" << m.allocator.bytes_freed_total << "\n";
    os << "mmu df=" << m.mmu.demand_faults
       << " lbf=" << m.mmu.load_barrier_faults
       << " shoot=" << m.mmu.tlb_shootdowns << "\n";
    os << "recov miss=" << m.recovery.deadline_misses
       << " nudge=" << m.recovery.nudges
       << " reap=" << m.recovery.sweepers_reaped
       << " resp=" << m.recovery.sweepers_respawned
       << " req=" << m.recovery.recovery_requests
       << " stw=" << m.recovery.stw_fallbacks
       << " emerg=" << m.recovery.emergency_epochs << "\n";
    os << "inj stall=" << m.faults_injected.sweeper_stalls
       << " kill=" << m.faults_injected.sweeper_kills
       << " drop=" << m.faults_injected.faults_dropped
       << " dup=" << m.faults_injected.faults_duplicated
       << " delay=" << m.faults_injected.stw_delays << "\n";
    return os.str();
}

TEST(CheckZeroCost, SpecCleanAndMetricsIdenticalAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy = workload::specPolicy();

        cfg.check = true;
        Machine on(cfg);
        workload::runSpec(on, workload::specProfile("hmmer_retro"));
        ASSERT_NE(on.checkerOrNull(), nullptr);
        EXPECT_TRUE(on.checkerOrNull()->clean())
            << core::strategyName(s) << ": " << on.checkReportJson();

        cfg.check = false;
        Machine off(cfg);
        workload::runSpec(off, workload::specProfile("hmmer_retro"));
        EXPECT_EQ(off.checkerOrNull(), nullptr);
        EXPECT_EQ(fingerprint(on.metrics()), fingerprint(off.metrics()))
            << "strategy " << core::strategyName(s);
    }
}

/** Heap churn with capability links, register parking, and hoards —
 *  the determinism-suite mix, shrunk to gate size. */
void
churn(Machine &m, Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7);
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, static_cast<uint64_t>(i));
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                ASSERT_TRUE(ctx.loadCap(live[a].c, 16).tag);
            }
        } else if (dice < 0.95) {
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            ASSERT_TRUE(ctx.hoardTake(slot).tag);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

RunMetrics
runChaosWith(Strategy s, bool check, std::string *report = nullptr)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.check = check;
    cfg.policy.min_bytes = 32 * 1024; // revoke frequently
    cfg.background_sweepers = 2;
    cfg.seed = 42;
    cfg.faults.enabled = true;
    cfg.faults.seed = 909;
    cfg.faults.sweeper_stall_prob = 0.05;
    cfg.faults.sweeper_stall_cycles = 250'000;
    cfg.faults.sweeper_kill_prob = 0.10;
    cfg.faults.max_sweeper_kills = 1;
    cfg.faults.fault_drop_prob = 0.10;
    cfg.faults.max_fault_drops = 4;
    cfg.faults.fault_duplicate_prob = 0.10;
    cfg.faults.stw_delay_prob = 0.25;
    cfg.faults.stw_delay_cycles = 25'000;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3,
                   [&](Mutator &ctx) { churn(m, ctx, 800); });
    m.run();
    if (check) {
        EXPECT_TRUE(m.checkerOrNull()->clean())
            << core::strategyName(s) << ": " << m.checkReportJson();
        if (report != nullptr)
            *report = m.checkReportJson();
    }
    return m.metrics();
}

TEST(CheckZeroCost, ChaosCleanAndMetricsIdenticalAllStrategies)
{
    // Fault injection, the recovery ladder, emergency STW sweeps, and
    // the per-epoch audit: the checker must stay silent through all of
    // it and must not perturb a single scheduling point.
    for (Strategy s : core::kAllStrategies) {
        const std::string checked =
            fingerprint(runChaosWith(s, true));
        const std::string reference =
            fingerprint(runChaosWith(s, false));
        EXPECT_EQ(checked, reference)
            << "strategy " << core::strategyName(s);
    }
}

TEST(CheckZeroCost, ChaosReportIsByteIdenticalAcrossRuns)
{
    std::string first;
    std::string second;
    runChaosWith(Strategy::kReloaded, true, &first);
    runChaosWith(Strategy::kReloaded, true, &second);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------
// Hard assertions when no checker is attached.
// ---------------------------------------------------------------------

TEST(CheckAssertionsDeathTest, AssertHeldDiesWhenNotHeld)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            sim::Scheduler s(1, sim::CostModel{});
            sim::SimMutex m;
            s.spawn("t", 1u,
                    [&](sim::SimThread &t) { m.assertHeld(t); });
            s.run();
        },
        "assertion failed");
}

TEST(CheckAssertionsDeathTest, NotePtePublishEnforcedWithoutChecker)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            mem::PhysMem pm;
            vm::AddressSpace as(pm);
            sim::Scheduler s(1, sim::CostModel{});
            s.spawn("t", 1u, [&](sim::SimThread &t) {
                as.notePtePublish(t, vm::kHeapBase,
                                  vm::PteContext::kLocked);
            });
            s.run();
        },
        "assertion failed");
}

} // namespace
} // namespace crev
