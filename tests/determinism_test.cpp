/**
 * @file
 * The fast-path determinism contract: host-side memoisation
 * (translation/frame caches, packed tag-nibble sweeps, the shadow
 * bitmap shortcut) must never change a single simulated number. Every
 * strategy is run twice — MachineConfig::host_fast_paths on and off —
 * and the complete RunMetrics (wall clock, per-thread busy cycles,
 * per-core memory counters, revocation epochs, sweep/quarantine/
 * allocator/MMU stats, recovery and injection counters) must match
 * byte for byte, both on a SPEC-like profile and under a chaos plan
 * with fault injection and the invariant audit enabled.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "base/simd.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "workload/spec.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::RunMetrics;
using core::Strategy;

/** Serialise every field of RunMetrics: any simulated observable that
 *  drifts between fast-path configurations shows up as a diff. */
std::string
fingerprint(const RunMetrics &m)
{
    std::ostringstream os;
    os << "wall=" << m.wall_cycles << " cpu=" << m.cpu_cycles << "\n";
    for (const auto &[name, busy] : m.thread_busy)
        os << "busy[" << name << "]=" << busy << "\n";
    for (std::size_t c = 0; c < m.core_mem.size(); ++c) {
        const auto &mc = m.core_mem[c];
        os << "core" << c << " acc=" << mc.accesses
           << " l1m=" << mc.l1_misses << " br=" << mc.bus_reads
           << " bw=" << mc.bus_writes << "\n";
    }
    os << "bus=" << m.bus_transactions_total
       << " rss=" << m.peak_rss_pages << "\n";
    for (std::size_t e = 0; e < m.epochs.size(); ++e) {
        const auto &ep = m.epochs[e];
        os << "epoch" << e << " stw=" << ep.stw_duration
           << " conc=" << ep.concurrent_duration
           << " ft=" << ep.fault_time_total
           << " fc=" << ep.fault_count << " pg=" << ep.pages_swept
           << " rv=" << ep.caps_revoked
           << " deg=" << ep.recovery.degraded
           << " forced=" << ep.recovery.forced
           << " nudges=" << ep.recovery.nudges
           << " respawns=" << ep.recovery.respawns << "\n";
    }
    os << "sweep pg=" << m.sweep.pages_swept
       << " ln=" << m.sweep.lines_read << " seen=" << m.sweep.caps_seen
       << " rv=" << m.sweep.caps_revoked
       << " rs=" << m.sweep.regs_scanned
       << " rr=" << m.sweep.regs_revoked << "\n";
    os << "quar trig=" << m.quarantine.revocations_triggered
       << " freed=" << m.quarantine.sum_freed_bytes
       << " alloc@=" << m.quarantine.sum_alloc_at_trigger
       << " quar@=" << m.quarantine.sum_quar_at_trigger
       << " blk=" << m.quarantine.blocked_ops
       << " blkcyc=" << m.quarantine.blocked_cycles
       << " max=" << m.quarantine.max_quarantine_bytes
       << " rsend=" << m.quarantine.remote_free_sends
       << " rbatch=" << m.quarantine.remote_batches
       << " rdrain=" << m.quarantine.remote_drained << "\n";
    os << "alloc a=" << m.allocator.allocs
       << " f=" << m.allocator.frees
       << " ba=" << m.allocator.bytes_allocated_total
       << " bf=" << m.allocator.bytes_freed_total << "\n";
    for (std::size_t i = 0; i < m.alloc_shards.size(); ++i) {
        const auto &sh = m.alloc_shards[i];
        os << "ashard" << i << " a=" << sh.allocs
           << " f=" << sh.frees << " ba=" << sh.bytes_allocated_total
           << " bf=" << sh.bytes_freed_total << "\n";
    }
    for (std::size_t i = 0; i < m.quarantine_shards.size(); ++i) {
        const auto &sh = m.quarantine_shards[i];
        os << "qshard" << i << " rs=" << sh.remote_sends
           << " rb=" << sh.remote_batches
           << " rd=" << sh.remote_drained
           << " trig=" << sh.triggers << "\n";
    }
    os << "mmu df=" << m.mmu.demand_faults
       << " lbf=" << m.mmu.load_barrier_faults
       << " shoot=" << m.mmu.tlb_shootdowns
       << " resend=" << m.mmu.shootdown_resends << "\n";
    os << "recov miss=" << m.recovery.deadline_misses
       << " nudge=" << m.recovery.nudges
       << " reap=" << m.recovery.sweepers_reaped
       << " resp=" << m.recovery.sweepers_respawned
       << " req=" << m.recovery.recovery_requests
       << " stw=" << m.recovery.stw_fallbacks
       << " emerg=" << m.recovery.emergency_epochs
       << " stallt=" << m.recovery.stalled_threads << "\n";
    os << "inj stall=" << m.faults_injected.sweeper_stalls
       << " kill=" << m.faults_injected.sweeper_kills
       << " drop=" << m.faults_injected.faults_dropped
       << " dup=" << m.faults_injected.faults_duplicated
       << " delay=" << m.faults_injected.stw_delays
       << " sdrop=" << m.faults_injected.shootdown_drops
       << " slate=" << m.faults_injected.shootdown_lates
       << " cstall=" << m.faults_injected.core_stalls
       << " corrupt=" << m.faults_injected.summary_corruptions
       << " qdrop=" << m.faults_injected.quarantine_drops
       << " qdup=" << m.faults_injected.quarantine_duplicates << "\n";
    os << "heal repairs=" << m.summary_repairs
       << " ereclaim=" << m.quarantine.emergency_reclaims
       << " hresend=" << m.quarantine.handoff_resends << "\n";
    for (unsigned i = 0; i < trace::kNumRecoveryProtocols; ++i) {
        const auto &p = m.recovery_protocols[i];
        os << "rp[" << trace::recoveryProtocolName(
                           static_cast<trace::RecoveryProtocol>(i))
           << "] t=" << p.tickets << " a=" << p.attempts
           << " s=" << p.successes << " re=" << p.retries_exhausted
           << " de=" << p.deadline_expiries << " ab=" << p.aborts
           << " lat=" << p.total_latency << "/" << p.max_latency
           << "\n";
    }
    // Deliberately excluded: m.prescan and m.memo (host-side pipeline
    // and memo counters, zero with sweep_accel / memo off) and
    // m.oracle_* (observer totals that count only when the oracle is
    // attached). Everything above is a simulated observable and must
    // be bit-identical across host-side and observer configuration
    // changes.
    return os.str();
}

RunMetrics
runSpecWith(Strategy s, bool host_fast_paths)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.policy = workload::specPolicy();
    cfg.host_fast_paths = host_fast_paths;
    Machine m(cfg);
    workload::runSpec(m, workload::specProfile("hmmer_retro"));
    return m.metrics();
}

RunMetrics
runSpecEngine(Strategy s, unsigned par_cores, bool trace = false,
              bool check = false)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.policy = workload::specPolicy();
    cfg.par_cores = par_cores;
    cfg.trace = trace;
    cfg.check = check;
    Machine m(cfg);
    workload::runSpec(m, workload::specProfile("hmmer_retro"));
    return m.metrics();
}

TEST(Determinism, FastPathsPreserveSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        const std::string fast =
            fingerprint(runSpecWith(s, true));
        const std::string reference =
            fingerprint(runSpecWith(s, false));
        EXPECT_EQ(fast, reference)
            << "strategy " << core::strategyName(s);
    }
}

/** The sweep-acceleration layers (two-level summary skips, the
 *  capability-dirty page indexes, the pre-scan pipeline) are pure
 *  host-side levers too: RunMetrics must be bit-identical with
 *  cfg.sweep_accel on and off, for every strategy. Set explicitly so
 *  the test is independent of CREV_SWEEP_ACCEL in the environment. */
TEST(Determinism, SweepAccelPreservesSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        std::string fp[2];
        for (int accel = 0; accel < 2; ++accel) {
            MachineConfig cfg;
            cfg.strategy = s;
            cfg.policy = workload::specPolicy();
            cfg.sweep_accel = accel != 0;
            Machine m(cfg);
            workload::runSpec(m, workload::specProfile("hmmer_retro"));
            fp[accel] = fingerprint(m.metrics());
        }
        EXPECT_EQ(fp[1], fp[0])
            << "strategy " << core::strategyName(s);
    }
}

/** The cross-epoch decode memo (DESIGN.md §17.2) is a pure host-side
 *  cache: cached decodes are bits-validated at the virtual instant of
 *  use and all charges accrue identically, so RunMetrics must be
 *  bit-identical with cfg.memo on and off — for every strategy, under
 *  both the serial token engine and the lockstep engine. */
TEST(Determinism, MemoPreservesSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        for (unsigned par_cores : {0u, 4u}) {
            std::string fp[2];
            for (int memo = 0; memo < 2; ++memo) {
                MachineConfig cfg;
                cfg.strategy = s;
                cfg.policy = workload::specPolicy();
                cfg.par_cores = par_cores;
                cfg.memo = memo != 0;
                Machine m(cfg);
                workload::runSpec(m,
                                  workload::specProfile("hmmer_retro"));
                fp[memo] = fingerprint(m.metrics());
            }
            EXPECT_EQ(fp[1], fp[0])
                << "strategy " << core::strategyName(s)
                << " par_cores " << par_cores;
        }
    }
}

/** The SIMD kernel level (DESIGN.md §17.1) is a pure host dispatch
 *  concern: CREV_SIMD=0 forces the scalar fallbacks everywhere (the
 *  sweep's candidate validation, the pre-scan's expansion/gather, the
 *  shadow bitmap's span paints), and RunMetrics must not move — for
 *  every strategy, serial and lockstep. This is the in-process twin
 *  of CI's forced-scalar bench leg. */
TEST(Determinism, ScalarKernelsPreserveSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        for (unsigned par_cores : {0u, 4u}) {
            std::string fp[2];
            for (int scalar = 0; scalar < 2; ++scalar) {
                if (scalar != 0)
                    setenv("CREV_SIMD", "0", 1);
                else
                    unsetenv("CREV_SIMD");
                simd::refreshFromEnv();
                MachineConfig cfg;
                cfg.strategy = s;
                cfg.policy = workload::specPolicy();
                cfg.par_cores = par_cores;
                Machine m(cfg);
                workload::runSpec(m,
                                  workload::specProfile("hmmer_retro"));
                fp[scalar] = fingerprint(m.metrics());
            }
            unsetenv("CREV_SIMD");
            simd::refreshFromEnv();
            EXPECT_EQ(fp[1], fp[0])
                << "strategy " << core::strategyName(s)
                << " par_cores " << par_cores;
        }
    }
}

/** Tracing charges zero simulated cycles: the complete RunMetrics
 *  fingerprint is bit-identical with the tracer on or off, for every
 *  strategy (the whole suite also passes under CREV_TRACE=1, which
 *  turns tracing on in every other test's machines too). */
TEST(Determinism, TracingPreservesSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy = workload::specPolicy();

        cfg.trace = true;
        Machine on(cfg);
        workload::runSpec(on, workload::specProfile("hmmer_retro"));

        cfg.trace = false;
        Machine off(cfg);
        workload::runSpec(off, workload::specProfile("hmmer_retro"));

        EXPECT_EQ(fingerprint(on.metrics()),
                  fingerprint(off.metrics()))
            << "strategy " << core::strategyName(s);
    }
}

/** The temporal-safety oracle is an off-clock observer like the
 *  tracer: every simulated observable must be bit-identical with the
 *  oracle on or off, for every strategy. (Its own totals — loads
 *  checked, violations — are excluded from the fingerprint, exactly
 *  like the host-side prescan counters.) */
TEST(Determinism, OraclePreservesSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy = workload::specPolicy();

        cfg.oracle = true;
        Machine on(cfg);
        workload::runSpec(on, workload::specProfile("hmmer_retro"));
        EXPECT_EQ(on.metrics().oracle_violations, 0u)
            << "strategy " << core::strategyName(s);

        cfg.oracle = false;
        Machine off(cfg);
        workload::runSpec(off, workload::specProfile("hmmer_retro"));
        EXPECT_EQ(off.metrics().oracle_loads_checked, 0u);

        EXPECT_EQ(fingerprint(on.metrics()),
                  fingerprint(off.metrics()))
            << "strategy " << core::strategyName(s);
    }
}

/** The lockstep engine (DESIGN.md §14) is a pure host-side execution
 *  lever like host_fast_paths: every simulated observable must be
 *  bit-identical between the serial token engine (par_cores = 0, the
 *  reference) and the lockstep engine at any lane count. Lanes = 1
 *  exercises the single-lane pre-scan skip; lanes = 4 the LaneGroup
 *  striped assist. */
TEST(Determinism, LockstepEnginePreservesSpecMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        const std::string serial = fingerprint(runSpecEngine(s, 0));
        for (unsigned lanes : {1u, 4u})
            EXPECT_EQ(fingerprint(runSpecEngine(s, lanes)), serial)
                << "strategy " << core::strategyName(s) << " lanes "
                << lanes;
    }
}

/** Observers (tracer + race checker) attached under the lockstep
 *  engine must still match the bare serial engine: both are off-clock
 *  in both engines, so the four-way configuration change cannot move
 *  a single scheduling point. */
TEST(Determinism, LockstepEngineWithObserversMatchesBareSerial)
{
    for (Strategy s : {Strategy::kCornucopia, Strategy::kReloaded}) {
        const std::string bare_serial =
            fingerprint(runSpecEngine(s, 0, false, false));
        const std::string observed_lockstep =
            fingerprint(runSpecEngine(s, 2, true, true));
        EXPECT_EQ(observed_lockstep, bare_serial)
            << "strategy " << core::strategyName(s);
    }
}

/** Fiber execution mode (DESIGN.md §14.5) is purely a host mechanism
 *  for running simulated threads: CREV_FIBERS=0 forces the lockstep
 *  engine onto real host threads, and the fingerprint must not move.
 *  (On builds without fiber support both runs take the host-thread
 *  path and the test is a tautology — still worth keeping as an env
 *  plumbing check.) */
TEST(Determinism, FiberModePreservesSpecMetrics)
{
    const std::string with_fibers =
        fingerprint(runSpecEngine(Strategy::kReloaded, 1));
    setenv("CREV_FIBERS", "0", 1);
    const std::string host_threads =
        fingerprint(runSpecEngine(Strategy::kReloaded, 1));
    unsetenv("CREV_FIBERS");
    EXPECT_EQ(host_threads, with_fibers);
}

/** Heap churn with capability links, register parking, and hoards —
 *  the same mix the chaos campaign uses, shrunk to gate size. */
void
churn(Machine &m, Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7);
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, static_cast<uint64_t>(i));
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                ASSERT_TRUE(ctx.loadCap(live[a].c, 16).tag);
            }
        } else if (dice < 0.95) {
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            ASSERT_TRUE(ctx.hoardTake(slot).tag);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

RunMetrics
runChaosWith(Strategy s, bool host_fast_paths,
             bool sweep_accel = true, bool oracle = false,
             int par_cores = -1, bool memo = true)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.host_fast_paths = host_fast_paths;
    cfg.sweep_accel = sweep_accel;
    cfg.oracle = oracle;
    cfg.memo = memo;
    if (par_cores >= 0)
        cfg.par_cores = static_cast<unsigned>(par_cores);
    cfg.policy.min_bytes = 32 * 1024; // revoke frequently
    cfg.background_sweepers = 2;
    cfg.seed = 42;
    cfg.faults.enabled = true;
    cfg.faults.seed = 909;
    cfg.faults.sweeper_stall_prob = 0.05;
    cfg.faults.sweeper_stall_cycles = 250'000;
    cfg.faults.sweeper_kill_prob = 0.10;
    cfg.faults.max_sweeper_kills = 1;
    cfg.faults.fault_drop_prob = 0.10;
    cfg.faults.max_fault_drops = 4;
    cfg.faults.fault_duplicate_prob = 0.10;
    cfg.faults.stw_delay_prob = 0.25;
    cfg.faults.stw_delay_cycles = 25'000;
    // PR-6 fault domains, all armed: the determinism contract covers
    // every recovery path (shootdown re-send, summary repair,
    // quarantine hand-off re-delivery, core stalls).
    cfg.faults.shootdown_drop_prob = 0.2;
    cfg.faults.shootdown_late_prob = 0.2;
    cfg.faults.shootdown_late_cycles = 10'000;
    cfg.faults.core_stall_prob = 0.005;
    cfg.faults.core_stall_cycles = 100'000;
    cfg.faults.summary_corrupt_prob = 0.25;
    cfg.faults.quarantine_drop_prob = 0.25;
    cfg.faults.quarantine_duplicate_prob = 0.25;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3,
                   [&](Mutator &ctx) { churn(m, ctx, 800); });
    m.run();
    return m.metrics();
}

TEST(Determinism, FastPathsPreserveChaosMetricsAllStrategies)
{
    // Fault injection plus the per-epoch audit: the fast paths must
    // not perturb a single scheduling point even when the run leans on
    // the watchdog's recovery ladder.
    for (Strategy s : core::kAllStrategies) {
        const std::string fast =
            fingerprint(runChaosWith(s, true));
        const std::string reference =
            fingerprint(runChaosWith(s, false));
        EXPECT_EQ(fast, reference)
            << "strategy " << core::strategyName(s);
    }
}

/** Chaos campaign with the memo and the dispatched kernels both
 *  toggled at once (the two new host levers of DESIGN.md §17): fault
 *  injection, recovery ladders, and the per-epoch audit must see the
 *  exact same virtual history either way. */
TEST(Determinism, MemoAndKernelsPreserveChaosMetricsAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        const std::string dispatched =
            fingerprint(runChaosWith(s, true));
        setenv("CREV_SIMD", "0", 1);
        simd::refreshFromEnv();
        const std::string scalar_no_memo = fingerprint(
            runChaosWith(s, true, true, false, -1, /*memo=*/false));
        unsetenv("CREV_SIMD");
        simd::refreshFromEnv();
        EXPECT_EQ(scalar_no_memo, dispatched)
            << "strategy " << core::strategyName(s);
    }
}

TEST(Determinism, SweepAccelPreservesChaosMetricsAllStrategies)
{
    // Same chaos campaign, toggling only the sweep-acceleration
    // layers. The per-epoch audit is on, so the Auditor's summary
    // consistency cross-check runs in both configurations; degraded
    // epochs exercise the emergency sweep's unaccelerated page walk.
    for (Strategy s : core::kAllStrategies) {
        const std::string accel =
            fingerprint(runChaosWith(s, true, true));
        const std::string plain =
            fingerprint(runChaosWith(s, true, false));
        EXPECT_EQ(accel, plain)
            << "strategy " << core::strategyName(s);
    }
}

TEST(Determinism, LockstepEnginePreservesChaosMetricsAllStrategies)
{
    // The hardest equivalence case: every fault domain armed, audit
    // on, background sweepers, watchdog recovery — and still not one
    // scheduling point may move between the engines.
    for (Strategy s : core::kAllStrategies) {
        const std::string serial =
            fingerprint(runChaosWith(s, true, true, false, 0));
        const std::string lockstep =
            fingerprint(runChaosWith(s, true, true, false, 2));
        EXPECT_EQ(lockstep, serial)
            << "strategy " << core::strategyName(s);
    }
}

/** Producer/consumer churn where the bulk of frees happen on a
 *  different core than the allocation, driving the remote-dealloc
 *  message queues (DESIGN.md §15). Exactly one simulated thread runs
 *  at a time, so the shared host-side queue needs no host locking and
 *  hand-off order is fully scheduler-determined. */
void
crossCoreChurn(Machine &m, int iters)
{
    auto queue = std::make_shared<std::vector<cap::Capability>>();
    auto produced = std::make_shared<int>(0);
    m.spawnMutator("prod", 1u << 0, [=](Mutator &ctx) {
        for (int i = 0; i < iters; ++i) {
            const std::size_t size = 16 << ctx.rng().below(6);
            cap::Capability c = ctx.malloc(size);
            ctx.store64(c, 0, static_cast<std::uint64_t>(i));
            queue->push_back(c);
            ++*produced;
            ctx.compute(150);
            if (i % 8 == 0) // every eighth object dies locally
                ctx.free(ctx.malloc(96));
        }
    });
    m.spawnMutator("cons", 1u << 1, [=, &m](Mutator &ctx) {
        std::size_t taken = 0;
        while (taken < static_cast<std::size_t>(iters)) {
            if (taken < queue->size()) {
                // Copy out: free() yields, and the producer's
                // push_back may reallocate the vector meanwhile.
                const cap::Capability c = queue->at(taken);
                ctx.load64(c, 0); // touch before free
                ctx.free(c);
                ++taken;
                ctx.compute(120);
            } else {
                ctx.compute(400); // producer behind; spin virtually
            }
        }
        m.heap().drain(ctx.thread());
    });
}

RunMetrics
runCrossCore(Strategy s, unsigned alloc_cores, unsigned par_cores,
             bool chaos)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.policy = workload::specPolicy();
    cfg.policy.min_bytes = 32 * 1024;
    cfg.alloc_cores = alloc_cores;
    cfg.par_cores = par_cores;
    cfg.seed = 7;
    if (chaos) {
        cfg.audit = true;
        cfg.background_sweepers = 2;
        cfg.faults.enabled = true;
        cfg.faults.seed = 909;
        cfg.faults.sweeper_stall_prob = 0.05;
        cfg.faults.sweeper_stall_cycles = 250'000;
        cfg.faults.fault_drop_prob = 0.10;
        cfg.faults.max_fault_drops = 4;
        cfg.faults.stw_delay_prob = 0.25;
        cfg.faults.stw_delay_cycles = 25'000;
        cfg.faults.shootdown_drop_prob = 0.2;
        cfg.faults.summary_corrupt_prob = 0.25;
        cfg.faults.quarantine_drop_prob = 0.25;
        cfg.faults.quarantine_duplicate_prob = 0.25;
    }
    Machine m(cfg);
    crossCoreChurn(m, 300);
    m.run();
    return m.metrics();
}

/** The tentpole contract (DESIGN.md §15): per-core allocator
 *  sharding is a simulated-topology choice, and for each shard count
 *  the serial token engine and the lockstep engine must agree on
 *  every simulated observable — with cross-core remote frees in
 *  flight. alloc_cores = 1 is the single-heap reference model. */
TEST(Determinism, AllocShardingPreservesSpecMetricsAcrossEngines)
{
    for (Strategy s : core::kAllStrategies) {
        for (unsigned ac : {1u, 2u, 4u}) {
            const RunMetrics serial_m = runCrossCore(s, ac, 0, false);
            const std::string serial = fingerprint(serial_m);
            const std::string lockstep =
                fingerprint(runCrossCore(s, ac, 2, false));
            EXPECT_EQ(lockstep, serial)
                << "strategy " << core::strategyName(s)
                << " alloc_cores " << ac;
            // The workload must actually drive the remote-dealloc
            // path once sharded — and never in the reference model.
            if (ac == 1)
                EXPECT_EQ(serial_m.quarantine.remote_free_sends, 0u);
            else
                EXPECT_GT(serial_m.quarantine.remote_free_sends, 0u)
                    << "strategy " << core::strategyName(s)
                    << " alloc_cores " << ac;
        }
    }
}

/** Same engine equivalence with every fault domain armed and the
 *  audit on: chaos-injected recovery paths must not perturb the
 *  remote-dealloc queues' drain order either. */
TEST(Determinism, AllocShardingPreservesChaosMetricsAcrossEngines)
{
    for (Strategy s : core::kAllStrategies) {
        for (unsigned ac : {1u, 2u, 4u}) {
            const std::string serial =
                fingerprint(runCrossCore(s, ac, 0, true));
            const std::string lockstep =
                fingerprint(runCrossCore(s, ac, 2, true));
            EXPECT_EQ(lockstep, serial)
                << "strategy " << core::strategyName(s)
                << " alloc_cores " << ac;
        }
    }
}

TEST(Determinism, OraclePreservesChaosMetricsAllStrategies)
{
    // The oracle rides a full chaos campaign (every fault domain
    // armed, audit on) without perturbing one scheduling point — and
    // reports zero violations even while recovery paths run hot.
    for (Strategy s : core::kAllStrategies) {
        const RunMetrics on = runChaosWith(s, true, true, true);
        const RunMetrics off = runChaosWith(s, true, true, false);
        EXPECT_EQ(on.oracle_violations, 0u)
            << "strategy " << core::strategyName(s);
        EXPECT_EQ(fingerprint(on), fingerprint(off))
            << "strategy " << core::strategyName(s);
    }
}

} // namespace
} // namespace crev
