/**
 * @file
 * Unit and property tests for the capability model and its
 * CHERI-Concentrate-style compression.
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "cap/capability.h"
#include "cap/compression.h"

namespace crev::cap {
namespace {

TEST(Capability, NullIsUntagged)
{
    const Capability c = Capability::null();
    EXPECT_FALSE(c.tag);
    EXPECT_EQ(c.base, 0u);
    EXPECT_EQ(c.top, 0u);
}

TEST(Capability, RootCoversRequestedRange)
{
    const Capability c = Capability::root(0x4000'0000, 0x4010'0000);
    EXPECT_TRUE(c.tag);
    EXPECT_EQ(c.base, 0x4000'0000u);
    EXPECT_EQ(c.top, 0x4010'0000u);
    EXPECT_EQ(c.address, c.base);
    EXPECT_TRUE(c.hasPerms(kPermAll));
}

TEST(Capability, SetBoundsIsMonotonic)
{
    const Capability root = Capability::root(0x4000'0000, 0x4001'0000);
    const Capability sub = root.setBounds(0x4000'0100, 0x4000'0200);
    EXPECT_TRUE(sub.tag);
    EXPECT_EQ(sub.base, 0x4000'0100u);
    EXPECT_EQ(sub.top, 0x4000'0200u);

    // Escaping the parent's bounds must untag.
    EXPECT_FALSE(root.setBounds(0x3fff'0000, 0x4000'0100).tag);
    EXPECT_FALSE(root.setBounds(0x4000'0000, 0x4002'0000).tag);
    // Inverted bounds untag.
    EXPECT_FALSE(root.setBounds(0x4000'0200, 0x4000'0100).tag);
    // Deriving from an untagged capability stays untagged.
    Capability dead = root;
    dead.tag = false;
    EXPECT_FALSE(dead.setBounds(0x4000'0100, 0x4000'0200).tag);
}

TEST(Capability, SetAddressInBoundsKeepsTag)
{
    const Capability c = Capability::root(0x4000'0000, 0x4000'1000);
    const Capability moved = c.setAddress(0x4000'0800);
    EXPECT_TRUE(moved.tag);
    EXPECT_EQ(moved.address, 0x4000'0800u);
    EXPECT_EQ(moved.base, c.base);
}

TEST(Capability, SetAddressFarOutOfBoundsUntags)
{
    // Paper footnote 9: bases cannot be taken out of bounds without
    // rendering the capability useless.
    const Capability c = Capability::root(0x4000'0000, 0x4000'1000);
    const Capability far = c.setAddress(0x7000'0000);
    EXPECT_FALSE(far.tag);
    EXPECT_EQ(far.address, 0x7000'0000u);
}

TEST(Capability, OnePastEndStaysRepresentable)
{
    const Capability c = Capability::root(0x4000'0000, 0x4000'1000);
    EXPECT_TRUE(c.setAddress(c.top).tag);
}

TEST(Capability, InBounds)
{
    const Capability c =
        Capability::root(0x4000'0000, 0x4000'0100).setAddress(
            0x4000'00f8);
    EXPECT_TRUE(c.inBounds(8));
    EXPECT_FALSE(c.inBounds(16));
}

TEST(Capability, AndPermsShrinksOnly)
{
    const Capability c = Capability::root(0x4000'0000, 0x4000'1000);
    const Capability ro = c.andPerms(kPermLoad | kPermLoadCap);
    EXPECT_TRUE(ro.hasPerms(kPermLoad));
    EXPECT_FALSE(ro.hasPerms(kPermStore));
}

TEST(Compression, SmallRegionsAreBytePrecise)
{
    for (Addr len : {1ull, 16ull, 100ull, 4096ull, 8192ull}) {
        EXPECT_EQ(exponentFor(len), 0u) << len;
        EXPECT_EQ(representableLength(len), len);
        EXPECT_EQ(representableAlignment(len), 1u);
    }
}

TEST(Compression, LargeRegionsGainAlignment)
{
    EXPECT_GT(exponentFor(8193), 0u);
    EXPECT_GT(exponentFor(1 << 20), 0u);
    // Rounded length is never smaller and alignment divides it.
    for (Addr len : {8193ull, 12345ull, 65536ull, 1048577ull}) {
        const Addr r = representableLength(len);
        EXPECT_GE(r, len);
        EXPECT_EQ(r % representableAlignment(len), 0u);
    }
}

TEST(Compression, RoundTripExactForAlignedBounds)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        const Addr len = 1 + rng.below(1 << 22);
        const Addr align = representableAlignment(len);
        const Addr rlen = representableLength(len);
        const Addr base =
            roundUp(0x4000'0000 + rng.below(1ull << 34), align);
        Capability c;
        c.base = base;
        c.top = base + rlen;
        c.address = base + rng.below(rlen + 1);
        c.perms = kPermAll;
        c.tag = true;
        const Capability d = decode(encode(c), true);
        ASSERT_EQ(d.base, c.base) << "len=" << len;
        ASSERT_EQ(d.top, c.top) << "len=" << len;
        ASSERT_EQ(d.address, c.address);
        ASSERT_EQ(d.perms, c.perms);
    }
}

TEST(Compression, RoundTripWithinRepresentableRange)
{
    // Cursors anywhere inside the representable region must decode to
    // the same bounds.
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Addr len = 16 + rng.below(1 << 20);
        const Addr align = representableAlignment(len);
        const Addr base =
            roundUp(0x1000'0000 + rng.below(1ull << 30), align);
        Capability c;
        c.base = base;
        c.top = base + representableLength(len);
        c.address = base;
        c.perms = kPermAll;
        c.tag = true;
        const ReprRange rr = representableRange(c);
        ASSERT_LE(rr.repr_base, c.base);
        ASSERT_GE(rr.repr_top, c.top);
        const Addr span = rr.repr_top - rr.repr_base;
        const Addr probe = rr.repr_base + rng.below(span);
        Capability moved = c;
        moved.address = probe;
        const Capability d = decode(encode(moved), true);
        ASSERT_EQ(d.base, c.base)
            << "probe=" << std::hex << probe << " base=" << base
            << " len=" << len;
        ASSERT_EQ(d.top, c.top);
    }
}

TEST(Compression, RevocationProbeUsesExactBase)
{
    // The property revocation depends on: any capability derived from
    // an allocation decodes (from memory) with the allocation's exact
    // base, so one painted bit at the base granule suffices.
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const Addr size = 16 * (1 + rng.below(512)); // up to 8 KiB
        const Addr base = 0x4000'0000 + 16 * rng.below(1 << 20);
        const Capability obj =
            Capability::root(roundDown(base, 16),
                             roundDown(base, 16) + size);
        const Addr off = 16 * rng.below(size / 16);
        const Capability inner = obj.setAddress(obj.base + off);
        const Capability restored = decode(encode(inner), true);
        ASSERT_EQ(restored.base, obj.base);
    }
}

} // namespace
} // namespace crev::cap
