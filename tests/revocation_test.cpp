/**
 * @file
 * End-to-end revocation tests, including the randomized property test
 * that drives malloc/free/copy/load/store churn under every strategy
 * with the whole-machine invariant audit enabled after every epoch
 * (paper §2.2.3's central guarantee).
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/logging.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "revoker/auditor.h"
#include "vm/fault.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

/** Strategies that provide temporal safety. */
const Strategy kSafeStrategies[] = {
    Strategy::kCheriVoke, Strategy::kCornucopia, Strategy::kReloaded,
    Strategy::kCheriotFilter};

class SafeStrategyTest : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(SafeStrategyTest, UafCapabilityIsRevokedEverywhere)
{
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        // Hide the dangling capability in three places: a register,
        // heap memory, and a kernel hoard.
        const cap::Capability victim = ctx.malloc(128);
        const cap::Capability holder = ctx.malloc(64);
        ctx.thread().reg(5) = victim;
        ctx.storeCap(holder, 0, victim);
        const std::size_t slot = ctx.hoardPut(victim);

        ctx.free(victim);
        m.heap().drain(ctx.thread());

        EXPECT_FALSE(ctx.thread().reg(5).tag) << "register not swept";
        EXPECT_FALSE(ctx.loadCap(holder, 0).tag) << "memory not swept";
        EXPECT_FALSE(ctx.hoardTake(slot).tag) << "hoard not swept";
    });
    m.run();
    EXPECT_GT(m.metrics().sweep.regs_revoked, 0u);
}

TEST_P(SafeStrategyTest, UnrelatedCapabilitiesSurviveRevocation)
{
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability keep = ctx.malloc(128);
        const cap::Capability holder = ctx.malloc(64);
        ctx.store64(keep, 8, 77);
        ctx.storeCap(holder, 0, keep);
        const cap::Capability victim = ctx.malloc(128);
        ctx.free(victim);
        m.heap().drain(ctx.thread());

        const cap::Capability live = ctx.loadCap(holder, 0);
        EXPECT_TRUE(live.tag);
        EXPECT_EQ(ctx.load64(live, 8), 77u);
    });
    m.run();
}

TEST_P(SafeStrategyTest, InnerPointersAreRevokedToo)
{
    // A narrowed capability derived from a freed allocation decodes
    // with the allocation's base, so the base-granule probe kills it.
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability obj = ctx.malloc(256);
        const cap::Capability inner =
            obj.setBounds(obj.base + 64, obj.base + 128);
        ASSERT_TRUE(inner.tag);
        const cap::Capability holder = ctx.malloc(64);
        ctx.storeCap(holder, 0, inner);
        ctx.free(obj);
        m.heap().drain(ctx.thread());
        EXPECT_FALSE(ctx.loadCap(holder, 0).tag);
    });
    m.run();
}

TEST_P(SafeStrategyTest, EpochCounterAdvancesByTwo)
{
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        EXPECT_EQ(m.kernel().epoch().value(), 0u);
        const cap::Capability a = ctx.malloc(64);
        ctx.free(a);
        m.heap().drain(ctx.thread());
        const auto v = m.kernel().epoch().value();
        EXPECT_GT(v, 0u);
        EXPECT_EQ(v % 2, 0u) << "counter must be even when idle";
    });
    m.run();
}

/**
 * The randomized churn property test. A workload keeps a working set
 * of objects, randomly allocating, freeing, linking objects with
 * capabilities, chasing those links, and occasionally hoarding
 * pointers kernel-side. The audit hook validates the revocation
 * invariant after every epoch; capability faults must never occur
 * because the workload (unlike an attacker) never dereferences
 * pointers it freed.
 */
void
churn(Machine &m, Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7); // 16..1024
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, i);
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            // Link two live objects and chase the link.
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                const cap::Capability back =
                    ctx.loadCap(live[a].c, 16);
                ASSERT_TRUE(back.tag);
                ctx.store64(back, 0, i);
            }
        } else if (dice < 0.95) {
            // Park a live pointer in a register.
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            // Kernel hoard round trip of a live pointer.
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            const cap::Capability back = ctx.hoardTake(slot);
            ASSERT_TRUE(back.tag);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

TEST_P(SafeStrategyTest, RandomChurnHoldsInvariantAuditedEveryEpoch)
{
    MachineConfig cfg;
    cfg.strategy = GetParam();
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024; // revoke frequently
    cfg.seed = 1234;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3,
                   [&m](Mutator &ctx) { churn(m, ctx, 4000); });
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.epochs.size(), 3u)
        << "the policy should have forced several epochs";
    EXPECT_GT(metrics.sweep.caps_revoked, 0u);
}

TEST_P(SafeStrategyTest, ChurnIsDeterministic)
{
    auto run_once = [](Strategy s) {
        MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy.min_bytes = 8 * 1024;
        cfg.seed = 77;
        Machine m(cfg);
        m.spawnMutator("app", 1u << 3,
                       [&m](Mutator &ctx) { churn(m, ctx, 1500); });
        m.run();
        const auto mm = m.metrics();
        return std::make_tuple(mm.wall_cycles, mm.cpu_cycles,
                               mm.bus_transactions_total,
                               mm.epochs.size(), mm.sweep.caps_revoked);
    };
    EXPECT_EQ(run_once(GetParam()), run_once(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SafeStrategyTest,
    ::testing::ValuesIn(kSafeStrategies),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::kCheriVoke:
            return "CheriVoke";
          case Strategy::kCornucopia:
            return "Cornucopia";
          case Strategy::kReloaded:
            return "Reloaded";
          case Strategy::kCheriotFilter:
            return "CheriotFilter";
          default:
            return "Other";
        }
    });

TEST(Reloaded, LoadBarrierFaultsOccurAndSelfHeal)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        churn(m, ctx, 3000);
    });
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.mmu.load_barrier_faults, 0u)
        << "a churn workload must take some load-barrier faults";
    // Self-healing: every fault resolves; fault totals are recorded.
    std::uint64_t fault_count = 0;
    for (const auto &e : metrics.epochs)
        fault_count += e.fault_count;
    EXPECT_EQ(fault_count, metrics.mmu.load_barrier_faults);
}

TEST(Reloaded, StwIsShortComparedToCornucopia)
{
    // The headline claim, in miniature: Reloaded's stop-the-world
    // phase must be orders of magnitude shorter than Cornucopia's on
    // a heap-heavy workload. We compare worst-case pauses (epochs
    // that run while the mutator happens to be idle see empty STW
    // re-sweeps under Cornucopia, diluting medians — the same "hidden
    // in idle time" effect as the paper's §5.2).
    auto worst_stw = [](Strategy s) {
        MachineConfig cfg;
        cfg.strategy = s;
        cfg.policy.min_bytes = 64 * 1024;
        Machine m(cfg);
        m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
            // Large live graph plus a store-heavy mutator: pages keep
            // getting re-dirtied while the concurrent phase runs, so
            // Cornucopia's STW re-sweep has real work (the paper's
            // memory-intensive regime). The free rate is low enough
            // that the mutator never blocks on a full quarantine.
            std::vector<cap::Capability> keep;
            for (int i = 0; i < 400; ++i) {
                keep.push_back(ctx.malloc(2048));
                ctx.storeCap(keep.back(), 0,
                             keep[ctx.rng().below(keep.size())]);
            }
            for (int round = 0; round < 1200; ++round) {
                for (int s = 0; s < 150; ++s) {
                    const auto a = ctx.rng().below(keep.size());
                    const auto b = ctx.rng().below(keep.size());
                    ctx.storeCap(keep[a], 16 * (1 + (s % 8)),
                                 keep[b]);
                }
                for (int k = 0; k < 2; ++k)
                    ctx.free(ctx.malloc(512));
            }
            for (auto &c : keep)
                ctx.free(c);
            m.heap().drain(ctx.thread());
        });
        m.run();
        Cycles worst = 0;
        for (const auto &e : m.metrics().epochs)
            worst = std::max(worst, e.stw_duration);
        CREV_ASSERT(worst > 0);
        return worst;
    };
    const Cycles corn = worst_stw(Strategy::kCornucopia);
    const Cycles rel = worst_stw(Strategy::kReloaded);
    EXPECT_LT(rel * 50, corn)
        << "Reloaded STW should be orders of magnitude below "
           "Cornucopia's";
}

TEST(PaintOnly, ProvidesNoSafetyButAdvancesEpochs)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kPaintOnly;
    cfg.policy.min_bytes = 8 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        const cap::Capability victim = ctx.malloc(64);
        ctx.storeCap(holder, 0, victim);
        ctx.free(victim);
        m.heap().drain(ctx.thread());
        // No sweep: the stale capability survives (unsafe by design).
        EXPECT_TRUE(ctx.loadCap(holder, 0).tag);
    });
    m.run();
    EXPECT_EQ(m.metrics().sweep.pages_swept, 0u);
    EXPECT_GT(m.metrics().epochs.size(), 0u);
}

TEST(Cornucopia, RedirtiedPagesAreResweptInStw)
{
    // The store barrier at work: pages written during the concurrent
    // phase must be revisited world-stopped. We detect this indirectly
    // via sweep totals exceeding the resident cap-page count.
    MachineConfig cfg;
    cfg.strategy = Strategy::kCornucopia;
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        churn(m, ctx, 4000);
    });
    m.run();
    // With audits green, correctness held even with concurrent stores.
    EXPECT_GT(m.metrics().sweep.pages_swept, 0u);
}

} // namespace
} // namespace crev
