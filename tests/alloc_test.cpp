/**
 * @file
 * Tests for the snmalloc-lite allocator and the mrs-style quarantine
 * shim: size classes, bounds, in-band free lists, double-free
 * detection, quarantine policy and the epoch-wait protocol.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "alloc/snmalloc_lite.h"
#include "cap/compression.h"
#include "core/machine.h"
#include "core/mutator.h"
#include "vm/fault.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

MachineConfig
baselineCfg()
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    return cfg;
}

TEST(SizeClasses, CoverageAndRepresentability)
{
    EXPECT_EQ(alloc::SnmallocLite::sizeClassFor(1), 0);
    EXPECT_EQ(alloc::SnmallocLite::sizeClassFor(16), 0);
    EXPECT_EQ(alloc::SnmallocLite::sizeClassFor(17), 1);
    EXPECT_EQ(alloc::SnmallocLite::sizeClassFor(alloc::kMaxSmall),
              static_cast<int>(alloc::kSizeClasses.size()) - 1);
    EXPECT_EQ(alloc::SnmallocLite::sizeClassFor(alloc::kMaxSmall + 1),
              -1);
    // Every class size at any 16-byte-aligned base must encode
    // exactly (no silent padding).
    for (std::size_t sz : alloc::kSizeClasses) {
        const Addr align = cap::representableAlignment(sz);
        EXPECT_LE(align, 16u) << sz;
        EXPECT_EQ(cap::representableLength(sz), sz);
    }
}

/** The constexpr 16-byte-granule LUT behind sizeClassFor must agree
 *  with the obvious linear scan at every size it claims to cover —
 *  1..kMaxSmall inclusive, plus the first large size. */
TEST(SizeClasses, LutMatchesLinearScanExhaustively)
{
    const auto reference = [](std::size_t size) -> int {
        for (std::size_t c = 0; c < alloc::kSizeClasses.size(); ++c)
            if (size <= alloc::kSizeClasses[c])
                return static_cast<int>(c);
        return -1;
    };
    for (std::size_t size = 1; size <= alloc::kMaxSmall + 1; ++size)
        ASSERT_EQ(alloc::SnmallocLite::sizeClassFor(size),
                  reference(size))
            << "size " << size;
}

TEST(Allocator, BoundsMatchSizeClass)
{
    Machine m(baselineCfg());
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(100);
        EXPECT_TRUE(c.tag);
        EXPECT_EQ(c.length(), 128u); // rounded to the class
        EXPECT_EQ(c.address, c.base);
        EXPECT_EQ(c.base % 16, 0u);
    });
    m.run();
}

TEST(Allocator, DistinctLiveObjectsDontOverlap)
{
    Machine m(baselineCfg());
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        std::vector<cap::Capability> caps;
        for (int i = 0; i < 200; ++i)
            caps.push_back(ctx.malloc(48));
        std::set<Addr> bases;
        for (const auto &c : caps) {
            EXPECT_TRUE(bases.insert(c.base).second);
            for (const auto &d : caps) {
                if (c.base == d.base)
                    continue;
                EXPECT_TRUE(c.top <= d.base || d.top <= c.base);
            }
        }
    });
    m.run();
}

TEST(Allocator, FreeListReusesMemoryInBaseline)
{
    Machine m(baselineCfg());
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability a = ctx.malloc(64);
        const Addr base = a.base;
        ctx.free(a);
        const cap::Capability b = ctx.malloc(64);
        // Without temporal safety, memory is reused immediately (LIFO
        // free list) — exactly the hazard revocation removes.
        EXPECT_EQ(b.base, base);
    });
    m.run();
}

TEST(Allocator, LargeAllocationsArePageGranular)
{
    Machine m(baselineCfg());
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(100 * 1024);
        EXPECT_TRUE(c.tag);
        EXPECT_EQ(c.base % kPageSize, 0u);
        EXPECT_EQ(c.length(), roundUp(100 * 1024, kPageSize));
        ctx.free(c);
        const cap::Capability d = ctx.malloc(100 * 1024);
        EXPECT_EQ(d.base, c.base); // cached large chunk reused
    });
    m.run();
}

TEST(Allocator, DoubleFreeDetected)
{
    Machine m(baselineCfg());
    bool threw = false;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(32);
        ctx.free(c);
        try {
            ctx.free(c);
        } catch (const std::logic_error &) {
            threw = true;
        }
    });
    m.run();
    EXPECT_TRUE(threw);
}

TEST(Allocator, FreeUntaggedRejected)
{
    Machine m(baselineCfg());
    bool threw = false;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        cap::Capability c = ctx.malloc(32);
        c.tag = false;
        try {
            ctx.free(c);
        } catch (const std::logic_error &) {
            threw = true;
        }
    });
    m.run();
    EXPECT_TRUE(threw);
}

/** Cross-core frees travel as batched remote-dealloc messages
 *  (DESIGN.md §15): sends are batched at the sender (a full batch
 *  splices mid-stream, the remainder at the sender's next allocation
 *  boundary) and the owner drains its inbox in send (FIFO) order —
 *  observable in the baseline model as reversed reuse order, because
 *  the owner's free list is LIFO. */
TEST(Allocator, RemoteFreeBatchingAndFifoDrain)
{
    MachineConfig cfg = baselineCfg();
    cfg.alloc_cores = 2;
    Machine m(cfg);
    auto objs = std::make_shared<std::vector<cap::Capability>>();
    std::vector<Addr> sent;
    std::vector<Addr> reused;
    m.spawnMutator("owner", 1u << 0, [&, objs](Mutator &ctx) {
        for (int i = 0; i < 12; ++i)
            objs->push_back(ctx.malloc(64));
        ctx.sleep(500'000); // remote frees land meanwhile
        for (int i = 0; i < 12; ++i)
            reused.push_back(ctx.malloc(64).base); // drains inbox
    });
    m.spawnMutator("remote", 1u << 1, [&, objs](Mutator &ctx) {
        ctx.sleep(100'000);
        for (const auto &c : *objs) {
            sent.push_back(c.base);
            ctx.free(c); // cross-core: batched, not freed here
        }
        // Allocation boundary flushes the 4-entry partial batch.
        ctx.free(ctx.malloc(16));
    });
    m.run();
    const auto q = m.metrics().quarantine;
    EXPECT_EQ(q.remote_free_sends, 12u);
    EXPECT_EQ(q.remote_batches, 2u); // one full batch of 8, one of 4
    EXPECT_EQ(q.remote_drained, 12u);
    ASSERT_EQ(reused.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
        EXPECT_EQ(reused[i], sent[sent.size() - 1 - i])
            << "drain must preserve send order (LIFO free list "
               "reverses it)";
}

/** A second free of an object whose remote free is still in flight is
 *  a detected double free — from the same remote core or from the
 *  owner itself, before the message drains. */
TEST(Allocator, CrossCoreDoubleFreeDetected)
{
    MachineConfig cfg = baselineCfg();
    cfg.alloc_cores = 2;
    Machine m(cfg);
    auto objs = std::make_shared<std::vector<cap::Capability>>();
    bool remote_remote_threw = false;
    bool remote_local_threw = false;
    m.spawnMutator("owner", 1u << 0, [&, objs](Mutator &ctx) {
        objs->push_back(ctx.malloc(64));
        objs->push_back(ctx.malloc(64));
        ctx.sleep(200'000); // both remote frees are now in flight
        try {
            ctx.free(objs->at(1)); // local free vs in-flight remote
        } catch (const std::logic_error &) {
            remote_local_threw = true;
        }
    });
    m.spawnMutator("remote", 1u << 1, [&, objs](Mutator &ctx) {
        ctx.sleep(100'000);
        ctx.free(objs->at(0));
        ctx.free(objs->at(1));
        try {
            ctx.free(objs->at(0)); // second remote free, same core
        } catch (const std::logic_error &) {
            remote_remote_threw = true;
        }
    });
    m.run();
    EXPECT_TRUE(remote_remote_threw);
    EXPECT_TRUE(remote_local_threw);
}

/** Regression pin for the trigger-threshold fix: the revocation
 *  trigger compares the *total* quarantine against the policy
 *  threshold. Under a free storm that outruns a slow revoker, the old
 *  per-buffer comparison let the refilling buffer climb to a full
 *  threshold on its own while the other buffer awaited its epoch, so
 *  quarantine-at-trigger averaged ~2x the policy target (Table 2
 *  drifted high). Fixed, the mean stays near the threshold. */
TEST(Quarantine, TriggerComparesTotalQuarantine)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 16 * 1024;
    cfg.latency.dram = 800; // sweeps crawl; frees do not
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        std::vector<cap::Capability> live;
        for (int i = 0; i < 600; ++i) {
            live.push_back(ctx.malloc(1024));
            if (live.size() >= 8) {
                ctx.free(live.front());
                live.erase(live.begin());
            }
        }
        for (auto &c : live)
            ctx.free(c);
        m.heap().drain(ctx.thread());
    });
    m.run();
    const auto q = m.metrics().quarantine;
    ASSERT_GT(q.revocations_triggered, 2u);
    // The storm genuinely outran the revoker (the regression regime:
    // a buffer was awaiting while frees kept landing) ...
    EXPECT_GT(q.blocked_ops, 0u);
    // ... and still, at no trigger had quarantine drifted toward 2x
    // the 16 KiB threshold; the mean stays within ~1.5x (submission
    // granularity: the triggering free's object is the overshoot).
    const double mean_quar_at_trigger =
        static_cast<double>(q.sum_quar_at_trigger) /
        static_cast<double>(q.revocations_triggered);
    EXPECT_LT(mean_quar_at_trigger, 1.5 * 16 * 1024);
    // Backpressure bounds the high-water mark near block_factor x
    // threshold (it was previously reachable only via both buffers
    // filling to a full threshold each).
    EXPECT_LE(q.max_quarantine_bytes,
              static_cast<std::uint64_t>(2.5 * 16 * 1024));
}

TEST(Quarantine, NoReuseBeforeEpoch)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20; // high threshold: no auto trigger
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability a = ctx.malloc(64);
        const Addr base = a.base;
        ctx.free(a);
        // Freed memory is quarantined, not recycled.
        for (int i = 0; i < 50; ++i) {
            const cap::Capability b = ctx.malloc(64);
            EXPECT_NE(b.base, base);
        }
    });
    m.run();
    EXPECT_GT(m.metrics().quarantine.sum_freed_bytes, 0u);
}

TEST(Quarantine, PolicyTriggersRevocationAndRecycles)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 16 * 1024; // low threshold
    Machine m(cfg);
    std::set<Addr> first_round;
    bool reused = false;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        // Churn enough memory to force several revocations.
        for (int round = 0; round < 40; ++round) {
            std::vector<cap::Capability> caps;
            for (int i = 0; i < 64; ++i) {
                caps.push_back(ctx.malloc(512));
                if (round == 0)
                    first_round.insert(caps.back().base);
                else if (first_round.count(caps.back().base))
                    reused = true;
            }
            for (auto &c : caps)
                ctx.free(c);
        }
    });
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.quarantine.revocations_triggered, 0u);
    EXPECT_GE(metrics.epochs.size(), 1u);
    EXPECT_TRUE(reused) << "revocation must eventually recycle memory";
}

TEST(Quarantine, UafReadsOldObjectUntilRevocation)
{
    // Paper §2.2.2: a dangling pointer may still be dereferenced (the
    // object's lifetime is logically extended) but never aliases a
    // *new* allocation; after revocation it is dead.
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability a = ctx.malloc(64);
        ctx.store64(a, 0, 0xDEAD);
        ctx.free(a);
        // Use-after-free within the quarantine window: reads the old
        // object, untouched (no poisoning before reuse).
        EXPECT_EQ(ctx.load64(a, 0), 0xDEADu);

        // After an explicit drain (revocation), register-held caps are
        // also revoked... but `a` lives in this host-side workload
        // variable, which models a register. Stash it in the register
        // file so the STW scan sees it.
        ctx.thread().reg(0) = a;
        m.heap().drain(ctx.thread());
        EXPECT_FALSE(ctx.thread().reg(0).tag);
    });
    m.run();
}

TEST(Quarantine, MemoryHeldCapRevokedAfterDrain)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 1 << 20;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        const cap::Capability victim = ctx.malloc(64);
        ctx.storeCap(holder, 0, victim);
        ctx.free(victim);
        m.heap().drain(ctx.thread());
        const cap::Capability loaded = ctx.loadCap(holder, 0);
        EXPECT_FALSE(loaded.tag);
        // Dereference through the revoked capability is fail-stop.
        EXPECT_THROW(ctx.load64(loaded, 0), vm::CapabilityFault);
    });
    m.run();
    EXPECT_GT(m.metrics().sweep.caps_revoked, 0u);
}

} // namespace
} // namespace crev
