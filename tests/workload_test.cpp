/**
 * @file
 * Tests for the workload generators: profile sanity, determinism,
 * latency capture, and the cross-strategy safety property under the
 * real workloads (audit enabled).
 */

#include <gtest/gtest.h>

#include "workload/grpc_qps.h"
#include "workload/pgbench.h"
#include "workload/spec.h"

namespace crev {
namespace {

using core::Strategy;

TEST(SpecProfiles, TableIsComplete)
{
    EXPECT_EQ(workload::specProfiles().size(), 9u); // 8 + hmmer x2
    for (const auto &p : workload::specProfiles()) {
        EXPECT_FALSE(p.sizes.empty()) << p.name;
        EXPECT_GT(p.target_live, 0u) << p.name;
    }
    EXPECT_EQ(workload::specProfile("omnetpp").name, "omnetpp");
    EXPECT_EQ(workload::revokingSpecNames().size(), 7u);
}

TEST(SpecProfiles, NonRevokingBenchmarksNeverRevoke)
{
    for (const char *name : {"bzip2", "sjeng"}) {
        auto profile = workload::specProfile(name);
        // Shrink for test speed; the zero-churn property is intrinsic.
        profile.pure_ops = 2000;
        core::MachineConfig cfg;
        cfg.strategy = Strategy::kReloaded;
        cfg.policy = workload::specPolicy();
        core::Machine m(cfg);
        workload::runSpec(m, profile);
        EXPECT_EQ(m.metrics().epochs.size(), 0u) << name;
        EXPECT_EQ(m.metrics().quarantine.sum_freed_bytes, 0u) << name;
    }
}

TEST(SpecProfiles, ChurnEngagesRevocationWithAuditOn)
{
    auto profile = workload::specProfile("hmmer_retro");
    profile.total_allocs = 800; // shrink for test speed
    core::MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.policy = workload::specPolicy();
    cfg.audit = true;
    core::Machine m(cfg);
    workload::runSpec(m, profile);
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.epochs.size(), 0u);
    EXPECT_GT(metrics.quarantine.sum_freed_bytes, 0u);
}

TEST(SpecProfiles, RunsAreDeterministic)
{
    auto profile = workload::specProfile("gobmk");
    profile.total_allocs = 1000;
    auto run = [&] {
        const auto m = workload::runSpecOn(Strategy::kCornucopia,
                                           profile, 5);
        return std::make_tuple(m.wall_cycles, m.cpu_cycles,
                               m.bus_transactions_total,
                               m.epochs.size());
    };
    EXPECT_EQ(run(), run());
}

TEST(Pgbench, RecordsAllLatencies)
{
    workload::PgbenchConfig cfg;
    cfg.transactions = 200;
    const auto r = workload::runPgbench(Strategy::kReloaded, cfg);
    EXPECT_EQ(r.latency_ms.count(), 200u);
    EXPECT_GT(r.latency_ms.min(), 0.0);
    EXPECT_GT(r.metrics.epochs.size(), 0u);
}

TEST(Pgbench, BaselineHasNoEpochs)
{
    workload::PgbenchConfig cfg;
    cfg.transactions = 100;
    const auto r = workload::runPgbench(Strategy::kBaseline, cfg);
    EXPECT_EQ(r.latency_ms.count(), 100u);
    EXPECT_TRUE(r.metrics.epochs.empty());
}

TEST(Pgbench, RateModeRecordsLag)
{
    workload::PgbenchConfig cfg;
    cfg.transactions = 150;
    cfg.rate_tps = 50000; // fast schedule: some lag inevitable
    const auto r = workload::runPgbench(Strategy::kReloaded, cfg);
    EXPECT_EQ(r.latency_ms.count(), 150u);
    EXPECT_EQ(r.lag_ms.count(), 150u);
}

TEST(Pgbench, SlowScheduleHidesStw)
{
    // At a very low offered rate, the server idles between
    // transactions and revocation pauses hide in the gaps: p99 stays
    // close to the median.
    workload::PgbenchConfig cfg;
    cfg.transactions = 150;
    cfg.rate_tps = 3000;
    const auto r = workload::runPgbench(Strategy::kCheriVoke, cfg);
    EXPECT_LT(r.latency_ms.percentile(0.75),
              2.5 * r.latency_ms.median());
}

TEST(GrpcQps, MeasuresThroughputAndTails)
{
    workload::GrpcConfig cfg;
    cfg.total_messages = 1000;
    const auto r = workload::runGrpcQps(Strategy::kReloaded, cfg);
    EXPECT_EQ(r.latency_ms.count(), 1000u);
    EXPECT_GT(r.qps, 0.0);
}

TEST(GrpcQps, ReloadedBeatsCornucopiaAtP99)
{
    workload::GrpcConfig cfg;
    cfg.total_messages = 6000;
    const auto corn =
        workload::runGrpcQps(Strategy::kCornucopia, cfg);
    const auto rel = workload::runGrpcQps(Strategy::kReloaded, cfg);
    ASSERT_GT(corn.metrics.epochs.size(), 0u);
    // The paper's headline for fig. 8: at the 99th percentile
    // Reloaded's latency multiplier is well below Cornucopia's.
    EXPECT_LT(rel.latency_ms.percentile(0.99),
              corn.latency_ms.percentile(0.99));
}

TEST(GrpcQps, MultiThreadedServerIsSafeUnderAudit)
{
    // Two mutator threads, shared heap, concurrent revocation — the
    // invariant audit runs after every epoch and panics on any stale
    // capability anywhere in the machine.
    workload::GrpcConfig cfg;
    cfg.total_messages = 1500;
    cfg.audit = true;
    const auto r = workload::runGrpcQps(Strategy::kReloaded, cfg);
    EXPECT_EQ(r.latency_ms.count(), 1500u);
    EXPECT_GT(r.metrics.epochs.size(), 0u);
}

TEST(Pgbench, AuditedRunHoldsInvariant)
{
    workload::PgbenchConfig cfg;
    cfg.transactions = 400;
    cfg.audit = true;
    for (Strategy s : {Strategy::kCheriVoke, Strategy::kCornucopia,
                       Strategy::kReloaded}) {
        const auto r = workload::runPgbench(s, cfg);
        EXPECT_GT(r.metrics.epochs.size(), 0u);
    }
}

} // namespace
} // namespace crev
