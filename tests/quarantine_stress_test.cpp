/**
 * @file
 * Quarantine backpressure under pressure: several concurrent mutators
 * freeing into a small quarantine against a deliberately slow revoker
 * (high DRAM latency), so maybeBlock() actually engages; and drain()
 * emptying the quarantine with every mutator draining at once.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

/** Free-heavy churn: a short FIFO of live objects so the quarantine
 *  fills much faster than the slow revoker can drain it. */
void
hammer(Machine &m, Mutator &ctx, int iters)
{
    std::vector<cap::Capability> live;
    for (int i = 0; i < iters; ++i) {
        live.push_back(ctx.malloc(1024));
        ctx.store64(live.back(), 0, static_cast<uint64_t>(i));
        if (live.size() >= 8) {
            ctx.free(live.front());
            live.erase(live.begin());
        }
    }
    for (auto &c : live)
        ctx.free(c);
    m.heap().drain(ctx.thread());
}

MachineConfig
slowRevokerConfig(Strategy s)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.policy.min_bytes = 16 * 1024; // tiny quarantine: trigger often
    cfg.latency.dram = 800;           // sweeps crawl; frees do not
    return cfg;
}

class QuarantineStressTest : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(QuarantineStressTest, ConcurrentMutatorsBlockAndRecover)
{
    Machine m(slowRevokerConfig(GetParam()));
    int finished = 0;
    for (int i = 0; i < 3; ++i) {
        const std::uint32_t core = i == 2 ? 3u : static_cast<std::uint32_t>(i);
        m.spawnMutator("app" + std::to_string(i), 1u << core,
                       [&m, &finished](Mutator &ctx) {
                           hammer(m, ctx, 1200);
                           ++finished;
                       });
    }
    m.run();

    const core::RunMetrics metrics = m.metrics();
    // All three mutators ran to completion despite backpressure: the
    // blocking path always has an epoch advance to wait for.
    EXPECT_EQ(finished, 3);
    EXPECT_EQ(m.heap().quarantineBytes(), 0u);
    EXPECT_EQ(m.kernel().epoch().value() % 2, 0u);

    // The pressure was real: the shim blocked operations, accounted
    // the wait time, and saw the quarantine high-water mark rise past
    // the trigger threshold.
    EXPECT_GT(metrics.quarantine.blocked_ops, 0u);
    EXPECT_GT(metrics.quarantine.blocked_cycles, 0u);
    EXPECT_GE(metrics.quarantine.max_quarantine_bytes, 16u * 1024u);
    EXPECT_GT(metrics.quarantine.revocations_triggered, 0u);
}

TEST_P(QuarantineStressTest, BlockedWaitsAreDeterministic)
{
    auto run_once = [&] {
        Machine m(slowRevokerConfig(GetParam()));
        for (int i = 0; i < 3; ++i) {
            const std::uint32_t core =
                i == 2 ? 3u : static_cast<std::uint32_t>(i);
            m.spawnMutator("app" + std::to_string(i), 1u << core,
                           [&m](Mutator &ctx) { hammer(m, ctx, 800); });
        }
        m.run();
        const core::RunMetrics metrics = m.metrics();
        return std::make_tuple(metrics.wall_cycles, metrics.cpu_cycles,
                               metrics.quarantine.blocked_ops,
                               metrics.quarantine.blocked_cycles,
                               metrics.quarantine.max_quarantine_bytes,
                               metrics.epochs.size());
    };
    EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    SafeStrategies, QuarantineStressTest,
    ::testing::Values(Strategy::kCheriVoke, Strategy::kCornucopia,
                      Strategy::kReloaded),
    [](const ::testing::TestParamInfo<Strategy> &info) {
        switch (info.param) {
          case Strategy::kCheriVoke:
            return "cherivoke";
          case Strategy::kCornucopia:
            return "cornucopia";
          default:
            return "reloaded";
        }
    });

} // namespace
} // namespace crev
