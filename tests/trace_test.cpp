/**
 * @file
 * The tracing subsystem's contracts (DESIGN.md §10): per-thread event
 * order follows virtual time, span events nest for every strategy,
 * tracing charges zero simulated cycles (RunMetrics bit-identical on
 * and off), the exported Chrome JSON is byte-identical across
 * same-seed runs, and the ring buffer and metrics registry behave.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "trace/metrics_registry.h"
#include "trace/trace.h"
#include "trace/trace_export.h"
#include "workload/spec.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::RunMetrics;
using core::Strategy;

MachineConfig
tracedConfig(Strategy s, bool trace)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.policy = workload::specPolicy();
    cfg.trace = trace;
    cfg.trace_buffer_events = 1u << 20; // never drop under test
    return cfg;
}

/** Simulated observables that must not move when tracing toggles. */
std::string
fingerprint(const RunMetrics &m)
{
    std::ostringstream os;
    os << m.wall_cycles << " " << m.cpu_cycles << " "
       << m.bus_transactions_total << " " << m.peak_rss_pages << " "
       << m.allocator.allocs << " " << m.quarantine.blocked_cycles
       << " " << m.mmu.load_barrier_faults << " "
       << m.sweep.caps_revoked << "\n";
    for (const auto &[name, busy] : m.thread_busy)
        os << name << "=" << busy << "\n";
    for (const auto &e : m.epochs)
        os << e.stw_duration << " " << e.concurrent_duration << " "
           << e.fault_time_total << " " << e.pages_swept << " "
           << e.caps_revoked << "\n";
    return os.str();
}

TEST(TraceBuffer, RingDropsOldestAndIteratesInOrder)
{
    trace::TraceBuffer b(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        b.push({/*at=*/i, /*arg64=*/i, /*tid=*/0, /*core=*/0,
                trace::EventType::kThreadRun, /*arg8=*/0});
    EXPECT_EQ(b.recorded(), 6u);
    EXPECT_EQ(b.dropped(), 2u);
    EXPECT_EQ(b.size(), 4u);
    std::vector<Cycles> at;
    b.forEach([&](const trace::Event &e) { at.push_back(e.at); });
    EXPECT_EQ(at, (std::vector<Cycles>{2, 3, 4, 5}));
}

TEST(Trace, PerThreadEventOrderFollowsVirtualTime)
{
    Machine m(tracedConfig(Strategy::kReloaded, true));
    workload::runSpec(m, workload::specProfile("hmmer_retro"));

    trace::Tracer *t = m.tracerOrNull();
    ASSERT_NE(t, nullptr);
    EXPECT_GT(t->totalRecorded(), 0u);
    EXPECT_EQ(t->totalDropped(), 0u);
    for (unsigned tid = 0; tid < t->numThreads(); ++tid) {
        Cycles prev = 0;
        std::size_t n = 0;
        t->buffer(tid)->forEach([&](const trace::Event &e) {
            EXPECT_EQ(e.tid, tid);
            EXPECT_GE(e.at, prev) << "tid " << tid << " event " << n;
            prev = e.at;
            ++n;
        });
    }
}

TEST(Trace, SpansNestForEveryStrategy)
{
    for (Strategy s : core::kAllStrategies) {
        if (s == Strategy::kBaseline)
            continue; // no revoker; nothing phase-shaped to check
        Machine m(tracedConfig(s, true));
        workload::runSpec(m, workload::specProfile("hmmer_retro"));

        const trace::PhaseSummary ps =
            trace::summarize(*m.tracerOrNull());
        EXPECT_EQ(ps.unmatched, 0u) << core::strategyName(s);
        EXPECT_EQ(ps.dropped, 0u) << core::strategyName(s);
        EXPECT_GT(ps.events, 0u) << core::strategyName(s);

        // Phase spans account for exactly the cycles RunMetrics saw.
        const RunMetrics rm = m.metrics();
        Cycles stw = 0, conc = 0, fault = 0;
        for (const auto &e : rm.epochs) {
            stw += e.stw_duration;
            conc += e.concurrent_duration;
            fault += e.fault_time_total;
        }
        using trace::Phase;
        EXPECT_EQ(ps.phases[static_cast<std::size_t>(Phase::kStwScan)]
                      .total_cycles,
                  stw)
            << core::strategyName(s);
        EXPECT_EQ(ps.phases[static_cast<std::size_t>(
                                Phase::kConcurrentSweep)]
                      .total_cycles,
                  conc)
            << core::strategyName(s);
        EXPECT_EQ(ps.phases[static_cast<std::size_t>(
                                Phase::kLoadFaultSweep)]
                      .total_cycles,
                  fault)
            << core::strategyName(s);

        // The summary renders without touching empty histograms.
        EXPECT_FALSE(trace::phaseSummaryText(ps).empty());
    }
}

TEST(Trace, ZeroSimulatedCostAllStrategies)
{
    for (Strategy s : core::kAllStrategies) {
        Machine on(tracedConfig(s, true));
        workload::runSpec(on, workload::specProfile("hmmer_retro"));
        Machine off(tracedConfig(s, false));
        workload::runSpec(off, workload::specProfile("hmmer_retro"));
        EXPECT_EQ(fingerprint(on.metrics()), fingerprint(off.metrics()))
            << "strategy " << core::strategyName(s);
        EXPECT_EQ(off.tracerOrNull(), nullptr);
        EXPECT_EQ(off.traceJson(), "");
    }
}

TEST(Trace, ChromeJsonByteIdenticalAcrossSameSeedRuns)
{
    std::string first;
    for (int run = 0; run < 2; ++run) {
        Machine m(tracedConfig(Strategy::kReloaded, true));
        workload::runSpec(m, workload::specProfile("hmmer_retro"));
        const std::string json = m.traceJson();
        ASSERT_FALSE(json.empty());
        if (run == 0)
            first = json;
        else
            EXPECT_EQ(json, first);
    }
    // Sanity: the export looks like a Chrome trace-event document.
    EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(first.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(first.find("\"stw_scan\""), std::string::npos);
}

TEST(MetricsRegistry, CountersGaugesHistogramsAndJson)
{
    trace::MetricsRegistry reg;
    reg.counter("a.count", 2);
    reg.counter("a.count", 3);
    reg.gauge("b.gauge", 1.5);
    reg.sample("c.hist", 1.0);
    reg.sample("c.hist", 3.0);
    EXPECT_EQ(reg.counterValue("a.count"), 5u);
    EXPECT_EQ(reg.gaugeValue("b.gauge"), 1.5);
    ASSERT_NE(reg.histogram("c.hist"), nullptr);
    EXPECT_EQ(reg.histogram("c.hist")->count(), 2u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_EQ(reg.histogram("missing"), nullptr);

    const std::string pretty = reg.toJson();
    EXPECT_NE(pretty.find("\"a.count\": 5"), std::string::npos);
    EXPECT_NE(pretty.find("\"median\": 2"), std::string::npos);
    const std::string compact = reg.toJson(0);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    EXPECT_NE(compact.find("\"b.gauge\": 1.5"), std::string::npos);
}

TEST(MetricsRegistry, RunMetricsExportCoversEverySubsystem)
{
    Machine m(tracedConfig(Strategy::kReloaded, false));
    workload::runSpec(m, workload::specProfile("hmmer_retro"));
    const RunMetrics rm = m.metrics();

    trace::MetricsRegistry reg;
    rm.exportTo(reg);
    EXPECT_EQ(reg.counterValue("run.wall_cycles"), rm.wall_cycles);
    EXPECT_EQ(reg.counterValue("revoker.epochs"), rm.epochs.size());
    EXPECT_EQ(reg.counterValue("sweep.caps_revoked"),
              rm.sweep.caps_revoked);
    EXPECT_EQ(reg.counterValue("alloc.allocs"), rm.allocator.allocs);
    EXPECT_EQ(reg.counterValue("vm.load_barrier_faults"),
              rm.mmu.load_barrier_faults);
    ASSERT_NE(reg.histogram("revoker.stw_us"), nullptr);
    EXPECT_EQ(reg.histogram("revoker.stw_us")->count(),
              rm.epochs.size());

    // Export is deterministic for identical inputs.
    trace::MetricsRegistry again;
    rm.exportTo(again);
    EXPECT_EQ(reg.toJson(), again.toJson());
}

} // namespace
} // namespace crev
