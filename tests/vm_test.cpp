/**
 * @file
 * Tests for the VM layer: reservations with representability padding
 * and guard pages, demand paging, TLB behaviour, capability-dirty
 * store tracking, and the load-barrier trap plumbing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cap/compression.h"
#include "kern/kernel.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"
#include "sim/scheduler.h"
#include "vm/address_space.h"
#include "vm/fault.h"
#include "vm/mmu.h"

namespace crev::vm {
namespace {

/** A harness bundling the VM stack under a one-thread scheduler. */
struct VmHarness
{
    VmHarness()
        : ms(2, mem::CacheConfig{32 * 1024, 4},
             mem::CacheConfig{256 * 1024, 8}, mem::MemLatency{}),
          sched(2, sim::CostModel{}), as(pm), mmu(pm, ms, as,
                                                  sched.costs())
    {
    }

    /** Run @p body on a simulated thread pinned to core 0. */
    template <typename Fn>
    void
    onThread(Fn body)
    {
        sched.spawn("t", 1, [body = std::move(body)](sim::SimThread &t) {
            body(t);
        });
        sched.run();
    }

    mem::PhysMem pm;
    mem::MemorySystem ms;
    sim::Scheduler sched;
    AddressSpace as;
    Mmu mmu;
};

TEST(AddressSpace, ReservePadsToRepresentability)
{
    mem::PhysMem pm;
    AddressSpace as(pm);
    // 5 MiB needs E > 0: the reservation is longer than requested and
    // the base suitably aligned.
    const Addr len = 5 * 1024 * 1024 + 123;
    const Addr base = as.reserve(len);
    Reservation *r = as.reservationFor(base);
    ASSERT_NE(r, nullptr);
    EXPECT_GE(r->length, r->requested);
    EXPECT_EQ(base % std::max<Addr>(cap::representableAlignment(
                                        roundUp(len, kPageSize)),
                                    kPageSize),
              0u);
    // Padding pages are guards.
    if (r->length > r->requested) {
        EXPECT_EQ(as.classify(base + r->requested, false, false),
                  FaultKind::kGuard);
    }
}

TEST(AddressSpace, DemandZeroThenResident)
{
    mem::PhysMem pm;
    AddressSpace as(pm);
    const Addr base = as.reserve(kPageSize * 4);
    EXPECT_EQ(as.classify(base, false, false), FaultKind::kDemandZero);
    as.makeResident(base);
    EXPECT_EQ(as.classify(base, false, false), FaultKind::kNone);
    EXPECT_EQ(as.residentPages(), 1u);
}

TEST(AddressSpace, UnmapCreatesGuardsAndQuarantinesReservation)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        AddressSpace &as = h.as;
        const Addr base = as.reserve(kPageSize * 2);
        as.makeResident(base);
        as.makeResident(base + kPageSize);
        EXPECT_EQ(h.pm.framesInUse(), 2u);

        as.unmap(t, base, kPageSize);
        EXPECT_EQ(as.classify(base, false, false), FaultKind::kGuard);
        EXPECT_EQ(h.pm.framesInUse(), 1u);
        EXPECT_TRUE(as.takeNewlyQuarantined(t).empty());

        as.unmap(t, base + kPageSize, kPageSize);
        auto quarantined = as.takeNewlyQuarantined(t);
        ASSERT_EQ(quarantined.size(), 1u);
        EXPECT_EQ(quarantined[0]->state,
                  ReservationState::kQuarantined);

        // Released reservations' VA is never recycled.
        as.release(t, quarantined[0]);
        const Addr base2 = as.reserve(kPageSize);
        EXPECT_GT(base2, base);
    });
}

TEST(AddressSpace, ShadowRegionIsImplicit)
{
    mem::PhysMem pm;
    AddressSpace as(pm);
    const Addr shadow = shadowByteFor(kHeapBase);
    EXPECT_EQ(as.classify(shadow, true, false),
              FaultKind::kDemandZero);
    Pte &p = as.makeResident(shadow);
    EXPECT_FALSE(p.cap_store); // bitmap pages never hold capabilities
}

TEST(Tlb, InsertLookupInvalidate)
{
    Tlb tlb(4);
    Pte p;
    p.valid = true;
    p.pfn = 42;
    tlb.insert(7, p);
    ASSERT_NE(tlb.lookup(7), nullptr);
    EXPECT_EQ(tlb.lookup(7)->pfn, 42u);
    tlb.invalidatePage(7);
    EXPECT_EQ(tlb.lookup(7), nullptr);
}

TEST(Tlb, FifoEviction)
{
    Tlb tlb(2);
    Pte p;
    p.valid = true;
    tlb.insert(1, p);
    tlb.insert(2, p);
    tlb.insert(3, p); // evicts vpn 1
    EXPECT_EQ(tlb.lookup(1), nullptr);
    EXPECT_NE(tlb.lookup(2), nullptr);
    EXPECT_NE(tlb.lookup(3), nullptr);
}

TEST(Mmu, DemandFaultChargedOnce)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        h.mmu.storeU64(t, base, 0x1234);
        EXPECT_EQ(h.mmu.stats().demand_faults, 1u);
        EXPECT_EQ(h.mmu.loadU64(t, base), 0x1234u);
        EXPECT_EQ(h.mmu.stats().demand_faults, 1u); // now resident
    });
}

TEST(Mmu, GuardTouchThrows)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        h.as.unmap(t, base, kPageSize);
        EXPECT_THROW(h.mmu.loadU64(t, base), MemoryFault);
    });
}

TEST(Mmu, UnmappedTouchThrows)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        EXPECT_THROW(h.mmu.loadU64(t, 0x1234'5678'0000ull),
                     MemoryFault);
    });
}

TEST(Mmu, CapStoreSetsDirtyAndEverBits)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        h.mmu.storeCap(t, base, c);
        Pte *p = h.as.findPte(base);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(p->cap_dirty);
        EXPECT_TRUE(p->cap_ever);

        const cap::Capability back = h.mmu.loadCap(t, base);
        EXPECT_TRUE(back.tag);
        EXPECT_EQ(back.base, c.base);
        EXPECT_EQ(back.top, c.top);
    });
}

TEST(Mmu, UntaggedCapStoreDoesNotDirty)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        cap::Capability c = cap::Capability::root(base, base + 64);
        c.tag = false;
        h.mmu.storeCap(t, base, c);
        Pte *p = h.as.findPte(base);
        ASSERT_NE(p, nullptr);
        EXPECT_FALSE(p->cap_dirty);
        EXPECT_FALSE(p->cap_ever);
    });
}

TEST(Mmu, CapStoreToNoCapStorePageFaults)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize, /*cap_store=*/false);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        EXPECT_THROW(h.mmu.storeCap(t, base, c), MemoryFault);
        // Plain data stores are fine.
        h.mmu.storeU64(t, base, 7);
    });
}

TEST(Mmu, LoadBarrierTrapsOnStaleGenerationOnly)
{
    VmHarness h;
    int faults = 0;
    h.mmu.setLoadFaultHandler([&](sim::SimThread &t, Addr va) {
        ++faults;
        // Minimal self-healing handler: bring the PTE up to date.
        Pte *p = h.as.findPte(va);
        p->clg = h.mmu.currentGen();
        h.mmu.shootdownPage(t, va);
    });
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        h.mmu.storeCap(t, base, c);

        // Same generation: no trap.
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 0);

        // Flip generations: next tagged load traps once, then heals.
        h.mmu.flipAllCoreGens(t);
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 1);
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 1);
        EXPECT_EQ(h.mmu.stats().load_barrier_faults, 1u);
    });
}

TEST(Mmu, UntaggedLoadNeverTraps)
{
    VmHarness h;
    h.mmu.setLoadFaultHandler([](sim::SimThread &, Addr) {
        FAIL() << "untagged loads must not trap";
    });
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        h.mmu.storeU64(t, base, 99);
        h.mmu.flipAllCoreGens(t);
        // Capability-width load of untagged data: no trap.
        const cap::Capability c = h.mmu.loadCap(t, base);
        EXPECT_FALSE(c.tag);
    });
}

TEST(Mmu, NewPagesAdoptCurrentGeneration)
{
    VmHarness h;
    h.mmu.setLoadFaultHandler([](sim::SimThread &, Addr) {
        FAIL() << "fresh pages must not trap";
    });
    h.onThread([&](sim::SimThread &t) {
        h.mmu.flipAllCoreGens(t);
        const Addr base = h.as.reserve(kPageSize);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        h.mmu.storeCap(t, base, c); // demand-fault adopts new gen
        EXPECT_TRUE(h.mmu.loadCap(t, base).tag);
    });
}

TEST(Mmu, KernelPathsBypassBarrierAndDirtyTracking)
{
    VmHarness h;
    h.mmu.setLoadFaultHandler([](sim::SimThread &, Addr) {
        FAIL() << "kernel loads must bypass the barrier";
    });
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        h.mmu.storeCap(t, base, c);
        h.mmu.flipAllCoreGens(t);

        const cap::Capability k = h.mmu.kernelLoadCap(t, base);
        EXPECT_TRUE(k.tag);

        h.mmu.kernelClearTag(t, base);
        EXPECT_FALSE(h.mmu.peekTag(base));
    });
}

/**
 * Regression for the one-entry PTE pointer cache (PR 2): in-place PTE
 * mutations — the epoch-open CLG flip, load-fault self-heals behind
 * shootdownPage, the cap-dirty bit — do not bump the page-table
 * epoch that keys the cache, so each such site must invalidate it
 * explicitly. A stale cached walk here would let a load slip past
 * the barrier untrapped.
 */
TEST(Mmu, PteCacheInvalidatedAcrossEpochFlip)
{
    VmHarness h;
    h.mmu.setHostFastPaths(true); // the cache under test
    int faults = 0;
    h.mmu.setLoadFaultHandler([&](sim::SimThread &t, Addr va) {
        ++faults;
        Pte *p = h.as.findPte(va);
        p->clg = h.mmu.currentGen();
        h.mmu.shootdownPage(t, va);
    });
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        const cap::Capability c =
            cap::Capability::root(base, base + 64);
        h.mmu.storeCap(t, base, c);

        // Warm both the TLB and the PTE pointer cache.
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 0);

        // Epoch open: generations flip via in-place PTE mutation.
        // The next load walks through whatever the cache returns and
        // MUST still observe the stale CLG and trap.
        h.mmu.flipAllCoreGens(t);
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 1);

        // The self-heal (also an in-place mutation, behind
        // shootdownPage) must likewise be visible: no double trap.
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 1);

        // A second flip re-arms through the same cached entry.
        h.mmu.flipAllCoreGens(t);
        h.mmu.loadCap(t, base);
        EXPECT_EQ(faults, 2);
        EXPECT_EQ(h.mmu.stats().load_barrier_faults, 2u);
    });
}

TEST(Mmu, ShootdownForcesRewalk)
{
    VmHarness h;
    h.onThread([&](sim::SimThread &t) {
        const Addr base = h.as.reserve(kPageSize);
        h.mmu.storeU64(t, base, 1);
        const auto hits_before = h.mmu.tlb(t.core()).hits();
        h.mmu.loadU64(t, base); // TLB hit
        EXPECT_GT(h.mmu.tlb(t.core()).hits(), hits_before);
        h.mmu.shootdownPage(t, base);
        const auto misses_before = h.mmu.tlb(t.core()).misses();
        h.mmu.loadU64(t, base); // must rewalk
        EXPECT_GT(h.mmu.tlb(t.core()).misses(), misses_before);
        EXPECT_EQ(h.mmu.stats().tlb_shootdowns, 1u);
    });
}

} // namespace
} // namespace crev::vm
