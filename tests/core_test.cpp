/**
 * @file
 * Tests for the public façade: Mutator's CHERI dereference semantics
 * (tag/permission/bounds checks), metrics plumbing, and the full
 * configuration matrix of the Reloaded revoker run as a parameterized
 * property sweep (clean detection x always-trap x sweeper count),
 * each audited after every epoch.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "vm/fault.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

// ---------------------------------------------------------------- //
// Mutator dereference semantics
// ---------------------------------------------------------------- //

TEST(Mutator, UntaggedDereferenceFaults)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        cap::Capability c = ctx.malloc(64);
        c.tag = false;
        EXPECT_THROW(ctx.load64(c, 0), vm::CapabilityFault);
        EXPECT_THROW(ctx.store64(c, 0, 1), vm::CapabilityFault);
        EXPECT_THROW(ctx.loadCap(c, 16), vm::CapabilityFault);
    });
    m.run();
}

TEST(Mutator, OutOfBoundsDereferenceFaults)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(64);
        EXPECT_THROW(ctx.load64(c, 64), vm::CapabilityFault);
        EXPECT_THROW(ctx.load64(c, 60), vm::CapabilityFault); // spans
        EXPECT_THROW(ctx.store64(c, 1000, 1), vm::CapabilityFault);
        // Last full word is fine.
        ctx.store64(c, 56, 1);
        EXPECT_EQ(ctx.load64(c, 56), 1u);
    });
    m.run();
}

TEST(Mutator, MissingPermissionFaults)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(64);
        const cap::Capability ro = c.andPerms(cap::kPermLoad);
        EXPECT_EQ(ctx.load64(ro, 0), 0u);
        EXPECT_THROW(ctx.store64(ro, 0, 1), vm::CapabilityFault);
        EXPECT_THROW(ctx.loadCap(ro, 16), vm::CapabilityFault);
        EXPECT_THROW(ctx.storeCap(ro, 16, c), vm::CapabilityFault);
    });
    m.run();
}

TEST(Mutator, NarrowedCapabilityConfinesAccess)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(256);
        const cap::Capability sub =
            c.setBounds(c.base + 64, c.base + 128);
        ASSERT_TRUE(sub.tag);
        ctx.store64(sub, 0, 7);      // at sub.base
        EXPECT_THROW(ctx.load64(sub, 64), vm::CapabilityFault);
        // Through the parent the same address is reachable.
        EXPECT_EQ(ctx.load64(c, 64), 7u);
    });
    m.run();
}

TEST(Mutator, DataStoreShreddsOverlappingCapability)
{
    // CHERI tag semantics end-to-end: overwriting a stored capability
    // with plain data destroys it.
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        const cap::Capability v = ctx.malloc(64);
        ctx.storeCap(holder, 16, v);
        EXPECT_TRUE(ctx.loadCap(holder, 16).tag);
        ctx.store64(holder, 24, 0x0abcdef0); // within the granule
        EXPECT_FALSE(ctx.loadCap(holder, 16).tag);
    });
    m.run();
}

TEST(Metrics, ThreadBusyAndWallArePlumbed)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("worker", 1u << 3, [](Mutator &ctx) {
        ctx.compute(12345);
        ctx.free(ctx.malloc(64));
    });
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GE(metrics.thread_busy.at("worker"), 12345u);
    EXPECT_GE(metrics.wall_cycles, 12345u);
    EXPECT_GT(metrics.allocator.allocs, 0u);
    EXPECT_FALSE(metrics.summary().empty());
}

// ---------------------------------------------------------------- //
// Reloaded configuration matrix, audited
// ---------------------------------------------------------------- //

struct ReloadedConfig
{
    bool clean_detect;
    bool always_trap;
    unsigned sweepers;
};

class ReloadedMatrixTest
    : public ::testing::TestWithParam<ReloadedConfig>
{
};

void
matrixChurn(Machine &m, Mutator &ctx, int iters)
{
    std::vector<cap::Capability> live;
    auto &rng = ctx.rng();
    for (int i = 0; i < iters; ++i) {
        if (rng.uniform() < 0.5 || live.size() < 8) {
            live.push_back(ctx.malloc(16u << rng.below(8)));
            ctx.store64(live.back(), 0, i);
        } else {
            const auto idx = rng.below(live.size());
            ctx.free(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
        if (live.size() > 1 && rng.chance(0.3)) {
            const auto a = rng.below(live.size());
            const auto b = rng.below(live.size());
            if (live[a].length() >= 32) {
                ctx.storeCap(live[a], 16, live[b]);
                const cap::Capability p = ctx.loadCap(live[a], 16);
                if (p.tag)
                    ctx.load64(p, 0);
            }
        }
    }
    for (auto &c : live)
        ctx.free(c);
    m.heap().drain(ctx.thread());
}

TEST_P(ReloadedMatrixTest, ChurnHoldsInvariantUnderAudit)
{
    const ReloadedConfig &p = GetParam();
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    cfg.reloaded_clean_detect = p.clean_detect;
    cfg.always_trap_clean = p.always_trap;
    cfg.background_sweepers = p.sweepers;
    if (p.sweepers > 1)
        cfg.revoker_core_mask = (1u << 1) | (1u << 2);
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        matrixChurn(m, ctx, 2500);
    });
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.epochs.size(), 2u);
    EXPECT_GT(metrics.sweep.caps_revoked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReloadedMatrixTest,
    ::testing::Values(ReloadedConfig{true, false, 1},
                      ReloadedConfig{false, false, 1},
                      ReloadedConfig{true, true, 1},
                      ReloadedConfig{true, false, 2},
                      ReloadedConfig{true, true, 2}),
    [](const ::testing::TestParamInfo<ReloadedConfig> &info) {
        std::string n;
        n += info.param.clean_detect ? "detect" : "nodetect";
        n += info.param.always_trap ? "_trap" : "_gen";
        n += "_s" + std::to_string(info.param.sweepers);
        return n;
    });

// ---------------------------------------------------------------- //
// Multi-threaded mutators sharing the heap (the gRPC shape), audited
// ---------------------------------------------------------------- //

TEST(MultiThreaded, TwoMutatorsShareHeapSafely)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    cfg.revoker_core_mask = (1u << 2) | (1u << 3);
    Machine m(cfg);
    for (int id = 0; id < 2; ++id) {
        m.spawnMutator("worker" + std::to_string(id),
                       (1u << 2) | (1u << 3), [&m](Mutator &ctx) {
            matrixChurn(m, ctx, 1200);
        });
    }
    m.run();
    EXPECT_GT(m.metrics().epochs.size(), 0u);
}

TEST(MultiThreaded, RevokerQuantumScaleIsApplied)
{
    // §7.7: a smaller revoker quantum must not break correctness.
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 8 * 1024;
    cfg.revoker_core_mask = 1u << 3; // contend with the app
    cfg.revoker_quantum_scale = 0.1;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        matrixChurn(m, ctx, 1500);
    });
    m.run();
    EXPECT_GT(m.metrics().epochs.size(), 0u);
}

} // namespace
} // namespace crev
