/**
 * @file
 * Differential tests for the runtime-dispatched SIMD batch kernels
 * (DESIGN.md §17.1): every kernel's dispatched variant is checked
 * against the scalar reference on randomized inputs across the
 * sweep's density regimes (clean, sparse, full, revoke-dense) and on
 * torn-RMW 16-byte windows (a granule caught between the two halves
 * of a capability store). The AVX2 and scalar variants must be
 * extensionally equal on every input — that equality is what makes
 * the dispatch level a pure host concern.
 *
 * On hosts without AVX2, forceLevel(kAvx2) falls back to scalar and
 * the differentials pass trivially; CI's x86-64 runners exercise the
 * real wide paths.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "base/simd.h"

namespace crev {
namespace {

using simd::Level;

/** Deterministic word arrays mimicking the sweep's tag densities. */
std::vector<std::uint64_t>
makeWords(std::size_t n, double density, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::vector<std::uint64_t> w(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        for (unsigned b = 0; b < 64; ++b)
            if (coin(rng) < density)
                w[i] |= std::uint64_t{1} << b;
    return w;
}

/** The four density regimes the sweep microbench measures. */
const double kDensities[] = {0.0, 0.02, 1.0, 0.25};

/** Word counts straddling the small-n scalar floor and the vector
 *  path's 4-word stride (with and without a tail). */
const std::size_t kSizes[] = {0, 1, 3, 4, 7, 8, 9, 13, 64, 129};

/** Run @p fn once under scalar dispatch and once under the best
 *  level, returning both results for comparison. */
template <typename Fn>
auto
bothLevels(Fn &&fn)
{
    simd::forceLevel(Level::kScalar);
    auto scalar = fn();
    simd::forceLevel(Level::kAvx2);
    auto best = fn();
    simd::refreshFromEnv();
    return std::make_pair(scalar, best);
}

TEST(SimdTest, PopcountWordsMatchesScalarAcrossRegimes)
{
    std::uint64_t seed = 1;
    for (double d : kDensities) {
        for (std::size_t n : kSizes) {
            const auto w = makeWords(n, d, seed++);
            const auto [s, b] = bothLevels(
                [&] { return simd::popcountWords(w.data(), n); });
            EXPECT_EQ(s, b) << "density " << d << " n " << n;
        }
    }
}

TEST(SimdTest, AnySetMatchesScalarAcrossRegimes)
{
    std::uint64_t seed = 100;
    for (double d : kDensities) {
        for (std::size_t n : kSizes) {
            const auto w = makeWords(n, d, seed++);
            const auto [s, b] = bothLevels(
                [&] { return simd::anySet(w.data(), n); });
            EXPECT_EQ(s, b) << "density " << d << " n " << n;
        }
    }
}

TEST(SimdTest, AnySetFindsLoneBitAtEveryPosition)
{
    // A single bit anywhere in a 9-word span must be seen by both
    // variants (exercises the 4-word stride and the scalar tail).
    for (std::size_t word = 0; word < 9; ++word) {
        for (unsigned bit : {0u, 31u, 63u}) {
            std::vector<std::uint64_t> w(9, 0);
            w[word] = std::uint64_t{1} << bit;
            const auto [s, b] = bothLevels(
                [&] { return simd::anySet(w.data(), w.size()); });
            EXPECT_TRUE(s);
            EXPECT_TRUE(b);
        }
    }
}

TEST(SimdTest, EqualWordsMatchesScalarOnEqualAndPerturbed)
{
    std::uint64_t seed = 200;
    for (double d : kDensities) {
        for (std::size_t n : kSizes) {
            const auto a = makeWords(n, d, seed);
            auto b = a;
            // Equal arrays agree under both variants.
            auto [se, be] = bothLevels([&] {
                return simd::equalWords(a.data(), b.data(), n);
            });
            EXPECT_TRUE(se);
            EXPECT_TRUE(be);
            if (n == 0) {
                ++seed;
                continue;
            }
            // Flip one bit at a seed-chosen position: both variants
            // must see the difference.
            std::mt19937_64 rng(seed++);
            const std::size_t at = rng() % n;
            b[at] ^= std::uint64_t{1} << (rng() % 64);
            auto [sd, bd] = bothLevels([&] {
                return simd::equalWords(a.data(), b.data(), n);
            });
            EXPECT_FALSE(sd) << "n " << n << " at " << at;
            EXPECT_FALSE(bd) << "n " << n << " at " << at;
        }
    }
}

TEST(SimdTest, Equal128DetectsTornRmwWindows)
{
    // A capability store lands as two 8-byte halves; a sweep racing it
    // can observe old-lo/new-hi or new-lo/old-hi. The bits comparison
    // must reject every torn combination and accept only identical
    // 16-byte windows.
    std::mt19937_64 rng(42);
    for (int iter = 0; iter < 1000; ++iter) {
        std::uint64_t old_g[2] = {rng(), rng()};
        std::uint64_t new_g[2] = {rng(), rng()};
        if (old_g[0] == new_g[0])
            new_g[0] ^= 1;
        if (old_g[1] == new_g[1])
            new_g[1] ^= 1;
        const std::uint64_t torn_a[2] = {new_g[0], old_g[1]};
        const std::uint64_t torn_b[2] = {old_g[0], new_g[1]};
        EXPECT_TRUE(simd::equal128(old_g, old_g));
        EXPECT_TRUE(simd::equal128(new_g, new_g));
        EXPECT_FALSE(simd::equal128(old_g, new_g));
        EXPECT_FALSE(simd::equal128(old_g, torn_a));
        EXPECT_FALSE(simd::equal128(old_g, torn_b));
        EXPECT_FALSE(simd::equal128(new_g, torn_a));
        EXPECT_FALSE(simd::equal128(new_g, torn_b));
    }
}

TEST(SimdTest, FillWordsMatchesScalarAcrossSizes)
{
    for (std::size_t n : kSizes) {
        for (std::uint64_t v : {std::uint64_t{0}, ~std::uint64_t{0},
                                std::uint64_t{0xDEADBEEFCAFEF00D}}) {
            auto run = [&] {
                std::vector<std::uint64_t> w(n + 2, 0x5555555555555555);
                // Fill the interior only: the sentinels catch
                // overwrites past n.
                simd::fillWords(w.data() + 1, n, v);
                return w;
            };
            const auto [s, b] = bothLevels(run);
            EXPECT_EQ(s, b) << "n " << n << " v " << v;
            EXPECT_EQ(s.front(), 0x5555555555555555u);
            EXPECT_EQ(s.back(), 0x5555555555555555u);
        }
    }
}

TEST(SimdTest, ExpandSetBitsMatchesScalarAcrossRegimes)
{
    std::uint64_t seed = 300;
    for (double d : kDensities) {
        for (std::size_t n : kSizes) {
            const auto w = makeWords(n, d, seed++);
            auto run = [&] {
                std::vector<std::uint32_t> out(64 * n + 1, 0xFFFFFFFF);
                const std::size_t k = simd::expandSetBits(
                    w.data(), n, /*base=*/7, out.data());
                out.resize(k);
                return out;
            };
            const auto [s, b] = bothLevels(run);
            EXPECT_EQ(s, b) << "density " << d << " n " << n;
            // Indices are ascending and consistent with the bitmap.
            for (std::size_t i = 1; i < s.size(); ++i)
                EXPECT_LT(s[i - 1], s[i]);
            EXPECT_EQ(s.size(),
                      simd::popcountWords(w.data(), n));
        }
    }
}

TEST(SimdTest, GatherGranulesMatchesScalar)
{
    std::mt19937_64 rng(7);
    std::vector<std::uint8_t> bytes(256 * 16);
    for (auto &x : bytes)
        x = static_cast<std::uint8_t>(rng());
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{8}, std::size_t{100}}) {
        std::vector<std::uint32_t> idx(n);
        for (auto &i : idx)
            i = static_cast<std::uint32_t>(rng() % 256);
        auto run = [&] {
            std::vector<std::uint64_t> out(2 * n + 1, 0);
            simd::gatherGranules(bytes.data(), idx.data(), n,
                                 out.data());
            return out;
        };
        const auto [s, b] = bothLevels(run);
        EXPECT_EQ(s, b) << "n " << n;
        // Each pair is the little-endian 16 bytes at idx[i]*16.
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t lo, hi;
            std::memcpy(&lo, bytes.data() + idx[i] * std::size_t{16},
                        8);
            std::memcpy(&hi,
                        bytes.data() + idx[i] * std::size_t{16} + 8, 8);
            EXPECT_EQ(s[2 * i], lo);
            EXPECT_EQ(s[2 * i + 1], hi);
        }
    }
}

TEST(SimdTest, EnvForcesScalarAndRefreshRestores)
{
    // CREV_SIMD=0 must pin the dispatch at scalar; clearing it
    // restores the host's best level. (Whatever that level is, the
    // kernels above proved it extensionally scalar-equal.)
    setenv("CREV_SIMD", "0", 1);
    simd::refreshFromEnv();
    EXPECT_EQ(simd::level(), Level::kScalar);
    unsetenv("CREV_SIMD");
    simd::refreshFromEnv();
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        EXPECT_EQ(simd::level(), Level::kAvx2);
#endif
}

} // namespace
} // namespace crev
