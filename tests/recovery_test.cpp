/**
 * @file
 * Unit tests for the RecoveryManager (DESIGN.md §13): ticket
 * lifecycle accounting, retry exhaustion, deadline expiry, and the
 * saturating backoff arithmetic that must match the watchdog
 * ladder's established overflow-safe form bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "revoker/recovery.h"
#include "sim/scheduler.h"

namespace crev::revoker {
namespace {

using trace::RecoveryOutcome;
using trace::RecoveryProtocol;

/** Run @p body on one simulated thread and return after completion.
 *  The manager is an off-clock observer, so driving it from a real
 *  SimThread only matters for now()/latency bookkeeping. */
void
onSimThread(std::function<void(sim::SimThread &)> body)
{
    sim::CostModel cm;
    sim::Scheduler s(1, cm);
    s.spawn("t", 1, [&](sim::SimThread &t) { body(t); });
    s.run();
}

TEST(RecoveryManager, TicketLifecycleCountsAttemptsAndLatency)
{
    RecoveryManager rm;
    onSimThread([&](sim::SimThread &t) {
        auto tk = rm.open(t, RecoveryProtocol::kShootdownResend);
        EXPECT_TRUE(tk.open);
        EXPECT_TRUE(rm.attempt(t, tk));
        t.accrueNoYield(5'000);
        EXPECT_TRUE(rm.attempt(t, tk));
        t.accrueNoYield(7'000);
        rm.close(t, tk, RecoveryOutcome::kSucceeded);
        EXPECT_FALSE(tk.open);
    });
    const RecoveryProtocolStats &st =
        rm.stats(RecoveryProtocol::kShootdownResend);
    EXPECT_EQ(st.tickets, 1u);
    EXPECT_EQ(st.attempts, 2u);
    EXPECT_EQ(st.successes, 1u);
    EXPECT_EQ(st.retries_exhausted, 0u);
    EXPECT_EQ(st.deadline_expiries, 0u);
    EXPECT_EQ(st.total_latency, 12'000u);
    EXPECT_EQ(st.max_latency, 12'000u);
    const stats::Samples &lat =
        rm.latencies(RecoveryProtocol::kShootdownResend);
    ASSERT_EQ(lat.count(), 1u);
    EXPECT_EQ(lat.values()[0], 12'000.0);
    // Other protocols are untouched.
    EXPECT_EQ(rm.stats(RecoveryProtocol::kEpochLadder).tickets, 0u);
}

TEST(RecoveryManager, RetryExhaustionDeniesWithoutConsuming)
{
    RecoveryManager rm;
    RecoveryPolicy pol;
    pol.max_retries = 3;
    pol.deadline = 0;
    rm.setPolicy(RecoveryProtocol::kSummaryRepair, pol);
    onSimThread([&](sim::SimThread &t) {
        auto tk = rm.open(t, RecoveryProtocol::kSummaryRepair);
        EXPECT_TRUE(rm.attempt(t, tk));
        EXPECT_TRUE(rm.attempt(t, tk));
        EXPECT_TRUE(rm.attempt(t, tk));
        // Budget spent: denial must not consume further attempts.
        EXPECT_FALSE(rm.attempt(t, tk));
        EXPECT_FALSE(rm.attempt(t, tk));
        EXPECT_EQ(tk.attempts, 3u);
        EXPECT_TRUE(rm.retriesExhausted(tk));
        EXPECT_EQ(rm.failureOutcome(t.now(), tk),
                  RecoveryOutcome::kRetriesExhausted);
        rm.close(t, tk, rm.failureOutcome(t.now(), tk));
    });
    const RecoveryProtocolStats &st =
        rm.stats(RecoveryProtocol::kSummaryRepair);
    EXPECT_EQ(st.attempts, 3u);
    EXPECT_EQ(st.successes, 0u);
    EXPECT_EQ(st.retries_exhausted, 1u);
}

TEST(RecoveryManager, DeadlineExpiryDeniesAndNamesTheOutcome)
{
    RecoveryManager rm;
    RecoveryPolicy pol;
    pol.max_retries = 100;
    pol.deadline = 10'000;
    rm.setPolicy(RecoveryProtocol::kQuarantineHandoff, pol);
    onSimThread([&](sim::SimThread &t) {
        t.accrueNoYield(500); // nonzero open time
        auto tk = rm.open(t, RecoveryProtocol::kQuarantineHandoff);
        EXPECT_TRUE(rm.attempt(t, tk));
        t.accrueNoYield(10'000); // exactly at the deadline: still ok
        EXPECT_FALSE(rm.deadlineExpired(t.now(), tk));
        EXPECT_TRUE(rm.attempt(t, tk));
        t.accrueNoYield(1); // one cycle past: expired
        EXPECT_TRUE(rm.deadlineExpired(t.now(), tk));
        EXPECT_FALSE(rm.attempt(t, tk));
        EXPECT_EQ(tk.attempts, 2u);
        EXPECT_EQ(rm.failureOutcome(t.now(), tk),
                  RecoveryOutcome::kDeadlineExpired);
        rm.close(t, tk, rm.failureOutcome(t.now(), tk));
    });
    const RecoveryProtocolStats &st =
        rm.stats(RecoveryProtocol::kQuarantineHandoff);
    EXPECT_EQ(st.attempts, 2u);
    EXPECT_EQ(st.deadline_expiries, 1u);
    EXPECT_EQ(st.max_latency, 10'001u);
}

TEST(RecoveryManager, BackoffDoublesThenSaturates)
{
    RecoveryManager rm;
    RecoveryPolicy pol;
    pol.max_retries = 100;
    pol.backoff_base = 250'000;
    pol.max_backoff = 16'000'000;
    rm.setPolicy(RecoveryProtocol::kShootdownResend, pol);
    onSimThread([&](sim::SimThread &t) {
        auto tk = rm.open(t, RecoveryProtocol::kShootdownResend);
        // attempts=0: base << 0.
        EXPECT_EQ(rm.backoff(tk), 250'000u);
        const Cycles expect[] = {500'000u,    1'000'000u, 2'000'000u,
                                 4'000'000u,  8'000'000u, 16'000'000u,
                                 16'000'000u, 16'000'000u};
        for (Cycles e : expect) {
            ASSERT_TRUE(rm.attempt(t, tk));
            EXPECT_EQ(rm.backoff(tk), e);
        }
        rm.close(t, tk, RecoveryOutcome::kSucceeded);
    });
}

TEST(RecoveryManager, BackoffMatchesWatchdogLadderArithmetic)
{
    // The kEpochLadder refactor must not change ladder timings: for
    // every (base, cap, attempt) the manager's backoff must equal the
    // watchdog's backoffDelay — including the overflow-prone corners
    // (base in the top bits of Cycles, zero base, tiny cap).
    const Cycles bases[] = {0, 1, 1000, 250'000, Cycles{1} << 58,
                            Cycles{1} << 62};
    const Cycles caps[] = {1, 1000, 16'000'000, Cycles{1} << 60};
    for (Cycles base : bases) {
        for (Cycles cap : caps) {
            RecoveryManager rm;
            RecoveryPolicy pol;
            pol.backoff_base = base;
            pol.max_backoff = cap;
            rm.setPolicy(RecoveryProtocol::kEpochLadder, pol);
            RecoveryManager::Ticket tk;
            tk.proto = RecoveryProtocol::kEpochLadder;
            tk.open = true;
            for (unsigned attempt = 0; attempt < 10; ++attempt) {
                tk.attempts = attempt;
                const Cycles expect_cap =
                    std::max<Cycles>(cap, 1);
                const Cycles expect_base =
                    std::max<Cycles>(base, 1);
                const unsigned shift = std::min(attempt, 6u);
                const Cycles want =
                    expect_base > (expect_cap >> shift)
                        ? expect_cap
                        : std::min(expect_base << shift, expect_cap);
                EXPECT_EQ(rm.backoff(tk), want)
                    << "base=" << base << " cap=" << cap
                    << " attempt=" << attempt;
            }
        }
    }
}

TEST(RecoveryManager, ZeroBackoffPolicyMeansNoDelay)
{
    RecoveryManager rm;
    RecoveryPolicy pol;
    pol.backoff_base = 0;
    pol.max_backoff = 0;
    rm.setPolicy(RecoveryProtocol::kSummaryRepair, pol);
    RecoveryManager::Ticket tk;
    tk.proto = RecoveryProtocol::kSummaryRepair;
    tk.attempts = 3;
    EXPECT_EQ(rm.backoff(tk), 0u);
}

TEST(RecoveryManager, CloseIsIdempotentAndClosedTicketsDeny)
{
    RecoveryManager rm;
    onSimThread([&](sim::SimThread &t) {
        auto tk = rm.open(t, RecoveryProtocol::kEpochLadder);
        EXPECT_TRUE(rm.attempt(t, tk));
        rm.close(t, tk, RecoveryOutcome::kSucceeded);
        rm.close(t, tk, RecoveryOutcome::kSucceeded); // no double count
        EXPECT_FALSE(rm.attempt(t, tk));              // closed = denied
    });
    const RecoveryProtocolStats &st =
        rm.stats(RecoveryProtocol::kEpochLadder);
    EXPECT_EQ(st.tickets, 1u);
    EXPECT_EQ(st.successes, 1u);
    EXPECT_EQ(st.attempts, 1u);
}

TEST(RecoveryManager, AbortedCloseIsTerminalAndCounted)
{
    RecoveryManager rm;
    onSimThread([&](sim::SimThread &t) {
        auto tk = rm.open(t, RecoveryProtocol::kQuarantineHandoff);
        EXPECT_TRUE(rm.attempt(t, tk));
        rm.close(t, tk, RecoveryOutcome::kAborted);
        EXPECT_FALSE(tk.open);
        EXPECT_FALSE(rm.attempt(t, tk)); // terminal: no more attempts
    });
    const RecoveryProtocolStats &st =
        rm.stats(RecoveryProtocol::kQuarantineHandoff);
    EXPECT_EQ(st.tickets, 1u);
    EXPECT_EQ(st.aborts, 1u);
    EXPECT_EQ(st.successes, 0u);
    EXPECT_EQ(st.retries_exhausted, 0u);
    EXPECT_EQ(st.deadline_expiries, 0u);
}

/** Shutdown landing mid-recovery: a daemon stuck re-sending a dropped
 *  quarantine hand-off (every send eaten by the fault plan) must
 *  close its ticket with the aborted outcome when the last mutator
 *  exits — previously the ticket leaked open, so tickets and terminal
 *  outcomes stopped adding up. */
TEST(RecoveryManager, ShutdownMidRecoveryClosesTicketAborted)
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.policy.min_bytes = 8 * 1024;
    cfg.faults.enabled = true;
    cfg.faults.seed = 11;
    cfg.faults.quarantine_drop_prob = 1.0; // every hand-off vanishes
    cfg.faults.max_quarantine_drops = 1u << 20;
    core::Machine m(cfg);
    m.spawnMutator("app", 1u << 0, [](core::Mutator &ctx) {
        std::vector<cap::Capability> caps;
        for (int i = 0; i < 12; ++i)
            caps.push_back(ctx.malloc(1024));
        for (auto &c : caps)
            ctx.free(c); // crosses min_bytes: submission is dropped
        ctx.compute(2'000'000); // daemon enters its retry loop now
    });
    m.scheduler().spawn(
        "drainer", 1u << 1,
        [&m](sim::SimThread &t) {
            t.sleep(500'000);
            // Stuck in waitForCounterRecovering until shutdown: the
            // target epoch can never arrive.
            m.heap().drain(t);
        },
        /*daemon=*/true);
    m.run();
    const auto metrics = m.metrics();
    EXPECT_GT(metrics.faults_injected.quarantine_drops, 0u);
    const RecoveryProtocolStats &st = metrics.recovery_protocols
        [static_cast<unsigned>(RecoveryProtocol::kQuarantineHandoff)];
    EXPECT_GE(st.tickets, 1u);
    EXPECT_GE(st.aborts, 1u);
    // Every opened ticket reached a terminal state: no leaks.
    EXPECT_EQ(st.tickets, st.successes + st.retries_exhausted +
                              st.deadline_expiries + st.aborts);
}

} // namespace
} // namespace crev::revoker
