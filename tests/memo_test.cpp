/**
 * @file
 * Units for the cross-epoch decode memo (DESIGN.md §17.2): the
 * freshness stamps at every store-generation choke point
 * (Mmu::storeCap via AddressSpace::noteCapStore, publishPage's
 * restamp, shootdownPage, purgeFreedFrames' frame-epoch advance), the
 * sweep's consult/record/invalidate life cycle, and the contract that
 * the memo is a pure host concern (all-zero stats when disabled).
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "core/mutator.h"
#include "revoker/bitmap.h"
#include "revoker/memo.h"
#include "revoker/sweep.h"
#include "vm/mmu.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;
using revoker::DecodeMemo;

TEST(MemoTest, FreshnessRequiresAllThreeStamps)
{
    DecodeMemo::Entry e;
    e.pfn = 42;
    e.store_gen = 7;
    e.frame_epoch = 3;
    EXPECT_TRUE(DecodeMemo::fresh(e, 42, 7, 3));
    EXPECT_FALSE(DecodeMemo::fresh(e, 41, 7, 3)) << "frame changed";
    EXPECT_FALSE(DecodeMemo::fresh(e, 42, 8, 3)) << "store happened";
    EXPECT_FALSE(DecodeMemo::fresh(e, 42, 7, 4)) << "frame recycled";
}

TEST(MemoTest, RecordFindRestampInvalidate)
{
    DecodeMemo memo;
    revoker::PrescanPipeline::PageScan scan;
    scan.page_va = 0x1000;
    memo.record(/*pfn=*/5, /*gen=*/1, /*frame_epoch=*/0,
                std::move(scan));
    ASSERT_NE(memo.find(0x1000), nullptr);
    EXPECT_EQ(memo.find(0x2000), nullptr);
    EXPECT_EQ(memo.stats().refreshes, 1u);

    // Restamp advances the freshness stamps in place...
    memo.restamp(0x1000, /*pfn=*/5, /*gen=*/3, /*frame_epoch=*/1);
    EXPECT_TRUE(DecodeMemo::fresh(*memo.find(0x1000), 5, 3, 1));
    EXPECT_EQ(memo.stats().restamps, 1u);
    // ...but never resurrects a different frame's entry.
    memo.restamp(0x1000, /*pfn=*/6, /*gen=*/9, /*frame_epoch=*/1);
    EXPECT_TRUE(DecodeMemo::fresh(*memo.find(0x1000), 5, 3, 1));
    memo.restamp(0x3000, /*pfn=*/5, /*gen=*/1, /*frame_epoch=*/0);
    EXPECT_EQ(memo.find(0x3000), nullptr);

    memo.invalidate(0x1000);
    EXPECT_EQ(memo.find(0x1000), nullptr);
    EXPECT_EQ(memo.size(), 0u);
}

TEST(MemoTest, StoreCapBumpsStoreGeneration)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(2 * kPageSize);
        const cap::Capability v = ctx.malloc(64);
        const Addr page = pageBase(c.base);
        const std::uint64_t g0 =
            m.addressSpace().storeGen(page);
        // A plain data store is not a choke point...
        ctx.store64(c, 0, 1);
        EXPECT_EQ(m.addressSpace().storeGen(page), g0);
        // ...a capability store is.
        ctx.storeCap(c, 0, v);
        EXPECT_GT(m.addressSpace().storeGen(page), g0);
    });
    m.run();
}

TEST(MemoTest, ShootdownBumpsStoreGeneration)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(2 * kPageSize);
        ctx.store64(c, 0, 1); // fault the page in
        const Addr page = pageBase(c.base);
        const std::uint64_t g0 =
            m.addressSpace().storeGen(page);
        m.mmu().shootdownPage(ctx.thread(), page);
        EXPECT_GT(m.addressSpace().storeGen(page), g0);
    });
    m.run();
}

TEST(MemoTest, PurgeWithoutFreedFramesKeepsEpoch)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    const std::uint64_t e0 = m.mmu().frameEpoch();
    m.mmu().purgeFreedFrames();
    EXPECT_EQ(m.mmu().frameEpoch(), e0)
        << "epoch advanced without any recycled frame";
}

/**
 * Drive one page through the sweep's memo life cycle: first sweep
 * records, a fully-validating sweep reuses without re-recording, a
 * mutated page misses and invalidates, and the next sweep re-records.
 */
TEST(MemoTest, SweepConsultsRecordsAndInvalidates)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline; // no revoker daemon
    cfg.host_fast_paths = true;
    Machine m(cfg);
    DecodeMemo memo;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(2 * kPageSize);
        const cap::Capability v1 = ctx.malloc(64);
        const cap::Capability v2 = ctx.malloc(64);
        const Addr page = roundUp(c.base, kPageSize);
        const Addr off0 = page - c.base;
        for (std::size_t k = 0; k < 8; ++k)
            ctx.storeCap(c, off0 + k * 64, v1);

        revoker::RevocationBitmap bitmap(ctx.machine().mmu());
        revoker::SweepEngine engine(ctx.machine().mmu(), bitmap,
                                    /*host_fast_paths=*/true);
        engine.setMemo(&memo);
        sim::SimThread &t = ctx.thread();

        // First sweep: no entry, every granule decoded live and
        // recorded.
        engine.sweepPage(t, page);
        EXPECT_EQ(memo.stats().refreshes, 1u);
        EXPECT_EQ(memo.stats().cand_hits, 0u);
        ASSERT_NE(memo.find(page), nullptr);
        EXPECT_EQ(memo.find(page)->scan.cands.size(), 8u);

        // Second sweep: all eight validate; the entry is reused, not
        // re-recorded (steady state allocates nothing).
        engine.sweepPage(t, page);
        EXPECT_EQ(memo.stats().cand_hits, 8u);
        EXPECT_EQ(memo.stats().cand_misses, 0u);
        EXPECT_EQ(memo.stats().refreshes, 1u);

        // Overwrite one slot with a different capability: that
        // granule's live bits no longer match, so the sweep decodes
        // it live and drops the entry.
        ctx.storeCap(c, off0 + 3 * 64, v2);
        engine.sweepPage(t, page);
        EXPECT_EQ(memo.stats().cand_hits, 15u);
        EXPECT_EQ(memo.stats().cand_misses, 1u);
        EXPECT_EQ(memo.find(page), nullptr)
            << "mismatching entry must be invalidated";

        // Next sweep re-records the page as now observed.
        engine.sweepPage(t, page);
        EXPECT_EQ(memo.stats().refreshes, 2u);
        ASSERT_NE(memo.find(page), nullptr);
        EXPECT_EQ(memo.find(page)->scan.cands.size(), 8u);
    });
    m.run();
}

TEST(MemoTest, EndToEndMemoPopulatesStatsOnlyWhenEnabled)
{
    for (const bool memo_on : {true, false}) {
        MachineConfig cfg;
        cfg.strategy = Strategy::kReloaded;
        cfg.host_fast_paths = true;
        cfg.memo = memo_on;
        cfg.policy.min_bytes = 1 << 20;
        Machine m(cfg);
        m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
            const cap::Capability holder = ctx.malloc(256);
            for (int round = 0; round < 4; ++round) {
                const cap::Capability victim = ctx.malloc(4096);
                ctx.storeCap(holder, 0, victim);
                ctx.free(victim);
                m.heap().drain(ctx.thread());
            }
        });
        m.run();
        const auto &ms = m.metrics().memo;
        if (memo_on) {
            EXPECT_GT(ms.refreshes + ms.cand_hits, 0u)
                << "memo enabled but never exercised";
        } else {
            EXPECT_EQ(ms.refreshes, 0u);
            EXPECT_EQ(ms.cand_hits + ms.cand_misses, 0u);
            EXPECT_EQ(ms.page_hits, 0u);
        }
    }
}

} // namespace
} // namespace crev
