/**
 * @file
 * Unit tests for tagged physical memory, the cache model, and the
 * bus-traffic-counting memory system.
 */

#include <gtest/gtest.h>

#include "cap/compression.h"
#include "mem/cache.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"

namespace crev::mem {
namespace {

TEST(PhysMem, AllocZeroedAndReuse)
{
    PhysMem pm;
    const Addr a = pm.allocFrame();
    pm.frame(a).bytes[0] = 0xAB;
    pm.frame(a).setTag(0, true);
    pm.freeFrame(a);
    const Addr b = pm.allocFrame();
    EXPECT_EQ(a, b); // free list recycles
    EXPECT_EQ(pm.frame(b).bytes[0], 0);
    EXPECT_FALSE(pm.frame(b).testTag(0)); // zeroed on reuse
}

TEST(PhysMem, LineSummaryTracksTags)
{
    PhysMem pm;
    const Addr pfn = pm.allocFrame();
    Frame &f = pm.frame(pfn);
    EXPECT_FALSE(f.anyTags());
    EXPECT_EQ(f.lineTagSummary(), 0u);

    // Granules 0 and 3 share line 0; granule 7 lives in line 1.
    f.setTag(0, true);
    f.setTag(3, true);
    f.setTag(7, true);
    EXPECT_TRUE(f.anyTags());
    EXPECT_EQ(f.lineTagSummary(), 0b11u);
    EXPECT_EQ(f.lineNibble(0), 0b1001u);
    EXPECT_EQ(f.lineNibble(1), 0b1000u);
    EXPECT_TRUE(f.summaryConsistent());

    // Clearing one granule of a two-tag line keeps the summary bit.
    f.clearTag(0);
    EXPECT_EQ(f.lineTagSummary(), 0b11u);
    // Clearing the last granule of a line drops it.
    f.clearTag(3);
    EXPECT_EQ(f.lineTagSummary(), 0b10u);
    f.clearTag(7);
    EXPECT_FALSE(f.anyTags());
    EXPECT_TRUE(f.summaryConsistent());
}

TEST(PhysMem, LineTagNibbleByPaddr)
{
    PhysMem pm;
    const Addr pfn = pm.allocFrame();
    const Addr base = pfn << kPageBits;
    const cap::Capability c = cap::Capability::root(0x1000, 0x2000);
    // Second granule of the second cache line.
    pm.storeCap(base + kLineSize + kGranuleSize, cap::encode(c), true);
    EXPECT_EQ(pm.lineTagNibble(base), 0u);
    EXPECT_EQ(pm.lineTagNibble(base + kLineSize), 0b0010u);
    // Any address within the line resolves to the same nibble.
    EXPECT_EQ(pm.lineTagNibble(base + kLineSize + 63), 0b0010u);
}

TEST(PhysMem, PeakTracksHighWater)
{
    PhysMem pm;
    const Addr a = pm.allocFrame();
    const Addr b = pm.allocFrame();
    pm.freeFrame(a);
    pm.freeFrame(b);
    pm.allocFrame();
    EXPECT_EQ(pm.peakFrames(), 2u);
    EXPECT_EQ(pm.framesInUse(), 1u);
}

TEST(PhysMem, DataWriteClearsOverlappedTags)
{
    PhysMem pm;
    const Addr pfn = pm.allocFrame();
    const Addr base = pfn << kPageBits;

    cap::Capability c = cap::Capability::root(0x1000, 0x2000);
    pm.storeCap(base + 16, cap::encode(c), true);
    EXPECT_TRUE(pm.tagAt(base + 16));

    // A one-byte data store anywhere in the granule clears its tag.
    const std::uint8_t byte = 0xFF;
    pm.write(base + 20, &byte, 1);
    EXPECT_FALSE(pm.tagAt(base + 16));
}

TEST(PhysMem, CapRoundTrip)
{
    PhysMem pm;
    const Addr pfn = pm.allocFrame();
    const Addr base = pfn << kPageBits;
    const cap::Capability c =
        cap::Capability::root(0x4000'0000, 0x4000'0100);
    pm.storeCap(base, cap::encode(c), c.tag);
    cap::CapBits bits;
    const bool tag = pm.loadCap(base, bits);
    EXPECT_TRUE(tag);
    const cap::Capability d = cap::decode(bits, tag);
    EXPECT_EQ(d.base, c.base);
    EXPECT_EQ(d.top, c.top);
}

TEST(Cache, HitAfterMiss)
{
    Cache c(CacheConfig{1024, 2});
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1020, false).hit); // same 64B line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionAndDirtyWriteback)
{
    // 2-way, 8 sets of 64B lines => 1 KiB; lines 0x0000, 0x2000,
    // 0x4000 map to the same set (stride = sets * 64 = 512).
    Cache c(CacheConfig{1024, 2});
    c.access(0x0000, true);  // dirty
    c.access(0x0200, false); // same set, way 2
    const CacheResult r = c.access(0x0400, false); // evicts 0x0000
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted_dirty);
    EXPECT_EQ(r.victim_line, 0x0000u);
    EXPECT_FALSE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0200));
}

TEST(Cache, InvalidateLineDropsWithoutWriteback)
{
    Cache c(CacheConfig{1024, 2});
    c.access(0x1000, true);
    c.invalidateLine(0x1000);
    EXPECT_FALSE(c.contains(0x1000));
    const CacheResult r = c.access(0x1000, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted_dirty);
}

TEST(Cache, ResidentLineCountsTrackFillsEvictionsInvalidations)
{
    Cache c(CacheConfig{1024, 2});
    c.access(5 << kPageBits, false);
    c.access((5 << kPageBits) + 64, true);
    EXPECT_EQ(c.residentLinesOf(5), 2u);
    EXPECT_EQ(c.residentLinesOf(6), 0u);

    // Eviction decrements the victim's frame count: lines 0x0000,
    // 0x0200, 0x0400 of page 0 share a set in this 2-way geometry.
    c.access(0x0000, false);
    c.access(0x0200, false);
    c.access(0x0400, false); // evicts 0x0000
    EXPECT_EQ(c.residentLinesOf(0), 2u);

    c.invalidateFrame(5);
    EXPECT_EQ(c.residentLinesOf(5), 0u);
    EXPECT_FALSE(c.contains(5 << kPageBits));
    // Invalidating an absent frame is the O(1) no-op path.
    c.invalidateFrame(7);
    EXPECT_EQ(c.residentLinesOf(7), 0u);
}

TEST(MemorySystem, LatenciesByLevel)
{
    MemLatency lat;
    MemorySystem ms(2, CacheConfig{1024, 2}, CacheConfig{4096, 4}, lat);
    // Cold: L1 miss + LLC miss => full DRAM latency.
    EXPECT_EQ(ms.access(0, 0x1000, 8, false),
              lat.l1_hit + lat.llc_hit + lat.dram);
    // Warm L1.
    EXPECT_EQ(ms.access(0, 0x1000, 8, false), lat.l1_hit);
    // Other core: misses its own L1, hits shared LLC.
    EXPECT_EQ(ms.access(1, 0x1000, 8, false),
              lat.l1_hit + lat.llc_hit);
}

TEST(MemorySystem, BusTransactionsCountedPerCore)
{
    MemLatency lat;
    MemorySystem ms(2, CacheConfig{1024, 2}, CacheConfig{4096, 4}, lat);
    ms.access(0, 0x1000, 8, false);
    ms.access(1, 0x9000, 8, false);
    ms.access(1, 0x9000, 8, false); // hit: no new traffic
    EXPECT_EQ(ms.counters(0).bus_reads, 1u);
    EXPECT_EQ(ms.counters(1).bus_reads, 1u);
    EXPECT_EQ(ms.totalCounters().busTransactions(), 2u);
}

TEST(MemorySystem, MultiLineAccessTouchesEachLine)
{
    MemLatency lat;
    MemorySystem ms(1, CacheConfig{1024, 2}, CacheConfig{4096, 4}, lat);
    // 128 bytes starting at a line boundary: two lines.
    ms.access(0, 0x1000, 128, false);
    EXPECT_EQ(ms.counters(0).accesses, 2u);
    // Crossing a boundary with a small access also touches two lines.
    ms.access(0, 0x203C, 8, false);
    EXPECT_EQ(ms.counters(0).accesses, 4u);
}

TEST(MemorySystem, InvalidateFramePurgesAllLevels)
{
    MemLatency lat;
    MemorySystem ms(1, CacheConfig{1024, 2}, CacheConfig{4096, 4}, lat);
    ms.access(0, 5 << kPageBits, 8, true);
    ms.invalidateFrame(5);
    // Re-access goes all the way to DRAM again.
    EXPECT_EQ(ms.access(0, 5 << kPageBits, 8, false),
              lat.l1_hit + lat.llc_hit + lat.dram);
}

} // namespace
} // namespace crev::mem
