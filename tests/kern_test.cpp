/**
 * @file
 * Tests for the kernel layer: epoch counter protocol, capability
 * hoards, and mmap/munmap with reservation quarantine (paper §6.2).
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "core/mutator.h"
#include "kern/kernel.h"
#include "vm/address_space.h"
#include "vm/fault.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

TEST(EpochCounter, DequarantineTargets)
{
    kern::EpochCounter e;
    // Idle (even): wait for +2 — one revocation begins and ends.
    EXPECT_EQ(e.dequarantineTarget(0), 2u);
    EXPECT_EQ(e.dequarantineTarget(4), 6u);
    // In progress (odd): the running epoch may already have passed our
    // paints, so wait for the *next* full epoch: +3.
    EXPECT_EQ(e.dequarantineTarget(1), 4u);
    EXPECT_EQ(e.dequarantineTarget(5), 8u);
}

TEST(KernelHoard, PutTakeRoundTrip)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [](Mutator &ctx) {
        const cap::Capability c = ctx.malloc(64);
        const std::size_t slot = ctx.hoardPut(c);
        const cap::Capability back = ctx.hoardTake(slot);
        EXPECT_TRUE(back.tag);
        EXPECT_EQ(back.base, c.base);
        // The slot is recycled.
        const std::size_t slot2 = ctx.hoardPut(c);
        EXPECT_EQ(slot2, slot);
    });
    m.run();
}

TEST(Kernel, MmapReturnsBoundedRootCapability)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability c =
            m.kernel().sysMmap(ctx.thread(), 3 * kPageSize);
        EXPECT_TRUE(c.tag);
        EXPECT_EQ(c.length(), 3 * kPageSize);
        EXPECT_EQ(c.base % kPageSize, 0u);
    });
    m.run();
}

TEST(Kernel, MunmapMakesRangeGuardAndFreesFrames)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kBaseline;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        sim::SimThread &t = ctx.thread();
        const cap::Capability c =
            m.kernel().sysMmap(t, 2 * kPageSize);
        m.mmu().storeU64(t, c.base, 42);
        const std::size_t frames = m.physMem().framesInUse();
        m.kernel().sysMunmap(t, c.base, 2 * kPageSize);
        EXPECT_LT(m.physMem().framesInUse(), frames);
        // UAF through the stale capability faults on the guard.
        EXPECT_THROW(m.mmu().loadU64(t, c.base), vm::MemoryFault);
    });
    m.run();
}

TEST(Kernel, UnmappedReservationRevokedAfterEpoch)
{
    // §6.2: a capability referencing a fully unmapped reservation is
    // revoked by the sweep, and the reservation is only released after
    // the epoch.
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        sim::SimThread &t = ctx.thread();
        const cap::Capability mapping =
            m.kernel().sysMmap(t, 2 * kPageSize);

        // Stash a capability to the mapping in a heap object.
        const cap::Capability holder = ctx.malloc(64);
        ctx.storeCap(holder, 0, mapping);

        m.kernel().sysMunmap(t, mapping.base, 2 * kPageSize);

        // Force a revocation epoch and wait for it.
        auto *rev = m.revokerOrNull();
        ASSERT_NE(rev, nullptr);
        const auto target = m.kernel().epoch().dequarantineTarget(
            m.kernel().epoch().value());
        rev->requestEpoch(t);
        rev->waitForEpochCounter(t, target);

        // The stored capability has been erased.
        const cap::Capability back = ctx.loadCap(holder, 0);
        EXPECT_FALSE(back.tag);
    });
    m.run();
    // The reservation was released after the epoch.
    const auto metrics = m.metrics();
    EXPECT_GE(metrics.epochs.size(), 1u);
}

TEST(Kernel, MunmapExcludedDuringSweep)
{
    // The quiesce hook makes munmap wait for an in-flight epoch; here
    // we just check it is installed and harmless when idle.
    MachineConfig cfg;
    cfg.strategy = Strategy::kCornucopia;
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        sim::SimThread &t = ctx.thread();
        const cap::Capability c = m.kernel().sysMmap(t, kPageSize);
        m.kernel().sysMunmap(t, c.base, kPageSize); // must not hang
    });
    m.run();
}

} // namespace
} // namespace crev
