/**
 * @file
 * Tests for the deterministic cooperative scheduler: virtual-time
 * ordering, core contention, sleep, blocking, stop-the-world
 * semantics (including STW hiding inside idle time), and the
 * synchronisation primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"
#include "sim/sync.h"

namespace crev::sim {
namespace {

CostModel
testCosts()
{
    CostModel cm;
    cm.yield_slack = 100;
    cm.quantum = 10'000;
    cm.ctx_switch = 50;
    return cm;
}

TEST(Scheduler, SingleThreadRunsToCompletion)
{
    Scheduler s(1, testCosts());
    Cycles end = 0;
    s.spawn("t", 1, [&](SimThread &t) {
        t.accrue(1234);
        end = t.now();
    });
    s.run();
    EXPECT_EQ(end, 1234u);
    EXPECT_EQ(s.maxClock(), 1234u);
}

TEST(Scheduler, VirtualTimeInterleavingIsFair)
{
    // Two threads on different cores record event order; virtual-time
    // scheduling must interleave them by clock, not by spawn order.
    Scheduler s(2, testCosts());
    std::vector<std::pair<char, Cycles>> events;
    s.spawn("a", 1u << 0, [&](SimThread &t) {
        for (int i = 0; i < 5; ++i) {
            t.accrue(100);
            events.push_back({'a', t.now()});
        }
    });
    s.spawn("b", 1u << 1, [&](SimThread &t) {
        for (int i = 0; i < 5; ++i) {
            t.accrue(100);
            events.push_back({'b', t.now()});
        }
    });
    s.run();
    ASSERT_EQ(events.size(), 10u);
    // Events must be (approximately) sorted by virtual time: no event
    // may precede one that is more than yield_slack older.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].second,
                  events[i].second + testCosts().yield_slack + 100);
}

TEST(Scheduler, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Scheduler s(2, testCosts());
        std::vector<Cycles> trace;
        for (int id = 0; id < 3; ++id) {
            s.spawn("t" + std::to_string(id), id == 0 ? 1u : 2u,
                    [&trace](SimThread &t) {
                        for (int i = 0; i < 50; ++i) {
                            t.accrue(37 + (i % 7));
                            trace.push_back(t.now());
                        }
                    });
        }
        s.run();
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, CoreContentionSerialisesSlices)
{
    // Two CPU-bound threads pinned to the same core cannot overlap:
    // total elapsed >= sum of work.
    Scheduler s(1, testCosts());
    const Cycles work = 50'000;
    for (int i = 0; i < 2; ++i)
        s.spawn("t" + std::to_string(i), 1, [&](SimThread &t) {
            Cycles done = 0;
            while (done < work) {
                t.accrue(100);
                done += 100;
            }
        });
    s.run();
    EXPECT_GE(s.maxClock(), 2 * work);
}

TEST(Scheduler, SleepAdvancesWithoutBusy)
{
    Scheduler s(1, testCosts());
    Cycles busy = 0, wall = 0;
    s.spawn("t", 1, [&](SimThread &t) {
        t.accrue(100);
        t.sleep(10'000);
        t.accrue(100);
        busy = t.busyCycles();
        wall = t.now();
    });
    s.run();
    EXPECT_EQ(busy, 200u);
    EXPECT_GE(wall, 10'200u);
}

TEST(Scheduler, BlockAndWake)
{
    Scheduler s(2, testCosts());
    SimThread *waiter_handle = nullptr;
    bool ready = false;
    Cycles woken_at = 0;
    waiter_handle = s.spawn("waiter", 1u << 0, [&](SimThread &t) {
        while (!ready)
            s.block(t);
        woken_at = t.now();
    });
    s.spawn("waker", 1u << 1, [&](SimThread &t) {
        t.accrue(5'000);
        ready = true;
        s.wake(*waiter_handle, t.now());
    });
    s.run();
    EXPECT_GE(woken_at, 5'000u);
}

TEST(Scheduler, StopTheWorldParksRunnableThreads)
{
    Scheduler s(2, testCosts());
    Cycles stw_end = 0;
    Cycles mutator_after = 0;
    bool stw_done = false;

    s.spawn("mutator", 1u << 0, [&](SimThread &t) {
        while (!stw_done)
            t.accrue(50);
        mutator_after = t.now();
    });
    s.spawn("revoker", 1u << 1, [&](SimThread &t) {
        t.accrue(2'000);
        s.stopTheWorld(t);
        t.accrue(100'000); // world-stopped work
        stw_end = t.now();
        s.resumeWorld(t);
        stw_done = true;
    });
    s.run();
    // The mutator cannot have run during the STW window: its next
    // observation time is at or after the STW end.
    EXPECT_GE(mutator_after, stw_end);
}

TEST(Scheduler, StwHidesInsideSleep)
{
    // A thread sleeping past the STW window is not delayed by it —
    // the paper's "stop-the-world phases can hide in idle intervals".
    Scheduler s(2, testCosts());
    Cycles sleeper_resume = 0;
    s.spawn("sleeper", 1u << 0, [&](SimThread &t) {
        t.sleepUntil(1'000'000);
        sleeper_resume = t.now();
    });
    s.spawn("revoker", 1u << 1, [&](SimThread &t) {
        t.accrue(1'000);
        s.stopTheWorld(t);
        t.accrue(50'000);
        s.resumeWorld(t);
    });
    s.run();
    EXPECT_EQ(sleeper_resume, 1'000'000u);
}

TEST(Scheduler, StwDelaysOverlappingSleeper)
{
    // A sleeper due *inside* the window resumes at the STW end.
    Scheduler s(2, testCosts());
    Cycles sleeper_resume = 0;
    Cycles stw_end = 0;
    s.spawn("sleeper", 1u << 0, [&](SimThread &t) {
        t.sleepUntil(500'000);
        sleeper_resume = t.now();
    });
    s.spawn("revoker", 1u << 1, [&](SimThread &t) {
        t.sleepUntil(400'000);
        s.stopTheWorld(t);
        t.accrue(300'000);
        stw_end = t.now();
        s.resumeWorld(t);
    });
    s.run();
    EXPECT_GE(stw_end, 700'000u);
    EXPECT_GE(sleeper_resume, stw_end);
}

TEST(Scheduler, DaemonsExitAtShutdown)
{
    Scheduler s(1, testCosts());
    bool daemon_exited = false;
    s.spawn(
        "daemon", 1,
        [&](SimThread &t) {
            while (!s.shuttingDown())
                s.block(t);
            daemon_exited = true;
        },
        /*daemon=*/true);
    s.spawn("user", 1, [&](SimThread &t) { t.accrue(100); });
    s.run();
    EXPECT_TRUE(daemon_exited);
}

TEST(Scheduler, ContextSwitchChargedOnCoreHandover)
{
    CostModel cm = testCosts();
    Scheduler s(1, cm);
    Cycles busy_a = 0;
    s.spawn("a", 1, [&](SimThread &t) {
        for (int i = 0; i < 100; ++i)
            t.accrue(1'000);
        busy_a = t.busyCycles();
    });
    s.spawn("b", 1, [&](SimThread &t) {
        for (int i = 0; i < 100; ++i)
            t.accrue(1'000);
    });
    s.run();
    // Thread a did 100k of work plus context-switch overhead.
    EXPECT_GT(busy_a, 100'000u);
}

TEST(SimMutex, MutualExclusionAndFifoWake)
{
    Scheduler s(2, testCosts());
    SimMutex mu;
    std::vector<char> order;
    s.spawn("a", 1u << 0, [&](SimThread &t) {
        mu.lock(t);
        t.accrue(10'000);
        order.push_back('a');
        mu.unlock(t);
    });
    s.spawn("b", 1u << 1, [&](SimThread &t) {
        t.accrue(100); // ensure a grabs the lock first
        mu.lock(t);
        order.push_back('b');
        mu.unlock(t);
    });
    s.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 'a');
    EXPECT_EQ(order[1], 'b');
    EXPECT_GE(mu.contended(), 1u);
}

TEST(SimMutex, TryLock)
{
    Scheduler s(1, testCosts());
    SimMutex mu;
    s.spawn("t", 1, [&](SimThread &t) {
        EXPECT_TRUE(mu.tryLock(t));
        EXPECT_FALSE(mu.tryLock(t));
        mu.unlock(t);
        EXPECT_TRUE(mu.tryLock(t));
        mu.unlock(t);
    });
    s.run();
}

TEST(SimQueue, PushPopAcrossThreads)
{
    Scheduler s(2, testCosts());
    SimQueue<int> q;
    std::vector<int> got;
    s.spawn("consumer", 1u << 0, [&](SimThread &t) {
        for (int i = 0; i < 3; ++i) {
            int v = 0;
            Cycles at = 0;
            if (!q.pop(t, v, at))
                break;
            got.push_back(v);
        }
    });
    s.spawn("producer", 1u << 1, [&](SimThread &t) {
        for (int i = 1; i <= 3; ++i) {
            t.accrue(1'000);
            q.push(t, i);
        }
    });
    s.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimQueue, PopReturnsFalseAtShutdown)
{
    Scheduler s(1, testCosts());
    bool popped = true;
    s.spawn(
        "daemon-consumer", 1,
        [&](SimThread &t) {
            SimQueue<int> q;
            int v;
            Cycles at;
            popped = q.pop(t, v, at);
        },
        /*daemon=*/true);
    s.spawn("user", 1, [](SimThread &t) { t.accrue(10); });
    s.run();
    EXPECT_FALSE(popped);
}

TEST(Scheduler, RegisterFileIsPerThread)
{
    Scheduler s(1, testCosts());
    s.spawn("t", 1, [&](SimThread &t) {
        t.reg(0) = cap::Capability::root(0x1000, 0x2000);
        EXPECT_TRUE(t.reg(0).tag);
        EXPECT_FALSE(t.reg(1).tag);
    });
    s.run();
}

// --- Lockstep-engine edge cases (DESIGN.md §14) ---
//
// Each scenario below runs once under the serial token engine
// (lanes = 0, the reference) and once under the lockstep engine
// (lanes = 1) and must produce an identical event trace. The
// scenarios are chosen to land exactly on the places the two engines
// could diverge if frontier resolution were off by one: events on a
// quantum boundary, windows straddling one, and shutdown mid-quantum.

using EventTrace = std::vector<std::pair<std::string, Cycles>>;

TEST(Lockstep, WakeExactlyOnQuantumBoundaryMatchesSerial)
{
    // The waker's clock lands exactly on the quantum frontier when it
    // posts the wake: the mailbox resolution must neither delay the
    // wake into the next quantum nor deliver it early.
    auto run_with = [](unsigned lanes) {
        Scheduler s(2, testCosts(), lanes);
        EXPECT_EQ(s.lockstep(), lanes > 0);
        EventTrace ev;
        bool ready = false;
        SimThread *waiter =
            s.spawn("waiter", 1u << 0, [&](SimThread &t) {
                while (!ready)
                    s.block(t);
                ev.push_back({"woken", t.now()});
            });
        s.spawn("waker", 1u << 1, [&](SimThread &t) {
            t.accrue(testCosts().quantum); // lands on the frontier
            ready = true;
            s.wake(*waiter, t.now());
            ev.push_back({"posted", t.now()});
        });
        s.run();
        return ev;
    };
    const EventTrace serial = run_with(0);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run_with(1), serial);
}

TEST(Lockstep, StwStraddlingQuantumBoundaryMatchesSerial)
{
    // The STW window opens inside one quantum and closes inside the
    // next; parked mutators must resume at the same virtual time under
    // both engines even though the window crosses a frontier.
    auto run_with = [](unsigned lanes) {
        Scheduler s(2, testCosts(), lanes);
        EventTrace ev;
        bool stw_done = false;
        s.spawn("mutator", 1u << 0, [&](SimThread &t) {
            while (!stw_done)
                t.accrue(50);
            ev.push_back({"mutator-after", t.now()});
        });
        s.spawn("revoker", 1u << 1, [&](SimThread &t) {
            t.accrue(6'000); // mid-quantum
            const Cycles begin = s.stopTheWorld(t);
            t.accrue(8'000); // window crosses the 10'000 frontier
            s.resumeWorld(t);
            stw_done = true;
            ev.push_back({"stw", begin});
            ev.push_back({"stw-end", t.now()});
        });
        s.run();
        return ev;
    };
    const EventTrace serial = run_with(0);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run_with(1), serial);
}

TEST(Lockstep, DaemonShutdownMidQuantumMatchesSerial)
{
    // The last non-daemon thread finishes mid-quantum; the blocked
    // daemon must observe shutdown and exit at the same virtual time
    // under both engines (no waiting out the rest of the quantum).
    auto run_with = [](unsigned lanes) {
        Scheduler s(1, testCosts(), lanes);
        EventTrace ev;
        s.spawn(
            "daemon", 1,
            [&](SimThread &t) {
                while (!s.shuttingDown())
                    s.block(t);
                ev.push_back({"daemon-exit", t.now()});
            },
            /*daemon=*/true);
        s.spawn("user", 1, [&](SimThread &t) {
            t.accrue(3'500); // done well inside the first quantum
            ev.push_back({"user-done", t.now()});
        });
        s.run();
        return ev;
    };
    const EventTrace serial = run_with(0);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run_with(1), serial);
}

TEST(Lockstep, NoYieldSpanningQuantumBoundaryMatchesSerial)
{
    // A NoYield section that runs across the frontier defers the
    // preemption to its close; the deferred switch must land at the
    // same virtual time under both engines, and the timesliced peer
    // must observe the same slice boundaries.
    auto run_with = [](unsigned lanes) {
        Scheduler s(1, testCosts(), lanes);
        EventTrace ev;
        s.spawn("a", 1, [&](SimThread &t) {
            t.accrue(8'000);
            {
                SimThread::NoYield guard(t);
                t.accrue(4'000); // crosses the 10'000 frontier
            }
            ev.push_back({"a-critical-done", t.now()});
            t.accrue(100); // first yield opportunity after the guard
            ev.push_back({"a-done", t.now()});
        });
        s.spawn("b", 1, [&](SimThread &t) {
            for (int i = 0; i < 4; ++i) {
                t.accrue(3'000);
                ev.push_back({"b", t.now()});
            }
        });
        s.run();
        return ev;
    };
    const EventTrace serial = run_with(0);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run_with(1), serial);
}

TEST(Lockstep, FrontierIsQuantumAlignedDuringRun)
{
    // quantumFrontier() is 0 under the serial engine and the
    // quantum-aligned floor of the committing slice's grant time under
    // the lockstep engine.
    Scheduler serial(1, testCosts(), 0);
    serial.spawn("t", 1, [&](SimThread &t) {
        t.accrue(25'000);
        EXPECT_EQ(serial.quantumFrontier(), 0u);
    });
    serial.run();

    Scheduler ls(1, testCosts(), 1);
    ls.spawn("t", 1, [&](SimThread &t) {
        for (int i = 0; i < 5; ++i) {
            t.accrue(7'000);
            const Cycles f = ls.quantumFrontier();
            EXPECT_EQ(f % testCosts().quantum, 0u);
            EXPECT_LE(f, t.now());
        }
    });
    ls.run();
}

} // namespace
} // namespace crev::sim
