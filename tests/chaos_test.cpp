/**
 * @file
 * Chaos campaigns: seeded fault plans injected into every strategy,
 * with the whole-machine invariant audit on. Three properties must
 * survive every plan:
 *
 *   1. Temporal safety holds (the per-epoch audit panics otherwise).
 *   2. No mutator blocks forever: the run completes, the epoch
 *      counter rests even, and drain() empties the quarantine — even
 *      when sweepers die or fault completions are lost (the watchdog's
 *      degradation ladder guarantees counter advance).
 *   3. Recovery is deterministic: identical seeds replay identical
 *      fault sequences *and* identical recoveries, byte for byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::RunMetrics;
using core::Strategy;

/** Heap churn with capability links, register parking, and hoards —
 *  enough surface for every injected fault class to land. */
void
churn(Machine &m, Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7);
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, static_cast<uint64_t>(i));
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                const cap::Capability back =
                    ctx.loadCap(live[a].c, 16);
                ASSERT_TRUE(back.tag);
            }
        } else if (dice < 0.95) {
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            ASSERT_TRUE(ctx.hoardTake(slot).tag);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

struct Plan
{
    const char *name;
    sim::FaultPlan faults;
    unsigned sweepers = 1;
};

sim::FaultPlan
base(std::uint64_t seed)
{
    sim::FaultPlan p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

/** The campaign: every scenario the harness can express, seeded. */
std::vector<Plan>
allPlans()
{
    std::vector<Plan> plans;

    {
        Plan p{"stall_sweeper", base(101), 2};
        p.faults.sweeper_stall_prob = 0.10;
        p.faults.sweeper_stall_cycles = 100'000;
        plans.push_back(p);
    }
    {
        Plan p{"kill_sweeper", base(202), 3};
        p.faults.sweeper_kill_prob = 0.5;
        p.faults.max_sweeper_kills = 2;
        plans.push_back(p);
    }
    {
        Plan p{"drop_faults", base(303), 1};
        p.faults.fault_drop_prob = 0.5;
        p.faults.max_fault_drops = 8;
        plans.push_back(p);
    }
    {
        Plan p{"duplicate_faults", base(404), 1};
        p.faults.fault_duplicate_prob = 0.3;
        plans.push_back(p);
    }
    {
        Plan p{"stw_delay", base(505), 1};
        p.faults.stw_delay_prob = 1.0;
        p.faults.stw_delay_cycles = 50'000;
        plans.push_back(p);
    }
    {
        Plan p{"mem_spike", base(606), 1};
        p.faults.mem_spike_period = 100'000;
        p.faults.mem_spike_duration = 20'000;
        p.faults.mem_spike_extra = 50;
        plans.push_back(p);
    }
    {
        // A sweeper stall far past the watchdog deadline: recovery
        // must fall all the way back to the emergency STW sweep.
        Plan p{"hard_stall", base(707), 1};
        p.faults.sweeper_stall_prob = 1.0;
        p.faults.sweeper_stall_cycles = 30'000'000;
        p.faults.window_end = 5'000'000;
        plans.push_back(p);
    }
    {
        Plan p{"kill_and_drop", base(808), 3};
        p.faults.sweeper_kill_prob = 0.5;
        p.faults.max_sweeper_kills = 1;
        p.faults.fault_drop_prob = 0.25;
        p.faults.max_fault_drops = 4;
        plans.push_back(p);
    }
    {
        Plan p{"kitchen_sink", base(909), 2};
        p.faults.sweeper_stall_prob = 0.05;
        p.faults.sweeper_stall_cycles = 250'000;
        p.faults.sweeper_kill_prob = 0.10;
        p.faults.max_sweeper_kills = 1;
        p.faults.fault_drop_prob = 0.10;
        p.faults.max_fault_drops = 4;
        p.faults.fault_duplicate_prob = 0.10;
        p.faults.stw_delay_prob = 0.25;
        p.faults.stw_delay_cycles = 25'000;
        p.faults.mem_spike_period = 250'000;
        p.faults.mem_spike_duration = 25'000;
        p.faults.mem_spike_extra = 30;
        plans.push_back(p);
    }
    {
        Plan p{"shootdown_drop", base(1010), 1};
        p.faults.shootdown_drop_prob = 0.4;
        p.faults.max_shootdown_drops = 16;
        plans.push_back(p);
    }
    {
        Plan p{"shootdown_late", base(1111), 1};
        p.faults.shootdown_late_prob = 0.5;
        p.faults.shootdown_late_cycles = 20'000;
        plans.push_back(p);
    }
    {
        // Rolled only at quantum-boundary yields (yieldSlow), which
        // are far rarer than work items — hence the high probability.
        Plan p{"core_stall", base(1212), 1};
        p.faults.core_stall_prob = 0.5;
        p.faults.core_stall_cycles = 200'000;
        p.faults.max_core_stalls = 4;
        plans.push_back(p);
    }
    {
        // Requires cfg.audit (runChaos sets it): corruption is
        // injected at audit entry and must be repaired there too.
        Plan p{"summary_corrupt", base(1313), 1};
        p.faults.summary_corrupt_prob = 0.5;
        p.faults.max_summary_corruptions = 8;
        plans.push_back(p);
    }
    {
        Plan p{"quarantine_drop", base(1414), 1};
        p.faults.quarantine_drop_prob = 0.6;
        p.faults.max_quarantine_drops = 4;
        plans.push_back(p);
    }
    {
        Plan p{"quarantine_duplicate", base(1515), 1};
        p.faults.quarantine_duplicate_prob = 0.5;
        plans.push_back(p);
    }
    {
        // Everything at once, old and new domains together.
        Plan p{"kitchen_sink_v2", base(1616), 2};
        p.faults.sweeper_stall_prob = 0.05;
        p.faults.sweeper_stall_cycles = 250'000;
        p.faults.sweeper_kill_prob = 0.10;
        p.faults.max_sweeper_kills = 1;
        p.faults.fault_drop_prob = 0.10;
        p.faults.max_fault_drops = 4;
        p.faults.fault_duplicate_prob = 0.10;
        p.faults.stw_delay_prob = 0.25;
        p.faults.stw_delay_cycles = 25'000;
        p.faults.mem_spike_period = 250'000;
        p.faults.mem_spike_duration = 25'000;
        p.faults.mem_spike_extra = 30;
        p.faults.shootdown_drop_prob = 0.2;
        p.faults.shootdown_late_prob = 0.2;
        p.faults.shootdown_late_cycles = 10'000;
        p.faults.core_stall_prob = 0.25;
        p.faults.core_stall_cycles = 100'000;
        p.faults.summary_corrupt_prob = 0.25;
        p.faults.quarantine_drop_prob = 0.25;
        p.faults.quarantine_duplicate_prob = 0.25;
        plans.push_back(p);
    }
    return plans;
}

constexpr std::size_t kNumPlans = 16;

struct RunResult
{
    RunMetrics metrics;
    std::uint64_t final_epoch_value = 0;
    std::size_t final_quarantine_bytes = 0;
};

RunResult
runChaos(Strategy s, const Plan &plan, int iters = 1200)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.oracle = true; // temporal-safety oracle rides every campaign
    cfg.policy.min_bytes = 32 * 1024; // revoke frequently
    cfg.background_sweepers = plan.sweepers;
    cfg.faults = plan.faults;
    cfg.seed = 42;
    Machine m(cfg);
    RunResult r;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, iters);
        r.final_epoch_value = m.kernel().epoch().value();
        r.final_quarantine_bytes = m.heap().quarantineBytes();
    });
    m.run();
    r.metrics = m.metrics();
    return r;
}

/** The fields that must replay byte-identically across same-seed
 *  runs, including every recovery and injection counter. */
std::string
fingerprint(const RunResult &r)
{
    const RunMetrics &m = r.metrics;
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s|epoch=%llu|quar=%zu|misses=%llu nudges=%llu reaped=%llu "
        "respawned=%llu recov=%llu stw=%llu emerg=%llu stallt=%llu|"
        "stalls=%llu kills=%llu drops=%llu dups=%llu delays=%llu "
        "sdrops=%llu slates=%llu cstalls=%llu corrupt=%llu "
        "qdrops=%llu qdups=%llu|resend=%llu repairs=%llu "
        "hresend=%llu ereclaim=%llu|oracle=%llu/%llu",
        m.summary().c_str(),
        static_cast<unsigned long long>(r.final_epoch_value),
        r.final_quarantine_bytes,
        static_cast<unsigned long long>(m.recovery.deadline_misses),
        static_cast<unsigned long long>(m.recovery.nudges),
        static_cast<unsigned long long>(m.recovery.sweepers_reaped),
        static_cast<unsigned long long>(m.recovery.sweepers_respawned),
        static_cast<unsigned long long>(m.recovery.recovery_requests),
        static_cast<unsigned long long>(m.recovery.stw_fallbacks),
        static_cast<unsigned long long>(m.recovery.emergency_epochs),
        static_cast<unsigned long long>(m.recovery.stalled_threads),
        static_cast<unsigned long long>(
            m.faults_injected.sweeper_stalls),
        static_cast<unsigned long long>(
            m.faults_injected.sweeper_kills),
        static_cast<unsigned long long>(
            m.faults_injected.faults_dropped),
        static_cast<unsigned long long>(
            m.faults_injected.faults_duplicated),
        static_cast<unsigned long long>(m.faults_injected.stw_delays),
        static_cast<unsigned long long>(
            m.faults_injected.shootdown_drops),
        static_cast<unsigned long long>(
            m.faults_injected.shootdown_lates),
        static_cast<unsigned long long>(m.faults_injected.core_stalls),
        static_cast<unsigned long long>(
            m.faults_injected.summary_corruptions),
        static_cast<unsigned long long>(
            m.faults_injected.quarantine_drops),
        static_cast<unsigned long long>(
            m.faults_injected.quarantine_duplicates),
        static_cast<unsigned long long>(m.mmu.shootdown_resends),
        static_cast<unsigned long long>(m.summary_repairs),
        static_cast<unsigned long long>(m.quarantine.handoff_resends),
        static_cast<unsigned long long>(
            m.quarantine.emergency_reclaims),
        static_cast<unsigned long long>(m.oracle_loads_checked),
        static_cast<unsigned long long>(m.oracle_violations));
    std::string out = buf;
    for (unsigned i = 0; i < trace::kNumRecoveryProtocols; ++i) {
        const auto &p = m.recovery_protocols[i];
        char rp[96];
        std::snprintf(
            rp, sizeof(rp), "|%s=%llu/%llu/%llu/%llu/%llu",
            trace::recoveryProtocolName(
                static_cast<trace::RecoveryProtocol>(i)),
            static_cast<unsigned long long>(p.tickets),
            static_cast<unsigned long long>(p.attempts),
            static_cast<unsigned long long>(p.successes),
            static_cast<unsigned long long>(p.retries_exhausted),
            static_cast<unsigned long long>(p.deadline_expiries));
        out += rp;
    }
    return out;
}

/** One-line deterministic repro for a failed campaign: everything
 *  needed to rebuild the exact (plan, workload) pair by hand. */
std::string
reproLine(Strategy s, const Plan &plan, int iters)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "repro: strategy=%s plan=%s fault_seed=%llu "
        "window=[%llu,%llu) machine_seed=42 iters=%d sweepers=%u",
        core::strategyName(s), plan.name,
        static_cast<unsigned long long>(plan.faults.seed),
        static_cast<unsigned long long>(plan.faults.window_begin),
        static_cast<unsigned long long>(plan.faults.window_end), iters,
        plan.sweepers);
    return buf;
}

/** Where two same-seed runs first came apart: the first divergent
 *  epoch (with the field that differs) or, failing that, the first
 *  divergent fingerprint character. */
std::string
firstDivergence(const RunResult &a, const RunResult &b)
{
    const std::size_t n =
        std::min(a.metrics.epochs.size(), b.metrics.epochs.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto &ea = a.metrics.epochs[i];
        const auto &eb = b.metrics.epochs[i];
        const char *field = nullptr;
        unsigned long long va = 0, vb = 0;
        if (ea.stw_duration != eb.stw_duration) {
            field = "stw_duration";
            va = ea.stw_duration;
            vb = eb.stw_duration;
        } else if (ea.concurrent_duration != eb.concurrent_duration) {
            field = "concurrent_duration";
            va = ea.concurrent_duration;
            vb = eb.concurrent_duration;
        } else if (ea.fault_count != eb.fault_count) {
            field = "fault_count";
            va = ea.fault_count;
            vb = eb.fault_count;
        } else if (ea.pages_swept != eb.pages_swept) {
            field = "pages_swept";
            va = ea.pages_swept;
            vb = eb.pages_swept;
        } else if (ea.caps_revoked != eb.caps_revoked) {
            field = "caps_revoked";
            va = ea.caps_revoked;
            vb = eb.caps_revoked;
        }
        if (field != nullptr) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "first-divergence=epoch[%zu].%s (%llu != "
                          "%llu)",
                          i, field, va, vb);
            return buf;
        }
    }
    if (a.metrics.epochs.size() != b.metrics.epochs.size()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "first-divergence=epoch_count (%zu != %zu)",
                      a.metrics.epochs.size(),
                      b.metrics.epochs.size());
        return buf;
    }
    const std::string fa = fingerprint(a);
    const std::string fb = fingerprint(b);
    std::size_t c = 0;
    while (c < fa.size() && c < fb.size() && fa[c] == fb[c])
        ++c;
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "first-divergence=fingerprint_char[%zu]", c);
    return buf;
}

class ChaosPlanTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ChaosPlanTest, EveryStrategySurvivesWithAuditOn)
{
    const Plan plan = allPlans()[GetParam()];
    for (Strategy s : core::kAllStrategies) {
        SCOPED_TRACE(reproLine(s, plan, 1200));
        const RunResult r = runChaos(s, plan);
        // Liveness: the mutator ran to completion, the quarantine
        // drained, and the epoch counter rests even (no epoch left
        // half-open). Safety was asserted epoch-by-epoch by the audit
        // and cross-checked by the temporal-safety oracle.
        EXPECT_EQ(r.final_epoch_value % 2, 0u);
        EXPECT_EQ(r.final_quarantine_bytes, 0u);
        EXPECT_EQ(r.metrics.oracle_violations, 0u);
        if (s != Strategy::kBaseline) {
            EXPECT_GT(r.metrics.epochs.size(), 0u);
        }
    }
}

TEST_P(ChaosPlanTest, RecoveryReplaysByteIdentically)
{
    const Plan plan = allPlans()[GetParam()];
    // Reloaded exercises every injection point; CheriVoke covers the
    // purely-STW path.
    for (Strategy s : {Strategy::kReloaded, Strategy::kCheriVoke}) {
        SCOPED_TRACE(reproLine(s, plan, 1200));
        const RunResult ra = runChaos(s, plan);
        const RunResult rb = runChaos(s, plan);
        const std::string a = fingerprint(ra);
        const std::string b = fingerprint(rb);
        EXPECT_EQ(a, b) << firstDivergence(ra, rb);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, ChaosPlanTest,
    ::testing::Range<std::size_t>(0, kNumPlans),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        return std::string(allPlans()[info.param].name);
    });

TEST(ChaosRecovery, KilledSweepersAreReapedAndRespawned)
{
    const auto plans = allPlans();
    const Plan &plan = plans[1]; // kill_sweeper
    ASSERT_STREQ(plan.name, "kill_sweeper");
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.sweeper_kills, 0u)
        << "the plan must actually kill a sweeper";
    // Every kill wedges the epoch's helper drain; the watchdog must
    // have detected the death and repaired the accounting.
    EXPECT_GT(m.recovery.deadline_misses, 0u);
    EXPECT_GT(m.recovery.sweepers_reaped, 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

TEST(ChaosRecovery, DroppedFaultCompletionsDegradeGracefully)
{
    const auto plans = allPlans();
    const Plan &plan = plans[2]; // drop_faults
    ASSERT_STREQ(plan.name, "drop_faults");
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.faults_dropped, 0u)
        << "the plan must actually lose completions";
    // A lost completion leaks faults_in_flight_, so the wedged epochs
    // must have been finished in degraded (emergency STW) mode.
    EXPECT_GT(m.recovery.recovery_requests + m.recovery.stw_fallbacks,
              0u);
    EXPECT_GT(m.degradedEpochs(), 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

TEST(ChaosRecovery, HardStallFallsBackToStopTheWorld)
{
    const auto plans = allPlans();
    const Plan &plan = plans[6]; // hard_stall
    ASSERT_STREQ(plan.name, "hard_stall");
    const RunResult r = runChaos(Strategy::kReloaded, plan);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.sweeper_stalls, 0u);
    // The daemon slept through every rung the watchdog could wake it
    // from; the epoch must have been force-completed by fiat.
    EXPECT_GT(m.recovery.stw_fallbacks, 0u);
    EXPECT_GT(m.degradedEpochs(), 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

/**
 * Watchdog backoff must saturate, not overflow: with a backoff_base
 * in the top bits of Cycles, the unclamped `base << attempt` used to
 * wrap to a tiny (or enormous) sleep, either spinning the watchdog
 * or parking it past the end of the run. The clamped ladder sleeps
 * at most max_backoff and the stalled run still completes.
 */
TEST(ChaosRecovery, HugeBackoffBaseStillCompletes)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024;
    cfg.faults = base(707);
    cfg.faults.sweeper_stall_prob = 1.0;
    cfg.faults.sweeper_stall_cycles = 30'000'000;
    cfg.faults.window_end = 5'000'000;
    cfg.watchdog.backoff_base = Cycles{1} << 62;
    cfg.seed = 42;
    Machine m(cfg);
    std::uint64_t final_epoch = 1;
    std::size_t final_quar = 1;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, 1200);
        final_epoch = m.kernel().epoch().value();
        final_quar = m.heap().quarantineBytes();
    });
    m.run();
    const RunMetrics metrics = m.metrics();
    ASSERT_GT(metrics.faults_injected.sweeper_stalls, 0u);
    EXPECT_GT(metrics.recovery.deadline_misses, 0u);
    EXPECT_EQ(final_epoch % 2, 0u);
    EXPECT_EQ(final_quar, 0u);
}

/**
 * After a rung-3 force-complete the ladder must re-arm: the next
 * epoch gets a fresh deadline and attempt count instead of instantly
 * re-escalating. Healthy epochs after the stall window therefore
 * complete undegraded.
 */
TEST(ChaosRecovery, WatchdogReArmsAfterForceComplete)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024;
    cfg.faults = base(707);
    // Early stalls long enough that the ladder climbs to rung 3
    // (deadline + nudge/backoff rounds ~ 5.5M cycles after epoch
    // start). The second churn phase below runs after the daemon has
    // slept its stall off; its epochs are the healthy ones the
    // re-armed ladder must leave alone.
    cfg.faults.sweeper_stall_prob = 1.0;
    cfg.faults.sweeper_stall_cycles = 8'000'000;
    cfg.faults.window_end = 2'000'000;
    cfg.seed = 42;
    Machine m(cfg);
    std::uint64_t final_epoch = 1;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, 1200);
        // Outlive the stall (ends by window_end + stall_cycles).
        ctx.thread().sleep(15'000'000);
        churn(m, ctx, 1200);
        final_epoch = m.kernel().epoch().value();
    });
    m.run();
    const RunMetrics metrics = m.metrics();
    // The rung-3 path fired during the stall window...
    ASSERT_GT(metrics.recovery.stw_fallbacks, 0u);
    ASSERT_GT(metrics.epochs.size(), metrics.degradedEpochs());
    // ...and epochs after the window ran clean: had the ladder kept
    // its old (blown) deadline, every later epoch would escalate too.
    std::size_t trailing_clean = 0;
    for (auto it = metrics.epochs.rbegin();
         it != metrics.epochs.rend() && !it->recovery.degraded &&
         !it->recovery.forced;
         ++it)
        ++trailing_clean;
    EXPECT_GT(trailing_clean, 0u);
    EXPECT_EQ(final_epoch % 2, 0u);
}

TEST(ChaosRecovery, CleanPlanInjectsNothingAndRecoversNothing)
{
    // A disabled plan must leave the machine bit-identical to a run
    // with no fault machinery at all (no injector, no watchdog).
    Plan off{"off", sim::FaultPlan{}, 1};
    const RunResult with_plan =
        runChaos(Strategy::kReloaded, off, 1000);
    EXPECT_EQ(with_plan.metrics.faults_injected.sweeper_stalls, 0u);
    EXPECT_EQ(with_plan.metrics.recovery.deadline_misses, 0u);
    EXPECT_EQ(with_plan.metrics.degradedEpochs(), 0u);
}

TEST(ChaosPlans, CampaignCoversEveryPlan)
{
    EXPECT_EQ(allPlans().size(), kNumPlans);
}

TEST(ChaosRecovery, DroppedShootdownsAreResent)
{
    const auto plans = allPlans();
    const Plan &plan = plans[9]; // shootdown_drop
    ASSERT_STREQ(plan.name, "shootdown_drop");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.shootdown_drops, 0u)
        << "the plan must actually lose IPIs";
    // Every lost IPI leaves an un-acked core; the initiator's bounded
    // re-send rounds must have picked each one up.
    EXPECT_GT(m.mmu.shootdown_resends, 0u);
    EXPECT_GT(
        m.recovery_protocols[static_cast<unsigned>(
                                 trace::RecoveryProtocol::kShootdownResend)]
            .tickets,
        0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

TEST(ChaosRecovery, LateShootdownAcksOnlyCostTime)
{
    const auto plans = allPlans();
    const Plan &plan = plans[10]; // shootdown_late
    ASSERT_STREQ(plan.name, "shootdown_late");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.shootdown_lates, 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

TEST(ChaosRecovery, StalledCoresAreObservedAndOutlived)
{
    const auto plans = allPlans();
    const Plan &plan = plans[11]; // core_stall
    ASSERT_STREQ(plan.name, "core_stall");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.core_stalls, 0u)
        << "the plan must actually freeze a core";
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

TEST(ChaosRecovery, CorruptedSummariesAreRepairedFromGroundTruth)
{
    const auto plans = allPlans();
    const Plan &plan = plans[12]; // summary_corrupt
    ASSERT_STREQ(plan.name, "summary_corrupt");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.summary_corruptions, 0u)
        << "the plan must actually flip summary bits";
    // Detection alone would have panicked the audit; the run
    // completing with repairs recorded proves the rebuild path ran.
    EXPECT_GT(m.summary_repairs, 0u);
    EXPECT_GT(
        m.recovery_protocols[static_cast<unsigned>(
                                 trace::RecoveryProtocol::kSummaryRepair)]
            .successes,
        0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

TEST(ChaosRecovery, DroppedQuarantineHandoffsAreResent)
{
    const auto plans = allPlans();
    const Plan &plan = plans[13]; // quarantine_drop
    ASSERT_STREQ(plan.name, "quarantine_drop");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.quarantine_drops, 0u)
        << "the plan must actually lose epoch requests";
    // A lost hand-off stalls the allocator's wait; the bounded
    // re-send loop must have recovered each one.
    EXPECT_GT(m.quarantine.handoff_resends, 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

TEST(ChaosRecovery, DuplicateQuarantineHandoffsAreIdempotent)
{
    const auto plans = allPlans();
    const Plan &plan = plans[14]; // quarantine_duplicate
    ASSERT_STREQ(plan.name, "quarantine_duplicate");
    SCOPED_TRACE(reproLine(Strategy::kReloaded, plan, 2500));
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.quarantine_duplicates, 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
    EXPECT_EQ(m.oracle_violations, 0u);
}

// --- FaultPlan structural validation (Machine rejects bad plans) ---

MachineConfig
validChaosConfig()
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.faults.enabled = true;
    cfg.faults.seed = 7;
    return cfg;
}

TEST(FaultPlanValidation, ProbabilityOutOfRangeIsRejected)
{
    MachineConfig cfg = validChaosConfig();
    cfg.faults.shootdown_drop_prob = 1.5;
    EXPECT_THROW(Machine m(cfg), std::invalid_argument);
    try {
        Machine m(cfg);
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("shootdown_drop_prob"),
                  std::string::npos)
            << e.what();
    }
    cfg = validChaosConfig();
    cfg.faults.quarantine_drop_prob = -0.25;
    EXPECT_THROW(Machine m(cfg), std::invalid_argument);
}

TEST(FaultPlanValidation, InvertedWindowIsRejected)
{
    MachineConfig cfg = validChaosConfig();
    cfg.faults.window_begin = 2'000'000;
    cfg.faults.window_end = 1'000'000;
    EXPECT_THROW(Machine m(cfg), std::invalid_argument);
}

TEST(FaultPlanValidation, ZeroCycleStallWithNonzeroProbIsRejected)
{
    MachineConfig cfg = validChaosConfig();
    cfg.faults.core_stall_prob = 0.5;
    cfg.faults.core_stall_cycles = 0;
    EXPECT_THROW(Machine m(cfg), std::invalid_argument);
    cfg = validChaosConfig();
    cfg.faults.shootdown_late_prob = 0.5;
    cfg.faults.shootdown_late_cycles = 0;
    EXPECT_THROW(Machine m(cfg), std::invalid_argument);
}

TEST(FaultPlanValidation, WellFormedPlansConstruct)
{
    for (const Plan &plan : allPlans()) {
        SCOPED_TRACE(plan.name);
        EXPECT_EQ(plan.faults.validate(), "");
        MachineConfig cfg = validChaosConfig();
        cfg.faults = plan.faults;
        EXPECT_NO_THROW(Machine m(cfg));
    }
}

} // namespace
} // namespace crev
