/**
 * @file
 * Chaos campaigns: seeded fault plans injected into every strategy,
 * with the whole-machine invariant audit on. Three properties must
 * survive every plan:
 *
 *   1. Temporal safety holds (the per-epoch audit panics otherwise).
 *   2. No mutator blocks forever: the run completes, the epoch
 *      counter rests even, and drain() empties the quarantine — even
 *      when sweepers die or fault completions are lost (the watchdog's
 *      degradation ladder guarantees counter advance).
 *   3. Recovery is deterministic: identical seeds replay identical
 *      fault sequences *and* identical recoveries, byte for byte.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::RunMetrics;
using core::Strategy;

/** Heap churn with capability links, register parking, and hoards —
 *  enough surface for every injected fault class to land. */
void
churn(Machine &m, Mutator &ctx, int iters)
{
    struct Obj
    {
        cap::Capability c;
        std::size_t size;
    };
    std::vector<Obj> live;
    auto &rng = ctx.rng();

    for (int i = 0; i < iters; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.45 || live.size() < 4) {
            const std::size_t size = 16 << rng.below(7);
            live.push_back({ctx.malloc(size), size});
            ctx.store64(live.back().c, 0, static_cast<uint64_t>(i));
        } else if (dice < 0.80) {
            const std::size_t idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = live.back();
            live.pop_back();
        } else if (dice < 0.90) {
            const std::size_t a = rng.below(live.size());
            const std::size_t b = rng.below(live.size());
            if (live[a].size >= 32) {
                ctx.storeCap(live[a].c, 16, live[b].c);
                const cap::Capability back =
                    ctx.loadCap(live[a].c, 16);
                ASSERT_TRUE(back.tag);
            }
        } else if (dice < 0.95) {
            ctx.thread().reg(1 + rng.below(8)) =
                live[rng.below(live.size())].c;
        } else {
            const std::size_t slot =
                ctx.hoardPut(live[rng.below(live.size())].c);
            ASSERT_TRUE(ctx.hoardTake(slot).tag);
        }
    }
    for (auto &o : live)
        ctx.free(o.c);
    m.heap().drain(ctx.thread());
}

struct Plan
{
    const char *name;
    sim::FaultPlan faults;
    unsigned sweepers = 1;
};

sim::FaultPlan
base(std::uint64_t seed)
{
    sim::FaultPlan p;
    p.enabled = true;
    p.seed = seed;
    return p;
}

/** The campaign: every scenario the harness can express, seeded. */
std::vector<Plan>
allPlans()
{
    std::vector<Plan> plans;

    {
        Plan p{"stall_sweeper", base(101), 2};
        p.faults.sweeper_stall_prob = 0.10;
        p.faults.sweeper_stall_cycles = 100'000;
        plans.push_back(p);
    }
    {
        Plan p{"kill_sweeper", base(202), 3};
        p.faults.sweeper_kill_prob = 0.5;
        p.faults.max_sweeper_kills = 2;
        plans.push_back(p);
    }
    {
        Plan p{"drop_faults", base(303), 1};
        p.faults.fault_drop_prob = 0.5;
        p.faults.max_fault_drops = 8;
        plans.push_back(p);
    }
    {
        Plan p{"duplicate_faults", base(404), 1};
        p.faults.fault_duplicate_prob = 0.3;
        plans.push_back(p);
    }
    {
        Plan p{"stw_delay", base(505), 1};
        p.faults.stw_delay_prob = 1.0;
        p.faults.stw_delay_cycles = 50'000;
        plans.push_back(p);
    }
    {
        Plan p{"mem_spike", base(606), 1};
        p.faults.mem_spike_period = 100'000;
        p.faults.mem_spike_duration = 20'000;
        p.faults.mem_spike_extra = 50;
        plans.push_back(p);
    }
    {
        // A sweeper stall far past the watchdog deadline: recovery
        // must fall all the way back to the emergency STW sweep.
        Plan p{"hard_stall", base(707), 1};
        p.faults.sweeper_stall_prob = 1.0;
        p.faults.sweeper_stall_cycles = 30'000'000;
        p.faults.window_end = 5'000'000;
        plans.push_back(p);
    }
    {
        Plan p{"kill_and_drop", base(808), 3};
        p.faults.sweeper_kill_prob = 0.5;
        p.faults.max_sweeper_kills = 1;
        p.faults.fault_drop_prob = 0.25;
        p.faults.max_fault_drops = 4;
        plans.push_back(p);
    }
    {
        Plan p{"kitchen_sink", base(909), 2};
        p.faults.sweeper_stall_prob = 0.05;
        p.faults.sweeper_stall_cycles = 250'000;
        p.faults.sweeper_kill_prob = 0.10;
        p.faults.max_sweeper_kills = 1;
        p.faults.fault_drop_prob = 0.10;
        p.faults.max_fault_drops = 4;
        p.faults.fault_duplicate_prob = 0.10;
        p.faults.stw_delay_prob = 0.25;
        p.faults.stw_delay_cycles = 25'000;
        p.faults.mem_spike_period = 250'000;
        p.faults.mem_spike_duration = 25'000;
        p.faults.mem_spike_extra = 30;
        plans.push_back(p);
    }
    return plans;
}

struct RunResult
{
    RunMetrics metrics;
    std::uint64_t final_epoch_value = 0;
    std::size_t final_quarantine_bytes = 0;
};

RunResult
runChaos(Strategy s, const Plan &plan, int iters = 1200)
{
    MachineConfig cfg;
    cfg.strategy = s;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024; // revoke frequently
    cfg.background_sweepers = plan.sweepers;
    cfg.faults = plan.faults;
    cfg.seed = 42;
    Machine m(cfg);
    RunResult r;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, iters);
        r.final_epoch_value = m.kernel().epoch().value();
        r.final_quarantine_bytes = m.heap().quarantineBytes();
    });
    m.run();
    r.metrics = m.metrics();
    return r;
}

/** The fields that must replay byte-identically across same-seed
 *  runs, including every recovery and injection counter. */
std::string
fingerprint(const RunResult &r)
{
    const RunMetrics &m = r.metrics;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s|epoch=%llu|quar=%zu|misses=%llu nudges=%llu reaped=%llu "
        "respawned=%llu recov=%llu stw=%llu emerg=%llu|stalls=%llu "
        "kills=%llu drops=%llu dups=%llu delays=%llu",
        m.summary().c_str(),
        static_cast<unsigned long long>(r.final_epoch_value),
        r.final_quarantine_bytes,
        static_cast<unsigned long long>(m.recovery.deadline_misses),
        static_cast<unsigned long long>(m.recovery.nudges),
        static_cast<unsigned long long>(m.recovery.sweepers_reaped),
        static_cast<unsigned long long>(m.recovery.sweepers_respawned),
        static_cast<unsigned long long>(m.recovery.recovery_requests),
        static_cast<unsigned long long>(m.recovery.stw_fallbacks),
        static_cast<unsigned long long>(m.recovery.emergency_epochs),
        static_cast<unsigned long long>(
            m.faults_injected.sweeper_stalls),
        static_cast<unsigned long long>(
            m.faults_injected.sweeper_kills),
        static_cast<unsigned long long>(
            m.faults_injected.faults_dropped),
        static_cast<unsigned long long>(
            m.faults_injected.faults_duplicated),
        static_cast<unsigned long long>(m.faults_injected.stw_delays));
    return buf;
}

class ChaosPlanTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ChaosPlanTest, EveryStrategySurvivesWithAuditOn)
{
    const Plan plan = allPlans()[GetParam()];
    for (Strategy s : core::kAllStrategies) {
        SCOPED_TRACE(std::string(core::strategyName(s)) + " / " +
                     plan.name);
        const RunResult r = runChaos(s, plan);
        // Liveness: the mutator ran to completion, the quarantine
        // drained, and the epoch counter rests even (no epoch left
        // half-open). Safety was asserted epoch-by-epoch by the audit.
        EXPECT_EQ(r.final_epoch_value % 2, 0u);
        EXPECT_EQ(r.final_quarantine_bytes, 0u);
        if (s != Strategy::kBaseline) {
            EXPECT_GT(r.metrics.epochs.size(), 0u);
        }
    }
}

TEST_P(ChaosPlanTest, RecoveryReplaysByteIdentically)
{
    const Plan plan = allPlans()[GetParam()];
    // Reloaded exercises every injection point; CheriVoke covers the
    // purely-STW path.
    for (Strategy s : {Strategy::kReloaded, Strategy::kCheriVoke}) {
        SCOPED_TRACE(std::string(core::strategyName(s)) + " / " +
                     plan.name);
        const std::string a = fingerprint(runChaos(s, plan));
        const std::string b = fingerprint(runChaos(s, plan));
        EXPECT_EQ(a, b);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, ChaosPlanTest, ::testing::Range<std::size_t>(0, 9),
    [](const ::testing::TestParamInfo<std::size_t> &info) {
        return std::string(allPlans()[info.param].name);
    });

TEST(ChaosRecovery, KilledSweepersAreReapedAndRespawned)
{
    const auto plans = allPlans();
    const Plan &plan = plans[1]; // kill_sweeper
    ASSERT_STREQ(plan.name, "kill_sweeper");
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.sweeper_kills, 0u)
        << "the plan must actually kill a sweeper";
    // Every kill wedges the epoch's helper drain; the watchdog must
    // have detected the death and repaired the accounting.
    EXPECT_GT(m.recovery.deadline_misses, 0u);
    EXPECT_GT(m.recovery.sweepers_reaped, 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

TEST(ChaosRecovery, DroppedFaultCompletionsDegradeGracefully)
{
    const auto plans = allPlans();
    const Plan &plan = plans[2]; // drop_faults
    ASSERT_STREQ(plan.name, "drop_faults");
    const RunResult r = runChaos(Strategy::kReloaded, plan, 2500);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.faults_dropped, 0u)
        << "the plan must actually lose completions";
    // A lost completion leaks faults_in_flight_, so the wedged epochs
    // must have been finished in degraded (emergency STW) mode.
    EXPECT_GT(m.recovery.recovery_requests + m.recovery.stw_fallbacks,
              0u);
    EXPECT_GT(m.degradedEpochs(), 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

TEST(ChaosRecovery, HardStallFallsBackToStopTheWorld)
{
    const auto plans = allPlans();
    const Plan &plan = plans[6]; // hard_stall
    ASSERT_STREQ(plan.name, "hard_stall");
    const RunResult r = runChaos(Strategy::kReloaded, plan);
    const RunMetrics &m = r.metrics;
    ASSERT_GT(m.faults_injected.sweeper_stalls, 0u);
    // The daemon slept through every rung the watchdog could wake it
    // from; the epoch must have been force-completed by fiat.
    EXPECT_GT(m.recovery.stw_fallbacks, 0u);
    EXPECT_GT(m.degradedEpochs(), 0u);
    EXPECT_EQ(r.final_epoch_value % 2, 0u);
    EXPECT_EQ(r.final_quarantine_bytes, 0u);
}

/**
 * Watchdog backoff must saturate, not overflow: with a backoff_base
 * in the top bits of Cycles, the unclamped `base << attempt` used to
 * wrap to a tiny (or enormous) sleep, either spinning the watchdog
 * or parking it past the end of the run. The clamped ladder sleeps
 * at most max_backoff and the stalled run still completes.
 */
TEST(ChaosRecovery, HugeBackoffBaseStillCompletes)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024;
    cfg.faults = base(707);
    cfg.faults.sweeper_stall_prob = 1.0;
    cfg.faults.sweeper_stall_cycles = 30'000'000;
    cfg.faults.window_end = 5'000'000;
    cfg.watchdog.backoff_base = Cycles{1} << 62;
    cfg.seed = 42;
    Machine m(cfg);
    std::uint64_t final_epoch = 1;
    std::size_t final_quar = 1;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, 1200);
        final_epoch = m.kernel().epoch().value();
        final_quar = m.heap().quarantineBytes();
    });
    m.run();
    const RunMetrics metrics = m.metrics();
    ASSERT_GT(metrics.faults_injected.sweeper_stalls, 0u);
    EXPECT_GT(metrics.recovery.deadline_misses, 0u);
    EXPECT_EQ(final_epoch % 2, 0u);
    EXPECT_EQ(final_quar, 0u);
}

/**
 * After a rung-3 force-complete the ladder must re-arm: the next
 * epoch gets a fresh deadline and attempt count instead of instantly
 * re-escalating. Healthy epochs after the stall window therefore
 * complete undegraded.
 */
TEST(ChaosRecovery, WatchdogReArmsAfterForceComplete)
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024;
    cfg.faults = base(707);
    // Early stalls long enough that the ladder climbs to rung 3
    // (deadline + nudge/backoff rounds ~ 5.5M cycles after epoch
    // start). The second churn phase below runs after the daemon has
    // slept its stall off; its epochs are the healthy ones the
    // re-armed ladder must leave alone.
    cfg.faults.sweeper_stall_prob = 1.0;
    cfg.faults.sweeper_stall_cycles = 8'000'000;
    cfg.faults.window_end = 2'000'000;
    cfg.seed = 42;
    Machine m(cfg);
    std::uint64_t final_epoch = 1;
    m.spawnMutator("app", 1u << 3, [&](Mutator &ctx) {
        churn(m, ctx, 1200);
        // Outlive the stall (ends by window_end + stall_cycles).
        ctx.thread().sleep(15'000'000);
        churn(m, ctx, 1200);
        final_epoch = m.kernel().epoch().value();
    });
    m.run();
    const RunMetrics metrics = m.metrics();
    // The rung-3 path fired during the stall window...
    ASSERT_GT(metrics.recovery.stw_fallbacks, 0u);
    ASSERT_GT(metrics.epochs.size(), metrics.degradedEpochs());
    // ...and epochs after the window ran clean: had the ladder kept
    // its old (blown) deadline, every later epoch would escalate too.
    std::size_t trailing_clean = 0;
    for (auto it = metrics.epochs.rbegin();
         it != metrics.epochs.rend() && !it->recovery.degraded &&
         !it->recovery.forced;
         ++it)
        ++trailing_clean;
    EXPECT_GT(trailing_clean, 0u);
    EXPECT_EQ(final_epoch % 2, 0u);
}

TEST(ChaosRecovery, CleanPlanInjectsNothingAndRecoversNothing)
{
    // A disabled plan must leave the machine bit-identical to a run
    // with no fault machinery at all (no injector, no watchdog).
    Plan off{"off", sim::FaultPlan{}, 1};
    const RunResult with_plan =
        runChaos(Strategy::kReloaded, off, 1000);
    EXPECT_EQ(with_plan.metrics.faults_injected.sweeper_stalls, 0u);
    EXPECT_EQ(with_plan.metrics.recovery.deadline_misses, 0u);
    EXPECT_EQ(with_plan.metrics.degradedEpochs(), 0u);
}

} // namespace
} // namespace crev
