/**
 * @file
 * Meta-tests of the invariant auditor itself: a checker that can never
 * fire is worthless, so these tests sabotage the revoker in controlled
 * ways and assert the auditor *detects* the resulting stale
 * capabilities — in memory, registers, and kernel hoards.
 *
 * The memory sabotage reproduces the clean-page-detection bug the
 * audit caught during development (DESIGN.md §7b): clearing a page's
 * cap_ever bit makes every sweep skip its contents.
 */

#include <gtest/gtest.h>

#include "core/machine.h"
#include "core/mutator.h"
#include "revoker/auditor.h"
#include "vm/address_space.h"

namespace crev {
namespace {

using core::Machine;
using core::MachineConfig;
using core::Mutator;
using core::Strategy;

/** Run one revocation epoch without letting the shim dequarantine
 *  (drain() would unpaint and erase the audit set). */
void
oneEpoch(Machine &m, Mutator &ctx)
{
    auto *rev = m.revokerOrNull();
    ASSERT_NE(rev, nullptr);
    const auto target = m.kernel().epoch().dequarantineTarget(
        m.kernel().epoch().value());
    rev->requestEpoch(ctx.thread());
    rev->waitForEpochCounter(ctx.thread(), target);
}

MachineConfig
reloadedCfg()
{
    MachineConfig cfg;
    cfg.strategy = Strategy::kReloaded;
    cfg.audit = false; // we run the auditor by hand
    cfg.policy.min_bytes = 1 << 20;
    return cfg;
}

TEST(Auditor, CleanRunReportsNoViolations)
{
    Machine m(reloadedCfg());
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        const cap::Capability victim = ctx.malloc(64);
        ctx.storeCap(holder, 0, victim);
        ctx.free(victim);
        m.heap().drain(ctx.thread());

        revoker::Auditor aud(m.scheduler(), m.mmu(), m.kernel(),
                             *m.revokerOrNull());
        EXPECT_TRUE(aud.findViolations().empty());
        EXPECT_EQ(aud.audits(), 1u);
    });
    m.run();
}

TEST(Auditor, DetectsMemoryCapabilityHiddenFromSweeps)
{
    Machine m(reloadedCfg());
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        const cap::Capability victim = ctx.malloc(64);
        ctx.storeCap(holder, 0, victim);

        // Sabotage: mark the holder's page capability-clean so the
        // sweep skips its contents — the exact effect of the historic
        // clean-page-detection race.
        vm::Pte *p = m.addressSpace().findPte(holder.base);
        ASSERT_NE(p, nullptr);
        p->cap_ever = false;

        ctx.free(victim);
        oneEpoch(m, ctx);

        revoker::Auditor aud(m.scheduler(), m.mmu(), m.kernel(),
                             *m.revokerOrNull());
        const auto violations = aud.findViolations();
        ASSERT_EQ(violations.size(), 1u);
        EXPECT_NE(violations[0].find("memory"), std::string::npos);
        EXPECT_NE(violations[0].find("quarantined"),
                  std::string::npos);
    });
    m.run();
}

TEST(Auditor, DetectsRegisterEscapees)
{
    // Registers written *after* the STW scan (modelling an unscanned
    // hoard) must be caught by the audit.
    Machine m(reloadedCfg());
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability victim = ctx.malloc(64);
        ctx.free(victim);
        oneEpoch(m, ctx);
        // Plant the (still-host-held) stale capability back into the
        // register file after the epoch finished.
        ctx.thread().reg(9) = victim;

        revoker::Auditor aud(m.scheduler(), m.mmu(), m.kernel(),
                             *m.revokerOrNull());
        const auto violations = aud.findViolations();
        ASSERT_EQ(violations.size(), 1u);
        EXPECT_NE(violations[0].find("registers"), std::string::npos);
        ctx.thread().reg(9) = cap::Capability::null();
    });
    m.run();
}

TEST(Auditor, DetectsHoardEscapees)
{
    Machine m(reloadedCfg());
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability victim = ctx.malloc(64);
        ctx.free(victim);
        oneEpoch(m, ctx);
        // Plant into the kernel hoard post-epoch.
        const std::size_t slot = ctx.hoardPut(victim);

        revoker::Auditor aud(m.scheduler(), m.mmu(), m.kernel(),
                             *m.revokerOrNull());
        const auto violations = aud.findViolations();
        ASSERT_EQ(violations.size(), 1u);
        EXPECT_NE(violations[0].find("hoard"), std::string::npos);
        ctx.hoardTake(slot);
    });
    m.run();
}

TEST(Auditor, DequarantineClearsTheAuditSet)
{
    // After memory is recycled, new capabilities to the same base are
    // legitimate and must not be flagged.
    MachineConfig cfg = reloadedCfg();
    cfg.policy.min_bytes = 4 * 1024; // recycle quickly
    Machine m(cfg);
    m.spawnMutator("app", 1u << 3, [&m](Mutator &ctx) {
        const cap::Capability holder = ctx.malloc(64);
        // Churn one size class so bases are reused across epochs.
        for (int i = 0; i < 300; ++i) {
            const cap::Capability c = ctx.malloc(512);
            ctx.storeCap(holder, 0, c);
            ctx.free(c);
        }
        m.heap().drain(ctx.thread());
        // Mint a fresh object (very likely on a recycled base) and
        // hold it everywhere.
        const cap::Capability fresh = ctx.malloc(512);
        ctx.storeCap(holder, 0, fresh);
        ctx.thread().reg(4) = fresh;

        revoker::Auditor aud(m.scheduler(), m.mmu(), m.kernel(),
                             *m.revokerOrNull());
        EXPECT_TRUE(aud.findViolations().empty());
    });
    m.run();
}

} // namespace
} // namespace crev
