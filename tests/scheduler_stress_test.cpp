/**
 * @file
 * Stress and edge-case tests for the virtual-time scheduler beyond
 * sim_test's basics: many threads over few cores, determinism at
 * scale, repeated stop-the-world cycles, spawn-during-run, quantum
 * scaling, and fairness on shared cores.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/scheduler.h"
#include "sim/sync.h"

namespace crev::sim {
namespace {

CostModel
stressCosts()
{
    CostModel cm;
    cm.yield_slack = 500;
    cm.quantum = 20'000;
    cm.ctx_switch = 100;
    return cm;
}

TEST(SchedulerStress, ManyThreadsFewCoresDeterministic)
{
    auto run_once = [] {
        Scheduler s(2, stressCosts());
        std::vector<Cycles> finishes(12);
        for (int id = 0; id < 12; ++id) {
            s.spawn("t" + std::to_string(id), id % 2 ? 1u : 3u,
                    [&finishes, id](SimThread &t) {
                        for (int i = 0; i < 200; ++i)
                            t.accrue(53 + (id * 7 + i) % 31);
                        finishes[id] = t.now();
                    });
        }
        s.run();
        return finishes;
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a, b);
}

TEST(SchedulerStress, SharedCoreIsApproximatelyFair)
{
    // Three equal CPU-bound threads on one core finish within one
    // quantum of one another.
    Scheduler s(1, stressCosts());
    std::vector<Cycles> finishes(3);
    for (int id = 0; id < 3; ++id) {
        s.spawn("t" + std::to_string(id), 1,
                [&finishes, id](SimThread &t) {
                    Cycles done = 0;
                    while (done < 300'000) {
                        t.accrue(250);
                        done += 250;
                    }
                    finishes[id] = t.now();
                });
    }
    s.run();
    const Cycles lo = *std::min_element(finishes.begin(),
                                        finishes.end());
    const Cycles hi = *std::max_element(finishes.begin(),
                                        finishes.end());
    EXPECT_LT(hi - lo, 2 * stressCosts().quantum + 10'000);
}

TEST(SchedulerStress, RepeatedStwCycles)
{
    Scheduler s(2, stressCosts());
    int stw_rounds = 0;
    bool done = false;
    Cycles mutator_progress = 0;

    s.spawn("mutator", 1u << 0, [&](SimThread &t) {
        while (!done) {
            t.accrue(100);
            mutator_progress += 100;
        }
    });
    s.spawn("revoker", 1u << 1, [&](SimThread &t) {
        for (int i = 0; i < 50; ++i) {
            t.accrue(2'000);
            s.stopTheWorld(t);
            t.accrue(5'000);
            s.resumeWorld(t);
            ++stw_rounds;
        }
        done = true;
    });
    s.run();
    EXPECT_EQ(stw_rounds, 50);
    EXPECT_GT(mutator_progress, 0u);
}

TEST(SchedulerStress, SpawnDuringRunInheritsClock)
{
    Scheduler s(2, stressCosts());
    Cycles child_start = 0;
    s.spawn("parent", 1u << 0, [&](SimThread &t) {
        t.accrue(40'000);
        s.spawn("child", 1u << 1, [&](SimThread &ct) {
            child_start = ct.now();
            ct.accrue(10);
        });
        t.accrue(40'000);
    });
    s.run();
    // The child cannot begin before its spawn point in virtual time.
    EXPECT_GE(child_start, 40'000u);
}

TEST(SchedulerStress, QuantumScaleShortensSlices)
{
    // With a tiny quantum scale, a low-priority-style thread gets
    // preempted more often: measure interleaving granularity via the
    // other thread's observations.
    auto longest_burst = [](double scale) {
        Scheduler s(1, stressCosts());
        std::vector<char> trace;
        SimThread *bg = s.spawn("bg", 1, [&](SimThread &t) {
            for (int i = 0; i < 600; ++i) {
                t.accrue(250);
                trace.push_back('b');
            }
        });
        s.setQuantumScale(*bg, scale);
        s.spawn("fg", 1, [&](SimThread &t) {
            for (int i = 0; i < 600; ++i) {
                t.accrue(250);
                trace.push_back('f');
            }
        });
        s.run();
        int longest = 0, cur = 0;
        for (char c : trace) {
            cur = c == 'b' ? cur + 1 : 0;
            longest = std::max(longest, cur);
        }
        return longest;
    };
    EXPECT_LE(longest_burst(0.05), longest_burst(1.0));
}

TEST(SchedulerStress, ProducerConsumerChainAcrossCores)
{
    // A three-stage pipeline over queues: values must arrive in order
    // with monotone virtual timestamps.
    Scheduler s(3, stressCosts());
    SimQueue<int> q1, q2;
    std::vector<int> got;
    std::vector<Cycles> stamps;

    s.spawn("stage1", 1u << 0, [&](SimThread &t) {
        for (int i = 0; i < 50; ++i) {
            t.accrue(500);
            q1.push(t, i);
        }
    });
    s.spawn("stage2", 1u << 1, [&](SimThread &t) {
        for (int i = 0; i < 50; ++i) {
            int v;
            Cycles at;
            ASSERT_TRUE(q1.pop(t, v, at));
            t.accrue(300);
            q2.push(t, v * 2);
        }
    });
    s.spawn("stage3", 1u << 2, [&](SimThread &t) {
        for (int i = 0; i < 50; ++i) {
            int v;
            Cycles at;
            ASSERT_TRUE(q2.pop(t, v, at));
            got.push_back(v);
            stamps.push_back(t.now());
        }
    });
    s.run();
    ASSERT_EQ(got.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(got[i], i * 2);
    for (std::size_t i = 1; i < stamps.size(); ++i)
        EXPECT_LE(stamps[i - 1], stamps[i]);
}

TEST(SchedulerStress, BlockedThreadsDoNotBurnCpu)
{
    Scheduler s(2, stressCosts());
    SimThread *waiter = nullptr;
    bool released = false;
    waiter = s.spawn("waiter", 1u << 0, [&](SimThread &t) {
        while (!released)
            s.block(t);
    });
    s.spawn("worker", 1u << 1, [&](SimThread &t) {
        t.accrue(1'000'000);
        released = true;
        s.wake(*waiter, t.now());
    });
    s.run();
    // The waiter accrued (almost) nothing while parked for 1M cycles.
    EXPECT_LT(waiter->busyCycles(), 5'000u);
    EXPECT_GE(waiter->now(), 1'000'000u);
}

TEST(SchedulerStress, StwExcludesMultipleMutators)
{
    // With several runnable mutators, none may observe a timestamp
    // inside the STW window.
    Scheduler s(4, stressCosts());
    Cycles stw_begin = 0, stw_end = 0;
    bool done = false;
    std::vector<std::vector<Cycles>> seen(3);

    for (int id = 0; id < 3; ++id) {
        s.spawn("m" + std::to_string(id), 1u << id,
                [&, id](SimThread &t) {
                    while (!done) {
                        t.accrue(200);
                        seen[id].push_back(t.now());
                    }
                });
    }
    s.spawn("revoker", 1u << 3, [&](SimThread &t) {
        t.accrue(50'000);
        stw_begin = s.stopTheWorld(t);
        t.accrue(400'000);
        stw_end = t.now();
        s.resumeWorld(t);
        t.accrue(50'000);
        done = true;
    });
    s.run();

    for (const auto &stamps : seen) {
        for (Cycles c : stamps) {
            // A mutator observation strictly inside the window means
            // it executed while the world was stopped.
            EXPECT_FALSE(c > stw_begin + 200 && c < stw_end)
                << "mutator ran inside STW window";
        }
    }
}

TEST(SchedulerStress, ShutdownWakesFaultInjectedBlockedDaemon)
{
    // A sweeper-style daemon that a fault plan stalls (virtual-time
    // sleep) and then leaves blocked on an event nobody will ever
    // notify. When the only non-daemon thread finishes, shutdown must
    // force it through both states and it must observe shuttingDown()
    // and exit cleanly instead of hanging the run.
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = 77;
    plan.sweeper_stall_prob = 1.0;
    plan.sweeper_stall_cycles = 200'000;
    FaultInjector inj(plan);

    Scheduler s(2, stressCosts());
    SimEvent never_notified;
    bool observed_shutdown = false;
    s.spawn(
        "sweeper", 1u << 0,
        [&](SimThread &t) {
            const Cycles stall = inj.sweeperStall(t);
            if (stall > 0)
                t.sleep(stall);
            while (!s.shuttingDown())
                never_notified.wait(t);
            observed_shutdown = true;
        },
        /*daemon=*/true);
    s.spawn("app", 1u << 1, [&](SimThread &t) { t.accrue(50'000); });
    s.run();

    EXPECT_TRUE(observed_shutdown);
    EXPECT_EQ(inj.counters().sweeper_stalls, 1u);
}

} // namespace
} // namespace crev::sim
