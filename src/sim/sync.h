/**
 * @file
 * Synchronisation primitives for simulated threads.
 *
 * Because exactly one simulated thread executes at a time and wake-ups
 * are delivered through the scheduler, these primitives are free of
 * lost-wakeup races by construction: a waiter's predicate check and its
 * block() cannot be interleaved with a waker.
 */

#ifndef CREV_SIM_SYNC_H_
#define CREV_SIM_SYNC_H_

#include <deque>
#include <vector>

#include "base/logging.h"
#include "base/types.h"
#include "sim/scheduler.h"

namespace crev::sim {

/**
 * A mutex for simulated threads (the pmap lock, allocator locks).
 * Holders may yield while holding it; waiters block in FIFO order.
 */
class SimMutex
{
  public:
    /** Acquire; blocks the calling thread while contended. */
    void lock(SimThread &self);

    /** Try to acquire without blocking. */
    bool tryLock(SimThread &self);

    /** Release and wake the first waiter (at the caller's now()). */
    void unlock(SimThread &self);

    bool heldBy(const SimThread &t) const { return owner_ == &t; }
    bool held() const { return owner_ != nullptr; }

    /** Current holder (null when free); for debug diagnostics. */
    const SimThread *holder() const { return owner_; }

    /** Hard assertion that @p t holds this mutex (never compiled out). */
    void assertHeld(const SimThread &t) const { CREV_ASSERT(owner_ == &t); }

    /** Times lock() found the mutex held (contention metric). */
    std::uint64_t contended() const { return contended_; }

  private:
    SimThread *owner_ = nullptr;
    std::vector<SimThread *> waiters_;
    std::uint64_t contended_ = 0;
};

/**
 * A condition-style event: threads wait until notified. Waiters must
 * re-check their predicate (and Scheduler::shuttingDown(), if they are
 * daemons) upon return.
 */
class SimEvent
{
  public:
    /** Block until the next notify (or shutdown wake). */
    void wait(SimThread &self);

    /** Wake all current waiters at the caller's now(). */
    void notifyAll(SimThread &self);

  private:
    std::vector<SimThread *> waiters_;
};

/**
 * An unbounded FIFO queue between simulated threads, used as the
 * request channel of the pgbench- and gRPC-style client/server
 * workloads. Each element carries the virtual time it was enqueued.
 */
template <typename T>
class SimQueue
{
  public:
    /** Enqueue @p v, waking one blocked consumer. */
    void
    push(SimThread &self, T v)
    {
        items_.push_back(Item{std::move(v), self.now()});
        event_.notifyAll(self);
    }

    /**
     * Dequeue, blocking while empty. Returns false (without a value)
     * if the scheduler began shutting down while waiting.
     */
    bool
    pop(SimThread &self, T &out, Cycles &enqueued_at)
    {
        while (items_.empty()) {
            if (self.scheduler().shuttingDown())
                return false;
            event_.wait(self);
        }
        out = std::move(items_.front().value);
        enqueued_at = items_.front().enqueued_at;
        items_.pop_front();
        return true;
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

  private:
    struct Item
    {
        T value;
        Cycles enqueued_at;
    };

    std::deque<Item> items_;
    SimEvent event_;
};

} // namespace crev::sim

#endif // CREV_SIM_SYNC_H_
