/**
 * @file
 * The cycle cost model.
 *
 * Absolute values are synthetic but sit in the regime of a 2.5 GHz
 * out-of-order core (the paper's Morello SoC): sweeping one page is a
 * few thousand cycles (64 line fills), a trap round-trip is a few
 * hundred, an inter-processor interrupt a couple of thousand. What the
 * experiments compare — ratios between revocation strategies — depends
 * on the *relative* weights of sweeps, faults and synchronisation,
 * which these defaults preserve. All values are configurable.
 */

#ifndef CREV_SIM_COST_MODEL_H_
#define CREV_SIM_COST_MODEL_H_

#include "base/types.h"

namespace crev::sim {

/** Non-memory-hierarchy cycle costs (memory latencies live in mem/). */
struct CostModel
{
    Cycles op = 1;            //!< one unit of ALU work
    Cycles tlb_fill = 40;     //!< page-table walk on TLB miss
    Cycles tlb_shootdown = 300; //!< remote TLB invalidation
    Cycles trap = 400;        //!< fault entry/exit round trip
    Cycles syscall = 250;     //!< kernel crossing
    Cycles ipi = 2000;        //!< per-core stop-the-world interrupt
    Cycles ctx_switch = 1500; //!< context switch when a core changes thread
    Cycles reg_scan = 16;     //!< scan one capability register during STW
    Cycles pte_update = 30;   //!< modify one PTE
    Cycles page_fault_service = 600; //!< demand-zero fill overhead
    Cycles malloc_overhead = 40;     //!< allocator bookkeeping (non-memory)
    Cycles free_overhead = 25;

    /** Preemption quantum when threads share a core. */
    Cycles quantum = 1'000'000;
    /** Max virtual-time lead over another runnable thread before yield. */
    Cycles yield_slack = 8000;
};

} // namespace crev::sim

#endif // CREV_SIM_COST_MODEL_H_
