/**
 * @file
 * Deterministic cooperative virtual-time scheduler.
 *
 * Every simulated thread is backed by a host thread, but exactly one
 * simulated thread executes at a time: the scheduler hands a token to
 * the runnable thread with the smallest virtual clock (conservative
 * discrete-event execution). Simulated threads are pinned to cores via
 * a core mask; threads sharing a core are timesliced with a preemption
 * quantum. Because scheduling decisions depend only on virtual clocks,
 * entire runs are deterministic and race-free, yet workload bodies are
 * written as ordinary sequential C++.
 *
 * The scheduler also provides the stop-the-world service used by the
 * revokers: parked threads' clocks are advanced to the STW end time,
 * while threads sleeping past the window are unaffected — reproducing
 * the paper's observation that STW phases can hide inside idle time
 * (§5.2 Discussion).
 */

#ifndef CREV_SIM_SCHEDULER_H_
#define CREV_SIM_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "sim/cost_model.h"

namespace crev::trace {
class Tracer;
}

namespace crev::check {
class RaceChecker;
}

namespace crev::sim {

class Scheduler;

/** Lifecycle states of a simulated thread. */
enum class ThreadStatus {
    kReady,    //!< runnable, waiting for the token
    kRunning,  //!< holds the token
    kSleeping, //!< waiting for virtual time to pass
    kBlocked,  //!< waiting for an explicit wake()
    kDone,     //!< body returned
};

/**
 * A simulated thread: a virtual clock, a capability register file, and
 * a pinned set of cores. Workload code receives a reference and calls
 * accrue()/sleep()/reg() as it executes.
 */
class SimThread
{
  public:
    static constexpr unsigned kNumRegs = 32;

    SimThread(const SimThread &) = delete;
    SimThread &operator=(const SimThread &) = delete;

    const std::string &name() const { return name_; }
    unsigned id() const { return id_; }

    /** Core the thread is currently scheduled on. */
    unsigned core() const { return core_; }

    /** Current virtual time of this thread. */
    Cycles now() const { return clock_; }

    /** Cycles spent executing (excludes sleep and CPU wait). */
    Cycles busyCycles() const { return busy_; }

    /** Scheduling events this thread has passed through (heartbeat
     *  counter; feeds the stall detector). */
    std::uint64_t heartbeats() const { return heartbeats_; }
    /** Virtual time of the last heartbeat. */
    Cycles lastBeatAt() const { return last_beat_at_; }

    /**
     * Account @p c cycles of work. May hand the token to another
     * thread if this one has run past its yield horizon.
     */
    void
    accrue(Cycles c)
    {
        clock_ += c;
        busy_ += c;
        if (clock_ >= yield_horizon_ && noyield_depth_ == 0)
            yieldSlow();
    }

    /** Accrue without permitting a yield (critical sections). */
    void
    accrueNoYield(Cycles c)
    {
        clock_ += c;
        busy_ += c;
    }

    /** Explicit scheduling point (e.g. an idle server loop). */
    void yieldNow();

    /** Sleep until virtual time @p t (no CPU consumed). */
    void sleepUntil(Cycles t);
    /** Sleep for @p dt cycles. */
    void sleep(Cycles dt) { sleepUntil(clock_ + dt); }

    /** Capability register file (scanned during STW phases). */
    cap::Capability &reg(unsigned i);
    const cap::Capability &reg(unsigned i) const;

    /** Whole register file, for the revoker's STW scan. */
    std::vector<cap::Capability> &registerFile() { return regs_; }

    /** RAII guard suppressing yields (virtual critical section). */
    class NoYield
    {
      public:
        explicit NoYield(SimThread &t) : t_(t) { ++t_.noyield_depth_; }
        ~NoYield() { --t_.noyield_depth_; }

      private:
        SimThread &t_;
    };

    Scheduler &scheduler() { return sched_; }

  private:
    friend class Scheduler;

    SimThread(Scheduler &sched, unsigned id, std::string name,
              std::uint32_t core_mask, bool daemon,
              std::function<void(SimThread &)> body);

    void yieldSlow();
    void threadMain();

    Scheduler &sched_;
    const unsigned id_;
    const std::string name_;
    const std::uint32_t core_mask_;
    const bool daemon_;
    std::function<void(SimThread &)> body_;

    // --- state below is written only by the owning host thread or by
    // the scheduler while the thread is parked (mutex hand-off orders
    // all accesses) ---
    Cycles clock_ = 0;
    Cycles busy_ = 0;
    std::uint64_t heartbeats_ = 0;
    Cycles last_beat_at_ = 0;
    Cycles yield_horizon_ = 0;
    Cycles wake_time_ = 0; //!< for kSleeping
    unsigned core_ = 0;
    int noyield_depth_ = 0;
    ThreadStatus status_ = ThreadStatus::kReady;
    /** Relative preemption quantum scale (<1 shortens; §7.7 knob). */
    double quantum_scale_ = 1.0;

    std::vector<cap::Capability> regs_;
    std::condition_variable cv_;
    std::thread host_;
};

/**
 * The scheduler: owns all simulated threads and the single execution
 * token.
 */
class Scheduler
{
  public:
    Scheduler(unsigned num_cores, const CostModel &cm);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Create a simulated thread pinned to the cores in @p core_mask.
     * Daemon threads (the revoker) do not keep the machine alive: when
     * every non-daemon thread finishes, shuttingDown() becomes true
     * and blocked daemons are woken to exit.
     */
    SimThread *spawn(std::string name, std::uint32_t core_mask,
                     std::function<void(SimThread &)> body,
                     bool daemon = false);

    /** Run until all non-daemon threads complete (then join daemons). */
    void run();

    /** Block the calling thread until wake()d. */
    void block(SimThread &self);

    /**
     * Make @p t runnable no earlier than virtual time @p at (callers
     * pass their own now()). No-op if @p t is not blocked.
     */
    void wake(SimThread &t, Cycles at);

    /** True once all non-daemon threads have finished. */
    bool shuttingDown() const { return shutting_down_; }

    /**
     * Whether @p t's body has returned (its host thread may still be
     * joinable). The epoch watchdog uses this to detect sweeper
     * threads that died mid-epoch.
     */
    bool finished(const SimThread &t);

    /**
     * Begin a stop-the-world phase on behalf of @p self. Returns the
     * STW begin time; the caller performs its world-stopped work
     * (accruing cycles) and then calls resumeWorld().
     */
    Cycles stopTheWorld(SimThread &self);

    /** End the stop-the-world phase; parked threads resume at stw end. */
    void resumeWorld(SimThread &self);

    /** All threads ever spawned (the revoker scans register files). */
    const std::vector<std::unique_ptr<SimThread>> &threads() const
    {
        return threads_;
    }

    /** Largest virtual clock across all threads (wall-clock metric). */
    Cycles maxClock() const;

    const CostModel &costs() const { return cm_; }
    unsigned numCores() const { return num_cores_; }

    /** Set a thread's preemption-quantum scale (§7.7 tuning knob). */
    void setQuantumScale(SimThread &t, double scale);

    /**
     * Attach an event tracer (null = off). record() charges zero
     * simulated cycles, so attaching one cannot perturb a run.
     */
    void setTracer(trace::Tracer *t) { tracer_ = t; }
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach the race checker (null = off). Like the tracer, every
     * hook is an off-clock observer: no simulated cycles, no yields,
     * so attaching one cannot perturb a run (DESIGN.md §11).
     */
    void setChecker(check::RaceChecker *c) { checker_ = c; }
    check::RaceChecker *checker() const { return checker_; }

    /** Whether @p t currently owns an active stop-the-world window. */
    bool stwOwnedBy(const SimThread &t);

    /**
     * Extra cycles a thread's core freezes for at a yield point (the
     * fault injector's stuck/slow-core domain). Charged with no yield,
     * so the stall is one opaque blackout, as a firmware excursion
     * would be. Null = off; returning 0 = no stall.
     */
    using StallHook = std::function<Cycles(SimThread &)>;
    void setStallHook(StallHook h) { stall_hook_ = std::move(h); }

    /**
     * Stall detector: ids of threads that are not done but have not
     * passed a scheduling event since @p now - @p horizon (their
     * heartbeat counter stopped while virtual time moved on). The
     * watchdog samples this while an epoch is overdue.
     */
    std::vector<unsigned> stalledThreads(Cycles now, Cycles horizon);

  private:
    friend class SimThread;

    /** Pick the next thread to grant; nullptr if none runnable. */
    SimThread *chooseNext();
    /** Grant the token to @p t (scheduler loop side). */
    void grant(SimThread *t);
    /** Called by a running thread to return the token. */
    void handoff(SimThread &self, ThreadStatus new_status);
    /** Recompute a running thread's yield horizon hint. */
    void updateYieldHorizon(SimThread &running);

    const unsigned num_cores_;
    const CostModel cm_;

    trace::Tracer *tracer_ = nullptr;
    check::RaceChecker *checker_ = nullptr;
    StallHook stall_hook_;

    std::mutex mtx_;
    std::condition_variable sched_cv_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    SimThread *current_ = nullptr;
    bool started_ = false;
    bool shutting_down_ = false;
    /** Set by the destructor so host threads parked before run() (a
     *  scheduler built but never run) unblock and exit instead of
     *  deadlocking the join. */
    bool tearing_down_ = false;

    // Stop-the-world state.
    bool stw_active_ = false;
    SimThread *stw_owner_ = nullptr;
    Cycles last_stw_begin_ = 0;
    Cycles last_stw_end_ = 0;

    // Per-core timeline: when the core's last slice ended and who ran.
    std::vector<Cycles> core_free_at_;
    std::vector<SimThread *> core_last_thread_;
};

} // namespace crev::sim

#endif // CREV_SIM_SCHEDULER_H_
