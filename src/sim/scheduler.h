/**
 * @file
 * Deterministic cooperative virtual-time scheduler.
 *
 * Every simulated thread is backed by a host thread, but exactly one
 * simulated thread executes at a time: the scheduler hands a token to
 * the runnable thread with the smallest virtual clock (conservative
 * discrete-event execution). Simulated threads are pinned to cores via
 * a core mask; threads sharing a core are timesliced with a preemption
 * quantum. Because scheduling decisions depend only on virtual clocks,
 * entire runs are deterministic and race-free, yet workload bodies are
 * written as ordinary sequential C++.
 *
 * Two engines drive that policy (DESIGN.md §14):
 *
 *  - The serial *token engine* is the reference implementation: every
 *    cross-core interaction is applied at the instant it is posted, on
 *    the thread that holds the execution token.
 *  - The *lockstep engine* (MachineConfig::par_cores) is the
 *    conservative virtual-time generation: virtual time advances in
 *    preemption-quantum frontiers, cross-core wakes travel through
 *    per-core mailboxes drained in fixed (core-id, thread-id) order at
 *    resolution points, and a persistent LaneGroup of host workers
 *    runs deterministic striped assist (the sweep pre-scan) alongside
 *    the committing slice. Because the simulated machine's shared
 *    state (allocator, page tables, caches) is visible with zero
 *    latency, the sound conservative lookahead is zero: the committing
 *    slice is granted in exact policy order, and the engine's host
 *    speedup comes from its lane-safe flat lookup structures and the
 *    lane pool, not from speculating on virtual time. RunMetrics are
 *    bit-identical between the engines (tests/determinism_test.cpp).
 *
 * The scheduler also provides the stop-the-world service used by the
 * revokers: parked threads' clocks are advanced to the STW end time,
 * while threads sleeping past the window are unaffected — reproducing
 * the paper's observation that STW phases can hide inside idle time
 * (§5.2 Discussion).
 */

#ifndef CREV_SIM_SCHEDULER_H_
#define CREV_SIM_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "sim/cost_model.h"

/**
 * Fiber execution mode for the lockstep engine (DESIGN.md §14.5):
 * because exactly one simulated thread runs at a time, the engine can
 * run bodies as ucontext fibers on the driving host thread, turning
 * every token handoff from a kernel futex round-trip into a user-space
 * stack switch. Disabled under the sanitizers (they must observe real
 * host-thread switches to instrument stacks correctly) and off-Linux.
 */
#if defined(__linux__) && !defined(__SANITIZE_THREAD__) && \
    !defined(__SANITIZE_ADDRESS__)
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CREV_SCHED_FIBERS 0
#else
#define CREV_SCHED_FIBERS 1
#endif
#else
#define CREV_SCHED_FIBERS 1
#endif
#else
#define CREV_SCHED_FIBERS 0
#endif

#if CREV_SCHED_FIBERS
#include <ucontext.h>
#endif

namespace crev::trace {
class Tracer;
}

namespace crev::check {
class RaceChecker;
}

namespace crev::sim {

class Scheduler;
class LaneGroup;

namespace detail {
/** makecontext entry thunk for fiber mode (internal). */
void fiberTrampoline(unsigned hi, unsigned lo);
} // namespace detail

/** Lifecycle states of a simulated thread. */
enum class ThreadStatus {
    kReady,    //!< runnable, waiting for the token
    kRunning,  //!< holds the token
    kSleeping, //!< waiting for virtual time to pass
    kBlocked,  //!< waiting for an explicit wake()
    kDone,     //!< body returned
};

/**
 * A simulated thread: a virtual clock, a capability register file, and
 * a pinned set of cores. Workload code receives a reference and calls
 * accrue()/sleep()/reg() as it executes.
 */
class SimThread
{
  public:
    static constexpr unsigned kNumRegs = 32;

    SimThread(const SimThread &) = delete;
    SimThread &operator=(const SimThread &) = delete;

    const std::string &name() const { return name_; }
    unsigned id() const { return id_; }

    /** Core the thread is currently scheduled on. */
    unsigned core() const { return core_; }

    /** Current virtual time of this thread. */
    Cycles now() const { return clock_; }

    /** Cycles spent executing (excludes sleep and CPU wait). */
    Cycles busyCycles() const { return busy_; }

    /** Scheduling events this thread has passed through (heartbeat
     *  counter; feeds the stall detector). */
    std::uint64_t heartbeats() const { return heartbeats_; }
    /** Virtual time of the last heartbeat. */
    Cycles lastBeatAt() const { return last_beat_at_; }

    /**
     * Account @p c cycles of work. May hand the token to another
     * thread if this one has run past its yield horizon.
     */
    void
    accrue(Cycles c)
    {
        clock_ += c;
        busy_ += c;
        if (clock_ >= yield_horizon_ && noyield_depth_ == 0)
            yieldSlow();
    }

    /** Accrue without permitting a yield (critical sections). */
    void
    accrueNoYield(Cycles c)
    {
        clock_ += c;
        busy_ += c;
    }

    /** Explicit scheduling point (e.g. an idle server loop). */
    void yieldNow();

    /** Sleep until virtual time @p t (no CPU consumed). */
    void sleepUntil(Cycles t);
    /** Sleep for @p dt cycles. */
    void sleep(Cycles dt) { sleepUntil(clock_ + dt); }

    /** Capability register file (scanned during STW phases). */
    cap::Capability &reg(unsigned i);
    const cap::Capability &reg(unsigned i) const;

    /** Whole register file, for the revoker's STW scan. */
    std::vector<cap::Capability> &registerFile() { return regs_; }

    /** Whether a NoYield critical section is active (used by the
     *  race checker's remote-queue domain to verify splices happen
     *  inside the modeled atomic exchange window). */
    bool inNoYield() const { return noyield_depth_ > 0; }

    /** RAII guard suppressing yields (virtual critical section). */
    class NoYield
    {
      public:
        explicit NoYield(SimThread &t) : t_(t) { ++t_.noyield_depth_; }
        ~NoYield() { --t_.noyield_depth_; }

      private:
        SimThread &t_;
    };

    Scheduler &scheduler() { return sched_; }

  private:
    friend class Scheduler;
    friend void detail::fiberTrampoline(unsigned hi, unsigned lo);

    SimThread(Scheduler &sched, unsigned id, std::string name,
              std::uint32_t core_mask, bool daemon,
              std::function<void(SimThread &)> body);

    void yieldSlow();
    void threadMain();
    /** Fiber-mode body wrapper (entered on the first grant). */
    void fiberMain();

    Scheduler &sched_;
    const unsigned id_;
    const std::string name_;
    const std::uint32_t core_mask_;
    const bool daemon_;
    std::function<void(SimThread &)> body_;

    // --- state below is written only by the owning host thread or by
    // the scheduler while the thread is parked (mutex hand-off orders
    // all accesses) ---
    Cycles clock_ = 0;
    Cycles busy_ = 0;
    std::uint64_t heartbeats_ = 0;
    Cycles last_beat_at_ = 0;
    Cycles yield_horizon_ = 0;
    Cycles wake_time_ = 0; //!< for kSleeping
    unsigned core_ = 0;
    int noyield_depth_ = 0;
    ThreadStatus status_ = ThreadStatus::kReady;
    /** Relative preemption quantum scale (<1 shortens; §7.7 knob). */
    double quantum_scale_ = 1.0;

    std::vector<cap::Capability> regs_;
    std::condition_variable cv_;
    std::thread host_;
#if CREV_SCHED_FIBERS
    ucontext_t fiber_ctx_{};
    std::unique_ptr<char[]> fiber_stack_;
#endif
};

/**
 * The scheduler: owns all simulated threads and the single execution
 * token, driven by one of the two engines described in the file
 * comment.
 */
class Scheduler
{
  public:
    /**
     * @p lanes selects the engine: 0 = serial token engine (the
     * reference); >= 1 = lockstep engine with that many host lanes
     * (lane 0 is the committing slice's own host thread; lanes beyond
     * the first become LaneGroup workers).
     */
    Scheduler(unsigned num_cores, const CostModel &cm,
              unsigned lanes = 0);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Create a simulated thread pinned to the cores in @p core_mask.
     * Daemon threads (the revoker) do not keep the machine alive: when
     * every non-daemon thread finishes, shuttingDown() becomes true
     * and blocked daemons are woken to exit.
     */
    SimThread *spawn(std::string name, std::uint32_t core_mask,
                     std::function<void(SimThread &)> body,
                     bool daemon = false);

    /** Run until all non-daemon threads complete (then join daemons). */
    void run();

    /** Block the calling thread until wake()d. */
    void block(SimThread &self);

    /**
     * Make @p t runnable no earlier than virtual time @p at (callers
     * pass their own now()). No-op if @p t is not blocked.
     */
    void wake(SimThread &t, Cycles at);

    /**
     * Wake a batch of threads at once. Under the lockstep engine the
     * batch is posted to the per-core mailboxes and resolved in fixed
     * (core-id, thread-id) order; the serial engine applies it in call
     * order. The two orders produce identical state because each wake
     * clamps only its own target's clock and the waker's yield-horizon
     * shrink is a commutative min (DESIGN.md §14.2).
     */
    void wakeMany(SimThread *const *ts, std::size_t n, Cycles at);

    /** True once all non-daemon threads have finished. */
    bool shuttingDown() const { return shutting_down_; }

    /**
     * Whether @p t's body has returned (its host thread may still be
     * joinable). The epoch watchdog uses this to detect sweeper
     * threads that died mid-epoch.
     */
    bool finished(const SimThread &t);

    /**
     * Begin a stop-the-world phase on behalf of @p self. Returns the
     * STW begin time; the caller performs its world-stopped work
     * (accruing cycles) and then calls resumeWorld().
     */
    Cycles stopTheWorld(SimThread &self);

    /** End the stop-the-world phase; parked threads resume at stw end. */
    void resumeWorld(SimThread &self);

    /** All threads ever spawned (the revoker scans register files). */
    const std::vector<std::unique_ptr<SimThread>> &threads() const
    {
        return threads_;
    }

    /**
     * Largest virtual clock across all threads (wall-clock metric).
     * Takes the scheduler mutex: thread clocks belong to the owning
     * host threads, so off-token readers must synchronise (the
     * sched-unlocked-read checker rule covers regressions here).
     */
    Cycles maxClock() const;

    const CostModel &costs() const { return cm_; }
    unsigned numCores() const { return num_cores_; }

    /** Whether the lockstep engine is driving this scheduler. */
    bool lockstep() const { return lanes_ > 0; }
    /**
     * Whether simulated threads run as fibers on the driving host
     * thread (lockstep engine only; see the CREV_SCHED_FIBERS comment
     * above). Purely a host execution mechanism: grant order, clocks,
     * and RunMetrics are identical with fibers on or off.
     */
    bool fibers() const { return fibers_; }
    /** Host lanes of the lockstep engine (0 = serial token engine). */
    unsigned laneCount() const { return lanes_; }
    /** The lane pool, or null when serial / single-lane. */
    LaneGroup *lanes() { return lane_group_.get(); }

    /**
     * The current quantum frontier: the quantum-aligned floor of the
     * committing slice's grant time. Cross-core effects posted by a
     * slice resolve no later than the next frontier (in practice at
     * the next resolution point; see DESIGN.md §14.2). Exposed for
     * tests; 0 under the serial engine.
     */
    Cycles
    quantumFrontier() const
    {
        std::unique_lock<std::mutex> lk(mtx_);
        return frontier_;
    }

    /** Set a thread's preemption-quantum scale (§7.7 tuning knob). */
    void setQuantumScale(SimThread &t, double scale);

    /**
     * Attach an event tracer (null = off). record() charges zero
     * simulated cycles, so attaching one cannot perturb a run.
     */
    void setTracer(trace::Tracer *t) { tracer_ = t; }
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach the race checker (null = off). Like the tracer, every
     * hook is an off-clock observer: no simulated cycles, no yields,
     * so attaching one cannot perturb a run (DESIGN.md §11).
     */
    void setChecker(check::RaceChecker *c) { checker_ = c; }
    check::RaceChecker *checker() const { return checker_; }

    /** Whether @p t currently owns an active stop-the-world window. */
    bool stwOwnedBy(const SimThread &t);

    /**
     * Extra cycles a thread's core freezes for at a yield point (the
     * fault injector's stuck/slow-core domain). Charged with no yield,
     * so the stall is one opaque blackout, as a firmware excursion
     * would be. Null = off; returning 0 = no stall.
     */
    using StallHook = std::function<Cycles(SimThread &)>;
    void setStallHook(StallHook h) { stall_hook_ = std::move(h); }

    /**
     * Stall detector: ids of threads that are not done but have not
     * passed a scheduling event since @p now - @p horizon (their
     * heartbeat counter stopped while virtual time moved on). The
     * watchdog samples this while an epoch is overdue.
     */
    std::vector<unsigned> stalledThreads(Cycles now, Cycles horizon);

  private:
    friend class SimThread;
    friend class TokenEngine;
    friend class LockstepEngine;

    /** A wake in flight to a resolution point. */
    struct PendingWake
    {
        SimThread *t;
        Cycles at;
    };

    /**
     * How the scheduling policy is driven: wake delivery, boundary
     * resolution, and frontier bookkeeping. Both engines execute the
     * same policy (chooseNext/updateYieldHorizon/grant below); the
     * engine only decides *where* cross-core effects are applied.
     */
    class Engine
    {
      public:
        virtual ~Engine() = default;
        virtual const char *name() const = 0;
        /** Deliver a wake batch (mtx_ held, targets still blocked). */
        virtual void deliverWakes(Scheduler &s, PendingWake *w,
                                  std::size_t n) = 0;
        /** Called with mtx_ held before every policy decision. */
        virtual void onResolutionPoint(Scheduler &s) = 0;
        /** Called with mtx_ held after a slice is granted. */
        virtual void onGrant(Scheduler &s, SimThread &t) = 0;
    };

    /** Pick the next thread to grant; nullptr if none runnable. */
    SimThread *chooseNext();
    /** Grant the token to @p t (scheduler loop side). */
    void grant(SimThread *t);
    /** Called by a running thread to return the token. */
    void handoff(SimThread &self, ThreadStatus new_status);
    /** Recompute a running thread's yield horizon hint. */
    void updateYieldHorizon(SimThread &running);
    /** Apply one wake's clock clamp + horizon shrink (mtx_ held). */
    void applyWake(SimThread &t, Cycles at);
    /** Route a wake batch through the engine (mtx_ held). */
    void deliverWakesLocked(PendingWake *w, std::size_t n);

    const unsigned num_cores_;
    const CostModel cm_;
    const unsigned lanes_;
    const bool fibers_;
#if CREV_SCHED_FIBERS
    /** The run() driver's context, resumed when no fiber is runnable. */
    ucontext_t sched_ctx_{};
#endif

    trace::Tracer *tracer_ = nullptr;
    check::RaceChecker *checker_ = nullptr;
    StallHook stall_hook_;

    mutable std::mutex mtx_;
    std::condition_variable sched_cv_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    SimThread *current_ = nullptr;
    bool started_ = false;
    bool shutting_down_ = false;
    /** Set by the destructor so host threads parked before run() (a
     *  scheduler built but never run) unblock and exit instead of
     *  deadlocking the join. */
    bool tearing_down_ = false;

    // Stop-the-world state.
    bool stw_active_ = false;
    SimThread *stw_owner_ = nullptr;
    Cycles last_stw_begin_ = 0;
    Cycles last_stw_end_ = 0;

    // Per-core timeline: when the core's last slice ended and who ran.
    std::vector<Cycles> core_free_at_;
    std::vector<SimThread *> core_last_thread_;

    // Lockstep engine state: the quantum frontier and the per-core
    // wake mailboxes (drained in (core-id, thread-id) order).
    Cycles frontier_ = 0;
    std::vector<std::vector<PendingWake>> mailboxes_;
    std::size_t pending_wakes_ = 0;

    std::unique_ptr<Engine> engine_;
    std::unique_ptr<LaneGroup> lane_group_;
};

} // namespace crev::sim

#endif // CREV_SIM_SCHEDULER_H_
