#include "sim/fault_injector.h"

#include "trace/trace.h"

namespace crev::sim {

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
}

bool
FaultInjector::roll(SimThread &t, double prob)
{
    if (prob <= 0.0 || !inWindow(t.now()))
        return false;
    return rng_.chance(prob);
}


void
FaultInjector::fire(SimThread &t, trace::FaultAction action)
{
    if (tracer_ != nullptr)
        tracer_->record(t.id(), t.core(), t.now(),
                        trace::EventType::kFaultInject,
                        static_cast<std::uint8_t>(action));
}

Cycles
FaultInjector::sweeperStall(SimThread &t)
{
    if (!roll(t, plan_.sweeper_stall_prob))
        return 0;
    ++counters_.sweeper_stalls;
    fire(t, trace::FaultAction::kSweeperStall);
    return plan_.sweeper_stall_cycles;
}

bool
FaultInjector::sweeperKill(SimThread &t)
{
    if (counters_.sweeper_kills >= plan_.max_sweeper_kills)
        return false;
    if (!roll(t, plan_.sweeper_kill_prob))
        return false;
    ++counters_.sweeper_kills;
    fire(t, trace::FaultAction::kSweeperKill);
    return true;
}

bool
FaultInjector::dropFaultDelivery(SimThread &t)
{
    if (counters_.faults_dropped >= plan_.max_fault_drops)
        return false;
    if (!roll(t, plan_.fault_drop_prob))
        return false;
    ++counters_.faults_dropped;
    fire(t, trace::FaultAction::kFaultDrop);
    return true;
}

bool
FaultInjector::duplicateFaultDelivery(SimThread &t)
{
    if (!roll(t, plan_.fault_duplicate_prob))
        return false;
    ++counters_.faults_duplicated;
    fire(t, trace::FaultAction::kFaultDuplicate);
    return true;
}

Cycles
FaultInjector::stwEntryDelay(SimThread &t)
{
    if (!roll(t, plan_.stw_delay_prob))
        return 0;
    ++counters_.stw_delays;
    fire(t, trace::FaultAction::kStwDelay);
    return plan_.stw_delay_cycles;
}

} // namespace crev::sim
