#include "sim/fault_injector.h"

#include <cmath>

#include "trace/trace.h"

namespace crev::sim {

std::string
FaultPlan::validate() const
{
    struct ProbField
    {
        const char *name;
        double value;
    };
    const ProbField probs[] = {
        {"sweeper_stall_prob", sweeper_stall_prob},
        {"sweeper_kill_prob", sweeper_kill_prob},
        {"fault_drop_prob", fault_drop_prob},
        {"fault_duplicate_prob", fault_duplicate_prob},
        {"stw_delay_prob", stw_delay_prob},
        {"shootdown_drop_prob", shootdown_drop_prob},
        {"shootdown_late_prob", shootdown_late_prob},
        {"core_stall_prob", core_stall_prob},
        {"summary_corrupt_prob", summary_corrupt_prob},
        {"quarantine_drop_prob", quarantine_drop_prob},
        {"quarantine_duplicate_prob", quarantine_duplicate_prob},
    };
    for (const auto &p : probs) {
        if (std::isnan(p.value) || p.value < 0.0 || p.value > 1.0)
            return std::string("FaultPlan::") + p.name +
                   " must be a probability in [0, 1]";
    }
    if (window_begin > window_end)
        return "FaultPlan window is inverted: window_begin must not "
               "exceed window_end";
    struct DurationField
    {
        const char *name;
        double prob;
        Cycles cycles;
    };
    const DurationField durations[] = {
        {"sweeper_stall_cycles", sweeper_stall_prob,
         sweeper_stall_cycles},
        {"stw_delay_cycles", stw_delay_prob, stw_delay_cycles},
        {"shootdown_late_cycles", shootdown_late_prob,
         shootdown_late_cycles},
        {"core_stall_cycles", core_stall_prob, core_stall_cycles},
    };
    for (const auto &d : durations) {
        if (d.prob > 0.0 && d.cycles == 0)
            return std::string("FaultPlan::") + d.name +
                   " is 0 but its probability is nonzero: a zero-cycle "
                   "stall/delay injects nothing; set the duration or "
                   "zero the probability";
    }
    return "";
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
}

bool
FaultInjector::roll(SimThread &t, double prob)
{
    if (prob <= 0.0 || !inWindow(t.now()))
        return false;
    return rng_.chance(prob);
}


void
FaultInjector::fire(SimThread &t, trace::FaultAction action)
{
    if (tracer_ != nullptr)
        tracer_->record(t.id(), t.core(), t.now(),
                        trace::EventType::kFaultInject,
                        static_cast<std::uint8_t>(action));
}

Cycles
FaultInjector::sweeperStall(SimThread &t)
{
    if (!roll(t, plan_.sweeper_stall_prob))
        return 0;
    ++counters_.sweeper_stalls;
    fire(t, trace::FaultAction::kSweeperStall);
    return plan_.sweeper_stall_cycles;
}

bool
FaultInjector::sweeperKill(SimThread &t)
{
    if (counters_.sweeper_kills >= plan_.max_sweeper_kills)
        return false;
    if (!roll(t, plan_.sweeper_kill_prob))
        return false;
    ++counters_.sweeper_kills;
    fire(t, trace::FaultAction::kSweeperKill);
    return true;
}

bool
FaultInjector::dropFaultDelivery(SimThread &t)
{
    if (counters_.faults_dropped >= plan_.max_fault_drops)
        return false;
    if (!roll(t, plan_.fault_drop_prob))
        return false;
    ++counters_.faults_dropped;
    fire(t, trace::FaultAction::kFaultDrop);
    return true;
}

bool
FaultInjector::duplicateFaultDelivery(SimThread &t)
{
    if (!roll(t, plan_.fault_duplicate_prob))
        return false;
    ++counters_.faults_duplicated;
    fire(t, trace::FaultAction::kFaultDuplicate);
    return true;
}

Cycles
FaultInjector::stwEntryDelay(SimThread &t)
{
    if (!roll(t, plan_.stw_delay_prob))
        return 0;
    ++counters_.stw_delays;
    fire(t, trace::FaultAction::kStwDelay);
    return plan_.stw_delay_cycles;
}

bool
FaultInjector::dropShootdownIpi(SimThread &t, unsigned target_core)
{
    if (counters_.shootdown_drops >= plan_.max_shootdown_drops)
        return false;
    if (!roll(t, plan_.shootdown_drop_prob))
        return false;
    ++counters_.shootdown_drops;
    (void)target_core;
    fire(t, trace::FaultAction::kShootdownDrop);
    return true;
}

Cycles
FaultInjector::shootdownAckDelay(SimThread &t, unsigned target_core)
{
    if (!roll(t, plan_.shootdown_late_prob))
        return 0;
    ++counters_.shootdown_lates;
    (void)target_core;
    fire(t, trace::FaultAction::kShootdownLate);
    return plan_.shootdown_late_cycles;
}

Cycles
FaultInjector::coreStall(SimThread &t)
{
    if (counters_.core_stalls >= plan_.max_core_stalls)
        return 0;
    if (!roll(t, plan_.core_stall_prob))
        return 0;
    ++counters_.core_stalls;
    fire(t, trace::FaultAction::kCoreStall);
    return plan_.core_stall_cycles;
}

bool
FaultInjector::corruptSummaryWord(SimThread &t,
                                  std::uint64_t *entropy_out)
{
    if (counters_.summary_corruptions >= plan_.max_summary_corruptions)
        return false;
    if (!roll(t, plan_.summary_corrupt_prob))
        return false;
    ++counters_.summary_corruptions;
    *entropy_out = rng_.next();
    fire(t, trace::FaultAction::kSummaryCorrupt);
    return true;
}

bool
FaultInjector::dropQuarantineHandoff(SimThread &t)
{
    if (counters_.quarantine_drops >= plan_.max_quarantine_drops)
        return false;
    if (!roll(t, plan_.quarantine_drop_prob))
        return false;
    ++counters_.quarantine_drops;
    fire(t, trace::FaultAction::kQuarantineDrop);
    return true;
}

bool
FaultInjector::duplicateQuarantineHandoff(SimThread &t)
{
    if (!roll(t, plan_.quarantine_duplicate_prob))
        return false;
    ++counters_.quarantine_duplicates;
    fire(t, trace::FaultAction::kQuarantineDuplicate);
    return true;
}

} // namespace crev::sim
