/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * A FaultInjector turns a seeded FaultPlan into concrete fault
 * decisions at well-defined instrumentation points: background-sweeper
 * work loops (stall/kill), the capability-load fault delivery path
 * (drop/duplicate), stop-the-world entry (delay), and the memory
 * system (latency spikes). Because decisions are drawn from a
 * dedicated xoshiro stream and the scheduler serialises all simulated
 * threads, a given (plan, workload) pair replays the exact same fault
 * sequence on every run — chaos campaigns are reproducible bit for
 * bit, which is what lets the test suite assert that *recovery* is
 * deterministic too.
 *
 * Probabilistic faults draw from the RNG only when their probability
 * is nonzero and virtual time is inside [window_begin, window_end), so
 * disabling one fault class never perturbs the decision stream of the
 * others' plans.
 */

#ifndef CREV_SIM_FAULT_INJECTOR_H_
#define CREV_SIM_FAULT_INJECTOR_H_

#include <cstdint>

#include "base/rng.h"
#include "base/types.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace crev::sim {

/** One seeded chaos scenario: which faults fire, how hard, and when. */
struct FaultPlan
{
    /** Master switch; a disabled plan injects nothing and the Machine
     *  builds no injector at all (zero overhead). */
    bool enabled = false;

    /** Seed of the decision stream (independent of the workload RNG). */
    std::uint64_t seed = 0x5eed;

    /** Virtual-time window in which probabilistic faults are armed. */
    Cycles window_begin = 0;
    Cycles window_end = ~static_cast<Cycles>(0);

    // --- background sweeper faults (checked once per work item) ---

    /** Probability that a sweeper stalls before its next page visit. */
    double sweeper_stall_prob = 0.0;
    /** How long a stalled sweeper sleeps (virtual cycles). */
    Cycles sweeper_stall_cycles = 0;
    /** Probability that a *helper* sweeper thread dies outright. */
    double sweeper_kill_prob = 0.0;
    /** Cap on kills so runs always retain a path to completion. */
    unsigned max_sweeper_kills = 1;

    // --- capability-load fault delivery (paper §4 barrier path) ---

    /** Probability a fault's completion notification is lost. The trap
     *  itself still runs (hardware took it), so safety holds; only the
     *  epoch accounting wedges — exactly what the watchdog repairs. */
    double fault_drop_prob = 0.0;
    /** Cap on dropped completions per run. */
    unsigned max_fault_drops = 8;
    /** Probability a fault is delivered twice (stale-TLB style). */
    double fault_duplicate_prob = 0.0;

    // --- stop-the-world entry ---

    /** Probability the revoker's STW entry is delayed (lost IPI). */
    double stw_delay_prob = 0.0;
    Cycles stw_delay_cycles = 0;

    // --- memory-system latency spike (pure time window, no RNG) ---

    /** Every @p mem_spike_period cycles, accesses in the first
     *  @p mem_spike_duration cycles of the period pay an extra
     *  @p mem_spike_extra cycles each. 0 disables. */
    Cycles mem_spike_period = 0;
    Cycles mem_spike_duration = 0;
    Cycles mem_spike_extra = 0;
};

/** How many of each fault actually fired (RunMetrics observability). */
struct FaultCounters
{
    std::uint64_t sweeper_stalls = 0;
    std::uint64_t sweeper_kills = 0;
    std::uint64_t faults_dropped = 0;
    std::uint64_t faults_duplicated = 0;
    std::uint64_t stw_delays = 0;
};

/** Draws fault decisions from a FaultPlan's seeded stream. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** Stall duration for the next sweeper work item; 0 = no stall. */
    Cycles sweeperStall(SimThread &t);

    /** Whether a helper sweeper should die now (bounded by plan). */
    bool sweeperKill(SimThread &t);

    /** Whether this load-fault's completion should be lost (bounded). */
    bool dropFaultDelivery(SimThread &t);

    /** Whether this load-fault should be delivered a second time. */
    bool duplicateFaultDelivery(SimThread &t);

    /** Extra cycles to charge before entering stop-the-world. */
    Cycles stwEntryDelay(SimThread &t);

    /**
     * Extra per-access memory latency at virtual time @p now. Pure
     * function of time (consumes no RNG): safe to call on every
     * simulated memory access without perturbing other decisions.
     */
    Cycles
    memAccessPenalty(Cycles now) const
    {
        if (plan_.mem_spike_period == 0 || !inWindow(now))
            return 0;
        return (now % plan_.mem_spike_period) < plan_.mem_spike_duration
                   ? plan_.mem_spike_extra
                   : 0;
    }

    const FaultPlan &plan() const { return plan_; }
    const FaultCounters &counters() const { return counters_; }

    /** Attach an event tracer (null = off); fired faults become
     *  kFaultInject instants. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

  private:
    bool
    inWindow(Cycles now) const
    {
        return plan_.enabled && now >= plan_.window_begin &&
               now < plan_.window_end;
    }

    /** Bernoulli draw, consuming RNG only for armed nonzero faults. */
    bool roll(SimThread &t, double prob);
    /** Record a fired fault in the trace (zero simulated cost). */
    void fire(SimThread &t, trace::FaultAction action);

    FaultPlan plan_;
    Rng rng_;
    FaultCounters counters_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace crev::sim

#endif // CREV_SIM_FAULT_INJECTOR_H_
