/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * A FaultInjector turns a seeded FaultPlan into concrete fault
 * decisions at well-defined instrumentation points: background-sweeper
 * work loops (stall/kill), the capability-load fault delivery path
 * (drop/duplicate), stop-the-world entry (delay), and the memory
 * system (latency spikes). Because decisions are drawn from a
 * dedicated xoshiro stream and the scheduler serialises all simulated
 * threads, a given (plan, workload) pair replays the exact same fault
 * sequence on every run — chaos campaigns are reproducible bit for
 * bit, which is what lets the test suite assert that *recovery* is
 * deterministic too.
 *
 * Probabilistic faults draw from the RNG only when their probability
 * is nonzero and virtual time is inside [window_begin, window_end), so
 * disabling one fault class never perturbs the decision stream of the
 * others' plans.
 */

#ifndef CREV_SIM_FAULT_INJECTOR_H_
#define CREV_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "base/rng.h"
#include "base/types.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace crev::sim {

/** One seeded chaos scenario: which faults fire, how hard, and when. */
struct FaultPlan
{
    /** Master switch; a disabled plan injects nothing and the Machine
     *  builds no injector at all (zero overhead). */
    bool enabled = false;

    /** Seed of the decision stream (independent of the workload RNG). */
    std::uint64_t seed = 0x5eed;

    /** Virtual-time window in which probabilistic faults are armed. */
    Cycles window_begin = 0;
    Cycles window_end = ~static_cast<Cycles>(0);

    // --- background sweeper faults (checked once per work item) ---

    /** Probability that a sweeper stalls before its next page visit. */
    double sweeper_stall_prob = 0.0;
    /** How long a stalled sweeper sleeps (virtual cycles). */
    Cycles sweeper_stall_cycles = 0;
    /** Probability that a *helper* sweeper thread dies outright. */
    double sweeper_kill_prob = 0.0;
    /** Cap on kills so runs always retain a path to completion. */
    unsigned max_sweeper_kills = 1;

    // --- capability-load fault delivery (paper §4 barrier path) ---

    /** Probability a fault's completion notification is lost. The trap
     *  itself still runs (hardware took it), so safety holds; only the
     *  epoch accounting wedges — exactly what the watchdog repairs. */
    double fault_drop_prob = 0.0;
    /** Cap on dropped completions per run. */
    unsigned max_fault_drops = 8;
    /** Probability a fault is delivered twice (stale-TLB style). */
    double fault_duplicate_prob = 0.0;

    // --- stop-the-world entry ---

    /** Probability the revoker's STW entry is delayed (lost IPI). */
    double stw_delay_prob = 0.0;
    Cycles stw_delay_cycles = 0;

    // --- memory-system latency spike (pure time window, no RNG) ---

    /** Every @p mem_spike_period cycles, accesses in the first
     *  @p mem_spike_duration cycles of the period pay an extra
     *  @p mem_spike_extra cycles each. 0 disables. */
    Cycles mem_spike_period = 0;
    Cycles mem_spike_duration = 0;
    Cycles mem_spike_extra = 0;

    // --- TLB shootdown IPIs (checked once per target core) ---

    /** Probability one core's shootdown IPI is lost. Safe for the
     *  barrier designs (a stale TLB entry just re-traps and heals);
     *  costs the initiator a bounded re-send round. */
    double shootdown_drop_prob = 0.0;
    /** Cap on lost IPIs per run (keeps re-send rounds bounded). */
    unsigned max_shootdown_drops = 16;
    /** Probability a core acks its IPI late, and by how much. */
    double shootdown_late_prob = 0.0;
    Cycles shootdown_late_cycles = 0;

    // --- simulated-core stalls (checked at yield points) ---

    /** Probability a thread's core freezes at a yield point. */
    double core_stall_prob = 0.0;
    Cycles core_stall_cycles = 0;
    /** Cap on core stalls per run. */
    unsigned max_core_stalls = 4;

    // --- shadow-summary corruption (checked at audit entry) ---

    /** Probability one ShadowSummary L0 word takes a bit flip before
     *  an audit; the Auditor must detect and repair it from
     *  ground-truth shadow bytes. */
    double summary_corrupt_prob = 0.0;
    unsigned max_summary_corruptions = 8;

    // --- quarantine epoch hand-off (checked per revocation request) ---

    /** Probability the allocator's epoch request to the revoker is
     *  lost (recovered by the allocator's bounded re-send, degrading
     *  to an emergency epoch). */
    double quarantine_drop_prob = 0.0;
    unsigned max_quarantine_drops = 4;
    /** Probability the request is delivered twice (benign: requests
     *  are idempotent while one is pending; a late duplicate costs at
     *  most one spurious epoch). */
    double quarantine_duplicate_prob = 0.0;

    /**
     * Structural validation: empty string when the plan is
     * well-formed, else a message naming the offending field. The
     * Machine rejects invalid plans at construction.
     */
    std::string validate() const;
};

/** How many of each fault actually fired (RunMetrics observability). */
struct FaultCounters
{
    std::uint64_t sweeper_stalls = 0;
    std::uint64_t sweeper_kills = 0;
    std::uint64_t faults_dropped = 0;
    std::uint64_t faults_duplicated = 0;
    std::uint64_t stw_delays = 0;
    std::uint64_t shootdown_drops = 0;
    std::uint64_t shootdown_lates = 0;
    std::uint64_t core_stalls = 0;
    std::uint64_t summary_corruptions = 0;
    std::uint64_t quarantine_drops = 0;
    std::uint64_t quarantine_duplicates = 0;
};

/** Draws fault decisions from a FaultPlan's seeded stream. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** Stall duration for the next sweeper work item; 0 = no stall. */
    Cycles sweeperStall(SimThread &t);

    /** Whether a helper sweeper should die now (bounded by plan). */
    bool sweeperKill(SimThread &t);

    /** Whether this load-fault's completion should be lost (bounded). */
    bool dropFaultDelivery(SimThread &t);

    /** Whether this load-fault should be delivered a second time. */
    bool duplicateFaultDelivery(SimThread &t);

    /** Extra cycles to charge before entering stop-the-world. */
    Cycles stwEntryDelay(SimThread &t);

    /** Whether @p target_core's shootdown IPI is lost (bounded). */
    bool dropShootdownIpi(SimThread &t, unsigned target_core);

    /** Extra ack latency for @p target_core's IPI; 0 = on time. */
    Cycles shootdownAckDelay(SimThread &t, unsigned target_core);

    /** Stall duration for @p t's core at a yield point; 0 = none
     *  (bounded by plan). */
    Cycles coreStall(SimThread &t);

    /**
     * Whether a ShadowSummary word should be corrupted before the
     * audit at this instant (bounded). On true, @p entropy_out
     * receives a fresh draw the caller uses to pick block/word/bit, so
     * the damage site is part of the deterministic decision stream.
     */
    bool corruptSummaryWord(SimThread &t, std::uint64_t *entropy_out);

    /** Whether this quarantine epoch request is lost (bounded). */
    bool dropQuarantineHandoff(SimThread &t);

    /** Whether this quarantine epoch request is delivered twice. */
    bool duplicateQuarantineHandoff(SimThread &t);

    /**
     * Extra per-access memory latency at virtual time @p now. Pure
     * function of time (consumes no RNG): safe to call on every
     * simulated memory access without perturbing other decisions.
     */
    Cycles
    memAccessPenalty(Cycles now) const
    {
        if (plan_.mem_spike_period == 0 || !inWindow(now))
            return 0;
        return (now % plan_.mem_spike_period) < plan_.mem_spike_duration
                   ? plan_.mem_spike_extra
                   : 0;
    }

    const FaultPlan &plan() const { return plan_; }
    const FaultCounters &counters() const { return counters_; }

    /** Attach an event tracer (null = off); fired faults become
     *  kFaultInject instants. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

  private:
    bool
    inWindow(Cycles now) const
    {
        return plan_.enabled && now >= plan_.window_begin &&
               now < plan_.window_end;
    }

    /** Bernoulli draw, consuming RNG only for armed nonzero faults. */
    bool roll(SimThread &t, double prob);
    /** Record a fired fault in the trace (zero simulated cost). */
    void fire(SimThread &t, trace::FaultAction action);

    FaultPlan plan_;
    Rng rng_;
    FaultCounters counters_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace crev::sim

#endif // CREV_SIM_FAULT_INJECTOR_H_
