/**
 * @file
 * The lockstep virtual-time engine's host-side lane pool.
 *
 * A LaneGroup is a persistent pool of host worker threads owned by the
 * scheduler when it runs in lockstep mode (MachineConfig::par_cores).
 * Lanes execute *deterministic assist work* — striped, write-disjoint
 * host computations such as the sweep pre-scan pipeline — concurrently
 * with the committing virtual-time slice. Lanes never touch simulated
 * state that the committing slice may mutate: every submission is a
 * read-only fan-out whose output positions are fixed by the stripe
 * index, so the result is independent of lane count and interleaving
 * (DESIGN.md §14.4).
 */

#ifndef CREV_SIM_LOCKSTEP_H_
#define CREV_SIM_LOCKSTEP_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread> // host lane pool; joined in destructor
#include <vector>

namespace crev::sim {

/** Persistent host worker lanes for deterministic striped assist. */
class LaneGroup
{
  public:
    /** Spawn @p lanes - 1 worker threads (the caller is lane 0). */
    explicit LaneGroup(unsigned lanes);
    ~LaneGroup();

    LaneGroup(const LaneGroup &) = delete;
    LaneGroup &operator=(const LaneGroup &) = delete;

    unsigned lanes() const { return lanes_; }

    /**
     * Run @p fn(stripe, stripes) for every stripe in [0, stripes).
     * The calling thread participates; all stripes complete before
     * return. @p fn must write only stripe-owned output slots.
     */
    void runStripes(std::size_t stripes,
                    const std::function<void(std::size_t, std::size_t)>
                        &fn);

  private:
    void laneMain();

    const unsigned lanes_;
    std::mutex mtx_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t, std::size_t)> *job_ =
        nullptr;
    std::size_t job_stripes_ = 0;
    std::size_t next_stripe_ = 0;
    std::size_t stripes_done_ = 0;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
    // Host lane pool threads; joined in the destructor.
    std::vector<std::thread> workers_;
};

} // namespace crev::sim

#endif // CREV_SIM_LOCKSTEP_H_
