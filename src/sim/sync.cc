#include "sim/sync.h"

#include <algorithm>

#include "base/logging.h"
#include "check/race_checker.h"

namespace crev::sim {

void
SimMutex::lock(SimThread &self)
{
    while (owner_ != nullptr) {
        CREV_ASSERT(owner_ != &self); // no recursive locking
        ++contended_;
        waiters_.push_back(&self);
        self.scheduler().block(self);
        // Re-contend on wake; remove stale queue entry if still there.
        auto it = std::find(waiters_.begin(), waiters_.end(), &self);
        if (it != waiters_.end())
            waiters_.erase(it);
    }
    owner_ = &self;
    if (auto *c = self.scheduler().checker())
        c->onMutexAcquire(self.id(), this);
}

bool
SimMutex::tryLock(SimThread &self)
{
    if (owner_ != nullptr)
        return false;
    owner_ = &self;
    if (auto *c = self.scheduler().checker())
        c->onMutexAcquire(self.id(), this);
    return true;
}

void
SimMutex::unlock(SimThread &self)
{
    CREV_ASSERT(owner_ == &self);
    if (auto *c = self.scheduler().checker())
        c->onMutexRelease(self.id(), this);
    owner_ = nullptr;
    if (!waiters_.empty()) {
        SimThread *next = waiters_.front();
        waiters_.erase(waiters_.begin());
        self.scheduler().wake(*next, self.now());
    }
}

void
SimEvent::wait(SimThread &self)
{
    waiters_.push_back(&self);
    self.scheduler().block(self);
    auto it = std::find(waiters_.begin(), waiters_.end(), &self);
    if (it != waiters_.end())
        waiters_.erase(it);
}

void
SimEvent::notifyAll(SimThread &self)
{
    // One batch through the scheduler: the serial engine applies it in
    // wait order, the lockstep engine through the per-core mailboxes in
    // (core-id, thread-id) order. The orders are interchangeable — see
    // Scheduler::wakeMany.
    std::vector<SimThread *> to_wake;
    to_wake.swap(waiters_);
    if (!to_wake.empty())
        self.scheduler().wakeMany(to_wake.data(), to_wake.size(),
                                  self.now());
}

} // namespace crev::sim
