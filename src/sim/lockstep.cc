#include "sim/lockstep.h"

#include "base/logging.h"

namespace crev::sim {

LaneGroup::LaneGroup(unsigned lanes) : lanes_(lanes == 0 ? 1 : lanes)
{
    workers_.reserve(lanes_ - 1);
    for (unsigned i = 1; i < lanes_; ++i)
        workers_.emplace_back([this] { laneMain(); });
}

LaneGroup::~LaneGroup()
{
    {
        std::unique_lock<std::mutex> lk(mtx_);
        shutdown_ = true;
        work_cv_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

void
LaneGroup::laneMain()
{
    std::unique_lock<std::mutex> lk(mtx_);
    std::uint64_t seen = 0;
    for (;;) {
        work_cv_.wait(lk, [&] {
            return shutdown_ || (job_ != nullptr && generation_ != seen);
        });
        if (shutdown_)
            return;
        seen = generation_;
        while (next_stripe_ < job_stripes_) {
            const std::size_t s = next_stripe_++;
            lk.unlock();
            (*job_)(s, job_stripes_);
            lk.lock();
            ++stripes_done_;
        }
        if (stripes_done_ == job_stripes_)
            done_cv_.notify_all();
    }
}

void
LaneGroup::runStripes(
    std::size_t stripes,
    const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (stripes == 0)
        return;
    if (stripes == 1 || lanes_ <= 1) {
        for (std::size_t s = 0; s < stripes; ++s)
            fn(s, stripes);
        return;
    }
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(job_ == nullptr);
    job_ = &fn;
    job_stripes_ = stripes;
    next_stripe_ = 0;
    stripes_done_ = 0;
    ++generation_;
    work_cv_.notify_all();
    // The caller is lane 0: it pulls stripes like any worker.
    while (next_stripe_ < job_stripes_) {
        const std::size_t s = next_stripe_++;
        lk.unlock();
        fn(s, job_stripes_);
        lk.lock();
        ++stripes_done_;
    }
    done_cv_.wait(lk, [&] { return stripes_done_ == job_stripes_; });
    job_ = nullptr;
}

} // namespace crev::sim
