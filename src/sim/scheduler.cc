#include "sim/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "base/logging.h"
#include "check/race_checker.h"
#include "sim/lockstep.h"
#include "trace/trace.h"

namespace crev::sim {

namespace {

constexpr Cycles kInfinity = std::numeric_limits<Cycles>::max();

#if CREV_SCHED_FIBERS
/** Fiber stack size. Bodies are ordinary workload code; the generous
 *  size costs only address space (pages commit on first touch). */
constexpr std::size_t kFiberStackBytes = std::size_t{4} << 20;
#endif

/** Whether fiber execution is compiled in and not disabled via the
 *  CREV_FIBERS=0 escape hatch. */
bool
fibersEnabled()
{
    if (!CREV_SCHED_FIBERS)
        return false;
    const char *env = std::getenv("CREV_FIBERS");
    return env == nullptr || env[0] != '0';
}

} // namespace

namespace detail {

#if CREV_SCHED_FIBERS
void
fiberTrampoline(unsigned hi, unsigned lo)
{
    // makecontext passes only ints; the SimThread pointer travels as
    // two 32-bit halves.
    auto *t = reinterpret_cast<SimThread *>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    t->fiberMain();
}
#else
void
fiberTrampoline(unsigned, unsigned)
{
    panic("fiber trampoline entered without fiber support");
}
#endif

} // namespace detail

// ---------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------

/**
 * The serial reference engine: one execution token, every cross-core
 * effect applied at the instant it is posted, in call order.
 */
class TokenEngine final : public Scheduler::Engine
{
  public:
    const char *name() const override { return "token"; }

    void
    deliverWakes(Scheduler &s, Scheduler::PendingWake *w,
                 std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            s.applyWake(*w[i].t, w[i].at);
    }

    void
    onResolutionPoint(Scheduler &) override
    {
    }

    void
    onGrant(Scheduler &, SimThread &) override
    {
    }
};

/**
 * The lockstep virtual-time engine (DESIGN.md §14): wakes are posted
 * to per-core mailboxes and resolved in fixed (core-id, thread-id)
 * order; the quantum frontier tracks the committing slice. Because
 * the simulated machine's shared state is zero-latency, resolution
 * happens at the posting slice's own commit point (the earliest
 * boundary the conservative contract permits) — see the equivalence
 * argument in DESIGN.md §14.2.
 */
class LockstepEngine final : public Scheduler::Engine
{
  public:
    const char *name() const override { return "lockstep"; }

    void
    deliverWakes(Scheduler &s, Scheduler::PendingWake *w,
                 std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            s.mailboxes_[w[i].t->core()].push_back(w[i]);
        s.pending_wakes_ += n;
        resolve(s);
    }

    void
    onResolutionPoint(Scheduler &s) override
    {
        resolve(s);
    }

    void
    onGrant(Scheduler &s, SimThread &t) override
    {
        // Quantum-aligned floor of the committing slice's grant time:
        // the frontier past which this slice cannot defer cross-core
        // resolution.
        s.frontier_ = (t.now() / s.cm_.quantum) * s.cm_.quantum;
    }

  private:
    void
    resolve(Scheduler &s)
    {
        if (s.pending_wakes_ == 0)
            return;
        for (auto &box : s.mailboxes_) {
            if (box.empty())
                continue;
            std::stable_sort(box.begin(), box.end(),
                             [](const Scheduler::PendingWake &a,
                                const Scheduler::PendingWake &b) {
                                 return a.t->id() < b.t->id();
                             });
            for (const auto &w : box)
                s.applyWake(*w.t, w.at);
            box.clear();
        }
        s.pending_wakes_ = 0;
    }
};

// ---------------------------------------------------------------------
// SimThread
// ---------------------------------------------------------------------

SimThread::SimThread(Scheduler &sched, unsigned id, std::string name,
                     std::uint32_t core_mask, bool daemon,
                     std::function<void(SimThread &)> body)
    : sched_(sched), id_(id), name_(std::move(name)),
      core_mask_(core_mask), daemon_(daemon), body_(std::move(body)),
      regs_(kNumRegs)
{
    CREV_ASSERT(core_mask_ != 0);
}

cap::Capability &
SimThread::reg(unsigned i)
{
    CREV_ASSERT(i < regs_.size());
    return regs_[i];
}

const cap::Capability &
SimThread::reg(unsigned i) const
{
    CREV_ASSERT(i < regs_.size());
    return regs_[i];
}

void
SimThread::yieldSlow()
{
    if (sched_.stall_hook_) {
        // A stuck/slow core: the blackout is charged before the yield
        // so the whole stall is one opaque interval on this thread.
        const Cycles stall = sched_.stall_hook_(*this);
        if (stall > 0) {
            clock_ += stall;
            busy_ += stall;
        }
    }
    sched_.handoff(*this, ThreadStatus::kReady);
}

void
SimThread::yieldNow()
{
    if (noyield_depth_ == 0)
        sched_.handoff(*this, ThreadStatus::kReady);
}

void
SimThread::sleepUntil(Cycles t)
{
    if (t <= clock_)
        return;
    wake_time_ = t;
    sched_.handoff(*this, ThreadStatus::kSleeping);
}

void
SimThread::threadMain()
{
    {
        std::unique_lock<std::mutex> lk(sched_.mtx_);
        cv_.wait(lk, [this] {
            return status_ == ThreadStatus::kRunning ||
                   sched_.tearing_down_;
        });
        if (status_ != ThreadStatus::kRunning) {
            // Scheduler destroyed before run(): exit without ever
            // executing the body.
            status_ = ThreadStatus::kDone;
            return;
        }
    }
    try {
        body_(*this);
    } catch (const std::exception &e) {
        // A simulated fault escaped the workload body: the simulated
        // thread dies (as a signal would kill it); the machine runs on.
        warn("thread %s terminated by: %s", name_.c_str(), e.what());
    }
    {
        std::unique_lock<std::mutex> lk(sched_.mtx_);
        status_ = ThreadStatus::kDone;
        if (sched_.tracer_ != nullptr)
            sched_.tracer_->record(id_, core_, clock_,
                                   trace::EventType::kThreadPark);
        sched_.core_free_at_[core_] = clock_;
        sched_.current_ = nullptr;
        sched_.sched_cv_.notify_one();
    }
}

void
SimThread::fiberMain()
{
    // Entered on the first grant; status_ is already kRunning and the
    // scheduler mutex is not held (the granting context released it
    // before switching stacks).
    try {
        body_(*this);
    } catch (const std::exception &e) {
        // A simulated fault escaped the workload body: the simulated
        // thread dies (as a signal would kill it); the machine runs on.
        warn("thread %s terminated by: %s", name_.c_str(), e.what());
    }
#if CREV_SCHED_FIBERS
    {
        std::unique_lock<std::mutex> lk(sched_.mtx_);
        status_ = ThreadStatus::kDone;
        if (sched_.tracer_ != nullptr)
            sched_.tracer_->record(id_, core_, clock_,
                                   trace::EventType::kThreadPark);
        sched_.core_free_at_[core_] = clock_;
        sched_.current_ = nullptr;
    }
    // Return control to the run() driver, which picks the successor.
    swapcontext(&fiber_ctx_, &sched_.sched_ctx_);
#endif
    panic("finished fiber resumed");
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

Scheduler::Scheduler(unsigned num_cores, const CostModel &cm,
                     unsigned lanes)
    : num_cores_(num_cores), cm_(cm), lanes_(lanes),
      fibers_(lanes > 0 && fibersEnabled()), core_free_at_(num_cores, 0),
      core_last_thread_(num_cores, nullptr), mailboxes_(num_cores)
{
    CREV_ASSERT(num_cores > 0 && num_cores <= 32);
    CREV_ASSERT(cm_.quantum > 0);
    if (lanes_ > 0) {
        engine_ = std::make_unique<LockstepEngine>();
        if (lanes_ > 1)
            lane_group_ = std::make_unique<LaneGroup>(lanes_);
    } else {
        engine_ = std::make_unique<TokenEngine>();
    }
}

Scheduler::~Scheduler()
{
    {
        std::unique_lock<std::mutex> lk(mtx_);
        tearing_down_ = true;
        for (auto &t : threads_)
            t->cv_.notify_all();
    }
    for (auto &t : threads_)
        if (t->host_.joinable())
            t->host_.join();
}

SimThread *
Scheduler::spawn(std::string name, std::uint32_t core_mask,
                 std::function<void(SimThread &)> body, bool daemon)
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT((core_mask & ((1u << num_cores_) - 1)) == core_mask);
    const auto id = static_cast<unsigned>(threads_.size());
    threads_.emplace_back(new SimThread(*this, id, std::move(name),
                                        core_mask, daemon,
                                        std::move(body)));
    SimThread *t = threads_.back().get();
    if (current_ != nullptr)
        t->clock_ = current_->clock_;
    if (checker_ != nullptr)
        checker_->onThreadSpawn(
            current_ != nullptr ? static_cast<int>(current_->id_) : -1,
            id);
#if CREV_SCHED_FIBERS
    if (fibers_) {
        t->fiber_stack_ = std::make_unique<char[]>(kFiberStackBytes);
        CREV_ASSERT(getcontext(&t->fiber_ctx_) == 0);
        t->fiber_ctx_.uc_stack.ss_sp = t->fiber_stack_.get();
        t->fiber_ctx_.uc_stack.ss_size = kFiberStackBytes;
        t->fiber_ctx_.uc_link = nullptr;
        const auto p = reinterpret_cast<std::uintptr_t>(t);
        makecontext(&t->fiber_ctx_,
                    reinterpret_cast<void (*)()>(detail::fiberTrampoline),
                    2, static_cast<unsigned>(p >> 32),
                    static_cast<unsigned>(p & 0xFFFFFFFFu));
        return t;
    }
#endif
    t->host_ = std::thread([t] { t->threadMain(); });
    return t;
}

void
Scheduler::setQuantumScale(SimThread &t, double scale)
{
    CREV_ASSERT(scale > 0);
    t.quantum_scale_ = scale;
}

bool
Scheduler::stwOwnedBy(const SimThread &t)
{
    std::unique_lock<std::mutex> lk(mtx_);
    return stw_active_ && stw_owner_ == &t;
}

std::vector<unsigned>
Scheduler::stalledThreads(Cycles now, Cycles horizon)
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (checker_ != nullptr)
        checker_->onSchedStateRead("stalledThreads", true);
    std::vector<unsigned> out;
    for (const auto &tp : threads_) {
        if (tp->status_ == ThreadStatus::kDone)
            continue;
        if (tp->heartbeats_ == 0 && tp->clock_ == 0)
            continue; // never scheduled yet
        if (tp->last_beat_at_ + horizon < now)
            out.push_back(tp->id_);
    }
    return out;
}

bool
Scheduler::finished(SimThread const &t)
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (checker_ != nullptr)
        checker_->onSchedStateRead("finished", true);
    return t.status_ == ThreadStatus::kDone;
}

Cycles
Scheduler::maxClock() const
{
    // Thread clocks are written by their owning host threads; an
    // off-token reader (metrics collection, the watchdog) must hold
    // mtx_ so the hand-off orders the reads (sched-unlocked-read).
    std::unique_lock<std::mutex> lk(mtx_);
    if (checker_ != nullptr)
        checker_->onSchedStateRead("maxClock", true);
    Cycles m = 0;
    for (const auto &t : threads_)
        m = std::max(m, t->clock_);
    return m;
}

SimThread *
Scheduler::chooseNext()
{
    // Requires mtx_ held. Pick the schedulable thread with the smallest
    // effective start time; promote sleepers whose wake time arrived.
    SimThread *best = nullptr;
    Cycles best_est = kInfinity;
    unsigned best_core = 0;

    for (auto &tp : threads_) {
        SimThread *t = tp.get();
        Cycles base;
        switch (t->status_) {
          case ThreadStatus::kReady:
            base = t->clock_;
            break;
          case ThreadStatus::kSleeping: {
            base = t->wake_time_;
            // A sleeper whose wake time fell inside the last STW window
            // is held by the kernel until the world restarts.
            if (base >= last_stw_begin_ && base < last_stw_end_)
                base = last_stw_end_;
            break;
          }
          default:
            continue;
        }
        if (stw_active_ && t != stw_owner_)
            continue;

        // Best core for this thread first.
        Cycles t_est = 0;
        unsigned t_core = 0;
        bool have_core = false;
        for (unsigned c = 0; c < num_cores_; ++c) {
            if (!(t->core_mask_ & (1u << c)))
                continue;
            const Cycles est = std::max(core_free_at_[c], base);
            if (!have_core || est < t_est) {
                t_est = est;
                t_core = c;
                have_core = true;
            }
        }
        if (!have_core)
            continue;
        // Tie-break by the thread's own clock (round-robin fairness
        // on a shared core), then by id (determinism).
        const bool better =
            best == nullptr || t_est < best_est ||
            (t_est == best_est &&
             (t->clock_ < best->clock_ ||
              (t->clock_ == best->clock_ && t->id_ < best->id_)));
        if (better) {
            best = t;
            best_est = t_est;
            best_core = t_core;
        }
    }

    if (best) {
        if (best->status_ == ThreadStatus::kSleeping) {
            Cycles w = best->wake_time_;
            if (w >= last_stw_begin_ && w < last_stw_end_)
                w = last_stw_end_;
            best->clock_ = std::max(best->clock_, w);
        }
        best->status_ = ThreadStatus::kReady;
        best->clock_ = std::max(best->clock_, best_est);
        best->core_ = best_core;
    }
    return best;
}

void
Scheduler::updateYieldHorizon(SimThread &running)
{
    // Requires mtx_ held. The horizon is the earlier of the preemption
    // quantum and the point where another schedulable thread would fall
    // more than yield_slack behind us.
    Cycles horizon =
        running.clock_ +
        static_cast<Cycles>(static_cast<double>(cm_.quantum) *
                            running.quantum_scale_);
    for (auto &tp : threads_) {
        SimThread *t = tp.get();
        if (t == &running)
            continue;
        Cycles base;
        if (t->status_ == ThreadStatus::kReady) {
            base = t->clock_;
        } else if (t->status_ == ThreadStatus::kSleeping) {
            base = t->wake_time_;
        } else {
            continue;
        }
        if (stw_active_ && t != stw_owner_)
            continue;
        horizon = std::min(horizon, base + cm_.yield_slack);
    }
    running.yield_horizon_ = std::max(horizon, running.clock_ + 1);
}

void
Scheduler::grant(SimThread *t)
{
    // Requires mtx_ held.
    const unsigned c = t->core_;
    t->clock_ = std::max(t->clock_, core_free_at_[c]);
    if (core_last_thread_[c] != t && core_last_thread_[c] != nullptr) {
        t->clock_ += cm_.ctx_switch;
        t->busy_ += cm_.ctx_switch;
    }
    core_last_thread_[c] = t;
    t->status_ = ThreadStatus::kRunning;
    if (tracer_ != nullptr)
        tracer_->record(t->id_, c, t->clock_,
                        trace::EventType::kThreadRun);
    updateYieldHorizon(*t);
    engine_->onGrant(*this, *t);
    current_ = t;
    // Fiber mode: the granting context switches stacks itself; there
    // is no parked host thread to notify.
    if (!fibers_)
        t->cv_.notify_one();
}

void
Scheduler::handoff(SimThread &self, ThreadStatus new_status)
{
    std::unique_lock<std::mutex> lk(mtx_);
    self.status_ = new_status;
    ++self.heartbeats_;
    self.last_beat_at_ = self.clock_;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, self.clock_,
                        new_status == ThreadStatus::kReady
                            ? trace::EventType::kThreadPreempt
                            : trace::EventType::kThreadPark);
    core_free_at_[self.core_] = self.clock_;

    // A scheduling event is a resolution point: any cross-core effects
    // still in flight are applied before the policy reads state.
    engine_->onResolutionPoint(*this);

    // Direct switch: pick the successor here instead of bouncing
    // through the scheduler loop (halves host context switches).
    SimThread *next = chooseNext();
    if (next == &self) {
        // Still the best candidate: continue without a host switch.
        grant(next);
        return;
    }
#if CREV_SCHED_FIBERS
    if (fibers_) {
        // User-space stack switch: directly into the successor fiber,
        // or back to the run() driver when nothing is runnable
        // (shutdown, deadlock detection). When this fiber is granted
        // again, control resumes right after the swap with
        // status_ == kRunning already set by the grantor.
        ucontext_t *to;
        if (next != nullptr) {
            grant(next);
            to = &next->fiber_ctx_;
        } else {
            current_ = nullptr;
            to = &sched_ctx_;
        }
        lk.unlock();
        swapcontext(&self.fiber_ctx_, to);
        return;
    }
#endif
    if (next != nullptr) {
        grant(next);
    } else {
        // Nothing runnable: let the scheduler loop decide (shutdown,
        // deadlock detection).
        current_ = nullptr;
        sched_cv_.notify_one();
    }
    self.cv_.wait(lk,
                  [&self] { return self.status_ == ThreadStatus::kRunning; });
}

void
Scheduler::block(SimThread &self)
{
    handoff(self, ThreadStatus::kBlocked);
}

void
Scheduler::applyWake(SimThread &t, Cycles at)
{
    // Requires mtx_ held; t is kBlocked.
    if (checker_ != nullptr && current_ != nullptr)
        checker_->onWake(current_->id_, t.id_);
    t.status_ = ThreadStatus::kReady;
    t.clock_ = std::max({t.clock_, at, last_stw_end_ <= at ? Cycles{0}
                                                           : last_stw_end_});
    if (current_ != nullptr)
        current_->yield_horizon_ =
            std::min(current_->yield_horizon_, t.clock_ + cm_.yield_slack);
}

void
Scheduler::deliverWakesLocked(PendingWake *w, std::size_t n)
{
    engine_->deliverWakes(*this, w, n);
}

void
Scheduler::wake(SimThread &t, Cycles at)
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (t.status_ != ThreadStatus::kBlocked)
        return;
    PendingWake w{&t, at};
    deliverWakesLocked(&w, 1);
}

void
Scheduler::wakeMany(SimThread *const *ts, std::size_t n, Cycles at)
{
    std::unique_lock<std::mutex> lk(mtx_);
    std::vector<PendingWake> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (ts[i]->status_ == ThreadStatus::kBlocked)
            batch.push_back(PendingWake{ts[i], at});
    if (!batch.empty())
        deliverWakesLocked(batch.data(), batch.size());
}

Cycles
Scheduler::stopTheWorld(SimThread &self)
{
    // Drain threads with smaller clocks first so the park times below
    // are accurate.
    self.yieldNow();

    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(!stw_active_);
    engine_->onResolutionPoint(*this);
    stw_active_ = true;
    stw_owner_ = &self;

    Cycles begin = self.clock_;
    for (auto &tp : threads_)
        if (tp.get() != &self && tp->status_ == ThreadStatus::kReady)
            begin = std::max(begin, tp->clock_);
    begin += cm_.ipi * num_cores_;
    self.busy_ += begin - self.clock_;
    self.clock_ = begin;
    last_stw_begin_ = begin;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, begin,
                        trace::EventType::kStwBegin);
    if (checker_ != nullptr)
        checker_->onStwBegin(self.id_);
    self.yield_horizon_ = kInfinity;
    return begin;
}

void
Scheduler::resumeWorld(SimThread &self)
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(stw_active_ && stw_owner_ == &self);
    const Cycles end = self.clock_;
    last_stw_end_ = end;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, end,
                        trace::EventType::kStwEnd);
    if (checker_ != nullptr)
        checker_->onStwEnd(self.id_);
    stw_active_ = false;
    stw_owner_ = nullptr;
    for (auto &tp : threads_)
        if (tp.get() != &self && tp->status_ == ThreadStatus::kReady)
            tp->clock_ = std::max(tp->clock_, end);
    engine_->onResolutionPoint(*this);
    updateYieldHorizon(self);
}

void
Scheduler::run()
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(!started_);
    started_ = true;

    for (;;) {
        // Initiate shutdown once every non-daemon thread has finished.
        bool user_alive = false;
        bool any_alive = false;
        for (auto &tp : threads_) {
            if (tp->status_ != ThreadStatus::kDone) {
                any_alive = true;
                if (!tp->daemon_)
                    user_alive = true;
            }
        }
        if (!any_alive)
            break;
        if (!user_alive) {
            // Repeated every iteration: a daemon may block once more
            // while draining; its contract is to exit once it observes
            // shuttingDown().
            shutting_down_ = true;
            for (auto &tp : threads_) {
                if (tp->status_ == ThreadStatus::kBlocked ||
                    tp->status_ == ThreadStatus::kSleeping) {
                    tp->status_ = ThreadStatus::kReady;
                }
            }
        }

        engine_->onResolutionPoint(*this);
        SimThread *next = chooseNext();
        if (next == nullptr) {
            panic("scheduler deadlock: threads alive but none runnable");
        }
        grant(next);
#if CREV_SCHED_FIBERS
        if (fibers_) {
            // Fibers hand off among themselves without returning here;
            // control comes back (with current_ == nullptr) only when
            // a fiber finishes or none is runnable.
            lk.unlock();
            swapcontext(&sched_ctx_, &next->fiber_ctx_);
            lk.lock();
            continue;
        }
#endif
        sched_cv_.wait(lk, [this] { return current_ == nullptr; });
    }

    lk.unlock();
    for (auto &tp : threads_)
        if (tp->host_.joinable())
            tp->host_.join();
}

} // namespace crev::sim
