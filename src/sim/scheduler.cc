#include "sim/scheduler.h"

#include <limits>

#include "base/logging.h"
#include "check/race_checker.h"
#include "trace/trace.h"

namespace crev::sim {

namespace {
constexpr Cycles kInfinity = std::numeric_limits<Cycles>::max();
} // namespace

// ---------------------------------------------------------------------
// SimThread
// ---------------------------------------------------------------------

SimThread::SimThread(Scheduler &sched, unsigned id, std::string name,
                     std::uint32_t core_mask, bool daemon,
                     std::function<void(SimThread &)> body)
    : sched_(sched), id_(id), name_(std::move(name)),
      core_mask_(core_mask), daemon_(daemon), body_(std::move(body)),
      regs_(kNumRegs)
{
    CREV_ASSERT(core_mask_ != 0);
}

cap::Capability &
SimThread::reg(unsigned i)
{
    CREV_ASSERT(i < regs_.size());
    return regs_[i];
}

const cap::Capability &
SimThread::reg(unsigned i) const
{
    CREV_ASSERT(i < regs_.size());
    return regs_[i];
}

void
SimThread::yieldSlow()
{
    if (sched_.stall_hook_) {
        // A stuck/slow core: the blackout is charged before the yield
        // so the whole stall is one opaque interval on this thread.
        const Cycles stall = sched_.stall_hook_(*this);
        if (stall > 0) {
            clock_ += stall;
            busy_ += stall;
        }
    }
    sched_.handoff(*this, ThreadStatus::kReady);
}

void
SimThread::yieldNow()
{
    if (noyield_depth_ == 0)
        sched_.handoff(*this, ThreadStatus::kReady);
}

void
SimThread::sleepUntil(Cycles t)
{
    if (t <= clock_)
        return;
    wake_time_ = t;
    sched_.handoff(*this, ThreadStatus::kSleeping);
}

void
SimThread::threadMain()
{
    {
        std::unique_lock<std::mutex> lk(sched_.mtx_);
        cv_.wait(lk, [this] {
            return status_ == ThreadStatus::kRunning ||
                   sched_.tearing_down_;
        });
        if (status_ != ThreadStatus::kRunning) {
            // Scheduler destroyed before run(): exit without ever
            // executing the body.
            status_ = ThreadStatus::kDone;
            return;
        }
    }
    try {
        body_(*this);
    } catch (const std::exception &e) {
        // A simulated fault escaped the workload body: the simulated
        // thread dies (as a signal would kill it); the machine runs on.
        warn("thread %s terminated by: %s", name_.c_str(), e.what());
    }
    {
        std::unique_lock<std::mutex> lk(sched_.mtx_);
        status_ = ThreadStatus::kDone;
        if (sched_.tracer_ != nullptr)
            sched_.tracer_->record(id_, core_, clock_,
                                   trace::EventType::kThreadPark);
        sched_.core_free_at_[core_] = clock_;
        sched_.current_ = nullptr;
        sched_.sched_cv_.notify_one();
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

Scheduler::Scheduler(unsigned num_cores, const CostModel &cm)
    : num_cores_(num_cores), cm_(cm), core_free_at_(num_cores, 0),
      core_last_thread_(num_cores, nullptr)
{
    CREV_ASSERT(num_cores > 0 && num_cores <= 32);
}

Scheduler::~Scheduler()
{
    {
        std::unique_lock<std::mutex> lk(mtx_);
        tearing_down_ = true;
        for (auto &t : threads_)
            t->cv_.notify_all();
    }
    for (auto &t : threads_)
        if (t->host_.joinable())
            t->host_.join();
}

SimThread *
Scheduler::spawn(std::string name, std::uint32_t core_mask,
                 std::function<void(SimThread &)> body, bool daemon)
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT((core_mask & ((1u << num_cores_) - 1)) == core_mask);
    const auto id = static_cast<unsigned>(threads_.size());
    threads_.emplace_back(new SimThread(*this, id, std::move(name),
                                        core_mask, daemon,
                                        std::move(body)));
    SimThread *t = threads_.back().get();
    if (current_ != nullptr)
        t->clock_ = current_->clock_;
    if (checker_ != nullptr)
        checker_->onThreadSpawn(
            current_ != nullptr ? static_cast<int>(current_->id_) : -1,
            id);
    t->host_ = std::thread([t] { t->threadMain(); });
    return t;
}

void
Scheduler::setQuantumScale(SimThread &t, double scale)
{
    CREV_ASSERT(scale > 0);
    t.quantum_scale_ = scale;
}

bool
Scheduler::stwOwnedBy(const SimThread &t)
{
    std::unique_lock<std::mutex> lk(mtx_);
    return stw_active_ && stw_owner_ == &t;
}

std::vector<unsigned>
Scheduler::stalledThreads(Cycles now, Cycles horizon)
{
    std::unique_lock<std::mutex> lk(mtx_);
    std::vector<unsigned> out;
    for (const auto &tp : threads_) {
        if (tp->status_ == ThreadStatus::kDone)
            continue;
        if (tp->heartbeats_ == 0 && tp->clock_ == 0)
            continue; // never scheduled yet
        if (tp->last_beat_at_ + horizon < now)
            out.push_back(tp->id_);
    }
    return out;
}

bool
Scheduler::finished(SimThread const &t)
{
    std::unique_lock<std::mutex> lk(mtx_);
    return t.status_ == ThreadStatus::kDone;
}

Cycles
Scheduler::maxClock() const
{
    Cycles m = 0;
    for (const auto &t : threads_)
        m = std::max(m, t->clock_);
    return m;
}

SimThread *
Scheduler::chooseNext()
{
    // Requires mtx_ held. Pick the schedulable thread with the smallest
    // effective start time; promote sleepers whose wake time arrived.
    SimThread *best = nullptr;
    Cycles best_est = kInfinity;
    unsigned best_core = 0;

    for (auto &tp : threads_) {
        SimThread *t = tp.get();
        Cycles base;
        switch (t->status_) {
          case ThreadStatus::kReady:
            base = t->clock_;
            break;
          case ThreadStatus::kSleeping: {
            base = t->wake_time_;
            // A sleeper whose wake time fell inside the last STW window
            // is held by the kernel until the world restarts.
            if (base >= last_stw_begin_ && base < last_stw_end_)
                base = last_stw_end_;
            break;
          }
          default:
            continue;
        }
        if (stw_active_ && t != stw_owner_)
            continue;

        // Best core for this thread first.
        Cycles t_est = 0;
        unsigned t_core = 0;
        bool have_core = false;
        for (unsigned c = 0; c < num_cores_; ++c) {
            if (!(t->core_mask_ & (1u << c)))
                continue;
            const Cycles est = std::max(core_free_at_[c], base);
            if (!have_core || est < t_est) {
                t_est = est;
                t_core = c;
                have_core = true;
            }
        }
        if (!have_core)
            continue;
        // Tie-break by the thread's own clock (round-robin fairness
        // on a shared core), then by id (determinism).
        const bool better =
            best == nullptr || t_est < best_est ||
            (t_est == best_est &&
             (t->clock_ < best->clock_ ||
              (t->clock_ == best->clock_ && t->id_ < best->id_)));
        if (better) {
            best = t;
            best_est = t_est;
            best_core = t_core;
        }
    }

    if (best) {
        if (best->status_ == ThreadStatus::kSleeping) {
            Cycles w = best->wake_time_;
            if (w >= last_stw_begin_ && w < last_stw_end_)
                w = last_stw_end_;
            best->clock_ = std::max(best->clock_, w);
        }
        best->status_ = ThreadStatus::kReady;
        best->clock_ = std::max(best->clock_, best_est);
        best->core_ = best_core;
    }
    return best;
}

void
Scheduler::updateYieldHorizon(SimThread &running)
{
    // Requires mtx_ held. The horizon is the earlier of the preemption
    // quantum and the point where another schedulable thread would fall
    // more than yield_slack behind us.
    Cycles horizon =
        running.clock_ +
        static_cast<Cycles>(static_cast<double>(cm_.quantum) *
                            running.quantum_scale_);
    for (auto &tp : threads_) {
        SimThread *t = tp.get();
        if (t == &running)
            continue;
        Cycles base;
        if (t->status_ == ThreadStatus::kReady) {
            base = t->clock_;
        } else if (t->status_ == ThreadStatus::kSleeping) {
            base = t->wake_time_;
        } else {
            continue;
        }
        if (stw_active_ && t != stw_owner_)
            continue;
        horizon = std::min(horizon, base + cm_.yield_slack);
    }
    running.yield_horizon_ = std::max(horizon, running.clock_ + 1);
}

void
Scheduler::grant(SimThread *t)
{
    // Requires mtx_ held.
    const unsigned c = t->core_;
    t->clock_ = std::max(t->clock_, core_free_at_[c]);
    if (core_last_thread_[c] != t && core_last_thread_[c] != nullptr) {
        t->clock_ += cm_.ctx_switch;
        t->busy_ += cm_.ctx_switch;
    }
    core_last_thread_[c] = t;
    t->status_ = ThreadStatus::kRunning;
    if (tracer_ != nullptr)
        tracer_->record(t->id_, c, t->clock_,
                        trace::EventType::kThreadRun);
    updateYieldHorizon(*t);
    current_ = t;
    t->cv_.notify_one();
}

void
Scheduler::handoff(SimThread &self, ThreadStatus new_status)
{
    std::unique_lock<std::mutex> lk(mtx_);
    self.status_ = new_status;
    ++self.heartbeats_;
    self.last_beat_at_ = self.clock_;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, self.clock_,
                        new_status == ThreadStatus::kReady
                            ? trace::EventType::kThreadPreempt
                            : trace::EventType::kThreadPark);
    core_free_at_[self.core_] = self.clock_;

    // Direct switch: pick the successor here instead of bouncing
    // through the scheduler loop (halves host context switches).
    SimThread *next = chooseNext();
    if (next == &self) {
        // Still the best candidate: continue without a host switch.
        grant(next);
        return;
    }
    if (next != nullptr) {
        grant(next);
    } else {
        // Nothing runnable: let the scheduler loop decide (shutdown,
        // deadlock detection).
        current_ = nullptr;
        sched_cv_.notify_one();
    }
    self.cv_.wait(lk,
                  [&self] { return self.status_ == ThreadStatus::kRunning; });
}

void
Scheduler::block(SimThread &self)
{
    handoff(self, ThreadStatus::kBlocked);
}

void
Scheduler::wake(SimThread &t, Cycles at)
{
    std::unique_lock<std::mutex> lk(mtx_);
    if (t.status_ != ThreadStatus::kBlocked)
        return;
    if (checker_ != nullptr && current_ != nullptr)
        checker_->onWake(current_->id_, t.id_);
    t.status_ = ThreadStatus::kReady;
    t.clock_ = std::max({t.clock_, at, last_stw_end_ <= at ? Cycles{0}
                                                           : last_stw_end_});
    if (current_ != nullptr)
        current_->yield_horizon_ =
            std::min(current_->yield_horizon_, t.clock_ + cm_.yield_slack);
}

Cycles
Scheduler::stopTheWorld(SimThread &self)
{
    // Drain threads with smaller clocks first so the park times below
    // are accurate.
    self.yieldNow();

    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(!stw_active_);
    stw_active_ = true;
    stw_owner_ = &self;

    Cycles begin = self.clock_;
    for (auto &tp : threads_)
        if (tp.get() != &self && tp->status_ == ThreadStatus::kReady)
            begin = std::max(begin, tp->clock_);
    begin += cm_.ipi * num_cores_;
    self.busy_ += begin - self.clock_;
    self.clock_ = begin;
    last_stw_begin_ = begin;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, begin,
                        trace::EventType::kStwBegin);
    if (checker_ != nullptr)
        checker_->onStwBegin(self.id_);
    self.yield_horizon_ = kInfinity;
    return begin;
}

void
Scheduler::resumeWorld(SimThread &self)
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(stw_active_ && stw_owner_ == &self);
    const Cycles end = self.clock_;
    last_stw_end_ = end;
    if (tracer_ != nullptr)
        tracer_->record(self.id_, self.core_, end,
                        trace::EventType::kStwEnd);
    if (checker_ != nullptr)
        checker_->onStwEnd(self.id_);
    stw_active_ = false;
    stw_owner_ = nullptr;
    for (auto &tp : threads_)
        if (tp.get() != &self && tp->status_ == ThreadStatus::kReady)
            tp->clock_ = std::max(tp->clock_, end);
    updateYieldHorizon(self);
}

void
Scheduler::run()
{
    std::unique_lock<std::mutex> lk(mtx_);
    CREV_ASSERT(!started_);
    started_ = true;

    for (;;) {
        // Initiate shutdown once every non-daemon thread has finished.
        bool user_alive = false;
        bool any_alive = false;
        for (auto &tp : threads_) {
            if (tp->status_ != ThreadStatus::kDone) {
                any_alive = true;
                if (!tp->daemon_)
                    user_alive = true;
            }
        }
        if (!any_alive)
            break;
        if (!user_alive) {
            // Repeated every iteration: a daemon may block once more
            // while draining; its contract is to exit once it observes
            // shuttingDown().
            shutting_down_ = true;
            for (auto &tp : threads_) {
                if (tp->status_ == ThreadStatus::kBlocked ||
                    tp->status_ == ThreadStatus::kSleeping) {
                    tp->status_ = ThreadStatus::kReady;
                }
            }
        }

        SimThread *next = chooseNext();
        if (next == nullptr) {
            panic("scheduler deadlock: threads alive but none runnable");
        }
        grant(next);
        sched_cv_.wait(lk, [this] { return current_ == nullptr; });
    }

    lk.unlock();
    for (auto &tp : threads_)
        if (tp->host_.joinable())
            tp->host_.join();
}

} // namespace crev::sim
