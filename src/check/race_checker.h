/**
 * @file
 * The simulation-aware race detector (DESIGN.md §11).
 *
 * A dynamic lockset + happens-before checker woven into the
 * deterministic scheduler. Like the tracer, it is a pure observer: no
 * hook accrues simulated cycles or yields, so RunMetrics are
 * bit-identical with the checker on or off (tests/check_test.cpp
 * holds this for every strategy).
 *
 * The happens-before order is built from vector clocks over the
 * scheduler's real synchronisation edges:
 *
 *   - spawn:          parent  → child
 *   - wake:           waker   → wakee (SimMutex unlock, SimEvent
 *                     notify — every cross-thread wake funnels through
 *                     Scheduler::wake)
 *   - mutex release → next acquire (per-mutex release clock)
 *   - STW begin:      every thread → the STW owner
 *   - STW end:        the STW owner → every thread
 *
 * On top of that order, declared shared-state domains carry rules
 * tuned to this codebase's protocols (each one silent on the clean
 * tree, each one exercised by a seeded injected race in the tests):
 *
 *   pte-unlocked-publish   a software PTE publish (CLG/trap/dirty
 *                          rewrite) without the pmap lock and outside
 *                          stop-the-world ownership
 *   pte-unordered-publish  two publishes of the same page with no
 *                          happens-before edge between them
 *   pte-teardown-during-epoch
 *                          PTE teardown (munmap/release) while the
 *                          epoch counter is odd, without the pmap
 *                          lock or STW ownership (§4.3 exclusion)
 *   gen-flip-outside-stw   a core-generation flip while the world is
 *                          running
 *   shadow-rmw-race        a second thread writing or probing a
 *                          shadow-bitmap byte inside another thread's
 *                          open read-modify-write window
 *   quarantine-unlocked-access
 *                          quarantine buffer mutation without the
 *                          heap (shard) lock
 *   remote-queue-nonatomic-access
 *                          a remote-dealloc inbox splice or detach
 *                          outside a NoYield window (senders push
 *                          without the owner's shard lock; the
 *                          modeled MPSC exchange must be atomic)
 *   epoch-order-violation  a quarantine buffer released before its
 *                          +2/+3 epoch target
 *   stw-scan-outside-stw   register-file / kernel-hoard scanning
 *                          while mutators may run
 *   sched-unlocked-read    scheduler-state read (thread clocks,
 *                          statuses) from a host thread that does not
 *                          hold the scheduler mutex
 *
 * Deliberately *not* flagged (documented benign races): optimistic
 * PTE reads that re-verify under the lock (reloaded.cc), hardware-DBM
 * cap-dirty updates racing publishes (§4.2), and demand-zero fault
 * service. Only kPublish/kTeardown-class software writes enter the
 * happens-before conflict check.
 *
 * Reports are virtual-time stamped and appended in execution order;
 * because the simulation is deterministic, the full report is
 * byte-identical across same-seed runs and exports next to the
 * Chrome trace (Machine::checkReportJson()).
 */

#ifndef CREV_CHECK_RACE_CHECKER_H_
#define CREV_CHECK_RACE_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.h"

namespace crev::check {

/** One rule violation, stamped with the observing thread's virtual
 *  time. */
struct Violation
{
    std::string rule;   //!< machine-readable rule id
    std::string detail; //!< human-readable description
    unsigned tid = 0;   //!< thread that performed the racy access
    Cycles at = 0;      //!< virtual time of the access
    Addr addr = 0;      //!< page / shadow byte / 0 when n/a
};

/** A vector clock over simulated thread ids (dense, lazily grown). */
class VectorClock
{
  public:
    void tick(unsigned tid);
    void join(const VectorClock &o);
    std::uint64_t at(unsigned tid) const;
    /** Pointwise this ≤ o: every event in *this happened before o. */
    bool leq(const VectorClock &o) const;

  private:
    std::vector<std::uint64_t> v_;
};

/**
 * The race detector. One instance per Machine, attached via
 * Scheduler::setChecker() and the components' setChecker() methods;
 * all hooks run on the simulated thread that holds the execution
 * token (the scheduler's mutex hand-off orders them host-side).
 */
class RaceChecker
{
  public:
    // --- scheduler edges ---
    void onThreadSpawn(int parent_tid, unsigned child_tid);
    void onWake(unsigned waker, unsigned wakee);
    void onStwBegin(unsigned owner);
    void onStwEnd(unsigned owner);

    // --- SimMutex instrumentation ---
    void onMutexAcquire(unsigned tid, const void *m);
    void onMutexRelease(unsigned tid, const void *m);
    /** Give a lock a name for reports ("pmap", "heap"). */
    void nameLock(const void *m, const char *name);

    // --- declared shared-state domains ---
    /** Epoch counter advanced to @p value. */
    void onEpochAdvance(unsigned tid, Cycles at, std::uint64_t value);
    /** Software PTE publish; @p disciplined = pmap held or STW owned. */
    void onPtePublish(unsigned tid, Cycles at, Addr page,
                      bool disciplined);
    /** PTE teardown; @p locked = pmap held or STW owned. */
    void onPteTeardown(unsigned tid, Cycles at, Addr page, bool locked);
    /** Core load-generation flip (must be world-stopped). */
    void onGenFlip(unsigned tid, Cycles at);
    /** Shadow-bitmap partial-byte RMW window open/close. */
    void onShadowRmwBegin(unsigned tid, Cycles at, Addr byte_va);
    void onShadowRmwEnd(unsigned tid, Addr byte_va);
    /** Bulk shadow write of @p bytes bytes at @p byte_va. */
    void onShadowWrite(unsigned tid, Cycles at, Addr byte_va,
                       Addr bytes);
    /** Shadow probe of one byte. */
    void onShadowProbe(unsigned tid, Cycles at, Addr byte_va);
    /** Quarantine buffer access; @p locked = heap lock held. */
    void onQuarantineAccess(unsigned tid, Cycles at, bool locked);
    /** Drain of the unmap->reap hand-off queue. §4.3 quiesces munmap
     *  (and hence the hand-off) while a revocation epoch is in
     *  flight, so the drain must observe an even epoch counter;
     *  @p shutting_down excuses the final drain during teardown. */
    void onMappingHandoff(unsigned tid, Cycles at, bool shutting_down);
    /** Remote-dealloc queue splice/detach; @p atomic = inside a
     *  NoYield window (the modeled lock-free MPSC exchange — the
     *  inbox is mutated by senders that do NOT hold the owner's
     *  shard lock, so atomicity of the exchange is the invariant). */
    void onRemoteQueueAccess(unsigned tid, Cycles at, bool atomic);
    /** Quarantine buffer released whose target was @p target while
     *  the counter read @p counter. */
    void onDequarantineRelease(unsigned tid, Cycles at,
                               std::uint64_t target,
                               std::uint64_t counter);
    /** Register-file / kernel-hoard scan (STW-only operation). */
    void onStwScan(unsigned tid, Cycles at);
    /**
     * Scheduler-state read (thread clocks, statuses) from a host
     * thread; @p locked = the scheduler mutex is held. Off-token
     * readers — metrics collection, the watchdog's stall detector —
     * must synchronise with the mutex hand-off that orders all
     * thread-state writes; an unlocked read is a host-level data race
     * even though the simulation itself is deterministic.
     */
    void onSchedStateRead(const char *what, bool locked);

    // --- results ---
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }
    /** Violations dropped past the report cap. */
    std::uint64_t suppressed() const { return suppressed_; }

    /**
     * Deterministic JSON report (virtual-time stamped, execution
     * order), exported next to the Chrome trace.
     */
    std::string reportJson() const;

  private:
    struct ThreadState
    {
        VectorClock vc;
        std::vector<const void *> locks; //!< lockset, LIFO
    };
    struct LastPublish
    {
        unsigned tid = 0;
        Cycles at = 0;
        VectorClock vc;
    };

    static constexpr std::size_t kMaxViolations = 1000;

    ThreadState &thread(unsigned tid);
    bool holds(unsigned tid, const void *m) const;
    std::string lockNames(unsigned tid) const;
    void report(const char *rule, unsigned tid, Cycles at, Addr addr,
                std::string detail);

    std::vector<ThreadState> threads_;
    std::map<const void *, VectorClock> mutex_release_;
    std::map<const void *, std::string> lock_names_;
    std::map<Addr, LastPublish> last_publish_;
    std::map<Addr, unsigned> open_rmw_; //!< shadow byte → owner tid
    std::uint64_t epoch_value_ = 0;
    int stw_owner_ = -1;
    std::vector<Violation> violations_;
    std::uint64_t suppressed_ = 0;
};

} // namespace crev::check

#endif // CREV_CHECK_RACE_CHECKER_H_
