/**
 * @file
 * The temporal-safety oracle (DESIGN.md §13.3).
 *
 * A ground-truth checker for the paper's end-to-end guarantee: once a
 * revocation epoch *completes*, no capability whose base lies in
 * address space quarantined before that epoch began may ever again be
 * loaded with its tag intact. The revoker commits the epoch's audit
 * set into the oracle at epoch completion (granule indices enumerated
 * from the host-side ShadowSummary); the allocator clears entries at
 * dequarantine, when the address space legitimately returns to
 * service. Between those two points, any tagged capability entering a
 * register file via Mmu::loadCap whose base falls in a committed
 * granule is a temporal-safety violation — the exact bug class the
 * load barrier exists to make impossible.
 *
 * Like the tracer and the race checker, the oracle is a pure
 * observer: no hook accrues simulated cycles or yields, so RunMetrics
 * are bit-identical with the oracle on or off
 * (tests/determinism_test.cpp holds this). Violations are
 * virtual-time stamped and appended in execution order; the report is
 * byte-identical across same-seed runs (Machine::oracleReportJson()).
 */

#ifndef CREV_CHECK_SAFETY_ORACLE_H_
#define CREV_CHECK_SAFETY_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.h"

namespace crev::check {

/** One revoked-capability load, stamped with virtual time. */
struct OracleViolation
{
    unsigned tid = 0;           //!< loading thread
    Cycles at = 0;              //!< virtual time of the load
    Addr va = 0;                //!< address the capability was loaded from
    Addr cap_base = 0;          //!< the revoked capability's base
    std::uint64_t epoch = 0;    //!< epoch whose completion revoked it
};

/**
 * Revoked-generation record and load-time assertion. One instance per
 * Machine; the MMU calls onCapLoad for every tagged capability load
 * (after the CHERIoT filter, so filtered loads — already detagged —
 * are exempt, matching the §6.3 semantics).
 */
class SafetyOracle
{
  public:
    /** An epoch completed; granules committed next belong to it. */
    void commitEpoch(std::uint64_t epoch)
    {
        current_epoch_ = epoch;
        ++epochs_committed_;
    }

    /**
     * Record one revoked granule (absolute index, address >>
     * kGranuleBits) under the epoch of the last commitEpoch call.
     */
    void commitGranule(Addr granule);

    /**
     * Address space [base, base+len) returns to service
     * (dequarantine); drop every overlapping granule.
     */
    void clearRange(Addr base, Addr len);

    /** Tagged capability entering a register file. */
    void onCapLoad(unsigned tid, Cycles now, Addr va, Addr cap_base);

    // --- results ---
    bool clean() const { return violations_.empty(); }
    const std::vector<OracleViolation> &violations() const
    {
        return violations_;
    }
    /** Violations dropped past the report cap. */
    std::uint64_t suppressed() const { return suppressed_; }
    std::uint64_t loadsChecked() const { return loads_checked_; }
    std::uint64_t epochsCommitted() const { return epochs_committed_; }
    std::uint64_t granulesCommitted() const
    {
        return granules_committed_;
    }
    /** Granules currently held revoked (committed, not yet reused). */
    std::uint64_t granulesHeld() const { return revoked_.size(); }

    /**
     * Deterministic JSON report (virtual-time stamped, execution
     * order), exported next to the race-checker report.
     */
    std::string reportJson() const;

  private:
    static constexpr std::size_t kMaxViolations = 1000;

    /** granule index → epoch whose completion revoked it */
    std::map<Addr, std::uint64_t> revoked_;
    std::uint64_t current_epoch_ = 0;
    std::uint64_t epochs_committed_ = 0;
    std::uint64_t granules_committed_ = 0;
    std::uint64_t loads_checked_ = 0;
    std::vector<OracleViolation> violations_;
    std::uint64_t suppressed_ = 0;
};

} // namespace crev::check

#endif // CREV_CHECK_SAFETY_ORACLE_H_
