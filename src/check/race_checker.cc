#include "check/race_checker.h"

#include <algorithm>
#include <sstream>

namespace crev::check {

// ---------------------------------------------------------------------
// VectorClock
// ---------------------------------------------------------------------

void
VectorClock::tick(unsigned tid)
{
    if (v_.size() <= tid)
        v_.resize(tid + 1, 0);
    ++v_[tid];
}

void
VectorClock::join(const VectorClock &o)
{
    if (v_.size() < o.v_.size())
        v_.resize(o.v_.size(), 0);
    for (std::size_t i = 0; i < o.v_.size(); ++i)
        v_[i] = std::max(v_[i], o.v_[i]);
}

std::uint64_t
VectorClock::at(unsigned tid) const
{
    return tid < v_.size() ? v_[tid] : 0;
}

bool
VectorClock::leq(const VectorClock &o) const
{
    for (std::size_t i = 0; i < v_.size(); ++i)
        if (v_[i] > o.at(static_cast<unsigned>(i)))
            return false;
    return true;
}

// ---------------------------------------------------------------------
// RaceChecker — plumbing
// ---------------------------------------------------------------------

RaceChecker::ThreadState &
RaceChecker::thread(unsigned tid)
{
    if (threads_.size() <= tid)
        threads_.resize(tid + 1);
    return threads_[tid];
}

bool
RaceChecker::holds(unsigned tid, const void *m) const
{
    if (threads_.size() <= tid)
        return false;
    const auto &ls = threads_[tid].locks;
    return std::find(ls.begin(), ls.end(), m) != ls.end();
}

std::string
RaceChecker::lockNames(unsigned tid) const
{
    if (threads_.size() <= tid || threads_[tid].locks.empty())
        return "{}";
    std::string out = "{";
    for (const void *m : threads_[tid].locks) {
        if (out.size() > 1)
            out += ",";
        auto it = lock_names_.find(m);
        out += it != lock_names_.end() ? it->second : "?";
    }
    return out + "}";
}

void
RaceChecker::report(const char *rule, unsigned tid, Cycles at,
                    Addr addr, std::string detail)
{
    if (violations_.size() >= kMaxViolations) {
        ++suppressed_;
        return;
    }
    violations_.push_back(
        Violation{rule, std::move(detail), tid, at, addr});
}

// ---------------------------------------------------------------------
// Scheduler edges
// ---------------------------------------------------------------------

void
RaceChecker::onThreadSpawn(int parent_tid, unsigned child_tid)
{
    ThreadState &child = thread(child_tid);
    if (parent_tid >= 0) {
        ThreadState &parent =
            thread(static_cast<unsigned>(parent_tid));
        parent.vc.tick(static_cast<unsigned>(parent_tid));
        child.vc.join(parent.vc);
    }
    child.vc.tick(child_tid);
}

void
RaceChecker::onWake(unsigned waker, unsigned wakee)
{
    ThreadState &w = thread(waker);
    w.vc.tick(waker);
    thread(wakee).vc.join(w.vc);
}

void
RaceChecker::onStwBegin(unsigned owner)
{
    // The world stops: every thread's history happens-before the
    // owner's world-stopped work.
    ThreadState &o = thread(owner);
    for (const ThreadState &t : threads_)
        o.vc.join(t.vc);
    o.vc.tick(owner);
    stw_owner_ = static_cast<int>(owner);
}

void
RaceChecker::onStwEnd(unsigned owner)
{
    // The world restarts: the owner's world-stopped work
    // happens-before everything that follows on any thread.
    ThreadState &o = thread(owner);
    o.vc.tick(owner);
    for (std::size_t i = 0; i < threads_.size(); ++i)
        if (i != owner)
            threads_[i].vc.join(o.vc);
    stw_owner_ = -1;
}

// ---------------------------------------------------------------------
// Mutexes
// ---------------------------------------------------------------------

void
RaceChecker::onMutexAcquire(unsigned tid, const void *m)
{
    ThreadState &t = thread(tid);
    auto it = mutex_release_.find(m);
    if (it != mutex_release_.end())
        t.vc.join(it->second);
    t.locks.push_back(m);
}

void
RaceChecker::onMutexRelease(unsigned tid, const void *m)
{
    ThreadState &t = thread(tid);
    auto it = std::find(t.locks.rbegin(), t.locks.rend(), m);
    if (it != t.locks.rend())
        t.locks.erase(std::next(it).base());
    t.vc.tick(tid);
    mutex_release_[m] = t.vc;
}

void
RaceChecker::nameLock(const void *m, const char *name)
{
    lock_names_[m] = name;
}

// ---------------------------------------------------------------------
// Shared-state domains
// ---------------------------------------------------------------------

void
RaceChecker::onEpochAdvance(unsigned tid, Cycles, std::uint64_t value)
{
    thread(tid); // materialise
    epoch_value_ = value;
}

void
RaceChecker::onPtePublish(unsigned tid, Cycles at, Addr page,
                          bool disciplined)
{
    ThreadState &t = thread(tid);
    if (!disciplined) {
        std::ostringstream os;
        os << "PTE publish of page 0x" << std::hex << page << std::dec
           << " without the pmap lock or STW ownership; locks held "
           << lockNames(tid);
        report("pte-unlocked-publish", tid, at, page, os.str());
    }
    auto it = last_publish_.find(page);
    if (it != last_publish_.end() && it->second.tid != tid &&
        !it->second.vc.leq(t.vc)) {
        std::ostringstream os;
        os << "publish of page 0x" << std::hex << page << std::dec
           << " by thread " << tid << " at " << at
           << " is unordered with the previous publish by thread "
           << it->second.tid << " at " << it->second.at;
        report("pte-unordered-publish", tid, at, page, os.str());
    }
    LastPublish &lp = last_publish_[page];
    lp.tid = tid;
    lp.at = at;
    lp.vc = t.vc;
}

void
RaceChecker::onPteTeardown(unsigned tid, Cycles at, Addr page,
                           bool locked)
{
    thread(tid);
    // §4.3: bulk PTE teardown is excluded while a revocation sweep is
    // in flight (counter odd) unless serialised by the pmap lock or
    // performed with the world stopped.
    if ((epoch_value_ & 1) != 0 && !locked) {
        std::ostringstream os;
        os << "PTE teardown of page 0x" << std::hex << page << std::dec
           << " while epoch counter is odd (" << epoch_value_
           << ") without the pmap lock or STW ownership";
        report("pte-teardown-during-epoch", tid, at, page, os.str());
    }
    // A teardown supersedes any publish history for the page.
    last_publish_.erase(page);
}

void
RaceChecker::onGenFlip(unsigned tid, Cycles at)
{
    thread(tid);
    if (stw_owner_ != static_cast<int>(tid)) {
        report("gen-flip-outside-stw", tid, at, 0,
               "core load-generation flip while the world is running");
    }
}

void
RaceChecker::onShadowRmwBegin(unsigned tid, Cycles at, Addr byte_va)
{
    thread(tid);
    auto it = open_rmw_.find(byte_va);
    if (it != open_rmw_.end() && it->second != tid) {
        std::ostringstream os;
        os << "shadow byte 0x" << std::hex << byte_va << std::dec
           << ": RMW by thread " << tid
           << " interleaves an open RMW window of thread "
           << it->second << " (lost-update hazard)";
        report("shadow-rmw-race", tid, at, byte_va, os.str());
    }
    open_rmw_[byte_va] = tid;
}

void
RaceChecker::onShadowRmwEnd(unsigned tid, Addr byte_va)
{
    auto it = open_rmw_.find(byte_va);
    if (it != open_rmw_.end() && it->second == tid)
        open_rmw_.erase(it);
}

void
RaceChecker::onShadowWrite(unsigned tid, Cycles at, Addr byte_va,
                           Addr bytes)
{
    thread(tid);
    if (open_rmw_.empty())
        return;
    for (const auto &[va, owner] : open_rmw_) {
        if (owner != tid && va >= byte_va && va < byte_va + bytes) {
            std::ostringstream os;
            os << "bulk shadow write covering byte 0x" << std::hex
               << va << std::dec
               << " inside thread " << owner << "'s open RMW window";
            report("shadow-rmw-race", tid, at, va, os.str());
        }
    }
}

void
RaceChecker::onShadowProbe(unsigned tid, Cycles at, Addr byte_va)
{
    thread(tid);
    auto it = open_rmw_.find(byte_va);
    if (it != open_rmw_.end() && it->second != tid) {
        std::ostringstream os;
        os << "shadow probe of byte 0x" << std::hex << byte_va
           << std::dec << " inside thread " << it->second
           << "'s open RMW window (torn read)";
        report("shadow-rmw-race", tid, at, byte_va, os.str());
    }
}

void
RaceChecker::onQuarantineAccess(unsigned tid, Cycles at, bool locked)
{
    thread(tid);
    if (!locked) {
        report("quarantine-unlocked-access", tid, at, 0,
               "quarantine buffer access without the heap lock; "
               "locks held " +
                   lockNames(tid));
    }
}

void
RaceChecker::onMappingHandoff(unsigned tid, Cycles at,
                              bool shutting_down)
{
    thread(tid);
    if ((epoch_value_ & 1) != 0 && !shutting_down) {
        std::ostringstream os;
        os << "unmap->reap hand-off drained while epoch counter is "
           << "odd (" << epoch_value_
           << "): the munmap quiesce barrier was bypassed";
        report("mapping-handoff-during-epoch", tid, at, 0, os.str());
    }
}

void
RaceChecker::onRemoteQueueAccess(unsigned tid, Cycles at, bool atomic)
{
    thread(tid);
    if (!atomic) {
        report("remote-queue-nonatomic-access", tid, at, 0,
               "remote-dealloc inbox splice/detach outside a NoYield "
               "window (the modeled MPSC exchange is not atomic); "
               "locks held " +
                   lockNames(tid));
    }
}

void
RaceChecker::onDequarantineRelease(unsigned tid, Cycles at,
                                   std::uint64_t target,
                                   std::uint64_t counter)
{
    thread(tid);
    if (counter < target) {
        std::ostringstream os;
        os << "quarantine buffer released at epoch counter " << counter
           << " before its dequarantine target " << target
           << " (+2/+3 protocol violated)";
        report("epoch-order-violation", tid, at, 0, os.str());
    }
}

void
RaceChecker::onStwScan(unsigned tid, Cycles at)
{
    thread(tid);
    if (stw_owner_ != static_cast<int>(tid)) {
        report("stw-scan-outside-stw", tid, at, 0,
               "register/hoard scan while mutators may run");
    }
}

void
RaceChecker::onSchedStateRead(const char *what, bool locked)
{
    if (!locked) {
        report("sched-unlocked-read", 0, 0, 0,
               std::string("scheduler-state read (") + what +
                   ") from a host thread without the scheduler mutex");
    }
}

// ---------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

std::string
RaceChecker::reportJson() const
{
    std::ostringstream os;
    os << "{\"violations\":[";
    bool first = true;
    for (const Violation &v : violations_) {
        if (!first)
            os << ",";
        first = false;
        std::string detail;
        appendEscaped(detail, v.detail);
        os << "{\"rule\":\"" << v.rule << "\",\"tid\":" << v.tid
           << ",\"at\":" << v.at << ",\"addr\":" << v.addr
           << ",\"detail\":\"" << detail << "\"}";
    }
    os << "],\"suppressed\":" << suppressed_
       << ",\"threads\":" << threads_.size()
       << ",\"epoch_counter\":" << epoch_value_ << "}";
    return os.str();
}

} // namespace crev::check
