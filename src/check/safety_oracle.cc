#include "check/safety_oracle.h"

#include <sstream>

namespace crev::check {

void
SafetyOracle::commitGranule(Addr granule)
{
    revoked_[granule] = current_epoch_;
    ++granules_committed_;
}

void
SafetyOracle::clearRange(Addr base, Addr len)
{
    if (len == 0)
        return;
    const Addr g_from = base >> kGranuleBits;
    const Addr g_to = (base + len + kGranuleSize - 1) >> kGranuleBits;
    revoked_.erase(revoked_.lower_bound(g_from),
                   revoked_.lower_bound(g_to));
}

void
SafetyOracle::onCapLoad(unsigned tid, Cycles now, Addr va,
                        Addr cap_base)
{
    ++loads_checked_;
    if (revoked_.empty())
        return;
    const auto it = revoked_.find(cap_base >> kGranuleBits);
    if (it == revoked_.end())
        return;
    if (violations_.size() >= kMaxViolations) {
        ++suppressed_;
        return;
    }
    OracleViolation v;
    v.tid = tid;
    v.at = now;
    v.va = va;
    v.cap_base = cap_base;
    v.epoch = it->second;
    violations_.push_back(v);
}

std::string
SafetyOracle::reportJson() const
{
    std::ostringstream os;
    os << "{\"violations\":[";
    bool first = true;
    for (const OracleViolation &v : violations_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"tid\":" << v.tid << ",\"at\":" << v.at
           << ",\"va\":" << v.va << ",\"cap_base\":" << v.cap_base
           << ",\"epoch\":" << v.epoch << "}";
    }
    os << "],\"suppressed\":" << suppressed_
       << ",\"loads_checked\":" << loads_checked_
       << ",\"epochs_committed\":" << epochs_committed_
       << ",\"granules_committed\":" << granules_committed_
       << ",\"granules_held\":" << revoked_.size() << "}";
    return os.str();
}

} // namespace crev::check
