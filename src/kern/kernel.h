/**
 * @file
 * The simulated kernel: epoch counter, kernel capability hoards, and
 * the mmap/munmap syscalls with reservation quarantine (paper §6.2).
 *
 * The kernel is where user pointers go to hide (paper §4.4): system
 * calls may hoard capabilities (kqueue/aio-style) and context-switched
 * threads' register files are saved kernel-side. All of these must be
 * scanned during the revoker's stop-the-world phase, and none may be
 * divulged unchecked afterwards. Saved register files are modelled by
 * SimThread's register array (scanned directly by the revoker); the
 * explicit hoard below models aio-style retention.
 */

#ifndef CREV_KERN_KERNEL_H_
#define CREV_KERN_KERNEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::check {
class RaceChecker;
}

namespace crev::kern {

/**
 * The publicly readable revocation epoch counter (paper §2.2.3):
 * incremented before each revocation starts (odd while in progress)
 * and again after it ends.
 */
class EpochCounter
{
  public:
    /** Read the counter (cheap: a cached page in reality). */
    std::uint64_t
    read(sim::SimThread &t) const
    {
        t.accrue(4);
        return value_;
    }

    /** Kernel-internal unmetered read. */
    std::uint64_t value() const { return value_; }

    /** Advance (revoker only). */
    void advance(sim::SimThread &t);

    /** Attach the race checker (null = off); observes advances. */
    void setChecker(check::RaceChecker *c) { checker_ = c; }

    /**
     * The counter value a painter must wait for so that at least one
     * revocation both begins and ends after its paints: +2 if idle
     * (even), +3 if a revocation is in flight (odd).
     */
    std::uint64_t
    dequarantineTarget(std::uint64_t at_paint) const
    {
        return at_paint + ((at_paint & 1) ? 3 : 2);
    }

  private:
    std::uint64_t value_ = 0;
    check::RaceChecker *checker_ = nullptr;
};

/**
 * Kernel-held capabilities on behalf of the user program (aio-style).
 * Slots are stable indices; the revoker scans and heals them in the
 * stop-the-world phase.
 */
class KernelHoard
{
  public:
    /** Hoard a capability; returns its slot. */
    std::size_t
    put(sim::SimThread &t, const cap::Capability &c)
    {
        t.accrue(20);
        if (!free_slots_.empty()) {
            const std::size_t s = free_slots_.back();
            free_slots_.pop_back();
            slots_[s] = c;
            return s;
        }
        slots_.push_back(c);
        return slots_.size() - 1;
    }

    /** Retrieve (and release) a hoarded capability. */
    cap::Capability
    take(sim::SimThread &t, std::size_t slot)
    {
        t.accrue(20);
        cap::Capability c = slots_.at(slot);
        slots_[slot] = cap::Capability::null();
        free_slots_.push_back(slot);
        return c;
    }

    /** All slots (revoker scan). */
    std::vector<cap::Capability> &slots() { return slots_; }

  private:
    std::vector<cap::Capability> slots_;
    std::vector<std::size_t> free_slots_;
};

/** A reservation awaiting revocation after full munmap (§6.2). */
struct QuarantinedMapping
{
    vm::Reservation *reservation;
    std::uint64_t release_target; //!< epoch counter value to wait for
};

/** The kernel façade used by the allocator and workloads. */
class Kernel
{
  public:
    Kernel(vm::Mmu &mmu, const sim::CostModel &cm);

    /**
     * Reserve anonymous memory; returns a capability over the usable
     * (requested) range, derived from the reservation.
     */
    cap::Capability sysMmap(sim::SimThread &t, Addr length,
                            bool cap_store = true);

    /**
     * Unmap a range: frames are freed, the range becomes guard pages,
     * and a fully unmapped reservation enters mapping quarantine to be
     * released only after a revocation pass (§6.2).
     */
    void sysMunmap(sim::SimThread &t, Addr base, Addr length);

    /**
     * Release mapping-quarantined reservations whose epoch target has
     * passed; called by the revoker after each epoch. The shadow bits
     * painted at quarantine time are cleared here. Returns how many
     * were released.
     */
    std::size_t reapQuarantinedMappings(sim::SimThread &t);

    /**
     * Lockstep-engine reap short-circuit (DESIGN.md §14.4): skip the
     * quarantined-mapping walk outright when the epoch counter is
     * below every queued release target. The walk charges nothing
     * and releases nothing in that case, so skipping it is invisible
     * to simulated state; the serial reference engine keeps the
     * unconditional walk.
     */
    void setFastReap(bool on) { fast_reap_ = on; }

    EpochCounter &epoch() { return epoch_; }
    KernelHoard &hoard() { return hoard_; }
    vm::Mmu &mmu() { return mmu_; }

    /** Paint/clear hooks installed by the revocation subsystem. */
    using ShadowHook =
        std::function<void(sim::SimThread &, Addr, Addr)>;
    void
    setShadowHooks(ShadowHook paint, ShadowHook clear)
    {
        paint_ = std::move(paint);
        clear_ = std::move(clear);
    }

    /**
     * Hook that blocks the caller until no bulk revocation sweep is in
     * flight. Bulk address-space operations (munmap here; fork in the
     * paper) are excluded during sweeps (paper §4.3).
     */
    using QuiesceHook = std::function<void(sim::SimThread &)>;
    void setQuiesceHook(QuiesceHook h) { quiesce_ = std::move(h); }

  private:
    vm::Mmu &mmu_;
    const sim::CostModel &cm_;
    EpochCounter epoch_;
    KernelHoard hoard_;
    std::vector<QuarantinedMapping> quarantined_mappings_;
    bool fast_reap_ = false;
    /** Min release target over quarantined_mappings_ (fast reap). */
    std::uint64_t min_release_target_ = ~std::uint64_t{0};
    ShadowHook paint_;
    ShadowHook clear_;
    QuiesceHook quiesce_;
};

} // namespace crev::kern

#endif // CREV_KERN_KERNEL_H_
