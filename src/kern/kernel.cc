#include "kern/kernel.h"

#include <algorithm>

#include "base/logging.h"
#include "check/race_checker.h"
#include "vm/address_space.h"

namespace crev::kern {

void
EpochCounter::advance(sim::SimThread &t)
{
    t.accrue(8);
    ++value_;
    if (checker_ != nullptr)
        checker_->onEpochAdvance(t.id(), t.now(), value_);
}

Kernel::Kernel(vm::Mmu &mmu, const sim::CostModel &cm)
    : mmu_(mmu), cm_(cm)
{
}

cap::Capability
Kernel::sysMmap(sim::SimThread &t, Addr length, bool cap_store)
{
    t.accrue(cm_.syscall);
    vm::AddressSpace &as = mmu_.addressSpace();
    const Addr base = as.reserve(length, cap_store);
    const Addr usable = roundUp(length, kPageSize);
    std::uint32_t perms = cap::kPermLoad | cap::kPermStore;
    if (cap_store)
        perms |= cap::kPermLoadCap | cap::kPermStoreCap;
    return cap::Capability::root(base, base + usable, perms);
}

void
Kernel::sysMunmap(sim::SimThread &t, Addr base, Addr length)
{
    t.accrue(cm_.syscall);
    // Bulk address-space operations are excluded while a revocation
    // sweep is in flight (paper §4.3).
    if (quiesce_)
        quiesce_(t);
    vm::AddressSpace &as = mmu_.addressSpace();
    as.unmap(t, base, roundUp(length, kPageSize));
    // Unmapped translations must not linger in any TLB.
    for (Addr va = base; va < base + length; va += kPageSize)
        mmu_.shootdownPage(t, va);
    mmu_.purgeFreedFrames();

    for (vm::Reservation *r : as.takeNewlyQuarantined(t)) {
        // Paint the entire reservation so the sweep revokes every
        // capability referencing it, then schedule its release for
        // after a full revocation epoch (§6.2 part 2).
        if (paint_)
            paint_(t, r->base, r->length);
        r->quarantine_epoch = epoch_.value();
        const std::uint64_t target =
            epoch_.dequarantineTarget(r->quarantine_epoch);
        quarantined_mappings_.push_back({r, target});
        min_release_target_ = std::min(min_release_target_, target);
    }
}

std::size_t
Kernel::reapQuarantinedMappings(sim::SimThread &t)
{
    // Nothing can be releasable below the minimum queued target; the
    // walk would charge nothing and release nothing, so it can be
    // skipped wholesale (lockstep engine only — the reference keeps
    // the unconditional walk).
    if (fast_reap_ && epoch_.value() < min_release_target_)
        return 0;
    std::size_t released = 0;
    std::uint64_t min_target = ~std::uint64_t{0};
    auto it = quarantined_mappings_.begin();
    while (it != quarantined_mappings_.end()) {
        if (epoch_.value() >= it->release_target) {
            if (clear_)
                clear_(t, it->reservation->base, it->reservation->length);
            mmu_.addressSpace().release(t, it->reservation);
            it = quarantined_mappings_.erase(it);
            ++released;
        } else {
            min_target = std::min(min_target, it->release_target);
            ++it;
        }
    }
    min_release_target_ = min_target;
    return released;
}

} // namespace crev::kern
