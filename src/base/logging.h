/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() is for conditions that indicate a bug in this library itself
 * (it aborts); fatal() is for unrecoverable user/configuration errors
 * (it exits cleanly); warn()/inform() report conditions the user should
 * know about without stopping the run.
 */

#ifndef CREV_BASE_LOGGING_H_
#define CREV_BASE_LOGGING_H_

#include <cstdarg>
#include <string>

namespace crev {

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message; the run continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant even in release builds.
 *
 * Unlike assert(), this is never compiled out: invariant violations in
 * the revocation machinery are exactly what the test suite exists to
 * catch.
 */
#define CREV_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::crev::panic("assertion failed at %s:%d: %s", __FILE__,        \
                          __LINE__, #cond);                                 \
        }                                                                   \
    } while (0)

} // namespace crev

#endif // CREV_BASE_LOGGING_H_
