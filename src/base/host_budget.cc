#include "base/host_budget.h"

namespace crev::base {

HostBudget &
HostBudget::instance()
{
    static HostBudget g;
    return g;
}

void
HostBudget::configure(unsigned total_slots, unsigned base_in_use,
                      unsigned lane_cap)
{
    total_slots_.store(total_slots, std::memory_order_relaxed);
    base_in_use_.store(base_in_use, std::memory_order_relaxed);
    in_use_.store(base_in_use, std::memory_order_relaxed);
    lane_cap_.store(lane_cap, std::memory_order_relaxed);
}

unsigned
HostBudget::acquireExtra(unsigned want)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    wanted_.fetch_add(want, std::memory_order_relaxed);
    const unsigned total =
        total_slots_.load(std::memory_order_relaxed);
    if (total == 0) {
        // Unconfigured: standalone binaries (tests, single-machine
        // figure runs) keep their historical sizing.
        granted_.fetch_add(want, std::memory_order_relaxed);
        return want;
    }
    unsigned grant = 0;
    unsigned used = in_use_.load(std::memory_order_relaxed);
    for (;;) {
        const unsigned free = used < total ? total - used : 0;
        grant = want < free ? want : free;
        if (grant == 0)
            break;
        if (in_use_.compare_exchange_weak(used, used + grant,
                                          std::memory_order_relaxed))
            break;
    }
    granted_.fetch_add(grant, std::memory_order_relaxed);
    if (grant < want)
        clamped_.fetch_add(1, std::memory_order_relaxed);
    return grant;
}

void
HostBudget::releaseExtra(unsigned n)
{
    if (n != 0 && total_slots_.load(std::memory_order_relaxed) != 0)
        in_use_.fetch_sub(n, std::memory_order_relaxed);
}

HostBudget::Decisions
HostBudget::decisions() const
{
    Decisions d;
    d.requests = requests_.load(std::memory_order_relaxed);
    d.wanted = wanted_.load(std::memory_order_relaxed);
    d.granted = granted_.load(std::memory_order_relaxed);
    d.clamped = clamped_.load(std::memory_order_relaxed);
    d.total_slots = total_slots_.load(std::memory_order_relaxed);
    d.base_in_use = base_in_use_.load(std::memory_order_relaxed);
    d.lane_cap = lane_cap_.load(std::memory_order_relaxed);
    return d;
}

void
HostBudget::resetDecisions()
{
    requests_.store(0, std::memory_order_relaxed);
    wanted_.store(0, std::memory_order_relaxed);
    granted_.store(0, std::memory_order_relaxed);
    clamped_.store(0, std::memory_order_relaxed);
}

} // namespace crev::base
