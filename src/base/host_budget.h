/**
 * @file
 * Process-wide host core-budget arbiter.
 *
 * Three independent host-thread consumers grew up in separate layers:
 * the bench runner's cell workers (one host thread per running
 * machine), the lockstep engine's LaneGroup lanes (per machine), and
 * the pre-scan pipeline's striped fan-out (per epoch). Each sized
 * itself from hardware_concurrency alone, so a parallel bench run
 * could oversubscribe the cpuset multiplicatively (workers × lanes ×
 * stripes) and cross-cell scaling decayed run over run.
 *
 * HostBudget is the single ledger: the bench runner configures the
 * total slot count (its own workers pre-charged) and a per-machine
 * lane cap, machine construction clamps its *defaulted* lane count to
 * the cap (an explicit CREV_PAR_CORES remains an operator override),
 * and transient helpers (the pre-scan's spawned stripe workers)
 * acquire and release slots around their fan-out. Every decision is counted so
 * benches can export the arbiter's behaviour through
 * trace::MetricsRegistry.
 *
 * The arbiter only shapes *host* parallelism; simulated results are
 * independent of every grant by the same stripe-determinism argument
 * as DESIGN.md §14.4 (outputs are functions of stripe index, never of
 * thread count).
 */

#ifndef CREV_BASE_HOST_BUDGET_H_
#define CREV_BASE_HOST_BUDGET_H_

#include <atomic> // slot ledger; see waivers below
#include <cstdint>

namespace crev::base {

/** Singleton host-core slot ledger (all methods thread-safe). */
class HostBudget
{
  public:
    static HostBudget &instance();

    /**
     * Install a budget: @p total_slots host cores available to this
     * process, of which @p base_in_use are already committed (the
     * bench runner's cell workers), and at most @p lane_cap lockstep
     * lanes per machine whose lane count is defaulted rather than
     * explicitly configured. total_slots == 0 reverts to the
     * unconfigured state (no clamping, grants unbounded).
     */
    void configure(unsigned total_slots, unsigned base_in_use,
                   unsigned lane_cap);

    /** Configured total slots (0 = unconfigured). */
    unsigned totalSlots() const
    {
        return total_slots_.load(std::memory_order_relaxed);
    }

    /** Per-machine defaulted-lane cap (0 = uncapped). */
    unsigned laneCap() const
    {
        return lane_cap_.load(std::memory_order_relaxed);
    }

    /**
     * Request @p want transient helper-thread slots (the caller's own
     * thread is already accounted for). Returns the granted count,
     * possibly 0; the caller must releaseExtra() the same amount when
     * the helpers join. Unconfigured budgets grant everything.
     */
    unsigned acquireExtra(unsigned want);

    /** Return @p n slots taken with acquireExtra(). */
    void releaseExtra(unsigned n);

    /** Decision counters for metrics export. */
    struct Decisions {
        std::uint64_t requests = 0;  //!< acquireExtra() calls
        std::uint64_t wanted = 0;    //!< slots asked for
        std::uint64_t granted = 0;   //!< slots handed out
        std::uint64_t clamped = 0;   //!< requests not granted in full
        unsigned total_slots = 0;    //!< configured capacity
        unsigned base_in_use = 0;    //!< pre-charged worker slots
        unsigned lane_cap = 0;       //!< per-machine lane cap
    };
    Decisions decisions() const;

    /** Zero the decision counters (budget configuration persists). */
    void resetDecisions();

  private:
    HostBudget() = default;

    // The ledger is shared by every host thread in the process.
    // lint: threading-ok (host slot ledger, no simulated state)
    std::atomic<unsigned> total_slots_{0};
    // lint: threading-ok (host slot ledger, no simulated state)
    std::atomic<unsigned> lane_cap_{0};
    // lint: threading-ok (host slot ledger, no simulated state)
    std::atomic<unsigned> base_in_use_{0};
    // lint: threading-ok (host slot ledger, no simulated state)
    std::atomic<unsigned> in_use_{0};
    // lint: threading-ok (host decision counters)
    std::atomic<std::uint64_t> requests_{0};
    // lint: threading-ok (host decision counters)
    std::atomic<std::uint64_t> wanted_{0};
    // lint: threading-ok (host decision counters)
    std::atomic<std::uint64_t> granted_{0};
    // lint: threading-ok (host decision counters)
    std::atomic<std::uint64_t> clamped_{0};
};

} // namespace crev::base

#endif // CREV_BASE_HOST_BUDGET_H_
