#include "base/simd.h"

#include <atomic> // dispatch cache; see waiver below
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace crev::simd {

namespace {

// Cached dispatch level; -1 = not yet detected. Concurrent first
// calls from host bench workers race benignly to the same value, but
// the store must still be a real atomic for TSan.
// lint: threading-ok (one-shot host dispatch cache, monotone value)
std::atomic<int> g_level{-1};

int
detect()
{
    const char *env = std::getenv("CREV_SIMD");
    if (env != nullptr && std::strcmp(env, "0") == 0)
        return static_cast<int>(Level::kScalar);
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        return static_cast<int>(Level::kAvx2);
#endif
    return static_cast<int>(Level::kScalar);
}

// --- scalar kernels (always available, the reference semantics) ---

std::uint64_t
popcountWordsScalar(const std::uint64_t *w, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(w[i]));
    return total;
}

bool
anySetScalar(const std::uint64_t *w, std::size_t n)
{
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc |= w[i];
    return acc != 0;
}

bool
equalWordsScalar(const std::uint64_t *a, const std::uint64_t *b,
                 std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

void
fillWordsScalar(std::uint64_t *w, std::size_t n, std::uint64_t value)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = value;
}

std::size_t
expandWordScalar(std::uint64_t word, std::uint32_t base,
                 std::uint32_t *out)
{
    std::size_t k = 0;
    while (word != 0) {
        const unsigned bit =
            static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        out[k++] = base + bit;
    }
    return k;
}

std::size_t
expandSetBitsScalar(const std::uint64_t *w, std::size_t n,
                    std::uint32_t base, std::uint32_t *out)
{
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i)
        k += expandWordScalar(w[i],
                              base + static_cast<std::uint32_t>(i) * 64,
                              out + k);
    return k;
}

void
gatherGranulesScalar(const std::uint8_t *bytes, const std::uint32_t *idx,
                     std::size_t n, std::uint64_t *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *p =
            bytes + static_cast<std::size_t>(idx[i]) * 16;
        std::memcpy(&out[2 * i], p, 8);
        std::memcpy(&out[2 * i + 1], p + 8, 8);
    }
}

#if defined(__x86_64__)

// --- AVX2 kernels. Each is a pure function with the same contract as
// its scalar twin; simd_test differential-checks them on random
// inputs across the sweep's density regimes. ---

__attribute__((target("avx2"))) std::uint64_t
popcountWordsAvx2(const std::uint64_t *w, std::size_t n)
{
    // Nibble-LUT popcount (Mula): per-byte counts via two shuffles,
    // horizontally summed into four 64-bit accumulators with SAD.
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i));
        const __m256i lo = _mm256_and_si256(v, low);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
        const __m256i cnt =
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                            _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
    }
    std::uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        total += static_cast<std::uint64_t>(std::popcount(w[i]));
    return total;
}

__attribute__((target("avx2"))) bool
anySetAvx2(const std::uint64_t *w, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i));
        if (!_mm256_testz_si256(v, v))
            return true;
    }
    return anySetScalar(w + i, n - i);
}

__attribute__((target("avx2"))) bool
equalWordsAvx2(const std::uint64_t *a, const std::uint64_t *b,
               std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i x = _mm256_xor_si256(va, vb);
        if (!_mm256_testz_si256(x, x))
            return false;
    }
    return equalWordsScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void
fillWordsAvx2(std::uint64_t *w, std::size_t n, std::uint64_t value)
{
    const __m256i v =
        _mm256_set1_epi64x(static_cast<long long>(value));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(w + i), v);
    for (; i < n; ++i)
        w[i] = value;
}

__attribute__((target("avx2"))) std::size_t
expandSetBitsAvx2(const std::uint64_t *w, std::size_t n,
                  std::uint32_t base, std::uint32_t *out)
{
    // Multi-word candidate masking: one 256-bit test skips four
    // all-clear words (256 granules) at a time — the common case on
    // sparse pages; dense stretches fall through to the per-word
    // expansion.
    std::size_t k = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + i));
        if (_mm256_testz_si256(v, v))
            continue;
        for (std::size_t j = i; j < i + 4; ++j)
            k += expandWordScalar(
                w[j], base + static_cast<std::uint32_t>(j) * 64,
                out + k);
    }
    for (; i < n; ++i)
        k += expandWordScalar(
            w[i], base + static_cast<std::uint32_t>(i) * 64, out + k);
    return k;
}

__attribute__((target("avx2"))) void
gatherGranulesAvx2(const std::uint8_t *bytes, const std::uint32_t *idx,
                   std::size_t n, std::uint64_t *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(
                bytes + static_cast<std::size_t>(idx[i]) * 16));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(&out[2 * i]), v);
    }
}

#endif // __x86_64__

} // namespace

Level
level()
{
    int l = g_level.load(std::memory_order_relaxed);
    if (l < 0) {
        l = detect();
        g_level.store(l, std::memory_order_relaxed);
    }
    return static_cast<Level>(l);
}

void
refreshFromEnv()
{
    g_level.store(detect(), std::memory_order_relaxed);
}

void
forceLevel(Level l)
{
#if defined(__x86_64__)
    if (l == Level::kAvx2 && !__builtin_cpu_supports("avx2"))
        l = Level::kScalar;
#else
    l = Level::kScalar;
#endif
    g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

const char *
levelName(Level l)
{
    return l == Level::kAvx2 ? "avx2" : "scalar";
}

// Word-count floor below which the vector paths lose: for n < 8 the
// setup (LUT broadcast, lane reduction) outweighs one or two scalar
// iterations, and the hot 4-word TagWords calls measured slower
// through AVX2 than straight scalar. The wide paths are reserved for
// the shadow bitmap's 64-word blocks and other large spans.
constexpr std::size_t kMinVectorWords = 8;

std::uint64_t
popcountWords(const std::uint64_t *w, std::size_t n)
{
#if defined(__x86_64__)
    if (n >= kMinVectorWords && level() == Level::kAvx2)
        return popcountWordsAvx2(w, n);
#endif
    return popcountWordsScalar(w, n);
}

bool
anySet(const std::uint64_t *w, std::size_t n)
{
#if defined(__x86_64__)
    if (n >= kMinVectorWords && level() == Level::kAvx2)
        return anySetAvx2(w, n);
#endif
    return anySetScalar(w, n);
}

bool
equalWords(const std::uint64_t *a, const std::uint64_t *b,
           std::size_t n)
{
#if defined(__x86_64__)
    if (n >= kMinVectorWords && level() == Level::kAvx2)
        return equalWordsAvx2(a, b, n);
#endif
    return equalWordsScalar(a, b, n);
}

void
fillWords(std::uint64_t *w, std::size_t n, std::uint64_t value)
{
#if defined(__x86_64__)
    if (n >= kMinVectorWords && level() == Level::kAvx2) {
        fillWordsAvx2(w, n, value);
        return;
    }
#endif
    fillWordsScalar(w, n, value);
}

std::size_t
expandSetBits(const std::uint64_t *w, std::size_t n, std::uint32_t base,
              std::uint32_t *out)
{
#if defined(__x86_64__)
    if (level() == Level::kAvx2)
        return expandSetBitsAvx2(w, n, base, out);
#endif
    return expandSetBitsScalar(w, n, base, out);
}

void
gatherGranules(const std::uint8_t *bytes, const std::uint32_t *idx,
               std::size_t n, std::uint64_t *out)
{
#if defined(__x86_64__)
    if (level() == Level::kAvx2) {
        gatherGranulesAvx2(bytes, idx, n, out);
        return;
    }
#endif
    gatherGranulesScalar(bytes, idx, n, out);
}

} // namespace crev::simd
