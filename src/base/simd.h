/**
 * @file
 * Runtime-dispatched SIMD batch kernels for the host-side hot loops.
 *
 * The sweep, pre-scan, and shadow-summary paths all reduce to a small
 * set of word-granularity batch operations over packed bitmaps and
 * 16-byte capability granules: population counts, span fills,
 * equality scans, set-bit expansion, and granule gathers. This header
 * is the single dispatch point: every kernel has a portable scalar
 * implementation and (on x86-64) an AVX2 variant selected once at
 * runtime, so the simulated results are bit-identical by construction
 * — the kernels are pure functions of their inputs and the two
 * variants are differential-tested against each other (simd_test).
 *
 * Dispatch honours the CREV_SIMD environment variable: unset or any
 * value other than "0" enables the best level the host supports;
 * CREV_SIMD=0 forces the scalar fallback (CI runs a forced-scalar
 * determinism leg with exactly this switch). Benches may pin a level
 * explicitly with forceLevel() for A/B measurement.
 */

#ifndef CREV_BASE_SIMD_H_
#define CREV_BASE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace crev::simd {

/** Kernel implementation tiers, in increasing preference order. */
enum class Level {
    kScalar = 0, //!< portable fallback, always available
    kAvx2 = 1,   //!< 256-bit integer kernels (x86-64 AVX2)
};

/** The active dispatch level (detected once, then cached). */
Level level();

/** Re-run detection (CREV_SIMD + cpuid); tests call this after
 *  changing the environment. */
void refreshFromEnv();

/** Pin the dispatch level (bench A/B legs); undone by
 *  refreshFromEnv(). Levels the host cannot execute fall back to
 *  scalar. */
void forceLevel(Level l);

/** Human-readable level name ("scalar", "avx2"). */
const char *levelName(Level l);

/** Population count over @p n 64-bit words. */
std::uint64_t popcountWords(const std::uint64_t *w, std::size_t n);

/** Whether any of @p n words is non-zero (OR-reduction). */
bool anySet(const std::uint64_t *w, std::size_t n);

/** Word-wise equality of two @p n-word arrays. */
bool equalWords(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n);

/**
 * 16-byte equality (capability granule / CapBits comparison). Inline
 * and branch-free on purpose: it sits inside the sweep's per-granule
 * candidate-validation loop, where a cross-TU call (and the dispatch
 * level load it would imply) costs more than the comparison itself.
 * Two 64-bit compares are already optimal — no wide variant exists.
 */
inline bool
equal128(const void *a, const void *b)
{
    std::uint64_t a0, a1, b0, b1;
    __builtin_memcpy(&a0, a, 8);
    __builtin_memcpy(&a1, static_cast<const char *>(a) + 8, 8);
    __builtin_memcpy(&b0, b, 8);
    __builtin_memcpy(&b1, static_cast<const char *>(b) + 8, 8);
    return ((a0 ^ b0) | (a1 ^ b1)) == 0;
}

/** Store @p value into all @p n words (span paint/clear). */
void fillWords(std::uint64_t *w, std::size_t n, std::uint64_t value);

/**
 * Expand the set bits of an @p n-word bitmap into indices. Bit b of
 * word k appends `base + k*64 + b` to @p out, ascending. Returns the
 * number of indices written; @p out must hold at least 64*n entries.
 */
std::size_t expandSetBits(const std::uint64_t *w, std::size_t n,
                          std::uint32_t base, std::uint32_t *out);

/**
 * Gather @p n 16-byte granules: for each index i, copy the 16 bytes
 * at `bytes + idx[i]*16` into `out[2*i]` (low word) and `out[2*i+1]`
 * (high word) — the CapBits memory layout.
 */
void gatherGranules(const std::uint8_t *bytes, const std::uint32_t *idx,
                    std::size_t n, std::uint64_t *out);

} // namespace crev::simd

#endif // CREV_BASE_SIMD_H_
