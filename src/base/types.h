/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CREV_BASE_TYPES_H_
#define CREV_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace crev {

/** A simulated (virtual or physical) address. */
using Addr = std::uint64_t;

/** A count of simulated CPU cycles. */
using Cycles = std::uint64_t;

/** Simulated clock frequency used to convert cycles to wall time. */
constexpr double kCyclesPerSecond = 2.5e9; // Morello clocks at 2.5 GHz.

/** Convert a cycle count to simulated milliseconds. */
constexpr double
cyclesToMillis(Cycles c)
{
    return static_cast<double>(c) / (kCyclesPerSecond / 1e3);
}

/** Convert a cycle count to simulated microseconds. */
constexpr double
cyclesToMicros(Cycles c)
{
    return static_cast<double>(c) / (kCyclesPerSecond / 1e6);
}

/** log2 of the simulated page size (4 KiB). */
constexpr unsigned kPageBits = 12;
constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;

/** log2 of the capability granule (16 bytes, as on Morello). */
constexpr unsigned kGranuleBits = 4;
constexpr std::size_t kGranuleSize = std::size_t{1} << kGranuleBits;

/** Granules per page (256): one tag bit each. */
constexpr std::size_t kGranulesPerPage = kPageSize / kGranuleSize;

/** log2 of the cache line size (64 bytes). */
constexpr unsigned kLineBits = 6;
constexpr std::size_t kLineSize = std::size_t{1} << kLineBits;

/** Page number of an address. */
constexpr Addr
pageOf(Addr a)
{
    return a >> kPageBits;
}

/** Base address of the page containing @p a. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~static_cast<Addr>(kPageSize - 1);
}

/** Offset of @p a within its page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & static_cast<Addr>(kPageSize - 1);
}

/** Round @p a up to the next multiple of @p align (a power of two). */
constexpr Addr
roundUp(Addr a, Addr align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Round @p a down to a multiple of @p align (a power of two). */
constexpr Addr
roundDown(Addr a, Addr align)
{
    return a & ~(align - 1);
}

} // namespace crev

#endif // CREV_BASE_TYPES_H_
