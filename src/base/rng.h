/**
 * @file
 * Deterministic PRNG (xoshiro256**) used by every workload generator.
 *
 * Determinism matters here: all experiments are reproducible bit-for-bit
 * given the same seed, which is what lets the property-test suite audit
 * revocation invariants after every epoch of a randomized run.
 */

#ifndef CREV_BASE_RNG_H_
#define CREV_BASE_RNG_H_

#include <array>
#include <cstdint>

namespace crev {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialise state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace crev

#endif // CREV_BASE_RNG_H_
