/**
 * @file
 * The architectural capability value model.
 *
 * A Capability is the *decompressed* view that lives in simulated
 * register files and that workload code manipulates. The 128-bit
 * in-memory form (with its out-of-band tag) is defined by
 * cap/compression.h. Three CHERI properties matter for revocation
 * (paper §2.1): capabilities carry bounds; they are derivable only by
 * monotonic restriction; and valid capabilities are perfectly
 * distinguishable from data (the tag).
 */

#ifndef CREV_CAP_CAPABILITY_H_
#define CREV_CAP_CAPABILITY_H_

#include <cstdint>
#include <string>

#include "base/types.h"

namespace crev::cap {

/** Permission bits carried by a capability. */
enum Perm : std::uint32_t {
    kPermLoad = 1u << 0,     //!< may load data
    kPermStore = 1u << 1,    //!< may store data
    kPermLoadCap = 1u << 2,  //!< may load capabilities
    kPermStoreCap = 1u << 3, //!< may store capabilities
};

/** All data+capability load/store permissions. */
constexpr std::uint32_t kPermAll =
    kPermLoad | kPermStore | kPermLoadCap | kPermStoreCap;

/**
 * A decompressed capability: address (cursor), bounds [base, top),
 * permissions, and validity tag.
 *
 * The default-constructed value is the canonical untagged null
 * capability.
 */
struct Capability
{
    Addr address = 0;
    Addr base = 0;
    Addr top = 0;
    std::uint32_t perms = 0;
    bool tag = false;

    /** The untagged null capability. */
    static Capability null() { return Capability{}; }

    /**
     * Construct a root (primordial) capability over [base, top).
     * Panics if the bounds are not exactly representable; roots are
     * created by the simulated kernel, which aligns them.
     */
    static Capability root(Addr base, Addr top,
                           std::uint32_t perms = kPermAll);

    /** Length of the bounds region. */
    Addr length() const { return top - base; }

    /**
     * Monotonically derive a capability with narrowed bounds
     * [new_base, new_top). The result is untagged (invalid) if this
     * capability is untagged or if the requested bounds are not a
     * subset of the current bounds. Bounds are rounded outward as
     * required by compressed representability, but never beyond the
     * parent's bounds check (callers align requests; see
     * compression.h helpers).
     */
    Capability setBounds(Addr new_base, Addr new_top) const;

    /**
     * Move the cursor. If the new address leaves the representable
     * region of the compressed encoding, the result is untagged
     * (paper footnote 9: bases cannot be taken out of bounds without
     * rendering the capability useless).
     */
    Capability setAddress(Addr a) const;

    /** Derive with a subset of the current permissions. */
    Capability andPerms(std::uint32_t mask) const;

    /** Same-object cursor arithmetic; may untag as setAddress. */
    Capability add(std::int64_t delta) const
    {
        return setAddress(address + static_cast<Addr>(delta));
    }

    /** Whether an access of @p len bytes at the cursor is in bounds. */
    bool
    inBounds(Addr len) const
    {
        return address >= base && len <= top - address &&
               address + len >= address;
    }

    /** Whether @p p permissions are all present. */
    bool hasPerms(std::uint32_t p) const { return (perms & p) == p; }

    bool operator==(const Capability &o) const = default;

    /** Debug rendering. */
    std::string str() const;
};

} // namespace crev::cap

#endif // CREV_CAP_CAPABILITY_H_
