#include "cap/compression.h"

#include "base/logging.h"

namespace crev::cap {

namespace {

// Field layout within the metadata word.
constexpr unsigned kPermsShift = 52;
constexpr unsigned kExpShift = 46;
constexpr unsigned kBaseShift = 32;
constexpr unsigned kLenShift = 17;

constexpr std::uint64_t kMantissaMask = (1ull << kMantissaBits) - 1;
constexpr std::uint64_t kLenMask = (1ull << (kMantissaBits + 1)) - 1;

// Maximum region size, in 2^E units, encodable at a given exponent.
// 2^14 units of representable space minus 2^12 units of slack below the
// base and 2^12 units above the top (so cursors may stray slightly out
// of bounds, e.g. one-past-the-end, without untagging).
constexpr Addr kMaxUnits =
    (Addr{1} << kMantissaBits) - 2 * (Addr{1} << kReprSlackBits);

} // namespace

unsigned
exponentFor(Addr length)
{
    unsigned e = 0;
    while ((roundUp(length, Addr{1} << e) >> e) > kMaxUnits)
        ++e;
    return e;
}

Addr
representableAlignment(Addr length)
{
    return Addr{1} << exponentFor(length);
}

Addr
representableLength(Addr length)
{
    return roundUp(length, representableAlignment(length));
}

CapBits
encode(const Capability &c)
{
    // Select the exponent accounting for alignment-induced growth:
    // rounding the base down and the top up can add up to two units.
    unsigned e = exponentFor(c.length());
    Addr b = 0, t = 0;
    for (;; ++e) {
        b = roundDown(c.base, Addr{1} << e);
        t = roundUp(c.top, Addr{1} << e);
        if (((t - b) >> e) <= kMaxUnits)
            break;
        CREV_ASSERT(e < 50);
    }

    CapBits bits;
    bits.lo = c.address;
    bits.hi = (static_cast<std::uint64_t>(c.perms) & 0xFFF)
                  << kPermsShift |
              (static_cast<std::uint64_t>(e) & 0x3F) << kExpShift |
              ((b >> e) & kMantissaMask) << kBaseShift |
              (((t - b) >> e) & kLenMask) << kLenShift;
    return bits;
}

Capability
decode(const CapBits &bits, bool tag)
{
    Capability c;
    c.address = bits.lo;
    c.perms = static_cast<std::uint32_t>(bits.hi >> kPermsShift) & 0xFFF;
    const unsigned e = static_cast<unsigned>(bits.hi >> kExpShift) & 0x3F;
    const std::uint64_t bmant = (bits.hi >> kBaseShift) & kMantissaMask;
    const std::uint64_t lmant = (bits.hi >> kLenShift) & kLenMask;

    // Recover the base's high bits from the address via the
    // representable-region correction (CHERI Concentrate style): the
    // region begins 2^12 units below the base's mantissa.
    const std::uint64_t amid = (c.address >> e) & kMantissaMask;
    // Untagged garbage can carry any 6-bit exponent; once e + 14
    // covers the word there are no address bits above the mantissa.
    const unsigned top_shift = e + kMantissaBits;
    const std::uint64_t atop =
        top_shift < 64 ? c.address >> top_shift : 0;
    const std::uint64_t r =
        (bmant - (std::uint64_t{1} << kReprSlackBits)) & kMantissaMask;
    const std::int64_t cb = (bmant < r ? 1 : 0) - (amid < r ? 1 : 0);

    const std::uint64_t base_hi =
        atop + static_cast<std::uint64_t>(cb);
    c.base = ((base_hi << kMantissaBits) | bmant) << e;
    c.top = c.base + (lmant << e);
    c.tag = tag;
    return c;
}

ReprRange
representableRange(const Capability &c)
{
    const CapBits bits = encode(c);
    const unsigned e = static_cast<unsigned>(bits.hi >> kExpShift) & 0x3F;
    // Recompute the encoded (possibly rounded) base.
    const Addr enc_base = roundDown(c.base, Addr{1} << e);
    const Addr slack = Addr{1} << (kReprSlackBits + e);
    const Addr span = Addr{1} << (kMantissaBits + e);
    ReprRange rr;
    rr.repr_base = enc_base >= slack ? enc_base - slack : 0;
    rr.repr_top = rr.repr_base + span;
    return rr;
}

} // namespace crev::cap
