#include "cap/compression.h"

namespace crev::cap {

ReprRange
representableRange(const Capability &c)
{
    const CapBits bits = encode(c);
    const unsigned e =
        static_cast<unsigned>(bits.hi >> detail::kExpShift) & 0x3F;
    // Recompute the encoded (possibly rounded) base.
    const Addr enc_base = roundDown(c.base, Addr{1} << e);
    const Addr slack = Addr{1} << (kReprSlackBits + e);
    const Addr span = Addr{1} << (kMantissaBits + e);
    ReprRange rr;
    rr.repr_base = enc_base >= slack ? enc_base - slack : 0;
    rr.repr_top = rr.repr_base + span;
    return rr;
}

} // namespace crev::cap
