#include "cap/capability.h"

#include <cstdio>

#include "base/logging.h"
#include "cap/compression.h"

namespace crev::cap {

Capability
Capability::root(Addr base, Addr top, std::uint32_t perms)
{
    CREV_ASSERT(base <= top);
    Capability c;
    c.address = base;
    c.base = base;
    c.top = top;
    c.perms = perms;
    c.tag = true;
    // Roots are minted by the simulated kernel, which must align them
    // so the compressed form is exact.
    const Capability rt = decode(encode(c), true);
    if (rt.base != base || rt.top != top) {
        panic("root capability [%llx, %llx) is not exactly representable",
              static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(top));
    }
    return c;
}

Capability
Capability::setBounds(Addr new_base, Addr new_top) const
{
    Capability c = *this;
    c.address = new_base;
    c.base = new_base;
    c.top = new_top;
    if (!tag || new_base > new_top || new_base < base || new_top > top) {
        c.tag = false;
        return c;
    }
    // Compression may round the bounds outward; reflect that in the
    // decompressed value (callers that need exact bounds pre-align via
    // representableAlignment()/representableLength()).
    Capability rounded = decode(encode(c), true);
    rounded.perms = perms;
    // Monotonicity is absolute: if rounding would escape the parent's
    // bounds, the result is not a valid derivation.
    if (rounded.base < base || rounded.top > top)
        rounded.tag = false;
    return rounded;
}

Capability
Capability::setAddress(Addr a) const
{
    Capability c = *this;
    c.address = a;
    if (!tag)
        return c;
    const ReprRange rr = representableRange(*this);
    if (a < rr.repr_base || a >= rr.repr_top)
        c.tag = false;
    return c;
}

Capability
Capability::andPerms(std::uint32_t mask) const
{
    Capability c = *this;
    c.perms &= mask;
    return c;
}

std::string
Capability::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "cap{%c addr=%llx [%llx,%llx) perms=%x}",
                  tag ? 'v' : '-',
                  static_cast<unsigned long long>(address),
                  static_cast<unsigned long long>(base),
                  static_cast<unsigned long long>(top), perms);
    return buf;
}

} // namespace crev::cap
