/**
 * @file
 * CHERI-Concentrate-style 128-bit capability compression.
 *
 * Layout of the in-memory form (the tag travels out of band in the
 * tagged memory model):
 *
 *   lo (64 bits) : address (cursor)
 *   hi (64 bits) : | perms (12) | E (6) | B (14) | L (15) | rsvd |
 *
 * Bounds are encoded as a 14-bit base mantissa B and a 15-bit length
 * mantissa L at alignment 2^E, exactly enough to express the CHERI
 * Concentrate properties this reproduction depends on:
 *
 *  - small regions (<= 8 KiB) are byte-precise (E = 0);
 *  - larger regions force E > 0, so encode() rounds bounds outward to
 *    2^E alignment — this is the padding that reservations (paper
 *    §6.2, footnote 26) must account for;
 *  - the base is recovered from the address via the standard
 *    representable-region correction, so moving the cursor outside the
 *    representable region must (and does) untag the capability.
 */

#ifndef CREV_CAP_COMPRESSION_H_
#define CREV_CAP_COMPRESSION_H_

#include <cstdint>

#include "base/logging.h"
#include "base/types.h"
#include "cap/capability.h"

namespace crev::cap {

/** The raw 128-bit in-memory form (tag excluded). */
struct CapBits
{
    std::uint64_t lo = 0; //!< address word
    std::uint64_t hi = 0; //!< metadata word

    bool operator==(const CapBits &o) const = default;
};

/** Mantissa widths of the encoding. */
constexpr unsigned kMantissaBits = 14;
/** Representable-space slack below the base, in 2^E units. */
constexpr unsigned kReprSlackBits = 12;

namespace detail {

// Field layout within the metadata word.
constexpr unsigned kPermsShift = 52;
constexpr unsigned kExpShift = 46;
constexpr unsigned kBaseShift = 32;
constexpr unsigned kLenShift = 17;

constexpr std::uint64_t kMantissaMask = (1ull << kMantissaBits) - 1;
constexpr std::uint64_t kLenMask = (1ull << (kMantissaBits + 1)) - 1;

// Maximum region size, in 2^E units, encodable at a given exponent.
// 2^14 units of representable space minus 2^12 units of slack below the
// base and 2^12 units above the top (so cursors may stray slightly out
// of bounds, e.g. one-past-the-end, without untagging).
constexpr Addr kMaxUnits =
    (Addr{1} << kMantissaBits) - 2 * (Addr{1} << kReprSlackBits);

} // namespace detail

/**
 * Exponent required to encode a region of @p length bytes.
 * E = 0 iff length <= 2^14.
 *
 * encode()/decode() below are inline: they sit on the MMU's per-access
 * capability load/store paths, where the cross-TU call cost is
 * measurable in both scheduler engines.
 */
inline unsigned
exponentFor(Addr length)
{
    unsigned e = 0;
    while ((roundUp(length, Addr{1} << e) >> e) > detail::kMaxUnits)
        ++e;
    return e;
}

/** Alignment (bytes) the base must have for exact encoding. */
inline Addr
representableAlignment(Addr length)
{
    return Addr{1} << exponentFor(length);
}

/**
 * Round @p length up so that a region of the returned length, placed at
 * representableAlignment() alignment, encodes exactly.
 */
inline Addr
representableLength(Addr length)
{
    return roundUp(length, representableAlignment(length));
}

/**
 * Compress @p c. The capability's bounds are rounded outward to the
 * encoding's precision; callers that need exact bounds must pre-align
 * (the allocator and reservation code do). The tag is not part of the
 * result.
 */
inline CapBits
encode(const Capability &c)
{
    // Select the exponent accounting for alignment-induced growth:
    // rounding the base down and the top up can add up to two units.
    unsigned e = exponentFor(c.length());
    Addr b = 0, t = 0;
    for (;; ++e) {
        b = roundDown(c.base, Addr{1} << e);
        t = roundUp(c.top, Addr{1} << e);
        if (((t - b) >> e) <= detail::kMaxUnits)
            break;
        CREV_ASSERT(e < 50);
    }

    CapBits bits;
    bits.lo = c.address;
    bits.hi = (static_cast<std::uint64_t>(c.perms) & 0xFFF)
                  << detail::kPermsShift |
              (static_cast<std::uint64_t>(e) & 0x3F)
                  << detail::kExpShift |
              ((b >> e) & detail::kMantissaMask) << detail::kBaseShift |
              (((t - b) >> e) & detail::kLenMask) << detail::kLenShift;
    return bits;
}

/**
 * Decompress @p bits; @p tag supplies the out-of-band tag bit.
 * Untagged bit patterns decode to *some* capability value without
 * faulting (sweeps inspect the tag first).
 */
inline Capability
decode(const CapBits &bits, bool tag)
{
    Capability c;
    c.address = bits.lo;
    c.perms = static_cast<std::uint32_t>(bits.hi >> detail::kPermsShift) &
              0xFFF;
    const unsigned e =
        static_cast<unsigned>(bits.hi >> detail::kExpShift) & 0x3F;
    const std::uint64_t bmant =
        (bits.hi >> detail::kBaseShift) & detail::kMantissaMask;
    const std::uint64_t lmant =
        (bits.hi >> detail::kLenShift) & detail::kLenMask;

    // Recover the base's high bits from the address via the
    // representable-region correction (CHERI Concentrate style): the
    // region begins 2^12 units below the base's mantissa.
    const std::uint64_t amid =
        (c.address >> e) & detail::kMantissaMask;
    // Untagged garbage can carry any 6-bit exponent; once e + 14
    // covers the word there are no address bits above the mantissa.
    const unsigned top_shift = e + kMantissaBits;
    const std::uint64_t atop =
        top_shift < 64 ? c.address >> top_shift : 0;
    const std::uint64_t r =
        (bmant - (std::uint64_t{1} << kReprSlackBits)) &
        detail::kMantissaMask;
    const std::int64_t cb = (bmant < r ? 1 : 0) - (amid < r ? 1 : 0);

    const std::uint64_t base_hi = atop + static_cast<std::uint64_t>(cb);
    c.base = ((base_hi << kMantissaBits) | bmant) << e;
    c.top = c.base + (lmant << e);
    c.tag = tag;
    return c;
}

/**
 * The representable region of a capability: cursors within
 * [repr_base, repr_top) keep the encoding decodable. Bounds-valid
 * cursors are always inside it.
 */
struct ReprRange
{
    Addr repr_base;
    Addr repr_top;
};
ReprRange representableRange(const Capability &c);

} // namespace crev::cap

#endif // CREV_CAP_COMPRESSION_H_
