/**
 * @file
 * CHERI-Concentrate-style 128-bit capability compression.
 *
 * Layout of the in-memory form (the tag travels out of band in the
 * tagged memory model):
 *
 *   lo (64 bits) : address (cursor)
 *   hi (64 bits) : | perms (12) | E (6) | B (14) | L (15) | rsvd |
 *
 * Bounds are encoded as a 14-bit base mantissa B and a 15-bit length
 * mantissa L at alignment 2^E, exactly enough to express the CHERI
 * Concentrate properties this reproduction depends on:
 *
 *  - small regions (<= 8 KiB) are byte-precise (E = 0);
 *  - larger regions force E > 0, so encode() rounds bounds outward to
 *    2^E alignment — this is the padding that reservations (paper
 *    §6.2, footnote 26) must account for;
 *  - the base is recovered from the address via the standard
 *    representable-region correction, so moving the cursor outside the
 *    representable region must (and does) untag the capability.
 */

#ifndef CREV_CAP_COMPRESSION_H_
#define CREV_CAP_COMPRESSION_H_

#include <cstdint>

#include "base/types.h"
#include "cap/capability.h"

namespace crev::cap {

/** The raw 128-bit in-memory form (tag excluded). */
struct CapBits
{
    std::uint64_t lo = 0; //!< address word
    std::uint64_t hi = 0; //!< metadata word

    bool operator==(const CapBits &o) const = default;
};

/** Mantissa widths of the encoding. */
constexpr unsigned kMantissaBits = 14;
/** Representable-space slack below the base, in 2^E units. */
constexpr unsigned kReprSlackBits = 12;

/**
 * Exponent required to encode a region of @p length bytes.
 * E = 0 iff length <= 2^14.
 */
unsigned exponentFor(Addr length);

/** Alignment (bytes) the base must have for exact encoding. */
Addr representableAlignment(Addr length);

/**
 * Round @p length up so that a region of the returned length, placed at
 * representableAlignment() alignment, encodes exactly.
 */
Addr representableLength(Addr length);

/**
 * Compress @p c. The capability's bounds are rounded outward to the
 * encoding's precision; callers that need exact bounds must pre-align
 * (the allocator and reservation code do). The tag is not part of the
 * result.
 */
CapBits encode(const Capability &c);

/**
 * Decompress @p bits; @p tag supplies the out-of-band tag bit.
 * Untagged bit patterns decode to *some* capability value without
 * faulting (sweeps inspect the tag first).
 */
Capability decode(const CapBits &bits, bool tag);

/**
 * The representable region of a capability: cursors within
 * [repr_base, repr_top) keep the encoding decodable. Bounds-valid
 * cursors are always inside it.
 */
struct ReprRange
{
    Addr repr_base;
    Addr repr_top;
};
ReprRange representableRange(const Capability &c);

} // namespace crev::cap

#endif // CREV_CAP_COMPRESSION_H_
