#include "mem/memory_system.h"

#include "base/logging.h"

namespace crev::mem {

MemorySystem::MemorySystem(unsigned num_cores, const CacheConfig &l1,
                           const CacheConfig &llc, const MemLatency &lat)
    : llc_(llc), lat_(lat), counters_(num_cores)
{
    CREV_ASSERT(num_cores > 0);
    l1_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        l1_.emplace_back(l1);
}

Cycles
MemorySystem::accessLine(unsigned core, Addr line_paddr, bool write)
{
    MemCounters &ctr = counters_[core];
    ++ctr.accesses;

    const CacheResult l1r = l1_[core].access(line_paddr, write);
    if (l1r.hit)
        return lat_.l1_hit;
    ++ctr.l1_misses;

    // L1 victim writeback lands in the (shared, larger) LLC.
    if (l1r.evicted_dirty) {
        const CacheResult wb = llc_.access(l1r.victim_line, true);
        if (!wb.hit) {
            ++ctr.bus_reads;
            if (wb.evicted_dirty)
                ++ctr.bus_writes;
        } else if (wb.evicted_dirty) {
            ++ctr.bus_writes;
        }
    }

    const CacheResult llcr = llc_.access(line_paddr, false);
    if (llcr.hit)
        return lat_.l1_hit + lat_.llc_hit;

    ++ctr.bus_reads;
    if (llcr.evicted_dirty)
        ++ctr.bus_writes;
    return lat_.l1_hit + lat_.llc_hit + lat_.dram;
}

Cycles
MemorySystem::accessLineFast(unsigned core, Addr line_paddr, bool write,
                             bool l1_hint)
{
    // Gated twin of accessLine (DESIGN.md §14.4): same counter and
    // cache transitions in the same order, but through accessInline so
    // the L1 and LLC state machines fuse into this frame with no
    // cross-TU calls. Both paths execute the one accessInline
    // definition, so the sequences cannot diverge.
    MemCounters &ctr = counters_[core];
    ++ctr.accesses;

    const CacheResult l1r =
        l1_[core].accessInline(line_paddr, write, l1_hint);
    if (l1r.hit)
        return lat_.l1_hit;
    ++ctr.l1_misses;

    if (l1r.evicted_dirty) {
        // LLC legs of a miss: the streaming sweeps that dominate the
        // heavy cells rarely repeat an LLC set back-to-back, so the
        // hint probe is skipped (mru_ is still refreshed by the scan).
        const CacheResult wb =
            llc_.accessInline(l1r.victim_line, true, false);
        if (!wb.hit) {
            ++ctr.bus_reads;
            if (wb.evicted_dirty)
                ++ctr.bus_writes;
        } else if (wb.evicted_dirty) {
            ++ctr.bus_writes;
        }
    }

    const CacheResult llcr = llc_.accessInline(line_paddr, false, false);
    if (llcr.hit)
        return lat_.l1_hit + lat_.llc_hit;

    ++ctr.bus_reads;
    if (llcr.evicted_dirty)
        ++ctr.bus_writes;
    return lat_.l1_hit + lat_.llc_hit + lat_.dram;
}

Cycles
MemorySystem::accessSlow(unsigned core, Addr paddr, std::size_t len,
                         bool write)
{
    CREV_ASSERT(core < l1_.size());
    CREV_ASSERT(len > 0);
    Cycles total = 0;
    const Addr first = roundDown(paddr, kLineSize);
    const Addr last = roundDown(paddr + len - 1, kLineSize);
    if (fast_) {
        for (Addr line = first; line <= last; line += kLineSize)
            total += accessLineFast(core, line, write);
        return total;
    }
    for (Addr line = first; line <= last; line += kLineSize)
        total += accessLine(core, line, write);
    return total;
}

void
MemorySystem::invalidateFrame(Addr pfn)
{
    // Each cache proves absence in O(1) via its per-frame resident
    // count before any per-line walk (frame reuse mostly hits caches
    // that never touched the frame).
    for (auto &l1 : l1_)
        l1.invalidateFrame(pfn);
    llc_.invalidateFrame(pfn);
}

void
MemorySystem::setFastIndex(bool on)
{
    fast_ = on;
    for (auto &l1 : l1_)
        l1.setFastIndex(on);
    llc_.setFastIndex(on);
}

const MemCounters &
MemorySystem::counters(unsigned core) const
{
    CREV_ASSERT(core < counters_.size());
    return counters_[core];
}

MemCounters
MemorySystem::totalCounters() const
{
    MemCounters total;
    for (const auto &c : counters_) {
        total.accesses += c.accesses;
        total.l1_misses += c.l1_misses;
        total.bus_reads += c.bus_reads;
        total.bus_writes += c.bus_writes;
    }
    return total;
}

} // namespace crev::mem
