/**
 * @file
 * A set-associative, write-back, write-allocate cache timing model.
 *
 * The cache tracks only line addresses and dirtiness; actual data lives
 * in PhysMem. That is all the paper's bus-traffic experiments need: a
 * bus transaction happens when a line is fetched from, or written back
 * to, the level below.
 *
 * A host-side per-frame resident-line count is maintained alongside
 * (updated on fill/eviction/invalidation, i.e. only on misses), so
 * frame-reuse invalidation can prove in O(1) that a cache holds no
 * line of a frame instead of walking all of the frame's sets.
 */

#ifndef CREV_MEM_CACHE_H_
#define CREV_MEM_CACHE_H_

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace crev::mem {

/** Cache geometry. */
struct CacheConfig
{
    std::size_t size_bytes = 32 * 1024;
    unsigned assoc = 4;
};

/** Outcome of a cache access. */
struct CacheResult
{
    bool hit = false;
    bool evicted_dirty = false; //!< a dirty victim was written back
    Addr victim_line = 0;       //!< line address of the writeback
};

/** One level of cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line containing @p addr; allocates on miss.
     * @param write marks the line dirty.
     */
    CacheResult access(Addr addr, bool write);

    /** Drop a line if present (no writeback); used on frame reuse. */
    void invalidateLine(Addr addr);

    /**
     * Drop every resident line of frame @p pfn (no writebacks).
     * Returns immediately when the frame provably has no lines here;
     * otherwise walks the frame's sets, stopping once the resident
     * count says the rest cannot match.
     */
    void invalidateFrame(Addr pfn);

    /** Resident lines belonging to frame @p pfn (host-side count). */
    unsigned residentLinesOf(Addr pfn) const;

    /** Whether the line containing @p addr is resident. */
    bool contains(Addr addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(Addr line_addr) const;

    /** Frame of a line address (line_addr is already >> kLineBits). */
    static Addr
    frameOfLine(Addr line_addr)
    {
        return line_addr >> (kPageBits - kLineBits);
    }

    void trackFill(Addr line_addr);
    void trackDrop(Addr line_addr);

    unsigned assoc_;
    std::size_t num_sets_;
    std::vector<Line> lines_; // num_sets_ * assoc_
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    /** pfn -> resident line count, indexed directly (PhysMem hands
     *  out dense pfns, so this stays small); grown on first fill. */
    std::vector<unsigned> frame_lines_;
};

} // namespace crev::mem

#endif // CREV_MEM_CACHE_H_
