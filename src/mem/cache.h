/**
 * @file
 * A set-associative, write-back, write-allocate cache timing model.
 *
 * The cache tracks only line addresses and dirtiness; actual data lives
 * in PhysMem. That is all the paper's bus-traffic experiments need: a
 * bus transaction happens when a line is fetched from, or written back
 * to, the level below.
 *
 * A host-side per-frame resident-line count is maintained alongside
 * (updated on fill/eviction/invalidation, i.e. only on misses), so
 * frame-reuse invalidation can prove in O(1) that a cache holds no
 * line of a frame instead of walking all of the frame's sets.
 *
 * Under the lockstep engine a per-set MRU-way hint is probed before
 * the set scan (DESIGN.md §14.4). Hit/miss outcomes, LRU victim
 * choices, and writeback sequences are identical with the hint on or
 * off — the switch is invisible to simulated state.
 */

#ifndef CREV_MEM_CACHE_H_
#define CREV_MEM_CACHE_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "base/types.h"

namespace crev::mem {

/** Cache geometry. */
struct CacheConfig
{
    std::size_t size_bytes = 32 * 1024;
    unsigned assoc = 4;
};

/** Outcome of a cache access. */
struct CacheResult
{
    bool hit = false;
    bool evicted_dirty = false; //!< a dirty victim was written back
    Addr victim_line = 0;       //!< line address of the writeback
};

/** One level of cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line containing @p addr; allocates on miss.
     * @param write marks the line dirty.
     */
    CacheResult access(Addr addr, bool write);

    /** Drop a line if present (no writeback); used on frame reuse. */
    void invalidateLine(Addr addr);

    /**
     * Drop every resident line of frame @p pfn (no writebacks).
     * Returns immediately when the frame provably has no lines here;
     * otherwise walks the frame's sets, stopping once the resident
     * count says the rest cannot match.
     */
    void invalidateFrame(Addr pfn);

    /** Resident lines belonging to frame @p pfn (host-side count). */
    unsigned residentLinesOf(Addr pfn) const;

    /** Whether the line containing @p addr is resident. */
    bool contains(Addr addr) const;

    /**
     * Hint-only probe backing MemorySystem's gated single-line fast
     * path (DESIGN.md §14.4). On an MRU-way hit it performs exactly
     * the transitions access() would (tick/lru/dirty/hits) and
     * returns true; otherwise it changes nothing and returns false so
     * the caller can fall back to the full access() path. Must only
     * be called with the hint enabled.
     */
    bool
    tryHintAccess(Addr addr, bool write)
    {
        const Addr line_addr = addr >> kLineBits;
        const std::size_t set =
            static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
        Line &h = lines_[set * assoc_ + mru_[set]];
        if (h.valid && h.tag == line_addr) {
            h.lru = ++tick_;
            h.dirty |= write;
            ++hits_;
            return true;
        }
        return false;
    }

    /**
     * The access state machine, inline so MemorySystem's gated miss
     * path (DESIGN.md §14.4) can fuse the L1 and LLC transitions into
     * one frame with no cross-TU calls. access() is a thin wrapper
     * around this — serial and lockstep engines execute the one
     * definition, so the transition sequences cannot diverge.
     */
    CacheResult
    accessInline(Addr addr, bool write, bool try_hint = true)
    {
        const Addr line_addr = addr >> kLineBits;
        const std::size_t set =
            static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
        Line *ways = &lines_[set * assoc_];
        ++tick_;

        CacheResult res;
        // @p try_hint lets callers that already probed the hint (or
        // know it rarely pays, e.g. the LLC legs of a miss) skip the
        // redundant probe; the scan still refreshes mru_ on every hit
        // and fill, so later probes stay accurate either way.
        if (fast_ && try_hint) {
            // MRU-way hint: a hint hit performs exactly the
            // transitions the set scan below would have (same
            // lru/dirty/hit updates); a mismatch falls through to the
            // unmodified scan.
            Line &h = ways[mru_[set]];
            if (h.valid && h.tag == line_addr) {
                h.lru = tick_;
                h.dirty |= write;
                ++hits_;
                res.hit = true;
                return res;
            }
        }
        Line *victim = &ways[0];
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &line = ways[w];
            if (line.valid && line.tag == line_addr) {
                line.lru = tick_;
                line.dirty |= write;
                ++hits_;
                res.hit = true;
                if (fast_)
                    mru_[set] = static_cast<std::uint8_t>(w);
                return res;
            }
            if (!line.valid) {
                victim = &line;
            } else if (victim->valid && line.lru < victim->lru) {
                victim = &line;
            }
        }

        ++misses_;
        if (fast_)
            mru_[set] = static_cast<std::uint8_t>(victim - ways);
        if (victim->valid) {
            trackDrop(victim->tag);
            if (victim->dirty) {
                res.evicted_dirty = true;
                res.victim_line = victim->tag << kLineBits;
            }
        }
        victim->tag = line_addr;
        victim->valid = true;
        victim->dirty = write;
        victim->lru = tick_;
        trackFill(line_addr);
        return res;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /**
     * Enable the per-set MRU-way hint, probed before the set scan. A
     * hint hit performs exactly the transitions the scan would have
     * (same lru/dirty/hit updates); mismatches fall through to the
     * unmodified scan. Pure host-side change.
     */
    void setFastIndex(bool on);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(Addr line_addr) const;

    /** Frame of a line address (line_addr is already >> kLineBits). */
    static Addr
    frameOfLine(Addr line_addr)
    {
        return line_addr >> (kPageBits - kLineBits);
    }

    void
    trackFill(Addr line_addr)
    {
        const auto pfn = static_cast<std::size_t>(frameOfLine(line_addr));
        if (pfn >= frame_lines_.size())
            frame_lines_.resize(pfn + 1, 0);
        ++frame_lines_[pfn];
    }

    void
    trackDrop(Addr line_addr)
    {
        const auto pfn = static_cast<std::size_t>(frameOfLine(line_addr));
        CREV_ASSERT(pfn < frame_lines_.size() && frame_lines_[pfn] > 0);
        --frame_lines_[pfn];
    }

    unsigned assoc_;
    std::size_t num_sets_;
    std::vector<Line> lines_; // num_sets_ * assoc_
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    bool fast_ = false;
    std::vector<std::uint8_t> mru_; //!< per-set last-touched way

    /** pfn -> resident line count, indexed directly (PhysMem hands
     *  out dense pfns, so this stays small); grown on first fill. */
    std::vector<unsigned> frame_lines_;
};

} // namespace crev::mem

#endif // CREV_MEM_CACHE_H_
