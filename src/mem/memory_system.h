/**
 * @file
 * The machine's memory hierarchy timing model.
 *
 * Per-core private L1 caches in front of a shared last-level cache in
 * front of DRAM. "Bus transactions" are counted at the LLC<->DRAM
 * boundary and attributed to the requesting core — the analogue of the
 * paper's system-mode pmcstat bus-access counters used as a proxy for
 * DRAM traffic (figs. 4 and 6).
 */

#ifndef CREV_MEM_MEMORY_SYSTEM_H_
#define CREV_MEM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "mem/cache.h"

namespace crev::mem {

/** Latency parameters (cycles). */
struct MemLatency
{
    Cycles l1_hit = 4;
    Cycles llc_hit = 14;
    Cycles dram = 100;
};

/** Per-core traffic counters. */
struct MemCounters
{
    std::uint64_t accesses = 0;  //!< CPU-side accesses
    std::uint64_t l1_misses = 0;
    std::uint64_t bus_reads = 0;  //!< LLC miss fills from DRAM
    std::uint64_t bus_writes = 0; //!< LLC dirty writebacks to DRAM

    std::uint64_t
    busTransactions() const
    {
        return bus_reads + bus_writes;
    }
};

/**
 * Timing and traffic model for all simulated memory operations. Data
 * movement is handled separately by PhysMem; this class only accounts
 * for latency and traffic given the physical addresses touched.
 */
class MemorySystem
{
  public:
    MemorySystem(unsigned num_cores, const CacheConfig &l1,
                 const CacheConfig &llc, const MemLatency &lat);

    /**
     * Perform an access of @p len bytes at physical address @p paddr
     * from @p core; returns the latency in cycles. Accesses spanning
     * line boundaries touch each line once.
     */
    Cycles
    access(unsigned core, Addr paddr, std::size_t len, bool write)
    {
        // Gated single-line fast path (DESIGN.md §14.4): the common
        // L1 MRU-way hit skips the per-line loop and cross-TU calls.
        // Counter and cache transitions are identical to accessSlow's
        // (tryHintAccess performs exactly the scan's hit updates).
        // `len - 1 < kLineSize` also routes len == 0 to the slow
        // path's assert.
        if (fast_ && len - 1 < kLineSize &&
            (paddr & ~Addr{kLineSize - 1}) ==
                ((paddr + len - 1) & ~Addr{kLineSize - 1})) {
            if (l1_[core].tryHintAccess(paddr, write)) {
                ++counters_[core].accesses;
                return lat_.l1_hit;
            }
            // The hint already missed: take the fused line path with
            // the redundant L1 hint probe skipped.
            return accessLineFast(core, paddr & ~Addr{kLineSize - 1},
                                  write, false);
        }
        return accessSlow(core, paddr, len, write);
    }

    /** Invalidate all cached copies of a frame (on frame reuse). */
    void invalidateFrame(Addr pfn);

    /** Packed fast backing + MRU-way hints in every cache (lockstep
     *  engine's host fast structures, DESIGN.md §14.4); hit/miss and
     *  writeback sequences are identical either way. */
    void setFastIndex(bool on);

    const MemCounters &counters(unsigned core) const;
    /** Aggregate over all cores. */
    MemCounters totalCounters() const;

    unsigned numCores() const { return static_cast<unsigned>(l1_.size()); }

  private:
    Cycles accessSlow(unsigned core, Addr paddr, std::size_t len,
                      bool write);
    Cycles accessLine(unsigned core, Addr line_paddr, bool write);
    /** Gated twin of accessLine built on Cache::accessInline.
     *  @p l1_hint: probe the L1 MRU hint (false when the caller
     *  already did). */
    Cycles accessLineFast(unsigned core, Addr line_paddr, bool write,
                          bool l1_hint = true);

    std::vector<Cache> l1_;
    Cache llc_;
    MemLatency lat_;
    std::vector<MemCounters> counters_;
    bool fast_ = false;
};

} // namespace crev::mem

#endif // CREV_MEM_MEMORY_SYSTEM_H_
