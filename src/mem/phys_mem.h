/**
 * @file
 * Sparse tagged physical memory.
 *
 * Memory is organised as 4 KiB frames; each frame carries 256 tag bits,
 * one per 16-byte capability granule, mirroring Morello's tagged DRAM
 * (paper §2.1: "machinery is required to associate tags with memory
 * words"). Frames are allocated/freed by the simulated VM layer;
 * occupancy high-water marks feed the peak-RSS experiment (fig. 3).
 *
 * Host-performance layer (DESIGN.md §9): tags are stored as packed
 * 64-bit *tag-summary words* so the sweep can scan a whole cache
 * line's granules with one shift instead of per-granule calls, and
 * every frame maintains a 64-bit *line-tag summary* (one bit per cache
 * line, set iff any granule of the line is tagged) kept up to date on
 * every tag set/clear. Neither structure affects simulated cycle
 * accounting; the Auditor cross-checks the summary invariant.
 */

#ifndef CREV_MEM_PHYS_MEM_H_
#define CREV_MEM_PHYS_MEM_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/logging.h"
#include "base/simd.h"
#include "base/types.h"
#include "cap/compression.h"

namespace crev::mem {

/** Granules per cache line (the sweep's nibble width). */
constexpr std::size_t kGranulesPerLine = kLineSize / kGranuleSize;

/** Packed per-granule tag bits of one frame (the summary words). */
class TagWords
{
  public:
    static constexpr std::size_t kWords = kGranulesPerPage / 64;

    bool
    test(std::size_t g) const
    {
        return (w_[g >> 6] >> (g & 63)) & 1u;
    }

    void
    set(std::size_t g)
    {
        w_[g >> 6] |= std::uint64_t{1} << (g & 63);
    }

    void
    reset(std::size_t g)
    {
        w_[g >> 6] &= ~(std::uint64_t{1} << (g & 63));
    }

    bool any() const { return simd::anySet(w_.data(), kWords); }

    std::size_t
    count() const
    {
        return static_cast<std::size_t>(
            simd::popcountWords(w_.data(), kWords));
    }

    /** Raw word @p k (64 granule bits), for ctz-driven scans. */
    std::uint64_t word(std::size_t k) const { return w_[k]; }

    /** All packed words, for the batch kernels (base/simd.h). */
    const std::uint64_t *words() const { return w_.data(); }

    /** The 4 tag bits of intra-page cache line @p line. */
    unsigned
    lineNibble(std::size_t line) const
    {
        return static_cast<unsigned>(
                   w_[line >> 4] >> ((line & 15) * kGranulesPerLine)) &
               0xFu;
    }

  private:
    std::array<std::uint64_t, kWords> w_{};
};

/** One physical frame: data bytes plus per-granule capability tags. */
class Frame
{
  public:
    std::array<std::uint8_t, kPageSize> bytes{};

    /** Tag bit of granule @p g. */
    bool testTag(std::size_t g) const { return tags_.test(g); }

    /** Set/clear granule @p g's tag, maintaining the line summary. */
    void
    setTag(std::size_t g, bool v)
    {
        if (v) {
            tags_.set(g);
            line_summary_ |= std::uint64_t{1} << lineOf(g);
        } else {
            clearTag(g);
        }
    }

    void
    clearTag(std::size_t g)
    {
        tags_.reset(g);
        const std::size_t line = lineOf(g);
        if (tags_.lineNibble(line) == 0)
            line_summary_ &= ~(std::uint64_t{1} << line);
    }

    /** Whether any granule of the frame is tagged (O(1)). */
    bool anyTags() const { return line_summary_ != 0; }

    /** Tagged-granule count (audit/debug). */
    std::size_t tagCount() const { return tags_.count(); }

    /** The packed tag words (read-only; mutate via set/clearTag). */
    const TagWords &tagWords() const { return tags_; }

    /** One bit per cache line: set iff the line holds a tagged
     *  granule. The sweep's clean-line skip reads this. */
    std::uint64_t lineTagSummary() const { return line_summary_; }

    /** Tag nibble of intra-page cache line @p line. */
    unsigned lineNibble(std::size_t line) const
    {
        return tags_.lineNibble(line);
    }

    /**
     * Summary invariant check (Auditor): every line-summary bit must
     * be set iff the line's nibble is non-zero. Returns true when
     * consistent.
     */
    bool
    summaryConsistent() const
    {
        std::uint64_t recomputed = 0;
        for (std::size_t line = 0; line < kPageSize / kLineSize; ++line)
            if (tags_.lineNibble(line) != 0)
                recomputed |= std::uint64_t{1} << line;
        return recomputed == line_summary_;
    }

  private:
    static std::size_t lineOf(std::size_t g)
    {
        return g / kGranulesPerLine;
    }

    TagWords tags_;
    std::uint64_t line_summary_ = 0;
};

/**
 * The machine's physical memory. Frame numbers (pfns) are dense
 * indices; a free list recycles released frames.
 */
class PhysMem
{
  public:
    PhysMem() = default;

    /** Allocate a zeroed frame; returns its pfn. */
    Addr allocFrame();

    /** Release a frame back to the free pool. */
    void freeFrame(Addr pfn);

    /** Frames currently allocated. */
    std::size_t framesInUse() const { return in_use_; }

    /** High-water mark of allocated frames (peak RSS proxy). */
    std::size_t peakFrames() const { return peak_; }

    /** Direct access to a frame (must be allocated). */
    Frame &frame(Addr pfn);
    const Frame &frame(Addr pfn) const;

    /**
     * Cache-free frame lookup for concurrent host readers (the
     * pre-scan workers). frame() mutates the one-entry frame cache
     * even through the const overload, so it must never be called
     * from more than one host thread at a time; this accessor touches
     * no shared mutable state.
     */
    const Frame &frameUncached(Addr pfn) const;

    /** Read @p len bytes at physical address @p paddr (intra-page). */
    void read(Addr paddr, void *out, std::size_t len) const;

    /**
     * Write @p len bytes at @p paddr (intra-page). Clears the tags of
     * every granule the write overlaps: ordinary data stores always
     * invalidate capabilities (CHERI tag semantics).
     */
    void write(Addr paddr, const void *data, std::size_t len);

    /** Tag bit of the granule containing @p paddr. */
    bool tagAt(Addr paddr) const;

    /** Clear the tag of the granule containing @p paddr. */
    void clearTag(Addr paddr);

    /** Whether any granule of frame @p pfn is tagged. */
    bool frameHasTags(Addr pfn) const;

    /** Tag nibble of the cache line containing @p paddr. */
    unsigned lineTagNibble(Addr paddr) const;

    /** Store a capability (16-byte aligned @p paddr) with its tag. */
    void storeCap(Addr paddr, const cap::CapBits &bits, bool tag);

    /** Load a capability; returns the tag bit. */
    bool loadCap(Addr paddr, cap::CapBits &bits) const;

    /**
     * Lockstep-engine lane-safe lookup (DESIGN.md §14.4): route frame
     * lookups through the dense pfn-indexed pointer vector instead of
     * the hash table + one-entry mutable cache. Pfns are dense from 1
     * and frames are never erased, so the vector is an exact mirror;
     * unlike the one-entry cache it performs no mutation on lookup.
     * Pure host-side switch: no simulated observable changes.
     */
    void setDenseIndex(bool on) { dense_index_ = on; }

    // ----------------------------------------------------------------
    // Inline dense variants (lockstep engine fast paths, DESIGN.md
    // §14.4). Each replicates its cross-TU twin above exactly — same
    // asserts, same tag transitions — but resolves the frame through
    // the dense pfn vector inline at the call site, so the MMU's hot
    // cap/data paths pay no function-call or hash-lookup cost. Callers
    // gate on the lockstep engine; the twins above stay the serial
    // reference. Simulated observables are identical either way.
    // ----------------------------------------------------------------

    Frame &
    frameDense(Addr pfn)
    {
        CREV_ASSERT(dense_index_ && pfn < by_pfn_.size());
        Frame *f = by_pfn_[pfn];
        CREV_ASSERT(f != nullptr);
        return *f;
    }

    const Frame &
    frameDense(Addr pfn) const
    {
        CREV_ASSERT(dense_index_ && pfn < by_pfn_.size());
        const Frame *f = by_pfn_[pfn];
        CREV_ASSERT(f != nullptr);
        return *f;
    }

    bool
    tagAtDense(Addr paddr) const
    {
        return frameDense(pageOf(paddr)).testTag(granuleIndex(paddr));
    }

    void
    clearTagDense(Addr paddr)
    {
        frameDense(pageOf(paddr)).clearTag(granuleIndex(paddr));
    }

    void
    readDense(Addr paddr, void *out, std::size_t len) const
    {
        CREV_ASSERT(pageOffset(paddr) + len <= kPageSize);
        const Frame &f = frameDense(pageOf(paddr));
        std::memcpy(out, f.bytes.data() + pageOffset(paddr), len);
    }

    void
    writeDense(Addr paddr, const void *data, std::size_t len)
    {
        CREV_ASSERT(pageOffset(paddr) + len <= kPageSize);
        Frame &f = frameDense(pageOf(paddr));
        std::memcpy(f.bytes.data() + pageOffset(paddr), data, len);
        // Data stores clear the tags of all granules they touch.
        const std::size_t first = granuleIndex(paddr);
        const std::size_t last = granuleIndex(paddr + len - 1);
        for (std::size_t g = first; g <= last; ++g)
            f.clearTag(g);
    }

    void
    storeCapDense(Addr paddr, const cap::CapBits &bits, bool tag)
    {
        CREV_ASSERT(pageOffset(paddr) % kGranuleSize == 0);
        Frame &f = frameDense(pageOf(paddr));
        std::memcpy(f.bytes.data() + pageOffset(paddr), &bits.lo, 8);
        std::memcpy(f.bytes.data() + pageOffset(paddr) + 8, &bits.hi, 8);
        f.setTag(granuleIndex(paddr), tag);
    }

    bool
    loadCapDense(Addr paddr, cap::CapBits &bits) const
    {
        CREV_ASSERT(pageOffset(paddr) % kGranuleSize == 0);
        const Frame &f = frameDense(pageOf(paddr));
        std::memcpy(&bits.lo, f.bytes.data() + pageOffset(paddr), 8);
        std::memcpy(&bits.hi, f.bytes.data() + pageOffset(paddr) + 8, 8);
        return f.testTag(granuleIndex(paddr));
    }

    /** Granule index of @p paddr within its page. */
    static std::size_t
    granuleIndex(Addr paddr)
    {
        return static_cast<std::size_t>(pageOffset(paddr) >>
                                        kGranuleBits);
    }

  private:
    /**
     * One-entry host frame-pointer cache. Frame storage is never
     * erased (freed frames stay in the table for reuse), so a cached
     * pointer can never dangle; pfn 0 is the invalid sentinel.
     */
    Frame *lookupFrame(Addr pfn) const;

    std::unordered_map<Addr, std::unique_ptr<Frame>> frames_;
    /** Dense pfn → frame pointer mirror of frames_ (pfn 0 = null). */
    std::vector<Frame *> by_pfn_{nullptr};
    std::vector<Addr> free_list_;
    Addr next_pfn_ = 1; // pfn 0 reserved as "invalid"
    std::size_t in_use_ = 0;
    std::size_t peak_ = 0;
    bool dense_index_ = false;

    mutable Addr cached_pfn_ = 0;
    mutable Frame *cached_frame_ = nullptr;
};

} // namespace crev::mem

#endif // CREV_MEM_PHYS_MEM_H_
