/**
 * @file
 * Sparse tagged physical memory.
 *
 * Memory is organised as 4 KiB frames; each frame carries 256 tag bits,
 * one per 16-byte capability granule, mirroring Morello's tagged DRAM
 * (paper §2.1: "machinery is required to associate tags with memory
 * words"). Frames are allocated/freed by the simulated VM layer;
 * occupancy high-water marks feed the peak-RSS experiment (fig. 3).
 */

#ifndef CREV_MEM_PHYS_MEM_H_
#define CREV_MEM_PHYS_MEM_H_

#include <array>
#include <bitset>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "cap/compression.h"

namespace crev::mem {

/** One physical frame: data bytes plus per-granule capability tags. */
struct Frame
{
    std::array<std::uint8_t, kPageSize> bytes{};
    std::bitset<kGranulesPerPage> tags{};
};

/**
 * The machine's physical memory. Frame numbers (pfns) are dense
 * indices; a free list recycles released frames.
 */
class PhysMem
{
  public:
    PhysMem() = default;

    /** Allocate a zeroed frame; returns its pfn. */
    Addr allocFrame();

    /** Release a frame back to the free pool. */
    void freeFrame(Addr pfn);

    /** Frames currently allocated. */
    std::size_t framesInUse() const { return in_use_; }

    /** High-water mark of allocated frames (peak RSS proxy). */
    std::size_t peakFrames() const { return peak_; }

    /** Direct access to a frame (must be allocated). */
    Frame &frame(Addr pfn);
    const Frame &frame(Addr pfn) const;

    /** Read @p len bytes at physical address @p paddr (intra-page). */
    void read(Addr paddr, void *out, std::size_t len) const;

    /**
     * Write @p len bytes at @p paddr (intra-page). Clears the tags of
     * every granule the write overlaps: ordinary data stores always
     * invalidate capabilities (CHERI tag semantics).
     */
    void write(Addr paddr, const void *data, std::size_t len);

    /** Tag bit of the granule containing @p paddr. */
    bool tagAt(Addr paddr) const;

    /** Clear the tag of the granule containing @p paddr. */
    void clearTag(Addr paddr);

    /** Whether any granule of frame @p pfn is tagged. */
    bool frameHasTags(Addr pfn) const;

    /** Store a capability (16-byte aligned @p paddr) with its tag. */
    void storeCap(Addr paddr, const cap::CapBits &bits, bool tag);

    /** Load a capability; returns the tag bit. */
    bool loadCap(Addr paddr, cap::CapBits &bits) const;

  private:
    static std::size_t granuleIndex(Addr paddr);

    std::unordered_map<Addr, std::unique_ptr<Frame>> frames_;
    std::vector<Addr> free_list_;
    Addr next_pfn_ = 1; // pfn 0 reserved as "invalid"
    std::size_t in_use_ = 0;
    std::size_t peak_ = 0;
};

} // namespace crev::mem

#endif // CREV_MEM_PHYS_MEM_H_
