#include "mem/cache.h"

#include "base/logging.h"

namespace crev::mem {

Cache::Cache(const CacheConfig &cfg) : assoc_(cfg.assoc)
{
    CREV_ASSERT(cfg.assoc > 0);
    num_sets_ = cfg.size_bytes / (kLineSize * cfg.assoc);
    CREV_ASSERT(num_sets_ > 0);
    CREV_ASSERT((num_sets_ & (num_sets_ - 1)) == 0);
    lines_.resize(num_sets_ * assoc_);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
}

void
Cache::setFastIndex(bool on)
{
    fast_ = on;
    if (on)
        mru_.assign(num_sets_, 0);
    else
        mru_.clear();
}

CacheResult
Cache::access(Addr addr, bool write)
{
    return accessInline(addr, write);
}

void
Cache::invalidateLine(Addr addr)
{
    const Addr line_addr = addr >> kLineBits;
    Line *ways = &lines_[setIndex(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == line_addr) {
            ways[w].valid = false;
            ways[w].dirty = false;
            trackDrop(line_addr);
        }
    }
}

unsigned
Cache::residentLinesOf(Addr pfn) const
{
    return pfn < frame_lines_.size()
               ? frame_lines_[static_cast<std::size_t>(pfn)]
               : 0u;
}

void
Cache::invalidateFrame(Addr pfn)
{
    unsigned remaining = residentLinesOf(pfn);
    if (remaining == 0)
        return;
    const Addr base = pfn << kPageBits;
    for (Addr off = 0; off < kPageSize && remaining > 0;
         off += kLineSize) {
        const Addr line_addr = (base + off) >> kLineBits;
        Line *ways = &lines_[setIndex(line_addr) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (ways[w].valid && ways[w].tag == line_addr) {
                ways[w].valid = false;
                ways[w].dirty = false;
                trackDrop(line_addr);
                --remaining;
            }
        }
    }
    CREV_ASSERT(residentLinesOf(pfn) == 0);
}

bool
Cache::contains(Addr addr) const
{
    const Addr line_addr = addr >> kLineBits;
    const Line *ways = &lines_[setIndex(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (ways[w].valid && ways[w].tag == line_addr)
            return true;
    return false;
}

} // namespace crev::mem
