#include "mem/cache.h"

#include "base/logging.h"

namespace crev::mem {

Cache::Cache(const CacheConfig &cfg) : assoc_(cfg.assoc)
{
    CREV_ASSERT(cfg.assoc > 0);
    num_sets_ = cfg.size_bytes / (kLineSize * cfg.assoc);
    CREV_ASSERT(num_sets_ > 0);
    CREV_ASSERT((num_sets_ & (num_sets_ - 1)) == 0);
    lines_.resize(num_sets_ * assoc_);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(line_addr) & (num_sets_ - 1);
}

void
Cache::trackFill(Addr line_addr)
{
    const auto pfn = static_cast<std::size_t>(frameOfLine(line_addr));
    if (pfn >= frame_lines_.size())
        frame_lines_.resize(pfn + 1, 0);
    ++frame_lines_[pfn];
}

void
Cache::trackDrop(Addr line_addr)
{
    const auto pfn = static_cast<std::size_t>(frameOfLine(line_addr));
    CREV_ASSERT(pfn < frame_lines_.size() && frame_lines_[pfn] > 0);
    --frame_lines_[pfn];
}

CacheResult
Cache::access(Addr addr, bool write)
{
    const Addr line_addr = addr >> kLineBits;
    const std::size_t set = setIndex(line_addr);
    Line *ways = &lines_[set * assoc_];
    ++tick_;

    CacheResult res;
    Line *victim = &ways[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == line_addr) {
            line.lru = tick_;
            line.dirty |= write;
            ++hits_;
            res.hit = true;
            return res;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    if (victim->valid) {
        trackDrop(victim->tag);
        if (victim->dirty) {
            res.evicted_dirty = true;
            res.victim_line = victim->tag << kLineBits;
        }
    }
    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = write;
    victim->lru = tick_;
    trackFill(line_addr);
    return res;
}

void
Cache::invalidateLine(Addr addr)
{
    const Addr line_addr = addr >> kLineBits;
    Line *ways = &lines_[setIndex(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == line_addr) {
            ways[w].valid = false;
            ways[w].dirty = false;
            trackDrop(line_addr);
        }
    }
}

unsigned
Cache::residentLinesOf(Addr pfn) const
{
    return pfn < frame_lines_.size()
               ? frame_lines_[static_cast<std::size_t>(pfn)]
               : 0u;
}

void
Cache::invalidateFrame(Addr pfn)
{
    unsigned remaining = residentLinesOf(pfn);
    if (remaining == 0)
        return;
    const Addr base = pfn << kPageBits;
    for (Addr off = 0; off < kPageSize && remaining > 0;
         off += kLineSize) {
        const Addr line_addr = (base + off) >> kLineBits;
        Line *ways = &lines_[setIndex(line_addr) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            if (ways[w].valid && ways[w].tag == line_addr) {
                ways[w].valid = false;
                ways[w].dirty = false;
                trackDrop(line_addr);
                --remaining;
            }
        }
    }
    CREV_ASSERT(residentLinesOf(pfn) == 0);
}

bool
Cache::contains(Addr addr) const
{
    const Addr line_addr = addr >> kLineBits;
    const Line *ways = &lines_[setIndex(line_addr) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (ways[w].valid && ways[w].tag == line_addr)
            return true;
    return false;
}

} // namespace crev::mem
