#include "mem/phys_mem.h"

#include <cstring>

#include "base/logging.h"

namespace crev::mem {

Addr
PhysMem::allocFrame()
{
    Addr pfn;
    if (!free_list_.empty()) {
        pfn = free_list_.back();
        free_list_.pop_back();
        *frames_[pfn] = Frame{}; // zero on reuse
    } else {
        pfn = next_pfn_++;
        auto f = std::make_unique<Frame>();
        by_pfn_.push_back(f.get());
        frames_[pfn] = std::move(f);
    }
    ++in_use_;
    peak_ = std::max(peak_, in_use_);
    return pfn;
}

void
PhysMem::freeFrame(Addr pfn)
{
    CREV_ASSERT(frames_.count(pfn));
    CREV_ASSERT(in_use_ > 0);
    --in_use_;
    free_list_.push_back(pfn);
}

Frame *
PhysMem::lookupFrame(Addr pfn) const
{
    if (dense_index_) {
        CREV_ASSERT(pfn < by_pfn_.size());
        Frame *f = by_pfn_[pfn];
        CREV_ASSERT(f != nullptr);
        return f;
    }
    if (pfn == cached_pfn_)
        return cached_frame_;
    auto it = frames_.find(pfn);
    CREV_ASSERT(it != frames_.end());
    cached_pfn_ = pfn;
    cached_frame_ = it->second.get();
    return cached_frame_;
}

Frame &
PhysMem::frame(Addr pfn)
{
    return *lookupFrame(pfn);
}

const Frame &
PhysMem::frame(Addr pfn) const
{
    return *lookupFrame(pfn);
}

const Frame &
PhysMem::frameUncached(Addr pfn) const
{
    auto it = frames_.find(pfn);
    CREV_ASSERT(it != frames_.end());
    return *it->second;
}

void
PhysMem::read(Addr paddr, void *out, std::size_t len) const
{
    CREV_ASSERT(pageOffset(paddr) + len <= kPageSize);
    const Frame &f = frame(pageOf(paddr));
    std::memcpy(out, f.bytes.data() + pageOffset(paddr), len);
}

void
PhysMem::write(Addr paddr, const void *data, std::size_t len)
{
    CREV_ASSERT(pageOffset(paddr) + len <= kPageSize);
    Frame &f = frame(pageOf(paddr));
    std::memcpy(f.bytes.data() + pageOffset(paddr), data, len);
    // Data stores clear the tags of all granules they touch.
    const std::size_t first = granuleIndex(paddr);
    const std::size_t last = granuleIndex(paddr + len - 1);
    for (std::size_t g = first; g <= last; ++g)
        f.clearTag(g);
}

bool
PhysMem::tagAt(Addr paddr) const
{
    return frame(pageOf(paddr)).testTag(granuleIndex(paddr));
}

void
PhysMem::clearTag(Addr paddr)
{
    frame(pageOf(paddr)).clearTag(granuleIndex(paddr));
}

bool
PhysMem::frameHasTags(Addr pfn) const
{
    return frame(pfn).anyTags();
}

unsigned
PhysMem::lineTagNibble(Addr paddr) const
{
    return frame(pageOf(paddr))
        .lineNibble(static_cast<std::size_t>(pageOffset(paddr)) >>
                    kLineBits);
}

void
PhysMem::storeCap(Addr paddr, const cap::CapBits &bits, bool tag)
{
    CREV_ASSERT(pageOffset(paddr) % kGranuleSize == 0);
    Frame &f = frame(pageOf(paddr));
    std::memcpy(f.bytes.data() + pageOffset(paddr), &bits.lo, 8);
    std::memcpy(f.bytes.data() + pageOffset(paddr) + 8, &bits.hi, 8);
    f.setTag(granuleIndex(paddr), tag);
}

bool
PhysMem::loadCap(Addr paddr, cap::CapBits &bits) const
{
    CREV_ASSERT(pageOffset(paddr) % kGranuleSize == 0);
    const Frame &f = frame(pageOf(paddr));
    std::memcpy(&bits.lo, f.bytes.data() + pageOffset(paddr), 8);
    std::memcpy(&bits.hi, f.bytes.data() + pageOffset(paddr) + 8, 8);
    return f.testTag(granuleIndex(paddr));
}

} // namespace crev::mem
