/**
 * @file
 * A gRPC-QPS-like multithreaded message workload (paper §5.3).
 *
 * The server is two threads sharing cores 2 and 3; the background
 * revoker is *unpinned across the same two cores*, so revocation
 * directly competes with foreground work — the paper's setup for
 * exposing preemption-quantum tail latencies (§5.3, §7.7). A client
 * keeps a fixed number of messages outstanding (20 channels x 4) and
 * measures per-message latency percentiles and aggregate QPS.
 */

#ifndef CREV_WORKLOAD_GRPC_QPS_H_
#define CREV_WORKLOAD_GRPC_QPS_H_

#include <cstdint>

#include "core/machine.h"
#include "core/mutator.h"
#include "stats/summary.h"

namespace crev::workload {

/** QPS benchmark parameters. */
struct GrpcConfig
{
    std::uint32_t total_messages = 20000;
    unsigned outstanding = 80; //!< 20 channels x 4 in-flight
    unsigned server_threads = 2;
    unsigned allocs_per_msg = 6;
    Cycles compute_per_msg = 80'000;
    /** Cores the server (and the unpinned revoker) run on. */
    std::uint32_t server_core_mask = (1u << 2) | (1u << 3);
    /** §7.7 knob: preemption-quantum scale for the revoker. */
    double revoker_quantum_scale = 1.0;
    /** Run the revocation-invariant audit after every epoch. */
    bool audit = false;
};

/** QPS benchmark results. */
struct GrpcResult
{
    stats::Samples latency_ms;
    double qps = 0;
    core::RunMetrics metrics;
};

/** Run the QPS workload under @p strategy. */
GrpcResult runGrpcQps(core::Strategy strategy, const GrpcConfig &cfg,
                      std::uint64_t seed = 1);

/** The quarantine policy used for gRPC runs. */
alloc::QuarantinePolicy grpcPolicy();

} // namespace crev::workload

#endif // CREV_WORKLOAD_GRPC_QPS_H_
