#include "workload/pgbench.h"

#include <memory>

#include "base/logging.h"
#include "sim/sync.h"

namespace crev::workload {

namespace {

/** A transaction request. */
struct TxRequest
{
    std::uint32_t id = 0;
    Cycles sent_at = 0;
};

/** A transaction completion. */
struct TxReply
{
    std::uint32_t id = 0;
    Cycles sent_at = 0;
};

} // namespace

alloc::QuarantinePolicy
pgbenchPolicy()
{
    alloc::QuarantinePolicy policy;
    policy.alloc_ratio = 1.0 / 3.0;
    policy.min_bytes = 64 * 1024;
    return policy;
}

PgbenchResult
runPgbench(core::Strategy strategy, const PgbenchConfig &cfg,
           std::uint64_t seed)
{
    core::MachineConfig mc;
    mc.strategy = strategy;
    mc.policy = pgbenchPolicy();
    mc.seed = seed;
    mc.audit = cfg.audit;
    // Scale the cache hierarchy with the workload: the paper's
    // PostgreSQL heap (~22 MiB) is an order of magnitude larger than
    // Morello's last-level cache, so revocation sweeps are DRAM
    // traffic. Our ~128x-scaled heap must likewise exceed the LLC for
    // the bus-traffic shapes (fig. 6) to carry over.
    mc.l1 = mem::CacheConfig{16 * 1024, 4};
    mc.llc = mem::CacheConfig{128 * 1024, 8};
    core::Machine m(mc);

    auto request_q = std::make_shared<sim::SimQueue<TxRequest>>();
    auto reply_q = std::make_shared<sim::SimQueue<TxReply>>();
    auto result = std::make_shared<PgbenchResult>();

    // --- server (PostgreSQL worker), pinned to core 3 ---
    m.spawnMutator("pg-server", 1u << 3, [=, &m](core::Mutator &ctx) {
        auto &rng = ctx.rng();

        // Session-lifetime state: catalog/plan caches.
        struct Obj
        {
            cap::Capability c;
            std::size_t size;
        };
        std::vector<Obj> session;
        for (int i = 0; i < 800; ++i) {
            const std::size_t size = 1024 << rng.below(2);
            session.push_back({ctx.malloc(size), size});
            ctx.store64(session.back().c, 0, i);
        }

        std::vector<Obj> tx_objs;
        tx_objs.reserve(cfg.allocs_per_tx);

        for (std::uint32_t done = 0; done < cfg.transactions; ++done) {
            TxRequest req;
            Cycles enq = 0;
            if (!request_q->pop(ctx.thread(), req, enq))
                return;

            // Parse/plan/execute: allocate working memory, link it,
            // touch session state, compute, free everything.
            tx_objs.clear();
            for (unsigned a = 0; a < cfg.allocs_per_tx; ++a) {
                const std::size_t size = 256u << rng.below(4); // 256..2048
                tx_objs.push_back({ctx.malloc(size), size});
                ctx.store64(tx_objs.back().c, 0, req.id);
                // The chain terminator must be written explicitly:
                // reused memory may hold a stale tagged capability at
                // this offset (freed memory is not zeroed, §2.2.2).
                ctx.storeCap(tx_objs.back().c, 16,
                             a > 0 ? tx_objs[a - 1].c
                                   : cap::Capability::null());
            }
            // Chase the chain (executor walking its plan tree).
            cap::Capability p = tx_objs.back().c;
            for (unsigned hops = 0; hops < cfg.allocs_per_tx; ++hops) {
                const cap::Capability next = ctx.loadCap(p, 16);
                if (!next.tag)
                    break;
                ctx.store64(next, 8, req.id);
                p = next;
            }
            // Touch a few session cache entries (buffer reads), and
            // update cached plan/tuple pointers (capability stores) —
            // this is what re-dirties session pages while Cornucopia's
            // concurrent phase runs, forcing its STW re-sweep
            // (paper §5.2: Cornucopia "revisits approximately all
            // pages with the world stopped" on this workload).
            for (int k = 0; k < 12; ++k) {
                const auto &o = session[rng.below(session.size())];
                ctx.readBytes(o.c, 0,
                              std::min<std::size_t>(o.size, 1024));
            }
            for (int k = 0; k < 10; ++k) {
                const auto &o = session[rng.below(session.size())];
                ctx.storeCap(o.c, 16,
                             tx_objs[rng.below(tx_objs.size())].c);
            }
            // Occasionally replace a cached plan (session churn).
            if (rng.chance(0.1)) {
                const auto idx = rng.below(session.size());
                ctx.free(session[idx].c);
                const std::size_t size = 1024 << rng.below(2);
                session[idx] = {ctx.malloc(size), size};
                ctx.store64(session[idx].c, 0, req.id);
            }
            ctx.compute(cfg.compute_per_tx);
            for (auto &o : tx_objs)
                ctx.free(o.c);

            reply_q->push(ctx.thread(),
                          TxReply{req.id, req.sent_at});
        }
    });

    // --- client (pgbench itself), on core 0 with the rest of the
    // system; it does no simulated memory work of its own ---
    m.spawnMutator("pg-client", 1u << 0, [=](core::Mutator &ctx) {
        auto &rng = ctx.rng();
        const Cycles start = ctx.now();
        const double cycles_per_tx =
            cfg.rate_tps > 0 ? kCyclesPerSecond / cfg.rate_tps : 0;

        for (std::uint32_t n = 0; n < cfg.transactions; ++n) {
            if (cfg.rate_tps > 0) {
                // Fixed a-priori schedule (pgbench --rate).
                const Cycles scheduled =
                    start + static_cast<Cycles>(cycles_per_tx *
                                                static_cast<double>(n));
                if (ctx.now() < scheduled)
                    ctx.sleepUntil(scheduled);
                const Cycles actual = ctx.now();
                result->lag_ms.add(cyclesToMillis(actual - scheduled));
                request_q->push(ctx.thread(),
                                TxRequest{n, actual});
            } else {
                // Serial with think time: the workload is not
                // steadily CPU-bound (paper §5.2 Discussion), subject
                // to coordinated omission like the original.
                const Cycles think = cfg.think_cycles / 2 +
                                     rng.below(cfg.think_cycles);
                ctx.sleep(think);
                request_q->push(ctx.thread(),
                                TxRequest{n, ctx.now()});
            }

            TxReply reply;
            Cycles enq = 0;
            if (!reply_q->pop(ctx.thread(), reply, enq))
                return;
            result->latency_ms.add(
                cyclesToMillis(ctx.now() - reply.sent_at));
        }
    });

    m.run();
    result->metrics = m.metrics();
    return std::move(*result);
}

} // namespace crev::workload
