#include "workload/grpc_qps.h"

#include <memory>

#include "base/logging.h"
#include "sim/sync.h"

namespace crev::workload {

namespace {

struct Message
{
    std::uint32_t id = 0;
    Cycles sent_at = 0;
    bool shutdown = false;
};

} // namespace

alloc::QuarantinePolicy
grpcPolicy()
{
    alloc::QuarantinePolicy policy;
    policy.alloc_ratio = 1.0 / 3.0;
    policy.min_bytes = 64 * 1024;
    return policy;
}

GrpcResult
runGrpcQps(core::Strategy strategy, const GrpcConfig &cfg,
           std::uint64_t seed)
{
    core::MachineConfig mc;
    mc.strategy = strategy;
    mc.policy = grpcPolicy();
    mc.seed = seed;
    // The revoker is unpinned across the server's cores: it competes
    // for CPU with foreground work (paper §5.3).
    mc.revoker_core_mask = cfg.server_core_mask;
    mc.revoker_quantum_scale = cfg.revoker_quantum_scale;
    mc.audit = cfg.audit;
    core::Machine m(mc);

    auto request_q = std::make_shared<sim::SimQueue<Message>>();
    auto reply_q = std::make_shared<sim::SimQueue<Message>>();
    auto result = std::make_shared<GrpcResult>();

    // --- server worker threads, sharing the server cores ---
    for (unsigned s = 0; s < cfg.server_threads; ++s) {
        m.spawnMutator(
            "grpc-server" + std::to_string(s), cfg.server_core_mask,
            [=](core::Mutator &ctx) {
                auto &rng = ctx.rng();

                // Connection/session state per worker.
                struct Obj
                {
                    cap::Capability c;
                    std::size_t size;
                };
                std::vector<Obj> session;
                for (int i = 0; i < 1200; ++i) {
                    const std::size_t size = 2048 << rng.below(2);
                    session.push_back({ctx.malloc(size), size});
                    ctx.store64(session.back().c, 0, i);
                }

                for (;;) {
                    Message msg;
                    Cycles enq = 0;
                    if (!request_q->pop(ctx.thread(), msg, enq) ||
                        msg.shutdown) {
                        return;
                    }

                    // Deserialize / handle / serialize: message
                    // buffers are allocated, linked, touched, freed.
                    std::vector<Obj> bufs;
                    bufs.reserve(cfg.allocs_per_msg);
                    for (unsigned a = 0; a < cfg.allocs_per_msg;
                         ++a) {
                        const std::size_t size =
                            128u << rng.below(4); // 128..1024
                        bufs.push_back({ctx.malloc(size), size});
                        ctx.store64(bufs.back().c, 0, msg.id);
                        // Explicit terminator: reused memory may hold
                        // a stale tagged capability here.
                        ctx.storeCap(bufs.back().c, 16,
                                     a > 0 ? bufs[a - 1].c
                                           : cap::Capability::null());
                    }
                    for (int k = 0; k < 3; ++k) {
                        const auto &o =
                            session[rng.below(session.size())];
                        ctx.readBytes(o.c, 0,
                                      std::min<std::size_t>(o.size,
                                                            256));
                    }
                    ctx.compute(cfg.compute_per_msg);
                    for (auto &b : bufs)
                        ctx.free(b.c);

                    reply_q->push(ctx.thread(), msg);
                }
            });
    }

    // --- client: keeps `outstanding` messages in flight ---
    m.spawnMutator("grpc-client", 1u << 0, [=](core::Mutator &ctx) {
        std::uint32_t sent = 0;
        std::uint32_t received = 0;
        const Cycles start = ctx.now();

        const std::uint32_t initial = std::min<std::uint32_t>(
            cfg.outstanding, cfg.total_messages);
        for (; sent < initial; ++sent)
            request_q->push(ctx.thread(),
                            Message{sent, ctx.now(), false});

        while (received < cfg.total_messages) {
            Message reply;
            Cycles enq = 0;
            if (!reply_q->pop(ctx.thread(), reply, enq))
                break;
            ++received;
            result->latency_ms.add(
                cyclesToMillis(ctx.now() - reply.sent_at));
            if (sent < cfg.total_messages) {
                request_q->push(ctx.thread(),
                                Message{sent, ctx.now(), false});
                ++sent;
            }
        }

        const Cycles elapsed = ctx.now() - start;
        result->qps = static_cast<double>(received) /
                      (static_cast<double>(elapsed) / kCyclesPerSecond);

        // Shut the server workers down.
        for (unsigned s = 0; s < cfg.server_threads; ++s)
            request_q->push(ctx.thread(), Message{0, 0, true});
    });

    m.run();
    result->metrics = m.metrics();
    return std::move(*result);
}

} // namespace crev::workload
