#include "workload/spec.h"

#include "base/logging.h"

namespace crev::workload {

namespace {

/**
 * Build the profile table. Live-heap sizes follow paper Table 2
 * scaled ~128x down; churn (total allocations) is chosen so the
 * freed:allocated ordering of Table 2 is preserved: omnetpp >>
 * xalancbmk >> hmmer > astar > gobmk, with bzip2/sjeng at zero.
 */
std::vector<SpecProfile>
buildProfiles()
{
    std::vector<SpecProfile> ps;

    {
        // XML DOM churn: many small nodes, pointer-rich.
        SpecProfile p;
        p.name = "xalancbmk";
        p.sizes = {{32, 0.30}, {64, 0.30}, {96, 0.20},
                   {128, 0.10}, {256, 0.07}, {1024, 0.03}};
        p.target_live = 40000;  // ~4.6 MiB live
        p.total_allocs = 400000;
        p.ops_per_churn = 2;
        p.cap_store_rate = 0.18;
        p.cap_load_rate = 0.50;
        p.data_rate = 0.60;
        p.data_touch_bytes = 512;
        p.compute_per_op = 600;
        ps.push_back(p);
    }
    {
        // Discrete-event simulator: heavy small-object event churn.
        SpecProfile p;
        p.name = "omnetpp";
        p.sizes = {{64, 0.40}, {128, 0.30}, {256, 0.20}, {512, 0.10}};
        p.target_live = 20000;  // ~2.9 MiB live
        p.total_allocs = 500000;
        p.ops_per_churn = 3;
        p.cap_store_rate = 0.15;
        p.cap_load_rate = 0.45;
        p.data_rate = 0.70;
        p.data_touch_bytes = 512;
        p.compute_per_op = 800;
        ps.push_back(p);
    }
    {
        // Path search: nodes plus large map arrays, chase-heavy.
        SpecProfile p;
        p.name = "astar";
        p.sizes = {{48, 0.60}, {256, 0.25}, {16384, 0.10},
                   {131072, 0.05}};
        p.target_live = 220;    // ~1.9 MiB live
        p.total_allocs = 3300;
        p.ops_per_churn = 150;
        p.cap_store_rate = 0.25;
        p.cap_load_rate = 0.50;
        p.data_rate = 0.80;
        p.data_touch_bytes = 1024;
        p.compute_per_op = 2000;
        ps.push_back(p);
    }
    {
        // Sequence profile search: medium buffers, compute-heavy.
        SpecProfile p;
        p.name = "hmmer_nph3";
        p.sizes = {{1024, 0.30}, {2048, 0.30}, {4096, 0.25},
                   {8192, 0.15}};
        p.target_live = 128;    // ~0.39 MiB live
        p.total_allocs = 5300;
        p.ops_per_churn = 20;
        p.cap_store_rate = 0.10;
        p.cap_load_rate = 0.10;
        p.data_rate = 0.90;
        p.data_touch_bytes = 512;
        p.compute_per_op = 5000;
        ps.push_back(p);
    }
    {
        SpecProfile p;
        p.name = "hmmer_retro";
        p.sizes = {{1024, 0.30}, {2048, 0.30}, {4096, 0.25},
                   {8192, 0.15}};
        p.target_live = 52;     // ~0.16 MiB live
        p.total_allocs = 1500;
        p.ops_per_churn = 20;
        p.cap_store_rate = 0.10;
        p.cap_load_rate = 0.10;
        p.data_rate = 0.90;
        p.data_touch_bytes = 512;
        p.compute_per_op = 5000;
        ps.push_back(p);
    }
    {
        // Go engine: modest heap, little churn, compute-bound.
        SpecProfile p;
        p.name = "gobmk";
        p.sizes = {{32, 0.40}, {64, 0.30}, {256, 0.20}, {2048, 0.10}};
        p.target_live = 3400;   // ~1.0 MiB live
        p.total_allocs = 5800;
        p.ops_per_churn = 15;
        p.cap_store_rate = 0.15;
        p.cap_load_rate = 0.25;
        p.data_rate = 0.50;
        p.data_touch_bytes = 128;
        p.compute_per_op = 3500;
        ps.push_back(p);
    }
    {
        // Quantum register simulation: few large arrays, streaming.
        SpecProfile p;
        p.name = "libquantum";
        p.sizes = {{262144, 1.0}};
        p.target_live = 12;     // ~3 MiB live
        p.total_allocs = 40;
        p.ops_per_churn = 3000;
        p.init_fill = true;
        p.cap_store_rate = 0.02;
        p.cap_load_rate = 0.02;
        p.data_rate = 0.95;
        p.data_touch_bytes = 2048;
        p.compute_per_op = 1000;
        ps.push_back(p);
    }
    {
        // Compression: buffers allocated once, then pure compute —
        // never engages revocation (paper fig. 1 note).
        SpecProfile p;
        p.name = "bzip2";
        p.sizes = {{65536, 1.0}};
        p.target_live = 30;     // ~1.9 MiB live
        p.init_fill = true;
        p.total_allocs = 0;
        p.pure_ops = 150000;
        p.cap_store_rate = 0.0;
        p.cap_load_rate = 0.0;
        p.data_rate = 0.95;
        p.data_touch_bytes = 1024;
        p.compute_per_op = 250;
        ps.push_back(p);
    }
    {
        // Chess engine: fixed hash tables, compute only — never
        // engages revocation.
        SpecProfile p;
        p.name = "sjeng";
        p.sizes = {{16384, 1.0}};
        p.target_live = 40;     // ~0.64 MiB live
        p.total_allocs = 0;
        p.pure_ops = 150000;
        p.cap_store_rate = 0.05;
        p.cap_load_rate = 0.10;
        p.data_rate = 0.80;
        p.data_touch_bytes = 128;
        p.compute_per_op = 350;
        ps.push_back(p);
    }
    return ps;
}

} // namespace

const std::vector<SpecProfile> &
specProfiles()
{
    static const std::vector<SpecProfile> ps = buildProfiles();
    return ps;
}

const SpecProfile &
specProfile(const std::string &name)
{
    for (const auto &p : specProfiles())
        if (p.name == name)
            return p;
    fatal("unknown SPEC profile: %s", name.c_str());
}

std::vector<std::string>
revokingSpecNames()
{
    return {"xalancbmk",   "omnetpp", "astar",     "hmmer_nph3",
            "hmmer_retro", "gobmk",   "libquantum"};
}

alloc::QuarantinePolicy
specPolicy()
{
    alloc::QuarantinePolicy policy;
    policy.alloc_ratio = 1.0 / 3.0; // paper §5: 1/4 of total heap
    policy.min_bytes = 64 * 1024;   // paper's 8 MiB, scaled 128x
    return policy;
}

void
runSpec(core::Machine &m, const SpecProfile &profile)
{
    m.spawnMutator("app", 1u << 3, [profile](core::Mutator &ctx) {
        struct Obj
        {
            cap::Capability c;
            std::size_t size;
        };
        auto &rng = ctx.rng();

        // Weighted size picker.
        double total_w = 0;
        for (const auto &b : profile.sizes)
            total_w += b.weight;
        auto pick_size = [&] {
            double r = rng.uniform() * total_w;
            for (const auto &b : profile.sizes) {
                if (r < b.weight)
                    return b.size;
                r -= b.weight;
            }
            return profile.sizes.back().size;
        };

        std::vector<Obj> live;
        live.reserve(profile.target_live);

        auto new_obj = [&] {
            const std::size_t size = pick_size();
            Obj o{ctx.malloc(size), size};
            ctx.store64(o.c, 0, rng.next());
            if (profile.init_fill && size >= 64)
                ctx.fill(o.c, 32, size - 32, 0);
            return o;
        };

        auto extras = [&](std::uint64_t tick) {
            if (rng.chance(profile.cap_store_rate) && live.size() > 1) {
                const auto a = rng.below(live.size());
                const auto b = rng.below(live.size());
                if (live[a].size >= 32)
                    ctx.storeCap(live[a].c, 16, live[b].c);
            }
            if (rng.chance(profile.cap_load_rate) && !live.empty()) {
                const auto a = rng.below(live.size());
                if (live[a].size >= 32) {
                    const cap::Capability p =
                        ctx.loadCap(live[a].c, 16);
                    // The link may be untagged (never set, overwritten
                    // by data, or revoked): defensive tag check before
                    // the chase, as hardened CHERI code does. Chases
                    // are read-only: writing through a link that might
                    // dangle would corrupt the baseline allocator's
                    // in-band free lists (that is the attack, not the
                    // workload).
                    if (p.tag)
                        ctx.load64(p, 0);
                }
            }
            if (rng.chance(profile.data_rate) && !live.empty()) {
                const auto a = rng.below(live.size());
                const std::size_t n =
                    std::min(profile.data_touch_bytes, live[a].size);
                // Touch a random region of the object so large arrays
                // (libquantum, bzip2) are actually paged in and
                // streamed over, not just their first lines.
                const Addr max_off = live[a].size - n;
                const Addr off =
                    max_off == 0 ? 0 : 8 * rng.below(max_off / 8 + 1);
                if (rng.chance(0.5) || off <= 24) {
                    ctx.readBytes(live[a].c, off, n);
                } else {
                    // Writes stay clear of the capability slot at 16.
                    ctx.fill(live[a].c, off, n,
                             static_cast<std::uint8_t>(tick));
                }
            }
            ctx.compute(profile.compute_per_op);
        };

        // Ramp-up to the steady-state live heap.
        for (std::size_t i = 0; i < profile.target_live; ++i)
            live.push_back(new_obj());

        // Steady-state churn: replace a random object, then perform
        // the benchmark's characteristic amount of real work per byte
        // freed.
        for (std::uint64_t n = 0; n < profile.total_allocs; ++n) {
            const auto idx = rng.below(live.size());
            ctx.free(live[idx].c);
            live[idx] = new_obj();
            for (unsigned k = 0; k < profile.ops_per_churn; ++k)
                extras(n);
        }

        // Allocation-free phase (compute/data-bound benchmarks).
        for (std::uint64_t n = 0; n < profile.pure_ops; ++n)
            extras(n);
    });
    m.run();
}

core::RunMetrics
runSpecOn(core::Strategy strategy, const SpecProfile &profile,
          std::uint64_t seed)
{
    core::MachineConfig cfg;
    cfg.strategy = strategy;
    cfg.policy = specPolicy();
    cfg.seed = seed;
    core::Machine m(cfg);
    runSpec(m, profile);
    return m.metrics();
}

} // namespace crev::workload
