/**
 * @file
 * A pgbench-like transactional client/server workload (paper §5.2).
 *
 * A client thread (core 0, outside the measured cores) issues
 * transactions to a server thread pinned to core 3; the revoker runs
 * on core 2, matching the paper's pinning regime. Each transaction
 * allocates, touches, and frees a parse/plan/execute-sized batch of
 * objects — pgbench's dominant revocation-relevant behaviour is
 * exactly this very high free:allocated ratio at a small live heap
 * (Table 2: F:A 2534, ~15 revocations/second).
 *
 * Unscheduled mode issues transactions serially with client think
 * time (the workload is not steadily CPU-bound: §5.2's Discussion
 * notes the server is on-core only ~half the time, which is what lets
 * stop-the-world phases hide in idle gaps). Rate mode (--rate, Table
 * 1) issues on a fixed schedule; per-transaction latency is measured
 * from actual transmission, ignoring schedule lag.
 */

#ifndef CREV_WORKLOAD_PGBENCH_H_
#define CREV_WORKLOAD_PGBENCH_H_

#include <cstdint>

#include "core/machine.h"
#include "core/mutator.h"
#include "stats/summary.h"

namespace crev::workload {

/** pgbench run parameters (scaled from the paper's 170k tx). */
struct PgbenchConfig
{
    std::uint32_t transactions = 4000;
    /** 0 = unscheduled (serial, think-time-paced); else tx/sec. */
    double rate_tps = 0.0;
    /** Mean client think time between serial transactions, cycles. */
    Cycles think_cycles = 1'200'000;
    /** Objects allocated per transaction (sets the very high
     *  freed:allocated ratio that characterises pgbench). */
    unsigned allocs_per_tx = 32;
    /** ALU work per transaction. */
    Cycles compute_per_tx = 400'000;
    /** Run the revocation-invariant audit after every epoch. */
    bool audit = false;
};

/** Results of a pgbench run. */
struct PgbenchResult
{
    /** Per-transaction latency in milliseconds (from actual send). */
    stats::Samples latency_ms;
    /** Schedule lag per transaction in ms (rate mode only). */
    stats::Samples lag_ms;
    core::RunMetrics metrics;
};

/** Run pgbench against a machine built with @p strategy. */
PgbenchResult runPgbench(core::Strategy strategy,
                         const PgbenchConfig &cfg,
                         std::uint64_t seed = 1);

/** The quarantine policy used for pgbench runs. */
alloc::QuarantinePolicy pgbenchPolicy();

} // namespace crev::workload

#endif // CREV_WORKLOAD_PGBENCH_H_
