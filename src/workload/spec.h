/**
 * @file
 * Synthetic batch workloads standing in for the CHERI-compatible
 * SPEC CPU2006 INT subset (paper §5.1).
 *
 * Real SPEC binaries cannot run on this simulator, but revocation cost
 * is a function of a few workload properties: live heap size,
 * allocation size distribution, free churn (the freed:allocated ratio
 * of Table 2), pointer density, and pointer-chase intensity. Each
 * profile reproduces those properties for one benchmark, scaled ~128x
 * down from the paper's measurements so the whole suite runs in
 * seconds (quarantine policy constants scale alongside; see
 * DESIGN.md §2).
 *
 * Calibration anchors (paper Table 2): xalancbmk and omnetpp cycle
 * orders of magnitude more address space than their live heaps
 * (F:A 110 and 207) and revoke less than once a second; gobmk barely
 * revokes (F:A 1.75); bzip2 and sjeng never engage revocation at all
 * and are excluded from most figures.
 */

#ifndef CREV_WORKLOAD_SPEC_H_
#define CREV_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"

namespace crev::workload {

/** A weighted allocation-size bin. */
struct SizeBin
{
    std::size_t size;
    double weight;
};

/** One synthetic SPEC-like benchmark profile. */
struct SpecProfile
{
    std::string name;
    std::vector<SizeBin> sizes;
    /** Steady-state live object count (sets the live heap size). */
    std::size_t target_live = 1000;
    /** Total allocations performed after ramp-up (sets churn). */
    std::uint64_t total_allocs = 100000;
    /** Allocation-free operations after the churn phase (for
     *  compute/data-bound benchmarks that never free). */
    std::uint64_t pure_ops = 0;
    /** Non-allocating operations interleaved per churn event: sets
     *  how much real work the program does per byte freed (this is
     *  what separates hmmer's 2% overhead from xalancbmk's 29%). */
    unsigned ops_per_churn = 1;
    /** Probability per op of storing a capability into a live object. */
    double cap_store_rate = 0.3;
    /** Probability per op of a pointer chase (capability load + use). */
    double cap_load_rate = 0.3;
    /** Probability per op of a bulk data touch. */
    double data_rate = 0.3;
    /** Bytes touched by a data op. */
    std::size_t data_touch_bytes = 64;
    /** ALU cycles between operations. */
    Cycles compute_per_op = 60;
    /** Initialise (write) entire objects on allocation, as array
     *  workloads do — pages whole allocations in, so quarantined
     *  arrays contribute fully to RSS (fig. 3's overshoot). */
    bool init_fill = false;
};

/** All eight profiles, in the paper's figure order. */
const std::vector<SpecProfile> &specProfiles();

/** Lookup by name; fatal if unknown. */
const SpecProfile &specProfile(const std::string &name);

/** Profiles that engage revocation (bzip2 and sjeng excluded). */
std::vector<std::string> revokingSpecNames();

/**
 * Run @p profile as the single application thread of @p m (pinned to
 * core 3, per the paper's regime) and execute the machine to
 * completion. Metrics are read from m.metrics() afterwards.
 */
void runSpec(core::Machine &m, const SpecProfile &profile);

/**
 * Convenience: build a machine with @p strategy (policy scaled for
 * these workloads), run @p profile, and return the metrics.
 */
core::RunMetrics runSpecOn(core::Strategy strategy,
                           const SpecProfile &profile,
                           std::uint64_t seed = 1);

/** The quarantine policy used for all SPEC-like runs. */
alloc::QuarantinePolicy specPolicy();

} // namespace crev::workload

#endif // CREV_WORKLOAD_SPEC_H_
