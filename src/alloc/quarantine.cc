#include "alloc/quarantine.h"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "base/logging.h"
#include "check/race_checker.h"
#include "sim/fault_injector.h"

namespace crev::alloc {

namespace {
/** Remote frees per outbound batch before it is spliced onto the
 *  owner's inbox (snmalloc's RemoteDeallocCache batching shape; any
 *  partial batch is flushed at the sender's next allocation). */
constexpr std::size_t kRemoteBatch = 8;
} // namespace

QuarantineShim::QuarantineShim(SnmallocLite &snm, kern::Kernel &kernel,
                               revoker::Revoker *revoker,
                               revoker::RevocationBitmap *bitmap,
                               const QuarantinePolicy &policy)
    : snm_(snm), kernel_(kernel), revoker_(revoker), bitmap_(bitmap),
      policy_(policy)
{
    CREV_ASSERT((revoker_ == nullptr) == (bitmap_ == nullptr));
    const unsigned shards = snm_.shardCount();
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
        auto sh = std::make_unique<Shard>();
        sh->outbound.resize(shards);
        shards_.push_back(std::move(sh));
    }
}

void
QuarantineShim::setChecker(check::RaceChecker *c)
{
    checker_ = c;
    if (c == nullptr)
        return;
    if (shards_.size() == 1) {
        c->nameLock(&shards_[0]->lock, "heap");
        return;
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const std::string name = "heap" + std::to_string(i);
        c->nameLock(&shards_[i]->lock, name.c_str());
    }
}

std::size_t
QuarantineShim::threshold() const
{
    const auto by_ratio = static_cast<std::size_t>(
        policy_.alloc_ratio * static_cast<double>(snm_.liveBytes()));
    return std::max(policy_.min_bytes, by_ratio);
}

void
QuarantineShim::maybeDequarantine(sim::SimThread &t, Shard &sh)
{
    const std::uint64_t now = kernel_.epoch().value();
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     sh.lock.heldBy(t));
    for (Buffer &b : sh.buffers) {
        if (!b.awaiting || now < b.target)
            continue;
        if (checker_ != nullptr)
            checker_->onDequarantineRelease(t.id(), t.now(), b.target,
                                            now);
        // Detach the buffer *before* releasing its entries: the
        // release path yields (simulated memory traffic), and another
        // thread sharing this shard may re-enter; detaching first
        // makes the release idempotent.
        std::vector<Entry> entries;
        entries.swap(b.entries);
        b.bytes = 0;
        b.awaiting = false;
        b.target = 0;
        // The revoking epoch has completed: every capability to these
        // objects is gone; unpaint and recycle.
        for (const Entry &e : entries) {
            bitmap_->clear(t, e.base, e.size);
            revoker_->onDequarantine(e.base, e.size);
            snm_.deallocRaw(t, e.base);
            CREV_ASSERT(quarantine_bytes_ >= e.size);
            quarantine_bytes_ -= e.size;
        }
    }
}

void
QuarantineShim::maybeTrigger(sim::SimThread &t, Shard &sh)
{
    Buffer &b = sh.buffers[sh.cur];
    Buffer &other = sh.buffers[sh.cur ^ 1];
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     sh.lock.heldBy(t));
    // Trigger on the *total* quarantine, not this buffer's share:
    // comparing only b.bytes let quarantine reach ~2x the policy
    // ratio while the other buffer awaited its epoch (its bytes
    // vanished from the comparison). One submission at a time,
    // though: while the other buffer is in flight, these entries
    // could not join its epoch anyway, so the current buffer waits
    // for the pipeline — backpressure past block_factor comes from
    // maybeBlock, which also watches the total now.
    if (b.awaiting || other.awaiting || b.bytes == 0 ||
        quarantine_bytes_ <= threshold())
        return;

    // Submission must be atomic w.r.t. other heap users: the epoch
    // read accrues cycles and could otherwise yield between the
    // check above and the state updates below.
    sim::SimThread::NoYield guard(t);
    const std::uint64_t e = kernel_.epoch().read(t);
    b.target = kernel_.epoch().dequarantineTarget(e);
    b.awaiting = true;
    ++stats_.revocations_triggered;
    ++sh.stats.triggers;
    stats_.sum_alloc_at_trigger += snm_.liveBytes();
    stats_.sum_quar_at_trigger += quarantine_bytes_;
    sendEpochRequest(t);

    // Frees continue into the other buffer meanwhile.
    sh.cur ^= 1;
}

bool
QuarantineShim::handoffFaultsArmed() const
{
    return injector_ != nullptr &&
           (injector_->plan().quarantine_drop_prob > 0.0 ||
            injector_->plan().quarantine_duplicate_prob > 0.0);
}

void
QuarantineShim::sendEpochRequest(sim::SimThread &t)
{
    if (injector_ != nullptr && injector_->dropQuarantineHandoff(t))
        return; // lost in flight; the waiter detects and re-sends
    revoker_->requestEpoch(t);
    if (injector_ != nullptr && injector_->duplicateQuarantineHandoff(t))
        revoker_->requestEpoch(t); // idempotent while one is pending
}

void
QuarantineShim::waitForCounterRecovering(sim::SimThread &t,
                                         std::uint64_t target)
{
    if (!handoffFaultsArmed()) {
        revoker_->waitForEpochCounter(t, target);
        return;
    }
    // SimEvent has no timed wait, so the recovering variant is a
    // sleep-poll loop; the poll period is well under any epoch.
    constexpr Cycles kPoll = 250'000;
    revoker::RecoveryManager::Ticket tk;
    while (kernel_.epoch().value() < target) {
        if (t.scheduler().shuttingDown()) {
            // Shutdown can land mid-recovery: close the ticket with
            // an aborted outcome instead of leaking it open (every
            // opened ticket must reach a terminal state).
            if (recovery_ != nullptr && tk.open)
                recovery_->close(t, tk,
                                 trace::RecoveryOutcome::kAborted);
            return;
        }
        if (!revoker_->requestPending() &&
            !revoker_->epochInProgress()) {
            // Counter short, nothing queued, nothing running: the
            // hand-off was dropped in flight. Re-send it.
            if (recovery_ != nullptr) {
                if (!tk.open)
                    tk = recovery_->open(
                        t, trace::RecoveryProtocol::kQuarantineHandoff);
                if (recovery_->attempt(t, tk)) {
                    ++stats_.handoff_resends;
                    sendEpochRequest(t);
                    t.sleep(recovery_->backoff(tk));
                    continue;
                }
                // Retries exhausted (or the protocol deadline passed):
                // close the ticket and degrade to a direct request on
                // the unfaultable path plus a plain wait.
                recovery_->close(t, tk,
                                 recovery_->failureOutcome(t.now(), tk));
                revoker_->requestEpoch(t);
                revoker_->waitForEpochCounter(t, target);
                return;
            }
            ++stats_.handoff_resends;
            sendEpochRequest(t);
        }
        t.sleep(kPoll);
    }
    if (recovery_ != nullptr && tk.open)
        recovery_->close(t, tk, trace::RecoveryOutcome::kSucceeded);
}

void
QuarantineShim::maybeBlock(sim::SimThread &t, Shard &sh)
{
    // mrs blocks an allocation or free when quarantine is
    // pathologically oversized (the "over twice full" condition,
    // §5.3): both buffers awaiting revocation (drain paths), or the
    // *total* quarantine past block_factor x threshold while an
    // epoch is in flight — wait for the oldest awaiting target so a
    // buffer drains.
    for (;;) {
        maybeDequarantine(t, sh);
        const bool awaiting0 = sh.buffers[0].awaiting;
        const bool awaiting1 = sh.buffers[1].awaiting;
        const bool both = awaiting0 && awaiting1;
        const bool over =
            (awaiting0 || awaiting1) &&
            static_cast<double>(quarantine_bytes_) >
                policy_.block_factor *
                    static_cast<double>(threshold());
        if (!both && !over)
            return;
        ++stats_.blocked_ops;
        std::uint64_t target = ~std::uint64_t{0};
        for (const Buffer &b : sh.buffers)
            if (b.awaiting)
                target = std::min(target, b.target);
        const Cycles wait_begin = t.now();
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), wait_begin,
                            trace::EventType::kQuarantineBlock, 0,
                            target);
        waitForCounterRecovering(t, target);
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), t.now(),
                            trace::EventType::kQuarantineUnblock, 0,
                            target);
        stats_.blocked_cycles += t.now() - wait_begin;
        if (t.scheduler().shuttingDown())
            return;
    }
}

void
QuarantineShim::remoteFree(sim::SimThread &t, Shard &sh,
                           unsigned owner, const cap::Capability &c)
{
    // A second free — from any core — of a message still in flight is
    // a detected double free.
    snm_.markInFlight(c.base);
    t.accrue(t.scheduler().costs().free_overhead);

    Outbound &ob = sh.outbound[owner];
    // Thread the message through the freed object's first granule:
    // the link target is the previous batch head, which is NOT yet
    // painted (painting happens when the owner drains), so a sweep
    // can never invalidate an in-flight queue link.
    kernel_.mmu().storeCap(t, c.base, ob.head_cap);
    if (ob.count == 0)
        ob.tail = c.base;
    ob.head = c.base;
    ob.head_cap = c;
    ++ob.count;
    ++stats_.remote_free_sends;
    ++sh.stats.remote_sends;
    if (ob.count >= kRemoteBatch)
        flushBatch(t, sh, owner);
}

void
QuarantineShim::flushBatch(sim::SimThread &t, Shard &from,
                           unsigned dst)
{
    Outbound &ob = from.outbound[dst];
    if (ob.count == 0)
        return;
    Shard &to = *shards_[dst];
    {
        // The splice is the modeled lock-free MPSC push: rewrite our
        // tail link to the destination's current inbox head and
        // publish our head as the new inbox head, all without taking
        // the destination's lock. NoYield makes the exchange atomic
        // in virtual time; the race checker audits exactly that.
        sim::SimThread::NoYield atomic(t);
        if (checker_ != nullptr)
            checker_->onRemoteQueueAccess(t.id(), t.now(),
                                          t.inNoYield());
        kernel_.mmu().storeCap(t, ob.tail, to.inbox_head_cap);
        to.inbox_head = ob.head;
        to.inbox_head_cap = ob.head_cap;
        to.inbox_count += ob.count;
    }
    ++stats_.remote_batches;
    ++from.stats.remote_batches;
    ob.head = 0;
    ob.tail = 0;
    ob.head_cap = cap::Capability{};
    ob.count = 0;
}

void
QuarantineShim::flushOutbound(sim::SimThread &t, Shard &from)
{
    for (unsigned dst = 0; dst < shards_.size(); ++dst)
        flushBatch(t, from, dst);
}

void
QuarantineShim::drainInbox(sim::SimThread &t, Shard &sh)
{
    if (sh.inbox_count == 0)
        return;
    cap::Capability head_cap;
    std::size_t n = 0;
    {
        // Detach the whole chain atomically (the owner's half of the
        // MPSC exchange); senders splicing afterwards start a fresh
        // chain for the next drain.
        sim::SimThread::NoYield atomic(t);
        if (checker_ != nullptr)
            checker_->onRemoteQueueAccess(t.id(), t.now(),
                                          t.inNoYield());
        head_cap = sh.inbox_head_cap;
        n = sh.inbox_count;
        sh.inbox_head = 0;
        sh.inbox_head_cap = cap::Capability{};
        sh.inbox_count = 0;
    }

    // Walk the in-band chain — charged capability loads through the
    // load barrier, like any free-list pop — newest message first...
    std::vector<cap::Capability> objs;
    objs.reserve(n);
    cap::Capability cur = head_cap;
    while (cur.tag) {
        objs.push_back(cur);
        cur = kernel_.mmu().loadCap(t, cur.base);
    }
    CREV_ASSERT(objs.size() == n);
    // ...then retire in send order (oldest first): the drain order is
    // a deterministic function of the sim-ordered sends.
    std::reverse(objs.begin(), objs.end());
    stats_.remote_drained += n;
    sh.stats.remote_drained += n;

    for (const cap::Capability &c : objs) {
        snm_.clearInFlight(c.base);
        snm_.retire(c.base);
        if (!enabled()) {
            snm_.deallocRaw(t, c.base);
            continue;
        }
        quarantineLocked(t, sh, c.base, snm_.objectSize(c.base));
    }
}

void
QuarantineShim::quarantineLocked(sim::SimThread &t, Shard &sh,
                                 Addr base, std::size_t size)
{
    // Paint the revocation bitmap over the whole allocation.
    bitmap_->paint(t, base, size);

    // Never push into a buffer already awaiting its epoch: such an
    // entry would be recycled without having been revoked. Blocking
    // guarantees a non-awaiting buffer exists (except at shutdown,
    // when no reuse happens anyway).
    maybeBlock(t, sh);
    if (sh.buffers[sh.cur].awaiting && !sh.buffers[sh.cur ^ 1].awaiting)
        sh.cur ^= 1;

    Buffer &b = sh.buffers[sh.cur];
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     sh.lock.heldBy(t));
    b.entries.push_back(Entry{base, size});
    b.bytes += size;
    quarantine_bytes_ += size;
    stats_.sum_freed_bytes += size;
    stats_.max_quarantine_bytes =
        std::max<std::uint64_t>(stats_.max_quarantine_bytes,
                                quarantine_bytes_);

    maybeTrigger(t, sh);
}

cap::Capability
QuarantineShim::malloc(sim::SimThread &t, std::size_t size)
{
    const unsigned s = shardOf(t);
    Shard &sh = *shards_[s];
    Locked guard(sh.lock, t);
    // The allocation boundary is where remote-free traffic moves:
    // push out our pending batches, then accept what others sent us.
    flushOutbound(t, sh);
    drainInbox(t, sh);
    if (enabled()) {
        maybeDequarantine(t, sh);
        maybeTrigger(t, sh);
        maybeBlock(t, sh);
        ensureAddressSpaceFor(t, sh, s, size);
    }
    return snm_.alloc(t, size, s);
}

void
QuarantineShim::ensureAddressSpaceFor(sim::SimThread &t, Shard &sh,
                                      unsigned s, std::size_t size)
{
    const std::size_t demand = snm_.mmapDemandFor(size, s);
    if (demand == 0)
        return;
    vm::AddressSpace &as = kernel_.mmu().addressSpace();
    if (as.canReserve(demand))
        return;

    // Address space exhausted while bytes sit in quarantine: degrade
    // to an emergency drain of this shard — every object it
    // quarantined is revoked and recycled — instead of letting
    // reserve() assert. Other shards' locks are never taken here
    // (no nested shard locking anywhere), so this cannot deadlock.
    ++stats_.emergency_reclaims;
    warn("quarantine: address space exhausted (demand=%zu bytes); "
         "forcing emergency reclaim",
         demand);
    drainInbox(t, sh);
    drainShardLocked(t, sh);
    if (!as.canReserve(demand))
        throw std::bad_alloc();
}

void
QuarantineShim::free(sim::SimThread &t, const cap::Capability &c)
{
    const unsigned s = shardOf(t);
    Shard &sh = *shards_[s];
    Locked guard(sh.lock, t);
    if (!c.tag)
        throw std::logic_error("free of an untagged capability");

    const unsigned owner =
        shards_.size() == 1 ? 0u : snm_.ownerOf(c.base);
    if (owner != s) {
        // Cross-core free: the object travels back to its owner as a
        // batched remote-dealloc message; retirement, painting, and
        // quarantine all happen on the owner's side at drain.
        remoteFree(t, sh, owner, c);
        return;
    }

    if (!enabled()) {
        snm_.dealloc(t, c);
        return;
    }

    // Validate and retire from the live set; the object's lifetime is
    // logically extended until revocation (no poisoning or zeroing:
    // deferral motivations in paper §2.2.2).
    snm_.retire(c.base);
    const std::size_t size = snm_.objectSize(c.base);
    t.accrue(t.scheduler().costs().free_overhead);
    quarantineLocked(t, sh, c.base, size);
}

void
QuarantineShim::drain(sim::SimThread &t)
{
    // The single-shard baseline has no queues and no quarantine:
    // preserve the historical no-op (no lock traffic at all).
    if (!enabled() && shards_.size() == 1)
        return;
    // Flushing shard A's outbound fills shard B's inbox, and draining
    // B's inbox can trigger revocations; iterate to a global fixed
    // point. Shards are visited in ascending order with locks taken
    // one at a time (never nested): concurrent drainers interleave
    // safely.
    for (;;) {
        for (auto &shp : shards_) {
            Locked guard(shp->lock, t);
            flushOutbound(t, *shp);
        }
        for (auto &shp : shards_) {
            Locked guard(shp->lock, t);
            drainInbox(t, *shp);
            if (enabled())
                drainShardLocked(t, *shp);
        }
        if (t.scheduler().shuttingDown())
            return;
        bool dirty = quarantine_bytes_ > 0;
        for (const auto &shp : shards_) {
            if (shp->inbox_count > 0)
                dirty = true;
            for (const Outbound &ob : shp->outbound)
                if (ob.count > 0)
                    dirty = true;
        }
        if (!dirty)
            return;
    }
}

void
QuarantineShim::drainShardLocked(sim::SimThread &t, Shard &sh)
{
    for (;;) {
        const bool pending =
            sh.buffers[0].bytes > 0 || sh.buffers[1].bytes > 0 ||
            sh.buffers[0].awaiting || sh.buffers[1].awaiting;
        if (!pending)
            return;
        for (Buffer &b : sh.buffers) {
            if (b.bytes > 0 && !b.awaiting) {
                const std::uint64_t e = kernel_.epoch().read(t);
                b.target = kernel_.epoch().dequarantineTarget(e);
                b.awaiting = true;
                sendEpochRequest(t);
            }
        }
        std::uint64_t target = 0;
        for (const Buffer &b : sh.buffers)
            if (b.awaiting)
                target = std::max(target, b.target);
        waitForCounterRecovering(t, target);
        if (t.scheduler().shuttingDown())
            return;
        maybeDequarantine(t, sh);
    }
}

} // namespace crev::alloc
