#include "alloc/quarantine.h"

#include <new>
#include <stdexcept>

#include "base/logging.h"
#include "check/race_checker.h"
#include "sim/fault_injector.h"

namespace crev::alloc {

QuarantineShim::QuarantineShim(SnmallocLite &snm, kern::Kernel &kernel,
                               revoker::Revoker *revoker,
                               revoker::RevocationBitmap *bitmap,
                               const QuarantinePolicy &policy)
    : snm_(snm), kernel_(kernel), revoker_(revoker), bitmap_(bitmap),
      policy_(policy)
{
    CREV_ASSERT((revoker_ == nullptr) == (bitmap_ == nullptr));
}

void
QuarantineShim::setChecker(check::RaceChecker *c)
{
    checker_ = c;
    if (c != nullptr)
        c->nameLock(&heap_lock_, "heap");
}

std::size_t
QuarantineShim::threshold() const
{
    const auto by_ratio = static_cast<std::size_t>(
        policy_.alloc_ratio * static_cast<double>(snm_.liveBytes()));
    return std::max(policy_.min_bytes, by_ratio);
}

void
QuarantineShim::maybeDequarantine(sim::SimThread &t)
{
    const std::uint64_t now = kernel_.epoch().value();
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     heap_lock_.heldBy(t));
    for (Buffer &b : buffers_) {
        if (!b.awaiting || now < b.target)
            continue;
        if (checker_ != nullptr)
            checker_->onDequarantineRelease(t.id(), t.now(), b.target,
                                            now);
        // Detach the buffer *before* releasing its entries: the
        // release path yields (simulated memory traffic), and another
        // thread sharing this heap may re-enter; detaching first
        // makes the release idempotent.
        std::vector<Entry> entries;
        entries.swap(b.entries);
        b.bytes = 0;
        b.awaiting = false;
        b.target = 0;
        // The revoking epoch has completed: every capability to these
        // objects is gone; unpaint and recycle.
        for (const Entry &e : entries) {
            bitmap_->clear(t, e.base, e.size);
            revoker_->onDequarantine(e.base, e.size);
            snm_.deallocRaw(t, e.base);
            CREV_ASSERT(quarantine_bytes_ >= e.size);
            quarantine_bytes_ -= e.size;
        }
    }
}

void
QuarantineShim::maybeTrigger(sim::SimThread &t)
{
    Buffer &b = buffers_[cur_];
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     heap_lock_.heldBy(t));
    if (b.awaiting || b.bytes <= threshold())
        return;

    // Submission must be atomic w.r.t. other heap users: the epoch
    // read accrues cycles and could otherwise yield between the
    // check above and the state updates below.
    sim::SimThread::NoYield guard(t);
    const std::uint64_t e = kernel_.epoch().read(t);
    b.target = kernel_.epoch().dequarantineTarget(e);
    b.awaiting = true;
    ++stats_.revocations_triggered;
    stats_.sum_alloc_at_trigger += snm_.liveBytes();
    stats_.sum_quar_at_trigger += quarantine_bytes_;
    sendEpochRequest(t);

    // Frees continue into the other buffer meanwhile.
    cur_ ^= 1;
}

bool
QuarantineShim::handoffFaultsArmed() const
{
    return injector_ != nullptr &&
           (injector_->plan().quarantine_drop_prob > 0.0 ||
            injector_->plan().quarantine_duplicate_prob > 0.0);
}

void
QuarantineShim::sendEpochRequest(sim::SimThread &t)
{
    if (injector_ != nullptr && injector_->dropQuarantineHandoff(t))
        return; // lost in flight; the waiter detects and re-sends
    revoker_->requestEpoch(t);
    if (injector_ != nullptr && injector_->duplicateQuarantineHandoff(t))
        revoker_->requestEpoch(t); // idempotent while one is pending
}

void
QuarantineShim::waitForCounterRecovering(sim::SimThread &t,
                                         std::uint64_t target)
{
    if (!handoffFaultsArmed()) {
        revoker_->waitForEpochCounter(t, target);
        return;
    }
    // SimEvent has no timed wait, so the recovering variant is a
    // sleep-poll loop; the poll period is well under any epoch.
    constexpr Cycles kPoll = 250'000;
    revoker::RecoveryManager::Ticket tk;
    while (kernel_.epoch().value() < target) {
        if (t.scheduler().shuttingDown())
            return;
        if (!revoker_->requestPending() &&
            !revoker_->epochInProgress()) {
            // Counter short, nothing queued, nothing running: the
            // hand-off was dropped in flight. Re-send it.
            if (recovery_ != nullptr) {
                if (!tk.open)
                    tk = recovery_->open(
                        t, trace::RecoveryProtocol::kQuarantineHandoff);
                if (recovery_->attempt(t, tk)) {
                    ++stats_.handoff_resends;
                    sendEpochRequest(t);
                    t.sleep(recovery_->backoff(tk));
                    continue;
                }
                // Retries exhausted (or the protocol deadline passed):
                // close the ticket and degrade to a direct request on
                // the unfaultable path plus a plain wait.
                recovery_->close(t, tk,
                                 recovery_->failureOutcome(t.now(), tk));
                revoker_->requestEpoch(t);
                revoker_->waitForEpochCounter(t, target);
                return;
            }
            ++stats_.handoff_resends;
            sendEpochRequest(t);
        }
        t.sleep(kPoll);
    }
    if (recovery_ != nullptr && tk.open)
        recovery_->close(t, tk, trace::RecoveryOutcome::kSucceeded);
}

void
QuarantineShim::maybeBlock(sim::SimThread &t)
{
    // mrs blocks an allocation or free when both quarantine buffers
    // are awaiting revocation (the "over twice full" condition, §5.3):
    // wait for the older epoch target so one buffer drains.
    for (;;) {
        maybeDequarantine(t);
        if (!(buffers_[0].awaiting && buffers_[1].awaiting))
            return;
        ++stats_.blocked_ops;
        const std::uint64_t target =
            std::min(buffers_[0].target, buffers_[1].target);
        const Cycles wait_begin = t.now();
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), wait_begin,
                            trace::EventType::kQuarantineBlock, 0,
                            target);
        waitForCounterRecovering(t, target);
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), t.now(),
                            trace::EventType::kQuarantineUnblock, 0,
                            target);
        stats_.blocked_cycles += t.now() - wait_begin;
        if (t.scheduler().shuttingDown())
            return;
    }
}

cap::Capability
QuarantineShim::malloc(sim::SimThread &t, std::size_t size)
{
    Locked guard(heap_lock_, t);
    if (enabled()) {
        maybeDequarantine(t);
        maybeTrigger(t);
        maybeBlock(t);
        ensureAddressSpaceFor(t, size);
    }
    return snm_.alloc(t, size);
}

void
QuarantineShim::ensureAddressSpaceFor(sim::SimThread &t,
                                      std::size_t size)
{
    const std::size_t demand = snm_.mmapDemandFor(size);
    if (demand == 0)
        return;
    vm::AddressSpace &as = kernel_.mmu().addressSpace();
    if (as.canReserve(demand))
        return;

    // Address space exhausted while bytes sit in quarantine: degrade
    // to an emergency full drain — every quarantined object is
    // revoked and recycled — instead of letting reserve() assert.
    ++stats_.emergency_reclaims;
    warn("quarantine: address space exhausted (demand=%zu bytes); "
         "forcing emergency reclaim",
         demand);
    drainLocked(t);
    if (!as.canReserve(demand))
        throw std::bad_alloc();
}

void
QuarantineShim::free(sim::SimThread &t, const cap::Capability &c)
{
    Locked guard(heap_lock_, t);
    if (!enabled()) {
        snm_.dealloc(t, c);
        return;
    }
    if (!c.tag)
        throw std::logic_error("free of an untagged capability");

    // Validate and retire from the live set; the object's lifetime is
    // logically extended until revocation (no poisoning or zeroing:
    // deferral motivations in paper §2.2.2).
    snm_.retire(c.base);
    const std::size_t size = snm_.objectSize(c.base);
    t.accrue(t.scheduler().costs().free_overhead);

    // Paint the revocation bitmap over the whole allocation.
    bitmap_->paint(t, c.base, size);

    // Never push into a buffer already awaiting its epoch: such an
    // entry would be recycled without having been revoked. Blocking
    // guarantees a non-awaiting buffer exists (except at shutdown,
    // when no reuse happens anyway).
    maybeBlock(t);
    if (buffers_[cur_].awaiting && !buffers_[cur_ ^ 1].awaiting)
        cur_ ^= 1;

    Buffer &b = buffers_[cur_];
    if (checker_ != nullptr)
        checker_->onQuarantineAccess(t.id(), t.now(),
                                     heap_lock_.heldBy(t));
    b.entries.push_back(Entry{c.base, size});
    b.bytes += size;
    quarantine_bytes_ += size;
    stats_.sum_freed_bytes += size;
    stats_.max_quarantine_bytes =
        std::max<std::uint64_t>(stats_.max_quarantine_bytes,
                                quarantine_bytes_);

    maybeTrigger(t);
}

void
QuarantineShim::drain(sim::SimThread &t)
{
    if (!enabled())
        return;
    Locked guard(heap_lock_, t);
    drainLocked(t);
}

void
QuarantineShim::drainLocked(sim::SimThread &t)
{
    while (quarantine_bytes_ > 0) {
        for (Buffer &b : buffers_) {
            if (b.bytes > 0 && !b.awaiting) {
                const std::uint64_t e = kernel_.epoch().read(t);
                b.target = kernel_.epoch().dequarantineTarget(e);
                b.awaiting = true;
                sendEpochRequest(t);
            }
        }
        std::uint64_t target = 0;
        for (const Buffer &b : buffers_)
            if (b.awaiting)
                target = std::max(target, b.target);
        waitForCounterRecovering(t, target);
        if (t.scheduler().shuttingDown())
            return;
        maybeDequarantine(t);
    }
}

} // namespace crev::alloc
