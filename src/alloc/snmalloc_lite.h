/**
 * @file
 * A size-classed slab allocator in the spirit of snmalloc, operating
 * entirely on simulated memory.
 *
 * Small objects come from per-size-class slabs carved out of 64 KiB
 * chunks inside 1 MiB arenas; large objects get page-granular,
 * representability-aligned carve-outs. Free lists are *in-band*:
 * each free object's first granule holds a capability to the next
 * free object, so allocator metadata traffic (and its interaction
 * with the load barrier — the allocator is just another userspace
 * capability user) is faithfully accounted.
 *
 * Size classes are chosen so every (base, size) pair the allocator
 * produces is exactly representable under cap/compression.h — the
 * discipline a real CHERI malloc must follow (paper §2.1).
 *
 * The returned capability's bounds cover exactly the size class, so a
 * correct client cannot touch neighbours (spatial safety); temporal
 * safety is layered on by QuarantineShim.
 */

#ifndef CREV_ALLOC_SNMALLOC_LITE_H_
#define CREV_ALLOC_SNMALLOC_LITE_H_

#include <array>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "kern/kernel.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::alloc {

/** Small-object size classes (bytes); all exactly representable. */
constexpr std::array<std::size_t, 20> kSizeClasses = {
    16,   32,   48,   64,   96,   128,  192,  256,   384,   512,
    768,  1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384};

/** Largest small-object size. */
constexpr std::size_t kMaxSmall = kSizeClasses.back();

/** Allocator activity counters. */
struct AllocStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_allocated_total = 0;
    std::uint64_t bytes_freed_total = 0;
};

/** The slab allocator. */
class SnmallocLite
{
  public:
    SnmallocLite(kern::Kernel &kernel, vm::Mmu &mmu);

    /**
     * Allocate at least @p size bytes; returns a tagged capability
     * bounded to the rounded size (the size class, or page-rounded
     * for large allocations).
     */
    cap::Capability alloc(sim::SimThread &t, std::size_t size);

    /**
     * Return an object to its free list immediately (no quarantine;
     * the baseline configuration, or the shim after dequarantine).
     * Detects double-free of a live pointer.
     */
    void dealloc(sim::SimThread &t, const cap::Capability &c);

    /** Dequarantine path: free by base address. */
    void deallocRaw(sim::SimThread &t, Addr base);

    /**
     * Remove @p base from the live set (quarantine entry point): the
     * object stops counting toward the live heap but is not yet
     * reusable. Throws std::logic_error on double free.
     */
    void retire(Addr base);

    /** Rounded allocation size for @p base (must be a live or
     *  quarantined object base). */
    std::size_t objectSize(Addr base) const;

    /** Whether @p base is a currently-live allocation. */
    bool
    isLive(Addr base) const
    {
        if (fast_index_)
            return liveBitTest(base);
        return live_.count(base) != 0;
    }

    /**
     * Lockstep-engine lane-safe lookup structures (DESIGN.md §14.4):
     * a per-page chunk index replacing chunkFor()'s ordered-map probe
     * (chunks are page-granular, non-overlapping, and never erased)
     * and a granule bitmap replacing the live_ hash set (object bases
     * are 16-byte aligned inside the heap window). Membership is
     * identical either way; the serial reference engine keeps the
     * original containers.
     */
    void setFastIndex(bool on);

    /** Bytes in live allocations (rounded sizes). */
    std::size_t liveBytes() const { return live_bytes_; }

    /**
     * Address-space bytes an alloc(@p size) would have to mmap right
     * now — 0 when it can be served from free lists, the current slab,
     * the current arena, or the large-chunk cache. The quarantine shim
     * probes this before allocating so address-space exhaustion can
     * degrade to emergency reclaim instead of asserting.
     */
    std::size_t mmapDemandFor(std::size_t size) const;

    const AllocStats &stats() const { return stats_; }

    /** The size class index holding @p size, or -1 if large. */
    static int sizeClassFor(std::size_t size);

  private:
    struct ClassState
    {
        Addr free_head = 0; //!< VA of first free object (0 = empty)
        cap::Capability free_head_cap; //!< allocator-retained pointer
        Addr bump = 0;      //!< next never-used object in current slab
        Addr slab_end = 0;
    };

    struct ChunkMeta
    {
        Addr base = 0;
        std::size_t length = 0;
        int size_class = -1; //!< -1 for large chunks
        /** Allocator-retained capability spanning the chunk. */
        cap::Capability chunk_cap;
    };

    /** Carve a new chunk of @p bytes (page multiple) from an arena. */
    Addr carveChunk(sim::SimThread &t, std::size_t bytes,
                    std::size_t align);

    const ChunkMeta &chunkFor(Addr va) const;

    /** Mirror a chunks_ insertion into the per-page index. */
    void noteChunk(const ChunkMeta &m);

    // --- live-set granule bitmap (fast_index_) ---
    std::size_t liveBitIndex(Addr base) const;
    bool liveBitTest(Addr base) const;
    void liveBitSet(Addr base);
    /** Clear the bit; returns whether it was set. */
    bool liveBitClear(Addr base);

    kern::Kernel &kernel_;
    vm::Mmu &mmu_;
    std::array<ClassState, kSizeClasses.size()> classes_{};
    std::map<Addr, ChunkMeta> chunks_; //!< by chunk base
    std::map<std::size_t, std::vector<cap::Capability>>
        large_free_; //!< cached free large chunks, by length
    std::unordered_set<Addr> live_;    //!< live object bases
    bool fast_index_ = false;
    /** Heap page -> owning chunk (fast_index_); never invalidated. */
    std::vector<const ChunkMeta *> chunk_by_page_;
    /** One bit per heap granule: live object base (fast_index_). */
    std::vector<std::uint64_t> live_bits_;
    cap::Capability arena_cap_;        //!< current arena root
    Addr arena_bump_ = 0;
    Addr arena_end_ = 0;
    std::size_t live_bytes_ = 0;
    AllocStats stats_;
};

} // namespace crev::alloc

#endif // CREV_ALLOC_SNMALLOC_LITE_H_
