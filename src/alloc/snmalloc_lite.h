/**
 * @file
 * A size-classed slab allocator in the spirit of snmalloc, operating
 * entirely on simulated memory.
 *
 * Small objects come from per-size-class slabs carved out of 64 KiB
 * chunks inside 1 MiB arenas; large objects get page-granular,
 * representability-aligned carve-outs. Free lists are *in-band*:
 * each free object's first granule holds a capability to the next
 * free object, so allocator metadata traffic (and its interaction
 * with the load barrier — the allocator is just another userspace
 * capability user) is faithfully accounted.
 *
 * Size classes are chosen so every (base, size) pair the allocator
 * produces is exactly representable under cap/compression.h — the
 * discipline a real CHERI malloc must follow (paper §2.1).
 *
 * The returned capability's bounds cover exactly the size class, so a
 * correct client cannot touch neighbours (spatial safety); temporal
 * safety is layered on by QuarantineShim.
 *
 * Sharding (DESIGN.md §15): the allocator can be split into per-core
 * *shards*, each with its own free lists, slab cursors, arena, and
 * large-chunk cache — the shape of snmalloc's per-thread LocalAllocs.
 * Every chunk records its owning shard; an object must be returned to
 * its owner's free lists (QuarantineShim routes cross-core frees as
 * remote-dealloc messages). The chunk map, live set, and in-flight
 * set stay global: they model the shared address-space metadata every
 * allocator instance can see.
 */

#ifndef CREV_ALLOC_SNMALLOC_LITE_H_
#define CREV_ALLOC_SNMALLOC_LITE_H_

#include <array>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "kern/kernel.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::alloc {

/** Small-object size classes (bytes); all exactly representable. */
constexpr std::array<std::size_t, 20> kSizeClasses = {
    16,   32,   48,   64,   96,   128,  192,  256,   384,   512,
    768,  1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384};

/** Largest small-object size. */
constexpr std::size_t kMaxSmall = kSizeClasses.back();

/** Allocator activity counters (global and per shard). */
struct AllocStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_allocated_total = 0;
    std::uint64_t bytes_freed_total = 0;
};

/** The slab allocator. */
class SnmallocLite
{
  public:
    SnmallocLite(kern::Kernel &kernel, vm::Mmu &mmu,
                 unsigned shards = 1);

    /** Number of per-core shards (1 = the single-heap reference). */
    unsigned
    shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /**
     * Allocate at least @p size bytes from @p shard's slabs; returns
     * a tagged capability bounded to the rounded size (the size
     * class, or page-rounded for large allocations).
     */
    cap::Capability alloc(sim::SimThread &t, std::size_t size,
                          unsigned shard = 0);

    /**
     * Return an object to its owner's free list immediately (no
     * quarantine; the baseline configuration, or the shim after
     * dequarantine). Detects double-free of a live pointer.
     */
    void dealloc(sim::SimThread &t, const cap::Capability &c);

    /** Dequarantine path: free by base address, onto the free lists
     *  of the shard that owns the containing chunk. */
    void deallocRaw(sim::SimThread &t, Addr base);

    /**
     * Remove @p base from the live set (quarantine entry point): the
     * object stops counting toward the live heap but is not yet
     * reusable. Throws std::logic_error on double free — including a
     * local free racing a still-in-flight remote free.
     */
    void retire(Addr base);

    /**
     * Mark @p base as having a remote free in flight: the object
     * stays live (the free has not reached its owner yet) but a
     * second free — local or remote — is a detected double free.
     */
    void markInFlight(Addr base);

    /** The owner drained the message: @p base may now be retired. */
    void clearInFlight(Addr base);

    /** The shard owning the chunk containing @p base. */
    unsigned
    ownerOf(Addr base) const
    {
        return chunkFor(base).owner;
    }

    /** Rounded allocation size for @p base (must be a live or
     *  quarantined object base). */
    std::size_t objectSize(Addr base) const;

    /** Whether @p base is a currently-live allocation. */
    bool
    isLive(Addr base) const
    {
        if (fast_index_)
            return liveBitTest(base);
        return live_.count(base) != 0;
    }

    /**
     * Lockstep-engine lane-safe lookup structures (DESIGN.md §14.4):
     * a per-page chunk index replacing chunkFor()'s ordered-map probe
     * (chunks are page-granular, non-overlapping, and never erased)
     * and a granule bitmap replacing the live_ hash set (object bases
     * are 16-byte aligned inside the heap window). Membership is
     * identical either way; the serial reference engine keeps the
     * original containers.
     */
    void setFastIndex(bool on);

    /** Bytes in live allocations (rounded sizes). */
    std::size_t liveBytes() const { return live_bytes_; }

    /**
     * Address-space bytes an alloc(@p size) on @p shard would have to
     * mmap right now — 0 when it can be served from free lists, the
     * current slab, the current arena, or the large-chunk cache. The
     * quarantine shim probes this before allocating so address-space
     * exhaustion can degrade to emergency reclaim instead of
     * asserting.
     */
    std::size_t mmapDemandFor(std::size_t size,
                              unsigned shard = 0) const;

    const AllocStats &stats() const { return stats_; }

    /** Per-shard activity (RunMetrics "alloc.shardN.*"). */
    const AllocStats &
    shardStats(unsigned shard) const
    {
        return shards_[shard].stats;
    }

    /** The size class index holding @p size, or -1 if large. */
    static int sizeClassFor(std::size_t size);

  private:
    struct ClassState
    {
        Addr free_head = 0; //!< VA of first free object (0 = empty)
        cap::Capability free_head_cap; //!< allocator-retained pointer
        Addr bump = 0;      //!< next never-used object in current slab
        Addr slab_end = 0;
    };

    /** One per-core allocator: snmalloc's LocalAlloc shape. */
    struct Shard
    {
        std::array<ClassState, kSizeClasses.size()> classes{};
        std::map<std::size_t, std::vector<cap::Capability>>
            large_free; //!< cached free large chunks, by length
        cap::Capability arena_cap; //!< current arena root
        Addr arena_bump = 0;
        Addr arena_end = 0;
        AllocStats stats;
    };

    struct ChunkMeta
    {
        Addr base = 0;
        std::size_t length = 0;
        int size_class = -1; //!< -1 for large chunks
        unsigned owner = 0;  //!< shard whose free lists recycle it
        /** Allocator-retained capability spanning the chunk. */
        cap::Capability chunk_cap;
    };

    /** Carve a new chunk of @p bytes (page multiple) from @p shard's
     *  arena. */
    Addr carveChunk(sim::SimThread &t, Shard &sh, std::size_t bytes,
                    std::size_t align);

    const ChunkMeta &chunkFor(Addr va) const;

    /** Mirror a chunks_ insertion into the per-page index. */
    void noteChunk(const ChunkMeta &m);

    // --- live-set granule bitmap (fast_index_) ---
    std::size_t liveBitIndex(Addr base) const;
    bool liveBitTest(Addr base) const;
    void liveBitSet(Addr base);
    /** Clear the bit; returns whether it was set. */
    bool liveBitClear(Addr base);

    kern::Kernel &kernel_;
    vm::Mmu &mmu_;
    std::vector<Shard> shards_; //!< sized once at construction
    std::map<Addr, ChunkMeta> chunks_; //!< by chunk base
    std::unordered_set<Addr> live_;    //!< live object bases
    /** Bases with a remote free in flight (still live; a second free
     *  is a double free). Membership-only — never iterated. */
    std::unordered_set<Addr> in_flight_;
    bool fast_index_ = false;
    /** Heap page -> owning chunk (fast_index_); never invalidated. */
    std::vector<const ChunkMeta *> chunk_by_page_;
    /** One bit per heap granule: live object base (fast_index_). */
    std::vector<std::uint64_t> live_bits_;
    std::size_t live_bytes_ = 0;
    AllocStats stats_;
};

} // namespace crev::alloc

#endif // CREV_ALLOC_SNMALLOC_LITE_H_
