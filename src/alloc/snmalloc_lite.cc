#include "alloc/snmalloc_lite.h"

#include <stdexcept>

#include "base/logging.h"
#include "cap/compression.h"

namespace crev::alloc {

namespace {
constexpr std::size_t kChunkSize = 64 * 1024;
constexpr std::size_t kArenaSize = 1024 * 1024;

/** Granule-indexed size-class table: entry g holds the class for all
 *  sizes in (16*(g-1), 16*g]. Built at compile time from kSizeClasses
 *  so the two can never drift (equivalence pinned exhaustively in
 *  tests/alloc_test.cpp). */
constexpr auto kClassLut = [] {
    std::array<std::int8_t, kMaxSmall / 16 + 1> lut{};
    std::size_t c = 0;
    for (std::size_t g = 0; g < lut.size(); ++g) {
        while (g * 16 > kSizeClasses[c])
            ++c;
        lut[g] = static_cast<std::int8_t>(c);
    }
    return lut;
}();
} // namespace

SnmallocLite::SnmallocLite(kern::Kernel &kernel, vm::Mmu &mmu,
                           unsigned shards)
    : kernel_(kernel), mmu_(mmu)
{
    CREV_ASSERT(shards >= 1);
    shards_.resize(shards);
}

int
SnmallocLite::sizeClassFor(std::size_t size)
{
    if (size > kMaxSmall)
        return -1;
    return kClassLut[(size + 15) >> 4];
}

Addr
SnmallocLite::carveChunk(sim::SimThread &t, Shard &sh,
                         std::size_t bytes, std::size_t align)
{
    CREV_ASSERT(bytes % kPageSize == 0);
    Addr base = roundUp(sh.arena_bump, align);
    if (base + bytes > sh.arena_end) {
        const std::size_t arena_bytes = std::max<std::size_t>(
            kArenaSize, roundUp(bytes, kPageSize));
        sh.arena_cap = kernel_.sysMmap(t, arena_bytes);
        sh.arena_bump = sh.arena_cap.base;
        sh.arena_end = sh.arena_cap.top;
        base = roundUp(sh.arena_bump, align);
        CREV_ASSERT(base + bytes <= sh.arena_end);
    }
    sh.arena_bump = base + bytes;
    return base;
}

const SnmallocLite::ChunkMeta &
SnmallocLite::chunkFor(Addr va) const
{
    if (fast_index_) {
        CREV_ASSERT(va >= vm::kHeapBase && va < vm::kHeapCeiling);
        const ChunkMeta *m =
            chunk_by_page_[(va - vm::kHeapBase) / kPageSize];
        CREV_ASSERT(m != nullptr);
        CREV_ASSERT(va >= m->base && va < m->base + m->length);
        return *m;
    }
    auto it = chunks_.upper_bound(va);
    CREV_ASSERT(it != chunks_.begin());
    --it;
    const ChunkMeta &m = it->second;
    CREV_ASSERT(va >= m.base && va < m.base + m.length);
    return m;
}

void
SnmallocLite::noteChunk(const ChunkMeta &m)
{
    if (!fast_index_)
        return;
    for (Addr va = m.base; va < m.base + m.length; va += kPageSize)
        chunk_by_page_[(va - vm::kHeapBase) / kPageSize] = &m;
}

std::size_t
SnmallocLite::liveBitIndex(Addr base) const
{
    CREV_ASSERT(base >= vm::kHeapBase && base < vm::kHeapCeiling);
    CREV_ASSERT(base % kGranuleSize == 0);
    return static_cast<std::size_t>((base - vm::kHeapBase) >>
                                    kGranuleBits);
}

bool
SnmallocLite::liveBitTest(Addr base) const
{
    const std::size_t i = liveBitIndex(base);
    return (live_bits_[i >> 6] >> (i & 63)) & 1u;
}

void
SnmallocLite::liveBitSet(Addr base)
{
    const std::size_t i = liveBitIndex(base);
    live_bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
}

bool
SnmallocLite::liveBitClear(Addr base)
{
    const std::size_t i = liveBitIndex(base);
    std::uint64_t &w = live_bits_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    if ((w & bit) == 0)
        return false;
    w &= ~bit;
    return true;
}

void
SnmallocLite::setFastIndex(bool on)
{
    fast_index_ = on;
    if (!on) {
        chunk_by_page_.clear();
        live_bits_.clear();
        return;
    }
    constexpr std::size_t kHeapPages = static_cast<std::size_t>(
        (vm::kHeapCeiling - vm::kHeapBase) / kPageSize);
    constexpr std::size_t kHeapGranules = static_cast<std::size_t>(
        (vm::kHeapCeiling - vm::kHeapBase) / kGranuleSize);
    chunk_by_page_.assign(kHeapPages, nullptr);
    live_bits_.assign(kHeapGranules / 64, 0);
    for (const auto &[base, m] : chunks_)
        noteChunk(m);
    // Bit-set migration commutes: the resulting bitmap is independent
    // of visit order. lint: unordered-ok
    for (Addr base : live_)
        liveBitSet(base);
    live_.clear();
}

cap::Capability
SnmallocLite::alloc(sim::SimThread &t, std::size_t size,
                    unsigned shard)
{
    CREV_ASSERT(size > 0);
    CREV_ASSERT(shard < shards_.size());
    Shard &sh = shards_[shard];
    t.accrue(mmu_.costs().malloc_overhead);

    const int sc = sizeClassFor(size);
    cap::Capability result;

    if (sc < 0) {
        // Large allocation: its own page-granular carve-out, reusing a
        // cached free chunk of the same length when available
        // (snmalloc never munmaps — paper §6.2).
        const std::size_t bytes = roundUp(size, kPageSize);
        auto it = sh.large_free.find(bytes);
        if (it != sh.large_free.end() && !it->second.empty()) {
            result = it->second.back();
            it->second.pop_back();
        } else {
            result = kernel_.sysMmap(t, bytes);
            ChunkMeta &m = chunks_[result.base];
            m = ChunkMeta{result.base, bytes, -1, shard, result};
            noteChunk(m);
        }
    } else {
        const std::size_t csize = kSizeClasses[sc];
        ClassState &cs = sh.classes[sc];
        Addr base;
        if (cs.free_head != 0) {
            // Pop the in-band free list; this capability load goes
            // through the load barrier like any other.
            base = cs.free_head;
            const cap::Capability next = mmu_.loadCap(t, base);
            cs.free_head = next.tag ? next.address : 0;
            cs.free_head_cap = next;
        } else {
            if (cs.bump + csize > cs.slab_end) {
                const Addr chunk =
                    carveChunk(t, sh, kChunkSize, kPageSize);
                const cap::Capability ccap = sh.arena_cap.setBounds(
                    chunk, chunk + kChunkSize);
                CREV_ASSERT(ccap.tag);
                ChunkMeta &m = chunks_[chunk];
                m = ChunkMeta{chunk, kChunkSize, sc, shard, ccap};
                noteChunk(m);
                cs.bump = chunk;
                cs.slab_end = chunk + kChunkSize;
            }
            base = cs.bump;
            cs.bump += csize;
        }
        const ChunkMeta &m = chunkFor(base);
        result = m.chunk_cap.setBounds(base, base + csize);
    }

    CREV_ASSERT(result.tag);
    if (fast_index_)
        liveBitSet(result.base);
    else
        live_.insert(result.base);
    live_bytes_ += result.length();
    ++stats_.allocs;
    stats_.bytes_allocated_total += result.length();
    ++sh.stats.allocs;
    sh.stats.bytes_allocated_total += result.length();
    return result;
}

std::size_t
SnmallocLite::mmapDemandFor(std::size_t size, unsigned shard) const
{
    CREV_ASSERT(shard < shards_.size());
    const Shard &sh = shards_[shard];
    const int sc = sizeClassFor(size);
    if (sc < 0) {
        const std::size_t bytes = roundUp(size, kPageSize);
        auto it = sh.large_free.find(bytes);
        if (it != sh.large_free.end() && !it->second.empty())
            return 0;
        return bytes;
    }
    const ClassState &cs = sh.classes[sc];
    if (cs.free_head != 0)
        return 0;
    if (cs.bump + kSizeClasses[sc] <= cs.slab_end)
        return 0;
    // A fresh chunk is needed; in the worst case the arena is
    // exhausted too and carveChunk() mmaps a whole new one.
    const Addr base = roundUp(sh.arena_bump, kPageSize);
    if (base + kChunkSize <= sh.arena_end)
        return 0;
    return std::max<std::size_t>(kArenaSize,
                                 roundUp(kChunkSize, kPageSize));
}

std::size_t
SnmallocLite::objectSize(Addr base) const
{
    const ChunkMeta &m = chunkFor(base);
    if (m.size_class < 0) {
        CREV_ASSERT(base == m.base);
        return m.length;
    }
    const std::size_t csize = kSizeClasses[m.size_class];
    CREV_ASSERT((base - m.base) % csize == 0);
    return csize;
}

void
SnmallocLite::markInFlight(Addr base)
{
    if (!isLive(base) || !in_flight_.insert(base).second)
        throw std::logic_error(
            "remote free of a pointer that is not live "
            "(double free or invalid free)");
}

void
SnmallocLite::clearInFlight(Addr base)
{
    const std::size_t erased = in_flight_.erase(base);
    CREV_ASSERT(erased == 1);
}

void
SnmallocLite::retire(Addr base)
{
    if (!in_flight_.empty() && in_flight_.count(base) != 0)
        throw std::logic_error(
            "free of a pointer whose remote free is still in flight "
            "(double free)");
    const bool was_live =
        fast_index_ ? liveBitClear(base) : live_.erase(base) != 0;
    if (!was_live)
        throw std::logic_error("free of a pointer that is not live "
                               "(double free or invalid free)");
    const std::size_t size = objectSize(base);
    CREV_ASSERT(live_bytes_ >= size);
    live_bytes_ -= size;
    ++stats_.frees;
    stats_.bytes_freed_total += size;
    Shard &owner = shards_[chunkFor(base).owner];
    ++owner.stats.frees;
    owner.stats.bytes_freed_total += size;
}

void
SnmallocLite::deallocRaw(sim::SimThread &t, Addr base)
{
    t.accrue(mmu_.costs().free_overhead);
    const ChunkMeta &m = chunkFor(base);
    Shard &sh = shards_[m.owner];
    if (m.size_class < 0) {
        sh.large_free[m.length].push_back(m.chunk_cap);
        return;
    }
    const std::size_t csize = kSizeClasses[m.size_class];
    ClassState &cs = sh.classes[m.size_class];
    // Push onto the in-band free list: the (possibly null) old head
    // capability is stored into the object's first granule.
    mmu_.storeCap(t, base, cs.free_head_cap);
    cs.free_head = base;
    cs.free_head_cap = m.chunk_cap.setBounds(base, base + csize);
    CREV_ASSERT(cs.free_head_cap.tag);
}

void
SnmallocLite::dealloc(sim::SimThread &t, const cap::Capability &c)
{
    if (!c.tag)
        throw std::logic_error("free of an untagged capability");
    retire(c.base);
    deallocRaw(t, c.base);
}

} // namespace crev::alloc
