/**
 * @file
 * The mrs-style quarantine shim (paper §5, "modified mrs").
 *
 * Wraps SnmallocLite with temporal safety: free() validates the
 * capability, paints the revocation bitmap over the allocation, and
 * parks it in quarantine; the object only reaches a free list after a
 * full revocation epoch has both begun and ended since the paint
 * (epoch counter +2/+3 protocol, §2.2.3).
 *
 * The quarantine is double-buffered (§7.2): frees continue into the
 * second buffer while the first awaits its epoch. Revocation is
 * requested when quarantine exceeds the policy ratio of the live heap
 * (default: 1/3 of allocated heap ≡ 1/4 of total, paper §5) or the
 * configured minimum; operations *block* when quarantine exceeds
 * block_factor times the threshold, as mrs does (§5.3 discussion).
 */

#ifndef CREV_ALLOC_QUARANTINE_H_
#define CREV_ALLOC_QUARANTINE_H_

#include <cstdint>
#include <vector>

#include "alloc/snmalloc_lite.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"

namespace crev::check {
class RaceChecker;
}

namespace crev::sim {
class FaultInjector;
}

namespace crev::alloc {

/** Quarantine sizing policy (paper §5 defaults, scaled). */
struct QuarantinePolicy
{
    /** Revoke when quarantine exceeds this fraction of the live
     *  (allocated) heap — 1/3 of allocated == 1/4 of total. */
    double alloc_ratio = 1.0 / 3.0;
    /** ... unless less than this many bytes are quarantined (the
     *  paper uses 8 MiB; workloads here are scaled ~32x down). */
    std::size_t min_bytes = 256 * 1024;
    /** Block malloc/free when quarantine exceeds block_factor *
     *  threshold (mrs blocks at "over twice full"). */
    double block_factor = 2.0;
};

/** Revocation-rate statistics (Table 2). */
struct QuarantineStats
{
    std::uint64_t revocations_triggered = 0;
    std::uint64_t sum_freed_bytes = 0;   //!< total bytes quarantined
    std::uint64_t sum_alloc_at_trigger = 0; //!< Σ live heap @ trigger
    std::uint64_t sum_quar_at_trigger = 0;  //!< Σ quarantine @ trigger
    std::uint64_t blocked_ops = 0;       //!< ops that had to wait
    /** Virtual cycles mutators spent blocked on quarantine
     *  backpressure (sums each wait's duration). */
    std::uint64_t blocked_cycles = 0;
    /** High-water mark of bytes held in quarantine. */
    std::uint64_t max_quarantine_bytes = 0;
    /** Address-space exhaustion degraded to a forced full drain. */
    std::uint64_t emergency_reclaims = 0;
    /** Epoch hand-off requests re-sent after a detected loss. */
    std::uint64_t handoff_resends = 0;

    double
    meanAllocAtTrigger() const
    {
        return revocations_triggered == 0
                   ? 0.0
                   : static_cast<double>(sum_alloc_at_trigger) /
                         static_cast<double>(revocations_triggered);
    }
    double
    meanQuarantineAtTrigger() const
    {
        return revocations_triggered == 0
                   ? 0.0
                   : static_cast<double>(sum_quar_at_trigger) /
                         static_cast<double>(revocations_triggered);
    }
};

/** The malloc/free interposer providing heap temporal safety. */
class QuarantineShim
{
  public:
    /**
     * @param revoker may be null (shim disabled: baseline pass-through
     * to the allocator with no quarantine).
     */
    QuarantineShim(SnmallocLite &snm, kern::Kernel &kernel,
                   revoker::Revoker *revoker,
                   revoker::RevocationBitmap *bitmap,
                   const QuarantinePolicy &policy);

    cap::Capability malloc(sim::SimThread &t, std::size_t size);
    void free(sim::SimThread &t, const cap::Capability &c);

    /** Bytes currently in quarantine. */
    std::size_t quarantineBytes() const { return quarantine_bytes_; }

    bool enabled() const { return revoker_ != nullptr; }

    const QuarantineStats &stats() const { return stats_; }

    /** Drain: request revocation and wait until quarantine empties
     *  (used by examples/tests to force determinism at the end). */
    void drain(sim::SimThread &t);

    /** Attach an event tracer (null = off); backpressure waits become
     *  kQuarantineBlock/kQuarantineUnblock spans. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    /** Attach the race checker (null = off); names the heap lock and
     *  observes quarantine-buffer accesses and releases. */
    void setChecker(check::RaceChecker *c);

    /** Attach the fault injector (null = off): arms the dropped /
     *  duplicated epoch hand-off domain. */
    void setFaultInjector(sim::FaultInjector *fi) { injector_ = fi; }

    /** Attach the recovery manager (null = off): lost hand-offs are
     *  re-sent under kQuarantineHandoff tickets. */
    void setRecoveryManager(revoker::RecoveryManager *rm)
    {
        recovery_ = rm;
    }

  private:
    struct Entry
    {
        Addr base;
        std::size_t size;
    };

    struct Buffer
    {
        std::vector<Entry> entries;
        std::size_t bytes = 0;
        bool awaiting = false;
        std::uint64_t target = 0; //!< epoch counter to wait for
    };

    /** Current policy threshold in bytes. */
    std::size_t threshold() const;
    /** Release any buffer whose epoch target has been reached. */
    void maybeDequarantine(sim::SimThread &t);
    /** Submit the current buffer for revocation if over policy. */
    void maybeTrigger(sim::SimThread &t);
    /** Block while quarantine is pathologically oversized. */
    void maybeBlock(sim::SimThread &t);

    /**
     * Send the epoch request through the (possibly faulty) hand-off
     * channel: the injector may drop the message outright or deliver
     * it twice. Without an armed injector this is exactly
     * requestEpoch().
     */
    void sendEpochRequest(sim::SimThread &t);

    /**
     * Wait for the epoch counter to reach @p target, detecting and
     * re-sending lost hand-offs: when the counter is short, no request
     * is pending, and no epoch is in progress, the request was dropped
     * in flight — re-send it under a kQuarantineHandoff ticket with
     * saturating backoff, degrading to a direct (unfaultable) request
     * once retries are exhausted. Without the quarantine fault domain
     * armed this is exactly waitForEpochCounter().
     */
    void waitForCounterRecovering(sim::SimThread &t,
                                  std::uint64_t target);

    /** Whether the dropped/duplicated hand-off domain is armed. */
    bool handoffFaultsArmed() const;

    /** drain() body; the heap lock must already be held by @p t. */
    void drainLocked(sim::SimThread &t);

    /**
     * Ensure the allocator can satisfy an mmap for @p size bytes:
     * on address-space exhaustion, degrade to an emergency full drain
     * (revoke-and-reclaim everything quarantined) and throw
     * std::bad_alloc only if the space is still insufficient.
     */
    void ensureAddressSpaceFor(sim::SimThread &t, std::size_t size);

    /** RAII heap lock: malloc/free from multiple threads serialise
     *  here (snmalloc proper uses per-thread allocators; a single
     *  locked heap is the simpler faithful-enough model). */
    class Locked
    {
      public:
        Locked(sim::SimMutex &m, sim::SimThread &t) : m_(m), t_(t)
        {
            m_.lock(t_);
        }
        ~Locked() { m_.unlock(t_); }

      private:
        sim::SimMutex &m_;
        sim::SimThread &t_;
    };

    SnmallocLite &snm_;
    kern::Kernel &kernel_;
    revoker::Revoker *revoker_;
    revoker::RevocationBitmap *bitmap_;
    QuarantinePolicy policy_;
    sim::SimMutex heap_lock_;
    Buffer buffers_[2];
    int cur_ = 0;
    std::size_t quarantine_bytes_ = 0;
    QuarantineStats stats_;
    trace::Tracer *tracer_ = nullptr;
    check::RaceChecker *checker_ = nullptr;
    sim::FaultInjector *injector_ = nullptr;
    revoker::RecoveryManager *recovery_ = nullptr;
};

} // namespace crev::alloc

#endif // CREV_ALLOC_QUARANTINE_H_
