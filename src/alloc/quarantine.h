/**
 * @file
 * The mrs-style quarantine shim (paper §5, "modified mrs").
 *
 * Wraps SnmallocLite with temporal safety: free() validates the
 * capability, paints the revocation bitmap over the allocation, and
 * parks it in quarantine; the object only reaches a free list after a
 * full revocation epoch has both begun and ended since the paint
 * (epoch counter +2/+3 protocol, §2.2.3).
 *
 * The quarantine is double-buffered (§7.2): frees continue into the
 * second buffer while the first awaits its epoch. Revocation is
 * requested when quarantine exceeds the policy ratio of the live heap
 * (default: 1/3 of allocated heap ≡ 1/4 of total, paper §5) or the
 * configured minimum; operations *block* when quarantine exceeds
 * block_factor times the threshold, as mrs does (§5.3 discussion).
 *
 * Sharding (DESIGN.md §15): with alloc_cores > 1 the shim holds one
 * heap shard per simulated core — its own lock, free lists (in the
 * allocator), and quarantine double-buffer. A free of an object
 * another shard owns does NOT touch that shard's state: it is
 * appended to a per-destination *outbound batch* threaded in-band
 * through the freed objects' first granules (snmalloc's message-
 * passing remote deallocation), and the batch is spliced onto the
 * owner's inbox — a modeled lock-free MPSC push — when it fills or at
 * the sender's next allocation boundary. The owner drains its inbox
 * at its own allocation boundaries in deterministic FIFO order,
 * retiring + painting + quarantining each object then. All shards
 * feed the one shared revocation epoch.
 */

#ifndef CREV_ALLOC_QUARANTINE_H_
#define CREV_ALLOC_QUARANTINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/snmalloc_lite.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"

namespace crev::check {
class RaceChecker;
}

namespace crev::sim {
class FaultInjector;
}

namespace crev::alloc {

/** Quarantine sizing policy (paper §5 defaults, scaled). */
struct QuarantinePolicy
{
    /** Revoke when quarantine exceeds this fraction of the live
     *  (allocated) heap — 1/3 of allocated == 1/4 of total. */
    double alloc_ratio = 1.0 / 3.0;
    /** ... unless less than this many bytes are quarantined (the
     *  paper uses 8 MiB; workloads here are scaled ~32x down). */
    std::size_t min_bytes = 256 * 1024;
    /** Block malloc/free when quarantine exceeds block_factor *
     *  threshold (mrs blocks at "over twice full"). */
    double block_factor = 2.0;
};

/** Revocation-rate statistics (Table 2). */
struct QuarantineStats
{
    std::uint64_t revocations_triggered = 0;
    std::uint64_t sum_freed_bytes = 0;   //!< total bytes quarantined
    std::uint64_t sum_alloc_at_trigger = 0; //!< Σ live heap @ trigger
    std::uint64_t sum_quar_at_trigger = 0;  //!< Σ quarantine @ trigger
    std::uint64_t blocked_ops = 0;       //!< ops that had to wait
    /** Virtual cycles mutators spent blocked on quarantine
     *  backpressure (sums each wait's duration). */
    std::uint64_t blocked_cycles = 0;
    /** High-water mark of bytes held in quarantine. */
    std::uint64_t max_quarantine_bytes = 0;
    /** Address-space exhaustion degraded to a forced full drain. */
    std::uint64_t emergency_reclaims = 0;
    /** Epoch hand-off requests re-sent after a detected loss. */
    std::uint64_t handoff_resends = 0;
    /** Cross-shard frees enqueued as remote-dealloc messages. */
    std::uint64_t remote_free_sends = 0;
    /** Outbound batches spliced onto an owner's inbox. */
    std::uint64_t remote_batches = 0;
    /** Remote-freed objects drained (retired) by their owner. */
    std::uint64_t remote_drained = 0;

    double
    meanAllocAtTrigger() const
    {
        return revocations_triggered == 0
                   ? 0.0
                   : static_cast<double>(sum_alloc_at_trigger) /
                         static_cast<double>(revocations_triggered);
    }
    double
    meanQuarantineAtTrigger() const
    {
        return revocations_triggered == 0
                   ? 0.0
                   : static_cast<double>(sum_quar_at_trigger) /
                         static_cast<double>(revocations_triggered);
    }
};

/** Per-shard quarantine activity (RunMetrics "quarantine.shardN.*"). */
struct QuarantineShardStats
{
    std::uint64_t remote_sends = 0;   //!< messages sent BY this shard
    std::uint64_t remote_batches = 0; //!< batches spliced by this shard
    std::uint64_t remote_drained = 0; //!< messages drained as owner
    std::uint64_t triggers = 0;       //!< revocations this shard asked
};

/** The malloc/free interposer providing heap temporal safety. */
class QuarantineShim
{
  public:
    /**
     * @param revoker may be null (shim disabled: baseline pass-through
     * to the allocator with no quarantine).
     */
    QuarantineShim(SnmallocLite &snm, kern::Kernel &kernel,
                   revoker::Revoker *revoker,
                   revoker::RevocationBitmap *bitmap,
                   const QuarantinePolicy &policy);

    cap::Capability malloc(sim::SimThread &t, std::size_t size);
    void free(sim::SimThread &t, const cap::Capability &c);

    /** Bytes currently in quarantine (all shards). */
    std::size_t quarantineBytes() const { return quarantine_bytes_; }

    bool enabled() const { return revoker_ != nullptr; }

    const QuarantineStats &stats() const { return stats_; }

    /** Number of heap shards (mirrors the allocator's). */
    unsigned
    shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    const QuarantineShardStats &
    shardStats(unsigned shard) const
    {
        return shards_[shard]->stats;
    }

    /** Drain: flush every remote queue, request revocation, and wait
     *  until every shard's quarantine empties (used by examples/tests
     *  to force determinism at the end). Shard locks are taken one at
     *  a time, never nested, so concurrent drainers cannot deadlock. */
    void drain(sim::SimThread &t);

    /** Attach an event tracer (null = off); backpressure waits become
     *  kQuarantineBlock/kQuarantineUnblock spans. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    /** Attach the race checker (null = off); names the heap locks and
     *  observes quarantine-buffer and remote-queue accesses. */
    void setChecker(check::RaceChecker *c);

    /** Attach the fault injector (null = off): arms the dropped /
     *  duplicated epoch hand-off domain. */
    void setFaultInjector(sim::FaultInjector *fi) { injector_ = fi; }

    /** Attach the recovery manager (null = off): lost hand-offs are
     *  re-sent under kQuarantineHandoff tickets. */
    void setRecoveryManager(revoker::RecoveryManager *rm)
    {
        recovery_ = rm;
    }

  private:
    struct Entry
    {
        Addr base;
        std::size_t size;
    };

    struct Buffer
    {
        std::vector<Entry> entries;
        std::size_t bytes = 0;
        bool awaiting = false;
        std::uint64_t target = 0; //!< epoch counter to wait for
    };

    /** One pending outbound batch of remote frees for a destination
     *  shard: a LIFO chain threaded through the freed objects' first
     *  granules (head = most recent; tail's link is null until the
     *  splice rewrites it to the destination's inbox head). */
    struct Outbound
    {
        Addr head = 0;
        Addr tail = 0;
        cap::Capability head_cap; //!< retained cap to the chain head
        std::size_t count = 0;
    };

    /** One per-core heap shard. */
    struct Shard
    {
        sim::SimMutex lock;
        Buffer buffers[2];
        int cur = 0;
        /** Outbound batches, indexed by destination shard. */
        std::vector<Outbound> outbound;
        /** Inbox: MPSC chain of remote-freed objects, in-band. Only
         *  mutated inside NoYield windows (the modeled atomic
         *  exchange); see RaceChecker::onRemoteQueueAccess. */
        Addr inbox_head = 0;
        cap::Capability inbox_head_cap;
        std::size_t inbox_count = 0;
        QuarantineShardStats stats;
    };

    /** The shard serving @p t: per-core ownership. */
    unsigned
    shardOf(const sim::SimThread &t) const
    {
        return static_cast<unsigned>(t.core()) %
               static_cast<unsigned>(shards_.size());
    }

    /** Current policy threshold in bytes. */
    std::size_t threshold() const;
    /** Release any buffer whose epoch target has been reached. */
    void maybeDequarantine(sim::SimThread &t, Shard &sh);
    /** Submit the current buffer for revocation if total quarantine
     *  is over policy. */
    void maybeTrigger(sim::SimThread &t, Shard &sh);
    /** Block while quarantine is pathologically oversized. */
    void maybeBlock(sim::SimThread &t, Shard &sh);

    /** Park an already-retired object (lock of @p sh held): paint,
     *  push into the non-awaiting buffer, and maybe trigger. */
    void quarantineLocked(sim::SimThread &t, Shard &sh, Addr base,
                          std::size_t size);

    /** Append a cross-shard free to the outbound batch for @p owner
     *  (splicing the batch onto the owner's inbox when full). */
    void remoteFree(sim::SimThread &t, Shard &sh, unsigned owner,
                    const cap::Capability &c);

    /** Splice the outbound batch for @p dst onto @p dst's inbox (the
     *  modeled lock-free MPSC push; no destination lock taken). */
    void flushBatch(sim::SimThread &t, Shard &from, unsigned dst);

    /** Flush every non-empty outbound batch of @p from, ascending
     *  destination order. */
    void flushOutbound(sim::SimThread &t, Shard &from);

    /** Detach and process @p sh's inbox (lock of @p sh held):
     *  retire + quarantine each remote-freed object in send order. */
    void drainInbox(sim::SimThread &t, Shard &sh);

    /**
     * Send the epoch request through the (possibly faulty) hand-off
     * channel: the injector may drop the message outright or deliver
     * it twice. Without an armed injector this is exactly
     * requestEpoch().
     */
    void sendEpochRequest(sim::SimThread &t);

    /**
     * Wait for the epoch counter to reach @p target, detecting and
     * re-sending lost hand-offs: when the counter is short, no request
     * is pending, and no epoch is in progress, the request was dropped
     * in flight — re-send it under a kQuarantineHandoff ticket with
     * saturating backoff, degrading to a direct (unfaultable) request
     * once retries are exhausted. Without the quarantine fault domain
     * armed this is exactly waitForEpochCounter().
     */
    void waitForCounterRecovering(sim::SimThread &t,
                                  std::uint64_t target);

    /** Whether the dropped/duplicated hand-off domain is armed. */
    bool handoffFaultsArmed() const;

    /** Drain @p sh's quarantine buffers; its lock must be held. */
    void drainShardLocked(sim::SimThread &t, Shard &sh);

    /**
     * Ensure the allocator can satisfy an mmap for @p size bytes on
     * shard @p s: on address-space exhaustion, degrade to an
     * emergency drain of this shard (revoke-and-reclaim everything it
     * quarantined — other shards' locks are never taken here) and
     * throw std::bad_alloc only if the space is still insufficient.
     */
    void ensureAddressSpaceFor(sim::SimThread &t, Shard &sh,
                               unsigned s, std::size_t size);

    /** RAII shard lock: malloc/free on the same shard serialise
     *  here (snmalloc proper uses per-thread allocators; per-core
     *  locked shards are the simpler faithful-enough model). */
    class Locked
    {
      public:
        Locked(sim::SimMutex &m, sim::SimThread &t) : m_(m), t_(t)
        {
            m_.lock(t_);
        }
        ~Locked() { m_.unlock(t_); }

      private:
        sim::SimMutex &m_;
        sim::SimThread &t_;
    };

    SnmallocLite &snm_;
    kern::Kernel &kernel_;
    revoker::Revoker *revoker_;
    revoker::RevocationBitmap *bitmap_;
    QuarantinePolicy policy_;
    /** Shards are pointer-stable: SimMutex is not movable, and splice
     *  paths hold references across yields. */
    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t quarantine_bytes_ = 0; //!< total across shards
    QuarantineStats stats_;
    trace::Tracer *tracer_ = nullptr;
    check::RaceChecker *checker_ = nullptr;
    sim::FaultInjector *injector_ = nullptr;
    revoker::RecoveryManager *recovery_ = nullptr;
};

} // namespace crev::alloc

#endif // CREV_ALLOC_QUARANTINE_H_
