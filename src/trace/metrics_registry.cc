#include "trace/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

namespace crev::trace {

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace

void
MetricsRegistry::counter(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
MetricsRegistry::gauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

void
MetricsRegistry::sample(const std::string &name, double sample)
{
    histograms_[name].add(sample);
}

void
MetricsRegistry::samples(const std::string &name,
                         const stats::Samples &s)
{
    histograms_[name].addAll(s.values());
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

const stats::Samples *
MetricsRegistry::histogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

std::string
MetricsRegistry::toJson(int indent) const
{
    // indent <= 0 selects the compact one-line form benches embed
    // inside larger JSON documents.
    const bool compact = indent <= 0;
    const std::string nl = compact ? "" : "\n";
    const std::string pad =
        compact ? "" : std::string(static_cast<std::size_t>(indent), ' ');
    const std::string pad2 = pad + pad;
    std::string out = "{" + nl;

    const auto sep = [&](bool first) {
        return first ? nl : ("," + nl);
    };

    out += pad + "\"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters_) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        out += sep(first) + pad2 + "\"" + name + "\": " + buf;
        first = false;
    }
    out += (first ? "}," : nl + pad + "},") + nl;

    out += pad + "\"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges_) {
        out += sep(first) + pad2 + "\"" + name + "\": " + fmtDouble(v);
        first = false;
    }
    out += (first ? "}," : nl + pad + "},") + nl;

    out += pad + "\"histograms\": {";
    first = true;
    for (const auto &[name, s] : histograms_) {
        const stats::Boxplot b = stats::boxplot(s);
        out += sep(first) + pad2 + "\"" + name + "\": {";
        out += "\"count\": " + std::to_string(b.n);
        out += ", \"min\": " + fmtDouble(b.min);
        out += ", \"p25\": " + fmtDouble(b.p25);
        out += ", \"median\": " + fmtDouble(b.median);
        out += ", \"p75\": " + fmtDouble(b.p75);
        out += ", \"max\": " + fmtDouble(b.max);
        out += ", \"mean\": " + fmtDouble(b.mean);
        out += ", \"sum\": " + fmtDouble(s.sum());
        out += "}";
        first = false;
    }
    out += first ? "}" : nl + pad + "}";
    out += nl + "}" + nl;
    return out;
}

} // namespace crev::trace
