/**
 * @file
 * A unified metrics registry: named counters, gauges, and histograms
 * with deterministic JSON export.
 *
 * RunMetrics, the watchdog, and the quarantine shim each grew their
 * own ad-hoc counter structs; benches then hand-formatted JSON from
 * them. The registry is the single sink: components export into it
 * under dotted names ("revoker.epochs", "watchdog.force_completes",
 * "alloc.blocked_cycles", ...) and every bench emits one
 * machine-readable artifact via toJson(). Names are stored in sorted
 * maps so the export is byte-deterministic for identical inputs.
 */

#ifndef CREV_TRACE_METRICS_REGISTRY_H_
#define CREV_TRACE_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "stats/summary.h"

namespace crev::trace {

class MetricsRegistry
{
  public:
    /** Add @p delta to counter @p name (created at zero). */
    void counter(const std::string &name, std::uint64_t delta);
    /** Set gauge @p name to @p value (last write wins). */
    void gauge(const std::string &name, double value);
    /** Append @p sample to histogram @p name. */
    void sample(const std::string &name, double sample);
    /** Append all of @p s to histogram @p name. */
    void samples(const std::string &name, const stats::Samples &s);

    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;
    const stats::Samples *histogram(const std::string &name) const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /**
     * Deterministic JSON export: three sorted objects ("counters",
     * "gauges", "histograms"); histograms render as
     * {count,min,p25,median,p75,max,mean,sum}. An indent <= 0 yields
     * the compact one-line form for embedding in larger documents.
     */
    std::string toJson(int indent = 2) const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, stats::Samples> histograms_;
};

} // namespace crev::trace

#endif // CREV_TRACE_METRICS_REGISTRY_H_
