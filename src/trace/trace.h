/**
 * @file
 * Deterministic virtual-time event tracing.
 *
 * The paper's argument is a phase-timeline argument (fig. 9): each
 * epoch decomposes into a world-stopped scan, a concurrent sweep, and
 * load-barrier fault work. RunMetrics only reports end-of-run
 * aggregates; the tracer records *when* each invariant-relevant
 * transition happened — scheduler grants/parks, STW windows, epoch
 * phases, quarantine backpressure, watchdog escalations, TLB
 * shootdowns, injected faults — each event stamped with virtual
 * cycles, core, and simulated-thread id.
 *
 * Two hard rules, both enforced by tier-1 tests (trace_test,
 * determinism_test):
 *
 *   1. Zero simulated cost. record() never accrues cycles and never
 *      yields; a traced run's RunMetrics are bit-identical to an
 *      untraced run's.
 *   2. The trace itself is deterministic: two same-seed runs export
 *      byte-identical JSON.
 *
 * The buffers are "lock-free in sim": the scheduler's single
 * execution token already serialises every simulated thread (grants
 * happen under the scheduler mutex while no token is outstanding), so
 * record() touches plain data with no synchronisation of its own.
 * Each thread writes its own ring buffer; a full ring drops the
 * oldest events (deterministically), never blocks.
 */

#ifndef CREV_TRACE_TRACE_H_
#define CREV_TRACE_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/types.h"

namespace crev::trace {

/** Typed trace events (the taxonomy; DESIGN.md §10). */
enum class EventType : std::uint8_t {
    // Scheduler: token grants and returns.
    kThreadRun = 0, //!< thread granted the token on core `core`
    kThreadPark,    //!< thread gave up the token to sleep/block
    kThreadPreempt, //!< thread gave up the token but stays runnable
    // Stop-the-world windows (recorded on the initiating thread).
    kStwBegin,
    kStwEnd,
    // Epoch phase brackets (arg8 = Phase).
    kPhaseBegin,
    kPhaseEnd,
    // Quarantine backpressure (arg64 = epoch counter target).
    kQuarantineBlock,
    kQuarantineUnblock,
    // Watchdog degradation ladder (arg8 = rung, 1..4).
    kWatchdogEscalate,
    // TLB shootdown of one page (arg64 = page base VA).
    kTlbShootdown,
    // Fault injector firing (arg8 = FaultAction).
    kFaultInject,
    // RecoveryManager protocol attempt (arg8 = RecoveryProtocol,
    // arg64 = attempt number within the ticket, 1-based).
    kRecoveryAttempt,
    // RecoveryManager ticket closed (arg8 = RecoveryProtocol,
    // arg64 = RecoveryOutcome).
    kRecoveryOutcome,
};

/** Revocation-epoch phases (fig. 9's decomposition). */
enum class Phase : std::uint8_t {
    kPaint = 0,       //!< allocator painting the revocation bitmap
    kStwScan,         //!< world-stopped flip + register/hoard scan
    kConcurrentSweep, //!< background sweep of stale pages
    kLoadFaultSweep,  //!< one load-barrier fault's self-healing work
    kDrain,           //!< waiting out helpers and in-flight faults
};
constexpr unsigned kNumPhases = 5;

/** Which injected fault fired (EventType::kFaultInject arg8). */
enum class FaultAction : std::uint8_t {
    kSweeperStall = 0,
    kSweeperKill,
    kFaultDrop,
    kFaultDuplicate,
    kStwDelay,
    // PR 6 fault domains: the safety-critical mechanisms themselves.
    kShootdownDrop,      //!< one core's shootdown IPI lost
    kShootdownLate,      //!< one core's shootdown ack delayed
    kCoreStall,          //!< a simulated core freezes mid-run
    kSummaryCorrupt,     //!< a ShadowSummary L0 word bit-flipped
    kQuarantineDrop,     //!< quarantine epoch hand-off lost
    kQuarantineDuplicate, //!< quarantine epoch hand-off duplicated
};

/**
 * Named recovery protocols (EventType::kRecoveryAttempt /
 * kRecoveryOutcome arg8; revoker/recovery.h owns the semantics).
 * Declared here so the trace layer can name them without depending on
 * the revoker.
 */
enum class RecoveryProtocol : std::uint8_t {
    kEpochLadder = 0,   //!< watchdog nudge/force-complete ladder
    kShootdownResend,   //!< ack-based TLB shootdown re-send
    kSummaryRepair,     //!< ShadowSummary block rebuild
    kQuarantineHandoff, //!< quarantine epoch-request re-delivery
};
constexpr unsigned kNumRecoveryProtocols = 4;

/** Terminal state of a recovery ticket (kRecoveryOutcome arg64). */
enum class RecoveryOutcome : std::uint8_t {
    kSucceeded = 0,
    kRetriesExhausted,
    kDeadlineExpired,
    kAborted, //!< shutdown (or caller teardown) mid-recovery
};

const char *eventTypeName(EventType t);
const char *phaseName(Phase p);
const char *faultActionName(FaultAction a);
const char *recoveryProtocolName(RecoveryProtocol p);
const char *recoveryOutcomeName(RecoveryOutcome o);

/** One trace event: 24 bytes, plain data. */
struct Event
{
    Cycles at = 0;             //!< virtual time (cycles)
    std::uint64_t arg64 = 0;   //!< event-specific payload
    std::uint32_t tid = 0;     //!< simulated thread id
    std::uint16_t core = 0;    //!< core the thread occupied
    EventType type = EventType::kThreadRun;
    std::uint8_t arg8 = 0;     //!< Phase / rung / FaultAction
};

/**
 * A per-thread ring buffer of events. push() is O(1) and never
 * allocates after construction; once full, the oldest retained event
 * is overwritten (drop-oldest — deterministic, and it keeps the most
 * recent window, which is what a timeline viewer wants).
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity);

    void push(const Event &e);

    /** Total events ever pushed. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const;
    /** Events currently retained. */
    std::size_t size() const;

    /** Visit retained events oldest-first, in record order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        const std::size_t n = size();
        const std::size_t cap = ring_.size();
        const std::size_t first = (next_ + cap - n) % cap;
        for (std::size_t i = 0; i < n; ++i)
            fn(ring_[(first + i) % cap]);
    }

  private:
    std::vector<Event> ring_;
    std::size_t next_ = 0;
    std::uint64_t recorded_ = 0;
};

/**
 * The tracer: one ring buffer per simulated thread, indexed by thread
 * id. Owned by the Machine; every component that records is handed a
 * pointer (null = tracing off, the hot paths check one pointer).
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultBufferEvents = 1u << 16;

    explicit Tracer(std::size_t buffer_capacity = kDefaultBufferEvents);

    /**
     * Record one event. Charges zero simulated cycles; callers pass
     * their thread's id/core/now so this layer never depends on the
     * scheduler. Safe without locks under the single-token discipline
     * (see file comment).
     */
    void record(unsigned tid, unsigned core, Cycles at, EventType type,
                std::uint8_t arg8 = 0, std::uint64_t arg64 = 0);

    /** Number of per-thread buffers allocated so far. */
    std::size_t numThreads() const { return buffers_.size(); }
    /** Buffer for @p tid, or null if it never recorded. */
    const TraceBuffer *buffer(unsigned tid) const;

    std::uint64_t totalRecorded() const;
    std::uint64_t totalDropped() const;
    std::size_t bufferCapacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

} // namespace crev::trace

#endif // CREV_TRACE_TRACE_H_
