#include "trace/trace.h"

#include "base/logging.h"

namespace crev::trace {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::kThreadRun:
        return "run";
      case EventType::kThreadPark:
        return "park";
      case EventType::kThreadPreempt:
        return "preempt";
      case EventType::kStwBegin:
        return "stw_begin";
      case EventType::kStwEnd:
        return "stw_end";
      case EventType::kPhaseBegin:
        return "phase_begin";
      case EventType::kPhaseEnd:
        return "phase_end";
      case EventType::kQuarantineBlock:
        return "quarantine_block";
      case EventType::kQuarantineUnblock:
        return "quarantine_unblock";
      case EventType::kWatchdogEscalate:
        return "watchdog_escalate";
      case EventType::kTlbShootdown:
        return "tlb_shootdown";
      case EventType::kFaultInject:
        return "fault_inject";
      case EventType::kRecoveryAttempt:
        return "recovery_attempt";
      case EventType::kRecoveryOutcome:
        return "recovery_outcome";
    }
    return "?";
}

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::kPaint:
        return "paint";
      case Phase::kStwScan:
        return "stw_scan";
      case Phase::kConcurrentSweep:
        return "concurrent_sweep";
      case Phase::kLoadFaultSweep:
        return "load_fault_sweep";
      case Phase::kDrain:
        return "drain";
    }
    return "?";
}

const char *
faultActionName(FaultAction a)
{
    switch (a) {
      case FaultAction::kSweeperStall:
        return "sweeper_stall";
      case FaultAction::kSweeperKill:
        return "sweeper_kill";
      case FaultAction::kFaultDrop:
        return "fault_drop";
      case FaultAction::kFaultDuplicate:
        return "fault_duplicate";
      case FaultAction::kStwDelay:
        return "stw_delay";
      case FaultAction::kShootdownDrop:
        return "shootdown_drop";
      case FaultAction::kShootdownLate:
        return "shootdown_late";
      case FaultAction::kCoreStall:
        return "core_stall";
      case FaultAction::kSummaryCorrupt:
        return "summary_corrupt";
      case FaultAction::kQuarantineDrop:
        return "quarantine_drop";
      case FaultAction::kQuarantineDuplicate:
        return "quarantine_duplicate";
    }
    return "?";
}

const char *
recoveryProtocolName(RecoveryProtocol p)
{
    switch (p) {
      case RecoveryProtocol::kEpochLadder:
        return "epoch_ladder";
      case RecoveryProtocol::kShootdownResend:
        return "shootdown_resend";
      case RecoveryProtocol::kSummaryRepair:
        return "summary_repair";
      case RecoveryProtocol::kQuarantineHandoff:
        return "quarantine_handoff";
    }
    return "?";
}

const char *
recoveryOutcomeName(RecoveryOutcome o)
{
    switch (o) {
      case RecoveryOutcome::kSucceeded:
        return "succeeded";
      case RecoveryOutcome::kRetriesExhausted:
        return "retries_exhausted";
      case RecoveryOutcome::kDeadlineExpired:
        return "deadline_expired";
      case RecoveryOutcome::kAborted:
        return "aborted";
    }
    return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity)
{
    CREV_ASSERT(capacity > 0);
}

void
TraceBuffer::push(const Event &e)
{
    ring_[next_] = e;
    next_ = (next_ + 1) % ring_.size();
    ++recorded_;
}

std::uint64_t
TraceBuffer::dropped() const
{
    const auto cap = static_cast<std::uint64_t>(ring_.size());
    return recorded_ > cap ? recorded_ - cap : 0;
}

std::size_t
TraceBuffer::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded_, ring_.size()));
}

Tracer::Tracer(std::size_t buffer_capacity) : capacity_(buffer_capacity)
{
    CREV_ASSERT(capacity_ > 0);
}

void
Tracer::record(unsigned tid, unsigned core, Cycles at, EventType type,
               std::uint8_t arg8, std::uint64_t arg64)
{
    while (buffers_.size() <= tid)
        buffers_.emplace_back(std::make_unique<TraceBuffer>(capacity_));
    Event e;
    e.at = at;
    e.arg64 = arg64;
    e.tid = tid;
    e.core = static_cast<std::uint16_t>(core);
    e.type = type;
    e.arg8 = arg8;
    buffers_[tid]->push(e);
}

const TraceBuffer *
Tracer::buffer(unsigned tid) const
{
    return tid < buffers_.size() ? buffers_[tid].get() : nullptr;
}

std::uint64_t
Tracer::totalRecorded() const
{
    std::uint64_t n = 0;
    for (const auto &b : buffers_)
        n += b->recorded();
    return n;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t n = 0;
    for (const auto &b : buffers_)
        n += b->dropped();
    return n;
}

} // namespace crev::trace
