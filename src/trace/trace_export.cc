#include "trace/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace crev::trace {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += ch;
        }
    }
    return out;
}

void
addSpan(PhaseStat &st, Cycles begin, Cycles end)
{
    const Cycles d = end - begin;
    ++st.spans;
    st.total_cycles += d;
    st.micros.add(cyclesToMicros(d));
}

} // namespace

std::string
chromeJson(const Tracer &tracer, const std::vector<ThreadInfo> &threads)
{
    std::string out;
    out += "{\n\"displayTimeUnit\": \"ms\",\n";
    out += "\"otherData\": {\"clock\": \"virtual-cycles\", "
           "\"ts_unit\": \"1 simulated cycle\"},\n";
    out += "\"traceEvents\": [\n";

    bool first = true;
    auto emit = [&](const char *fmt, auto... args) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), fmt, args...);
        if (!first)
            out += ",\n";
        first = false;
        out += buf;
    };

    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"tid\": 0, \"args\": {\"name\": \"phases\"}}");
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"scheduler\"}}");

    std::vector<ThreadInfo> named = threads;
    std::sort(named.begin(), named.end(),
              [](const ThreadInfo &a, const ThreadInfo &b) {
                  return a.tid < b.tid;
              });
    for (const auto &ti : named)
        for (int pid = 0; pid <= 1; ++pid)
            emit("{\"name\": \"thread_name\", \"ph\": \"M\", "
                 "\"pid\": %d, \"tid\": %u, "
                 "\"args\": {\"name\": \"%s\"}}",
                 pid, ti.tid, jsonEscape(ti.name).c_str());

    for (unsigned tid = 0; tid < tracer.numThreads(); ++tid) {
        const TraceBuffer *b = tracer.buffer(tid);
        if (b == nullptr)
            continue;

        bool run_open = false;
        Cycles run_begin = 0;
        unsigned run_core = 0;
        // name -> stack of open begins (distinct span types nest; the
        // same type never self-overlaps on one thread).
        std::map<std::string, std::vector<Cycles>> open;
        Cycles max_ts = 0;

        auto x_span = [&](const char *cat, const std::string &name,
                          Cycles begin, Cycles end) {
            emit("{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                 "\"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                 ", \"pid\": 0, \"tid\": %u}",
                 name.c_str(), cat, begin, end - begin, tid);
        };
        auto close_span = [&](const char *cat, const std::string &name,
                              Cycles end) {
            auto it = open.find(name);
            if (it == open.end() || it->second.empty())
                return; // begin lost to ring wrap
            x_span(cat, name, it->second.back(), end);
            it->second.pop_back();
        };

        b->forEach([&](const Event &e) {
            max_ts = std::max(max_ts, e.at);
            switch (e.type) {
              case EventType::kThreadRun:
                run_open = true;
                run_begin = e.at;
                run_core = e.core;
                break;
              case EventType::kThreadPark:
              case EventType::kThreadPreempt:
                if (run_open) {
                    emit("{\"name\": \"run\", \"cat\": \"sched\", "
                         "\"ph\": \"X\", \"ts\": %" PRIu64
                         ", \"dur\": %" PRIu64 ", \"pid\": 1, "
                         "\"tid\": %u, \"args\": {\"core\": %u}}",
                         run_begin, e.at - run_begin, tid, run_core);
                    run_open = false;
                }
                break;
              case EventType::kStwBegin:
                open["stw"].push_back(e.at);
                break;
              case EventType::kStwEnd:
                close_span("stw", "stw", e.at);
                break;
              case EventType::kPhaseBegin:
                open[phaseName(static_cast<Phase>(e.arg8))].push_back(
                    e.at);
                break;
              case EventType::kPhaseEnd:
                close_span("phase",
                           phaseName(static_cast<Phase>(e.arg8)), e.at);
                break;
              case EventType::kQuarantineBlock:
                open["quarantine_blocked"].push_back(e.at);
                break;
              case EventType::kQuarantineUnblock:
                close_span("alloc", "quarantine_blocked", e.at);
                break;
              case EventType::kTlbShootdown:
                emit("{\"name\": \"tlb_shootdown\", \"cat\": \"vm\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %" PRIu64
                     ", \"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"page\": %" PRIu64 "}}",
                     e.at, tid, e.arg64);
                break;
              case EventType::kWatchdogEscalate:
                emit("{\"name\": \"watchdog_escalate\", "
                     "\"cat\": \"watchdog\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"ts\": %" PRIu64 ", \"pid\": 0, "
                     "\"tid\": %u, \"args\": {\"rung\": %u}}",
                     e.at, tid, static_cast<unsigned>(e.arg8));
                break;
              case EventType::kFaultInject:
                emit("{\"name\": \"inject_%s\", \"cat\": \"chaos\", "
                     "\"ph\": \"i\", \"s\": \"t\", \"ts\": %" PRIu64
                     ", \"pid\": 0, \"tid\": %u}",
                     faultActionName(static_cast<FaultAction>(e.arg8)),
                     e.at, tid);
                break;
              case EventType::kRecoveryAttempt:
                emit("{\"name\": \"recover_%s\", \"cat\": "
                     "\"recovery\", \"ph\": \"i\", \"s\": \"t\", "
                     "\"ts\": %" PRIu64 ", \"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"attempt\": %" PRIu64 "}}",
                     recoveryProtocolName(
                         static_cast<RecoveryProtocol>(e.arg8)),
                     e.at, tid, e.arg64);
                break;
              case EventType::kRecoveryOutcome:
                emit("{\"name\": \"recovered_%s\", \"cat\": "
                     "\"recovery\", \"ph\": \"i\", \"s\": \"t\", "
                     "\"ts\": %" PRIu64 ", \"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"outcome\": \"%s\"}}",
                     recoveryProtocolName(
                         static_cast<RecoveryProtocol>(e.arg8)),
                     e.at, tid,
                     recoveryOutcomeName(
                         static_cast<RecoveryOutcome>(e.arg64)));
                break;
            }
        });

        // Close anything still open at the thread's last timestamp so
        // every span in the export has a definite extent.
        for (auto &[name, stack] : open) {
            const char *cat = name == "stw" ? "stw"
                              : name == "quarantine_blocked" ? "alloc"
                                                             : "phase";
            while (!stack.empty()) {
                x_span(cat, name, stack.back(), max_ts);
                stack.pop_back();
            }
        }
        if (run_open)
            emit("{\"name\": \"run\", \"cat\": \"sched\", "
                 "\"ph\": \"X\", \"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                 ", \"pid\": 1, \"tid\": %u, \"args\": {\"core\": %u}}",
                 run_begin, max_ts - run_begin, tid, run_core);
    }

    out += "\n]\n}\n";
    return out;
}

PhaseSummary
summarize(const Tracer &tracer)
{
    PhaseSummary s;
    s.dropped = tracer.totalDropped();

    for (unsigned tid = 0; tid < tracer.numThreads(); ++tid) {
        const TraceBuffer *b = tracer.buffer(tid);
        if (b == nullptr)
            continue;

        std::vector<Cycles> phase_open[kNumPhases];
        std::vector<Cycles> stw_open;
        std::vector<Cycles> block_open;

        b->forEach([&](const Event &e) {
            ++s.events;
            switch (e.type) {
              case EventType::kPhaseBegin:
                phase_open[e.arg8 % kNumPhases].push_back(e.at);
                break;
              case EventType::kPhaseEnd: {
                auto &stack = phase_open[e.arg8 % kNumPhases];
                if (stack.empty()) {
                    ++s.unmatched;
                } else {
                    addSpan(s.phases[e.arg8 % kNumPhases],
                            stack.back(), e.at);
                    stack.pop_back();
                }
                break;
              }
              case EventType::kStwBegin:
                stw_open.push_back(e.at);
                break;
              case EventType::kStwEnd:
                if (stw_open.empty()) {
                    ++s.unmatched;
                } else {
                    addSpan(s.stw, stw_open.back(), e.at);
                    stw_open.pop_back();
                }
                break;
              case EventType::kQuarantineBlock:
                block_open.push_back(e.at);
                break;
              case EventType::kQuarantineUnblock:
                if (block_open.empty()) {
                    ++s.unmatched;
                } else {
                    addSpan(s.quarantine_blocked, block_open.back(),
                            e.at);
                    block_open.pop_back();
                }
                break;
              case EventType::kTlbShootdown:
                ++s.tlb_shootdowns;
                break;
              case EventType::kWatchdogEscalate:
                ++s.watchdog_escalations;
                break;
              case EventType::kFaultInject:
                ++s.faults_injected;
                break;
              case EventType::kRecoveryAttempt:
                ++s.recovery_attempts;
                break;
              case EventType::kRecoveryOutcome:
                ++s.recovery_outcomes;
                break;
              default:
                break;
            }
        });

        for (const auto &stack : phase_open)
            s.unmatched += stack.size();
        s.unmatched += stw_open.size() + block_open.size();
    }
    return s;
}

std::string
phaseSummaryText(const PhaseSummary &s)
{
    std::string out;
    char buf[256];
    auto row = [&](const char *name, const PhaseStat &st) {
        if (st.spans == 0) {
            std::snprintf(buf, sizeof(buf),
                          "  %-18s %8s %12s %9s %9s %9s\n", name, "-",
                          "-", "-", "-", "-");
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "  %-18s %8" PRIu64 " %12.1f %9.1f %9.1f %9.1f\n",
                name, st.spans, cyclesToMicros(st.total_cycles),
                st.micros.percentile(0.25), st.micros.median(),
                st.micros.percentile(0.75));
        }
        out += buf;
    };

    out += "phase decomposition from trace (microseconds):\n";
    std::snprintf(buf, sizeof(buf), "  %-18s %8s %12s %9s %9s %9s\n",
                  "phase", "spans", "total_us", "p25", "median", "p75");
    out += buf;
    row("stw(windows)", s.stw);
    for (unsigned p = 0; p < kNumPhases; ++p)
        row(phaseName(static_cast<Phase>(p)), s.phases[p]);
    row("quarantine_block", s.quarantine_blocked);
    std::snprintf(buf, sizeof(buf),
                  "  shootdowns=%" PRIu64 " escalations=%" PRIu64
                  " injected=%" PRIu64 " recoveries=%" PRIu64 "/%" PRIu64
                  " events=%" PRIu64 " dropped=%" PRIu64
                  " unmatched=%" PRIu64 "\n",
                  s.tlb_shootdowns, s.watchdog_escalations,
                  s.faults_injected, s.recovery_attempts,
                  s.recovery_outcomes, s.events, s.dropped, s.unmatched);
    out += buf;
    return out;
}

} // namespace crev::trace
