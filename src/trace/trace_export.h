/**
 * @file
 * Trace exporters: Chrome trace-event JSON (openable in
 * chrome://tracing or ui.perfetto.dev) and a text phase summary that
 * regenerates fig. 9's epoch decomposition directly from the event
 * stream.
 *
 * The JSON uses integer timestamps where one `ts` unit is one
 * simulated cycle (the viewer's microseconds are our cycles; the
 * `otherData.clock` field records the convention). Integer-only
 * formatting keeps the export byte-deterministic across runs.
 */

#ifndef CREV_TRACE_TRACE_EXPORT_H_
#define CREV_TRACE_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "stats/summary.h"
#include "trace/trace.h"

namespace crev::trace {

/** Thread-name metadata for the exporter. */
struct ThreadInfo
{
    unsigned tid = 0;
    std::string name;
};

/**
 * Export the whole trace as Chrome trace-event JSON. Scheduler run
 * slices become complete ("X") events under pid 1; STW windows, epoch
 * phases, and quarantine blocks become duration ("B"/"E") pairs under
 * pid 0; shootdowns, watchdog escalations, and injected faults become
 * instants ("i"). Spans still open at the end of the trace are closed
 * at the largest timestamp so every "B" has a matching "E".
 */
std::string chromeJson(const Tracer &tracer,
                       const std::vector<ThreadInfo> &threads);

/** Aggregate for one phase (or the STW windows). */
struct PhaseStat
{
    std::uint64_t spans = 0;   //!< completed begin/end pairs
    Cycles total_cycles = 0;   //!< summed span durations
    stats::Samples micros;     //!< per-span durations, microseconds
};

/** Fig. 9's decomposition, recomputed from the raw event stream. */
struct PhaseSummary
{
    PhaseStat phases[kNumPhases]; //!< indexed by Phase
    PhaseStat stw;                //!< kStwBegin/kStwEnd windows
    PhaseStat quarantine_blocked; //!< allocator backpressure waits

    std::uint64_t events = 0;     //!< events retained in the buffers
    std::uint64_t dropped = 0;    //!< events lost to ring wrap
    /** Begins without ends (trace cut short) plus ends without begins
     *  (begin dropped by ring wrap). Zero on a complete trace. */
    std::uint64_t unmatched = 0;

    std::uint64_t tlb_shootdowns = 0;
    std::uint64_t watchdog_escalations = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t recovery_attempts = 0;
    std::uint64_t recovery_outcomes = 0;
};

/** Walk every buffer and pair up the phase/STW/block spans. */
PhaseSummary summarize(const Tracer &tracer);

/** Human-readable fig. 9-style table of @p s (microseconds). */
std::string phaseSummaryText(const PhaseSummary &s);

} // namespace crev::trace

#endif // CREV_TRACE_TRACE_EXPORT_H_
