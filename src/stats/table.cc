#include "stats/table.h"

#include <array>
#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace crev::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    CREV_ASSERT(!header_.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    CREV_ASSERT(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << "  " << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::fmt(double v, int digits)
{
    std::array<char, 64> buf;
    std::snprintf(buf.data(), buf.size(), "%.*f", digits, v);
    return buf.data();
}

std::string
Table::pct(double ratio, int digits)
{
    std::array<char, 64> buf;
    std::snprintf(buf.data(), buf.size(), "%.*f%%", digits,
                  ratio * 100.0);
    return buf.data();
}

} // namespace crev::stats
