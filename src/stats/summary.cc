#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/logging.h"

namespace crev::stats {

void
Samples::add(double v)
{
    values_.push_back(v);
    dirty_ = true;
}

void
Samples::addAll(const std::vector<double> &vs)
{
    values_.insert(values_.end(), vs.begin(), vs.end());
    dirty_ = true;
}

void
Samples::ensureSorted() const
{
    if (dirty_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
Samples::min() const
{
    CREV_ASSERT(!values_.empty());
    ensureSorted();
    return sorted_.front();
}

double
Samples::max() const
{
    CREV_ASSERT(!values_.empty());
    ensureSorted();
    return sorted_.back();
}

double
Samples::sum() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double
Samples::mean() const
{
    CREV_ASSERT(!values_.empty());
    return sum() / static_cast<double>(values_.size());
}

double
Samples::stddev() const
{
    CREV_ASSERT(!values_.empty());
    const double m = mean();
    double acc = 0;
    for (double v : values_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size()));
}

double
Samples::percentile(double q) const
{
    // Defined for every input: an empty set quantile is 0.0 (bench
    // tables render it as an absent bar), and q is clamped to [0, 1]
    // so a caller's floating-point drift can't index past the sorted
    // vector.
    if (values_.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo =
        std::min(static_cast<std::size_t>(pos), sorted_.size() - 1);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Boxplot
boxplot(const Samples &s)
{
    Boxplot b;
    if (s.empty())
        return b;
    b.min = s.min();
    b.p25 = s.percentile(0.25);
    b.median = s.median();
    b.p75 = s.percentile(0.75);
    b.max = s.max();
    b.mean = s.mean();
    b.n = s.count();
    return b;
}

double
geomean(const std::vector<double> &vs)
{
    CREV_ASSERT(!vs.empty());
    double acc = 0;
    for (double v : vs) {
        CREV_ASSERT(v > 0.0);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(vs.size()));
}

std::vector<double>
cdfAt(const Samples &s, const std::vector<double> &points)
{
    if (s.empty())
        return std::vector<double>(points.size(), 0.0);
    std::vector<double> sorted = s.values();
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> out;
    out.reserve(points.size());
    for (double p : points) {
        const auto it = std::upper_bound(sorted.begin(), sorted.end(), p);
        out.push_back(static_cast<double>(it - sorted.begin()) /
                      static_cast<double>(sorted.size()));
    }
    return out;
}

} // namespace crev::stats
