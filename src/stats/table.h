/**
 * @file
 * Fixed-width text table printer used by every bench binary so that the
 * reproduced rows of the paper's tables and figures print uniformly.
 */

#ifndef CREV_STATS_TABLE_H_
#define CREV_STATS_TABLE_H_

#include <string>
#include <vector>

namespace crev::stats {

/** A simple left-aligned-first-column text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render the table, header first, with a separator rule. */
    [[nodiscard]] std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-point with @p digits decimals. */
    [[nodiscard]] static std::string fmt(double v, int digits = 2);
    /** Format helper: value as a percentage string, e.g. "12.3%". */
    [[nodiscard]] static std::string pct(double ratio, int digits = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace crev::stats

#endif // CREV_STATS_TABLE_H_
