/**
 * @file
 * Sample-set summaries: percentiles, boxplots, CDFs, geomean.
 *
 * Every bench binary reports through these so the output format is
 * uniform across the reproduction of the paper's figures and tables.
 */

#ifndef CREV_STATS_SUMMARY_H_
#define CREV_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace crev::stats {

/**
 * A growable collection of double-valued samples with exact quantile
 * queries. Samples are stored; sorting is performed lazily.
 */
class Samples
{
  public:
    void add(double v);
    void addAll(const std::vector<double> &vs);

    [[nodiscard]] std::size_t count() const { return values_.size(); }
    [[nodiscard]] bool empty() const { return values_.empty(); }

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const;
    [[nodiscard]] double mean() const;
    /** Population standard deviation. */
    [[nodiscard]] double stddev() const;
    /**
     * Exact quantile by linear interpolation. Total: q is clamped to
     * [0, 1] and the empty set yields 0.0, so bench code can query
     * tails without pre-checking counts.
     */
    [[nodiscard]] double percentile(double q) const;
    [[nodiscard]] double median() const { return percentile(0.5); }

    /** Read-only access to the (unsorted) raw samples. */
    [[nodiscard]] const std::vector<double> &values() const
    {
        return values_;
    }

  private:
    void ensureSorted() const;

    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = true;
};

/** Five-number boxplot summary plus mean, as used by figs. 8 and 9. */
struct Boxplot
{
    double min = 0;
    double p25 = 0;
    double median = 0;
    double p75 = 0;
    double max = 0;
    double mean = 0;
    std::size_t n = 0;
};

/** Compute a boxplot summary of @p s. */
[[nodiscard]] Boxplot boxplot(const Samples &s);

/** Geometric mean of a list of (positive) values. */
[[nodiscard]] double geomean(const std::vector<double> &vs);

/**
 * Evaluate the empirical CDF of @p s at each of @p points, returning the
 * fraction of samples <= the point (fig. 7's normalized CDF).
 */
[[nodiscard]] std::vector<double> cdfAt(const Samples &s,
                                        const std::vector<double> &points);

} // namespace crev::stats

#endif // CREV_STATS_SUMMARY_H_
