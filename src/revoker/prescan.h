/**
 * @file
 * The speculative host pre-scan pipeline (DESIGN.md §12.3).
 *
 * Before a strategy starts sweeping its page work list, host worker
 * threads snapshot each page's packed tag words and pre-decode every
 * tagged granule's capability — the expensive host-side work of the
 * sweep inner loop — ahead of the background-sweep cursor. The real
 * sweep then *validates* each candidate against the live tag nibble
 * and raw capability bits at the virtual instant it reaches the
 * granule (the same discipline sweepPageFast already applies to its
 * packed nibbles): on a match it reuses the pre-decoded base, on a
 * mismatch it decodes live. Simulated charges, probes, and SweepStats
 * are produced only by the real sweep at its own virtual instants, so
 * RunMetrics are byte-identical with the pipeline on or off.
 *
 * Safety: build() runs on the simulated thread that currently owns
 * the scheduler's execution token and joins all workers before
 * returning, so the page table, frames, and painted summary are
 * quiescent for the workers' read-only visit. Workers use the
 * cache-free PhysMem accessor; the one-entry frame cache is not
 * thread-safe.
 */

#ifndef CREV_REVOKER_PRESCAN_H_
#define CREV_REVOKER_PRESCAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/types.h"
#include "cap/compression.h"
#include "mem/phys_mem.h"
#include "revoker/shadow_summary.h"
#include "vm/address_space.h"

namespace crev::sim {
class LaneGroup;
}

namespace crev::revoker {

class DecodeMemo;

/** Host-side pipeline counters (never part of simulated results). */
struct PrescanStats
{
    std::uint64_t pages_prescanned = 0;
    std::uint64_t candidate_caps = 0; //!< pre-decoded tagged granules
    std::uint64_t validated_hits = 0; //!< live bits matched snapshot
    std::uint64_t mismatches = 0;     //!< stale snapshot; decoded live
};

/** Pre-computed tag summaries and candidate-revocation lists. */
class PrescanPipeline
{
  public:
    /** One pre-decoded tagged granule of a scanned page.
     *
     * Deliberately 32 bytes: the sweep's validated-hit path streams
     * these, and it only ever consumes the raw bits (to validate) and
     * the decoded base (to probe) — carrying the full ~40-byte
     * Capability doubled the candidate traffic for fields nobody
     * read, which showed up as a cache-blowout on full pages. */
    struct Candidate
    {
        std::uint16_t granule = 0; //!< intra-page granule index
        /** Level-1 summary said the base's region had painted bits. */
        bool painted_hint = false;
        cap::CapBits bits; //!< raw bits at snapshot time
        Addr base = 0;     //!< pre-decoded bounds base
    };

    /** Snapshot of one page, candidates in ascending granule order. */
    struct PageScan
    {
        Addr page_va = 0;
        mem::TagWords tags; //!< packed tag words at snapshot time
        std::vector<Candidate> cands;
    };

    /**
     * Snapshot and pre-decode @p pages (base VAs; non-resident entries
     * are skipped). Must be called from the simulated thread holding
     * the execution token; all worker threads are joined before
     * return. Replaces any previous pipeline contents. When @p lanes
     * is non-null the stripes run on the lockstep engine's persistent
     * lane pool instead of freshly spawned threads (same stripe
     * partitioning, so identical output either way).
     *
     * When @p memo is non-null, pages whose memo entry is page-fresh
     * (DecodeMemo::fresh against @p frame_epoch) reuse the cached scan
     * without touching the frame, and the remaining pages are scanned
     * straight into memo-owned entries — the cross-epoch tier of
     * DESIGN.md §17.2. Either way the pipeline only stores pointers
     * into the memo (stable: its map is node-based and the sweep never
     * invalidates a prescanned page's entry), so no PageScan is copied
     * per epoch. The sweep's bits-validation makes reuse safe
     * regardless of freshness.
     */
    void build(vm::AddressSpace &as, const ShadowSummary &painted,
               const std::vector<Addr> &pages,
               sim::LaneGroup *lanes = nullptr,
               DecodeMemo *memo = nullptr,
               std::uint64_t frame_epoch = 0);

    /** The scan for @p page_va, or nullptr (binary search). */
    const PageScan *find(Addr page_va) const;

    /** Drop all scans (end of the sweep pass). */
    void clear();

    PrescanStats &stats() { return stats_; }
    const PrescanStats &stats() const { return stats_; }

  private:
    /** Ascending page_va; scans live in @ref own_ or in the memo. */
    std::vector<std::pair<Addr, const PageScan *>> pages_;
    std::vector<PageScan> own_; //!< scan storage when no memo is set
    PrescanStats stats_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_PRESCAN_H_
