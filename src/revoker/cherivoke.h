/**
 * @file
 * The CHERIvoke strategy: fully world-stopped sweeping (paper §2.2.1,
 * evaluated as "our Cornucopia eschewing its concurrent phase").
 */

#ifndef CREV_REVOKER_CHERIVOKE_H_
#define CREV_REVOKER_CHERIVOKE_H_

#include "revoker/revoker.h"

namespace crev::revoker {

/** Single stop-the-world sweep per epoch. */
class CheriVokeRevoker : public Revoker
{
  public:
    using Revoker::Revoker;

    const char *name() const override { return "cherivoke"; }

  protected:
    void doEpoch(sim::SimThread &self) override;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_CHERIVOKE_H_
