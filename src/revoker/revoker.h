/**
 * @file
 * The revocation service: epoch orchestration shared by all
 * strategies.
 *
 * A Revoker runs as a daemon thread (paper: "one system call per
 * revocation phase, invoked by a dedicated thread"; we fold the
 * userspace trigger thread and the kernel worker together). Allocators
 * request epochs and wait on the public epoch counter; concrete
 * strategies implement doEpoch().
 *
 * The base class additionally owns the *recovery protocol* driven by
 * the EpochWatchdog: every epoch is tracked (sequence number, start
 * time, in-progress flag) so that a stuck epoch can be detected, and
 * the degradation ladder — nudge blocked waits, reap/respawn dead
 * sweeper threads, and finally an emergency CHERIvoke-style
 * stop-the-world sweep — guarantees the epoch counter always advances
 * even when background sweeping fails. That last property is what
 * keeps QuarantineShim::drain()/maybeBlock() free of deadlock under
 * injected faults.
 */

#ifndef CREV_REVOKER_REVOKER_H_
#define CREV_REVOKER_REVOKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/types.h"
#include "kern/kernel.h"
#include "revoker/bitmap.h"
#include "revoker/prescan.h"
#include "revoker/sweep.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "trace/trace.h"
#include "vm/mmu.h"

namespace crev::check {
class SafetyOracle;
} // namespace crev::check

namespace crev::sim {
class FaultInjector;
} // namespace crev::sim

namespace crev::revoker {

/** How (and whether) an epoch needed recovery to complete. */
struct EpochRecovery
{
    /** Epoch was completed via an emergency STW sweep. */
    bool degraded = false;
    /** The watchdog — not the revoker daemon — completed the epoch. */
    bool forced = false;
    /** Watchdog nudges delivered while this epoch was overdue. */
    std::uint32_t nudges = 0;
    /** Dead sweeper threads respawned during this epoch. */
    std::uint32_t respawns = 0;
};

/** Timing record for one revocation epoch (feeds fig. 9). */
struct EpochTiming
{
    Cycles stw_duration = 0;        //!< world-stopped phase
    Cycles concurrent_duration = 0; //!< background phase
    Cycles fault_time_total = 0;    //!< sum of load-barrier fault work
    std::uint64_t fault_count = 0;
    std::uint64_t pages_swept = 0;
    std::uint64_t caps_revoked = 0;
    EpochRecovery recovery;         //!< how the epoch reached completion
};

/** Strategy-independent configuration knobs. */
struct RevokerOptions
{
    /** Reloaded: clear cap_ever when a sweep finds a page clean. */
    bool clean_page_detection = true;
    /** §7.6: mark clean pages always-trap instead of refreshing CLG. */
    bool always_trap_clean_pages = false;
    /** §7.1: number of background sweeper threads (Reloaded). */
    unsigned background_sweepers = 1;
    /** Run the whole-machine invariant audit after each epoch. */
    bool audit = false;
    /** Host-side sweep fast paths (see MachineConfig::host_fast_paths). */
    bool host_fast_paths = true;
    /** Hierarchical sweep acceleration (MachineConfig::sweep_accel):
     *  index-driven page selection + speculative pre-scan. */
    bool sweep_accel = true;
    /** Cross-epoch decode memoisation (MachineConfig::memo); only
     *  effective together with host_fast_paths. */
    bool memo = true;
    /** Fault injector for chaos campaigns (null: no injection). */
    sim::FaultInjector *injector = nullptr;
    /** Event tracer (null: tracing off; zero simulated cost). */
    trace::Tracer *tracer = nullptr;
};

/**
 * Base class: owns the request/epoch plumbing; subclasses implement
 * one revocation epoch.
 */
class Revoker
{
  public:
    Revoker(sim::Scheduler &sched, vm::Mmu &mmu, kern::Kernel &kernel,
            RevocationBitmap &bitmap, const RevokerOptions &opts);
    virtual ~Revoker() = default;

    /** Human-readable strategy name. */
    virtual const char *name() const = 0;

    /**
     * Ask for a revocation epoch to start soon; returns immediately.
     * Idempotent while a request is pending.
     */
    void requestEpoch(sim::SimThread &caller);

    /** Block @p caller until the epoch counter reaches @p target. */
    void waitForEpochCounter(sim::SimThread &caller,
                             std::uint64_t target);

    /** The daemon loop body (bound to the revoker thread at spawn). */
    void daemonBody(sim::SimThread &self);

    /** Per-epoch timing records. */
    const std::vector<EpochTiming> &timings() const { return timings_; }

    /** Aggregate sweep work. */
    const SweepStats &sweepStats() const { return sweep_.stats(); }

    /** Host-side pre-scan pipeline counters. */
    const PrescanStats &prescanStats() const
    {
        return prescan_.stats();
    }

    /** Host-side cross-epoch decode-memo counters. */
    const MemoStats &memoStats() const { return memo_.stats(); }

    std::uint64_t epochsCompleted() const { return epochs_; }

    kern::Kernel &kernel() { return kernel_; }
    RevocationBitmap &bitmap() { return bitmap_; }

    /**
     * Snapshot of granules painted as of the last epoch's start, for
     * the Auditor: any tagged capability with a base in this set after
     * the epoch completes is an invariant violation. Dequarantine
     * clears entries via onDequarantine().
     */
    const ShadowSummary &auditSet() const { return audit_set_; }
    void onDequarantine(Addr base, Addr len);

    /** Installed by the Machine when auditing is on; runs on the
     *  thread that completed the epoch (chaos injection and recovery
     *  tickets need its clock). */
    using AuditHook = std::function<void(sim::SimThread &)>;
    void setAuditHook(AuditHook h) { audit_hook_ = std::move(h); }

    /**
     * Attach the temporal-safety oracle (null = off). At every epoch
     * completion the audit set's granules are committed as revoked;
     * dequarantine clears them. Never attached for paint-only, whose
     * epochs complete without revoking anything.
     */
    void setOracle(check::SafetyOracle *o) { oracle_ = o; }

    // --- recovery protocol (EpochWatchdog side) ---
    //
    // All of the state below is plain data: the scheduler's single
    // execution token serialises every simulated thread, so the
    // watchdog and the daemon never race in host terms.

    /** True between doEpoch() entry and return on the daemon. */
    bool epochInProgress() const { return epoch_in_progress_; }
    /** Monotone count of epochs the daemon has started. */
    std::uint64_t epochSeq() const { return epoch_seq_; }
    /** Virtual time the in-progress epoch started. */
    Cycles epochStartedAt() const { return epoch_started_at_; }
    /** Whether an epoch request is waiting for the daemon. */
    bool requestPending() const { return request_pending_; }
    /** Whether the watchdog has asked for degraded completion. */
    bool recoveryRequested() const { return recovery_requested_; }
    /** Whether the watchdog force-completed the in-progress epoch. */
    bool forceCompleted() const { return force_completed_; }

    /**
     * Re-notify every event a wedged daemon might be blocked on;
     * harmless when nothing is stuck. Subclasses add their own events.
     */
    virtual void nudge(sim::SimThread &caller);

    /**
     * Ask the daemon to finish the in-progress epoch in degraded mode
     * (emergency STW sweep) at its next recovery checkpoint.
     */
    void requestRecovery(sim::SimThread &caller);

    /** Track a background sweeper thread for death detection. */
    void registerSweeper(sim::SimThread *t);

    /**
     * Detect registered sweepers whose bodies have returned, remove
     * them, and repair any epoch accounting they held (subclasses).
     * Returns the dead threads so the watchdog can respawn them.
     */
    virtual std::vector<sim::SimThread *>
    reapDeadSweepers(sim::SimThread &self);

    /**
     * Watchdog fallback for an unresponsive daemon stuck mid-epoch
     * (counter odd): run the emergency sweep on the *calling* thread,
     * advance the counter to even, and release epoch waiters. The
     * daemon skips its own counter advance when it eventually resumes.
     */
    void forceCompleteEpoch(sim::SimThread &self);

    /**
     * Watchdog fallback for a pending request the daemon cannot take
     * (still wedged inside a force-completed epoch): run one complete
     * CHERIvoke-style epoch — advance to odd, snapshot, STW sweep,
     * advance to even — entirely on the calling thread.
     */
    void emergencyEpoch(sim::SimThread &self);

    /** Per-epoch recovery record being accumulated (watchdog notes). */
    EpochRecovery &currentRecovery() { return cur_recovery_; }

  protected:
    /** Perform one full revocation epoch on the daemon thread. */
    virtual void doEpoch(sim::SimThread &self) = 0;

    /**
     * Phase brackets for the tracer. Strategies bracket each fig. 9
     * phase at exactly the instants their EpochTiming fields are
     * computed, so trace-derived totals equal the RunMetrics phase
     * accounting. Zero simulated cost; no-ops when tracing is off.
     */
    void tracePhaseBegin(sim::SimThread &self, trace::Phase phase);
    void tracePhaseEnd(sim::SimThread &self, trace::Phase phase);

    /** Scan every thread's register file and the kernel hoards. */
    void scanRegistersAndHoards(sim::SimThread &self);

    /** Record the painted-set snapshot at epoch start (audit). */
    void snapshotAuditSet();

    /**
     * Commit the completed epoch's audit set into the safety oracle
     * (no-op without one). Must run after the counter reaches even and
     * before waiters can dequarantine.
     */
    void commitOracle(sim::SimThread &self);

    /**
     * Whether index-driven page selection and the pre-scan pipeline
     * are active (both host levers must be on; either way the
     * simulated results are identical).
     */
    bool sweepAccel() const
    {
        return opts_.sweep_accel && opts_.host_fast_paths;
    }

    /**
     * Collect the strategy's sweep candidates: the pages of @p index
     * (a host-side AddressSpace page index) whose live PTE satisfies
     * @p want. With sweep acceleration off, falls back to the full
     * page-table walk — both produce the identical ascending-VA list,
     * because the indexes are (super)sets of the flagged pages.
     */
    std::vector<Addr>
    collectPages(const std::set<Addr> &index,
                 const std::function<bool(const vm::Pte &)> &want);

    /**
     * Speculatively pre-scan @p pages ahead of the sweep cursor and
     * attach the pipeline to the sweep engine. No-op without sweep
     * acceleration.
     */
    void prescanPages(const std::vector<Addr> &pages);

    /** Detach and drop the pre-scan pipeline (end of sweep pass). */
    void prescanDone();

    /**
     * Enter stop-the-world, applying any injected entry delay (lost
     * IPI model) first. All strategies stop the world through here.
     */
    Cycles stwBegin(sim::SimThread &self);

    /**
     * Advance the epoch counter to even at the end of doEpoch() —
     * unless the watchdog already force-completed this epoch.
     */
    void finishEpoch(sim::SimThread &self);

    /**
     * CHERIvoke-style emergency sweep: stop the world, scan registers
     * and hoards, sweep every page that has ever held capabilities,
     * and heal all PTE generations. Deliberately takes no pmap lock:
     * a parked mutator may hold it, and blocking inside a
     * stop-the-world phase would deadlock the scheduler; with the
     * world stopped, lock-free PTE access is the same fiat CheriVoke
     * relies on. Returns the world-stopped duration.
     */
    Cycles emergencyStwSweep(sim::SimThread &self);

    sim::Scheduler &sched_;
    vm::Mmu &mmu_;
    kern::Kernel &kernel_;
    RevocationBitmap &bitmap_;
    RevokerOptions opts_;
    SweepEngine sweep_;
    PrescanPipeline prescan_;
    DecodeMemo memo_;
    std::vector<EpochTiming> timings_;

  private:
    sim::SimEvent request_event_;
    sim::SimEvent epoch_event_;
    bool request_pending_ = false;
    std::uint64_t epochs_ = 0;
    ShadowSummary audit_set_;
    AuditHook audit_hook_;
    check::SafetyOracle *oracle_ = nullptr;

    // Recovery-protocol state (see class comment).
    bool epoch_in_progress_ = false;
    std::uint64_t epoch_seq_ = 0;
    Cycles epoch_started_at_ = 0;
    bool recovery_requested_ = false;
    bool force_completed_ = false;
    EpochRecovery cur_recovery_;
    std::vector<sim::SimThread *> sweepers_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_REVOKER_H_
