/**
 * @file
 * The revocation service: epoch orchestration shared by all
 * strategies.
 *
 * A Revoker runs as a daemon thread (paper: "one system call per
 * revocation phase, invoked by a dedicated thread"; we fold the
 * userspace trigger thread and the kernel worker together). Allocators
 * request epochs and wait on the public epoch counter; concrete
 * strategies implement doEpoch().
 */

#ifndef CREV_REVOKER_REVOKER_H_
#define CREV_REVOKER_REVOKER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.h"
#include "kern/kernel.h"
#include "revoker/bitmap.h"
#include "revoker/sweep.h"
#include "sim/scheduler.h"
#include "sim/sync.h"
#include "vm/mmu.h"

namespace crev::revoker {

/** Timing record for one revocation epoch (feeds fig. 9). */
struct EpochTiming
{
    Cycles stw_duration = 0;        //!< world-stopped phase
    Cycles concurrent_duration = 0; //!< background phase
    Cycles fault_time_total = 0;    //!< sum of load-barrier fault work
    std::uint64_t fault_count = 0;
    std::uint64_t pages_swept = 0;
    std::uint64_t caps_revoked = 0;
};

/** Strategy-independent configuration knobs. */
struct RevokerOptions
{
    /** Reloaded: clear cap_ever when a sweep finds a page clean. */
    bool clean_page_detection = true;
    /** §7.6: mark clean pages always-trap instead of refreshing CLG. */
    bool always_trap_clean_pages = false;
    /** §7.1: number of background sweeper threads (Reloaded). */
    unsigned background_sweepers = 1;
    /** Run the whole-machine invariant audit after each epoch. */
    bool audit = false;
};

/**
 * Base class: owns the request/epoch plumbing; subclasses implement
 * one revocation epoch.
 */
class Revoker
{
  public:
    Revoker(sim::Scheduler &sched, vm::Mmu &mmu, kern::Kernel &kernel,
            RevocationBitmap &bitmap, const RevokerOptions &opts);
    virtual ~Revoker() = default;

    /** Human-readable strategy name. */
    virtual const char *name() const = 0;

    /**
     * Ask for a revocation epoch to start soon; returns immediately.
     * Idempotent while a request is pending.
     */
    void requestEpoch(sim::SimThread &caller);

    /** Block @p caller until the epoch counter reaches @p target. */
    void waitForEpochCounter(sim::SimThread &caller,
                             std::uint64_t target);

    /** The daemon loop body (bound to the revoker thread at spawn). */
    void daemonBody(sim::SimThread &self);

    /** Per-epoch timing records. */
    const std::vector<EpochTiming> &timings() const { return timings_; }

    /** Aggregate sweep work. */
    const SweepStats &sweepStats() const { return sweep_.stats(); }

    std::uint64_t epochsCompleted() const { return epochs_; }

    kern::Kernel &kernel() { return kernel_; }
    RevocationBitmap &bitmap() { return bitmap_; }

    /**
     * Snapshot of granules painted as of the last epoch's start, for
     * the Auditor: any tagged capability with a base in this set after
     * the epoch completes is an invariant violation. Dequarantine
     * clears entries via onDequarantine().
     */
    const std::unordered_set<Addr> &auditSet() const { return audit_set_; }
    void onDequarantine(Addr base, Addr len);

    /** Installed by the Machine when auditing is on. */
    using AuditHook = std::function<void()>;
    void setAuditHook(AuditHook h) { audit_hook_ = std::move(h); }

  protected:
    /** Perform one full revocation epoch on the daemon thread. */
    virtual void doEpoch(sim::SimThread &self) = 0;

    /** Scan every thread's register file and the kernel hoards. */
    void scanRegistersAndHoards(sim::SimThread &self);

    /** Record the painted-set snapshot at epoch start (audit). */
    void snapshotAuditSet();

    sim::Scheduler &sched_;
    vm::Mmu &mmu_;
    kern::Kernel &kernel_;
    RevocationBitmap &bitmap_;
    RevokerOptions opts_;
    SweepEngine sweep_;
    std::vector<EpochTiming> timings_;

  private:
    sim::SimEvent request_event_;
    sim::SimEvent epoch_event_;
    bool request_pending_ = false;
    std::uint64_t epochs_ = 0;
    std::unordered_set<Addr> audit_set_;
    AuditHook audit_hook_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_REVOKER_H_
