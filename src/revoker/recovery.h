/**
 * @file
 * The unified recovery manager: named recovery protocols with
 * per-protocol bounded retries, deadlines, and saturating backoff.
 *
 * PR 1's watchdog hard-coded its nudge/force-complete ladder; PR 6
 * adds fault domains whose repair paths (shootdown re-send, shadow-
 * summary rebuild, quarantine hand-off re-delivery) would each need
 * the same retry/deadline/backoff skeleton. The RecoveryManager is
 * that skeleton, factored once: a client opens a Ticket for a named
 * protocol, asks permission for each attempt (denied once retries are
 * exhausted or the protocol deadline has passed), spaces attempts with
 * the saturating exponential backoff the watchdog ladder established
 * (identical arithmetic — see backoff()), and closes the ticket with a
 * terminal outcome. Every attempt and outcome emits a trace instant
 * and feeds per-protocol counters plus a recovery-latency histogram
 * exported through the MetricsRegistry.
 *
 * The manager itself is an off-clock observer: it never accrues
 * simulated cycles and never yields. All simulated cost of a recovery
 * (the re-sent IPI, the rebuilt summary block, the retried hand-off)
 * is charged by the client at the client's site, so attaching the
 * manager — like attaching the tracer or race checker — cannot perturb
 * a single scheduling decision.
 */

#ifndef CREV_REVOKER_RECOVERY_H_
#define CREV_REVOKER_RECOVERY_H_

#include <array>
#include <cstdint>

#include "base/types.h"
#include "sim/scheduler.h"
#include "stats/summary.h"
#include "trace/metrics_registry.h"
#include "trace/trace.h"

namespace crev::revoker {

using trace::RecoveryOutcome;
using trace::RecoveryProtocol;

/** Per-protocol retry/deadline/backoff envelope. */
struct RecoveryPolicy
{
    /** Attempts permitted per ticket (attempt() denies afterwards). */
    unsigned max_retries = 8;
    /** Ticket lifetime in virtual cycles; 0 = no deadline. */
    Cycles deadline = 0;
    /** First backoff delay; doubles per attempt (saturating). */
    Cycles backoff_base = 250'000;
    /** Backoff saturation cap. */
    Cycles max_backoff = 16'000'000;
};

/** What one protocol did across the run (RunMetrics observability). */
struct RecoveryProtocolStats
{
    std::uint64_t tickets = 0;
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t retries_exhausted = 0;
    std::uint64_t deadline_expiries = 0;
    std::uint64_t aborts = 0; //!< closed kAborted (shutdown mid-flight)
    Cycles total_latency = 0; //!< summed open->close virtual time
    Cycles max_latency = 0;
};

class RecoveryManager
{
  public:
    /** One in-flight recovery attempt sequence. Plain data, owned by
     *  the client (stack-local or member), keyed back to the manager
     *  through its protocol id. */
    struct Ticket
    {
        RecoveryProtocol proto = RecoveryProtocol::kEpochLadder;
        Cycles opened_at = 0;
        unsigned attempts = 0;
        bool open = false;
    };

    RecoveryManager();

    void
    setPolicy(RecoveryProtocol p, const RecoveryPolicy &policy)
    {
        policies_[index(p)] = policy;
    }
    const RecoveryPolicy &
    policy(RecoveryProtocol p) const
    {
        return policies_[index(p)];
    }

    /** Attach an event tracer (null = off); attempts/outcomes become
     *  kRecoveryAttempt/kRecoveryOutcome instants. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    // Ticket operations are header-inline so the vm layer (a client
    // via Mmu's shootdown re-send) needs no crev_revoker symbols — the
    // static-library dependency stays acyclic.

    /** Open a ticket for @p p at @p t's current virtual time. */
    Ticket
    open(sim::SimThread &t, RecoveryProtocol p)
    {
        Ticket tk;
        tk.proto = p;
        tk.opened_at = t.now();
        tk.open = true;
        ++stats_[index(p)].tickets;
        return tk;
    }

    /**
     * Ask permission for the next attempt on @p tk. Returns false —
     * without consuming an attempt — once retries are exhausted or the
     * protocol deadline (measured from open) has passed; the caller
     * should then close with the matching terminal outcome (see
     * failureOutcome()). On true the attempt is counted and traced;
     * the client performs (and charges) the actual repair work.
     */
    bool
    attempt(sim::SimThread &t, Ticket &tk)
    {
        if (!tk.open || retriesExhausted(tk) ||
            deadlineExpired(t.now(), tk))
            return false;
        ++tk.attempts;
        ++stats_[index(tk.proto)].attempts;
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), t.now(),
                            trace::EventType::kRecoveryAttempt,
                            static_cast<std::uint8_t>(tk.proto),
                            tk.attempts);
        return true;
    }

    /**
     * Saturating exponential backoff before the ticket's *next*
     * attempt: base << attempts, capped at max_backoff. The arithmetic
     * mirrors the watchdog ladder's established overflow-safe form
     * (pre-shifted-cap compare) so ladder timings are unchanged by the
     * refactor.
     */
    Cycles
    backoff(const Ticket &tk) const
    {
        const RecoveryPolicy &pol = policy(tk.proto);
        if (pol.backoff_base == 0 && pol.max_backoff == 0)
            return 0;
        const Cycles cap = pol.max_backoff > 1 ? pol.max_backoff : 1;
        const Cycles base = pol.backoff_base > 1 ? pol.backoff_base : 1;
        const unsigned shift = tk.attempts < 6u ? tk.attempts : 6u;
        if (base > (cap >> shift))
            return cap;
        const Cycles shifted = base << shift;
        return shifted < cap ? shifted : cap;
    }

    /** True when the ticket's attempt budget is spent. */
    bool
    retriesExhausted(const Ticket &tk) const
    {
        return tk.attempts >= policy(tk.proto).max_retries;
    }

    /** True when the protocol deadline has passed at @p now. */
    bool
    deadlineExpired(Cycles now, const Ticket &tk) const
    {
        const Cycles d = policy(tk.proto).deadline;
        return d != 0 && now - tk.opened_at > d;
    }

    /** The terminal outcome attempt()'s denial implies at @p now. */
    RecoveryOutcome
    failureOutcome(Cycles now, const Ticket &tk) const
    {
        return deadlineExpired(now, tk)
                   ? RecoveryOutcome::kDeadlineExpired
                   : RecoveryOutcome::kRetriesExhausted;
    }

    /** Close @p tk with @p outcome, recording open->close latency. */
    void
    close(sim::SimThread &t, Ticket &tk, RecoveryOutcome outcome)
    {
        if (!tk.open)
            return;
        tk.open = false;
        RecoveryProtocolStats &st = stats_[index(tk.proto)];
        switch (outcome) {
          case RecoveryOutcome::kSucceeded:
            ++st.successes;
            break;
          case RecoveryOutcome::kRetriesExhausted:
            ++st.retries_exhausted;
            break;
          case RecoveryOutcome::kDeadlineExpired:
            ++st.deadline_expiries;
            break;
          case RecoveryOutcome::kAborted:
            ++st.aborts;
            break;
        }
        const Cycles latency = t.now() - tk.opened_at;
        st.total_latency += latency;
        if (latency > st.max_latency)
            st.max_latency = latency;
        latencies_[index(tk.proto)].add(static_cast<double>(latency));
        if (tracer_ != nullptr)
            tracer_->record(t.id(), t.core(), t.now(),
                            trace::EventType::kRecoveryOutcome,
                            static_cast<std::uint8_t>(tk.proto),
                            static_cast<std::uint64_t>(outcome));
    }

    const RecoveryProtocolStats &
    stats(RecoveryProtocol p) const
    {
        return stats_[index(p)];
    }
    const stats::Samples &
    latencies(RecoveryProtocol p) const
    {
        return latencies_[index(p)];
    }

  private:
    static std::size_t
    index(RecoveryProtocol p)
    {
        return static_cast<std::size_t>(p);
    }

    std::array<RecoveryPolicy, trace::kNumRecoveryProtocols> policies_;
    std::array<RecoveryProtocolStats, trace::kNumRecoveryProtocols>
        stats_;
    std::array<stats::Samples, trace::kNumRecoveryProtocols> latencies_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_RECOVERY_H_
