/**
 * @file
 * The Cornucopia Reloaded strategy (paper §3.2, §4): per-page
 * capability load barriers.
 *
 * An epoch begins with a very short stop-the-world phase that flips
 * every core's capability load generation register and scans register
 * files and kernel hoards. From that point, any tagged capability load
 * from a stale-generation page traps; the self-healing handler (which
 * runs on the faulting thread) sweeps the page, refreshes its PTE, and
 * the load retries. A background thread — optionally several, §7.1 —
 * visits all remaining stale pages so the epoch terminates. Pages are
 * never swept twice per epoch, and capability stores during revocation
 * need no tracking: any stored capability was itself loaded through
 * the barrier (the central invariant, §3.2).
 *
 * This strategy carries the machinery the chaos campaigns target:
 * helper sweepers can be stalled or killed, and load-fault completion
 * notifications can be dropped or duplicated. Every injection point
 * preserves the safety invariant (pages still heal; sweeps still
 * happen) and damages only *liveness* accounting — which the recovery
 * protocol in the Revoker base plus the EpochWatchdog then repairs.
 */

#ifndef CREV_REVOKER_RELOADED_H_
#define CREV_REVOKER_RELOADED_H_

#include <unordered_set>
#include <vector>

#include "revoker/revoker.h"

namespace crev::revoker {

/** Load-barrier based revoker. */
class ReloadedRevoker : public Revoker
{
  public:
    ReloadedRevoker(sim::Scheduler &sched, vm::Mmu &mmu,
                    kern::Kernel &kernel, RevocationBitmap &bitmap,
                    const RevokerOptions &opts);

    const char *name() const override { return "reloaded"; }

    /**
     * The load-barrier fault handler; installed into the Mmu by the
     * Machine. Runs on the *faulting* (application) thread.
     */
    void handleLoadFault(sim::SimThread &t, Addr va);

    /**
     * Body for an auxiliary background sweeper thread (§7.1); the
     * Machine spawns (background_sweepers - 1) of these as daemons,
     * and the watchdog's respawn callback spawns replacements.
     */
    void helperBody(sim::SimThread &self);

    /** Also wakes the helper and fault-completion waits. */
    void nudge(sim::SimThread &caller) override;

    /**
     * Base reaping plus repair of the busy-helper accounting a dead
     * helper abandoned (so the epoch's helper drain can complete).
     */
    std::vector<sim::SimThread *>
    reapDeadSweepers(sim::SimThread &self) override;

  protected:
    void doEpoch(sim::SimThread &self) override;

  private:
    /**
     * One fault delivery. @p primary distinguishes the real trap from
     * an injected duplicate; only primaries can lose their completion
     * notification (the page heals either way — only the epoch's
     * in-flight accounting wedges, which is the watchdog's problem).
     */
    void deliverLoadFault(sim::SimThread &t, Addr fault_va,
                          bool primary);

    /** Retire one in-flight fault (underflow-safe after recovery). */
    void faultDone(sim::SimThread &t);

    /**
     * Background visit of one page: recheck under the pmap lock,
     * sweep without it, publish the new generation, shoot down TLBs.
     */
    void visitPage(sim::SimThread &t, Addr va);

    /** Pop the next background work item; 0 when drained. */
    Addr nextWork();

    /** Refill work_ with the pages still carrying a stale generation. */
    void collectStalePages();

    // Background work sharing (single-token execution makes plain
    // members safe).
    std::vector<Addr> work_;
    std::size_t work_next_ = 0;
    bool epoch_active_ = false;
    unsigned helpers_busy_ = 0;
    std::unordered_set<unsigned> busy_helper_ids_;
    sim::SimEvent helper_event_;
    sim::SimEvent helper_done_event_;

    // Fault accounting (cumulative; epochs record deltas).
    Cycles fault_time_ = 0;
    std::uint64_t fault_count_ = 0;
    Cycles fault_time_recorded_ = 0;
    std::uint64_t fault_count_recorded_ = 0;
    unsigned faults_in_flight_ = 0;
    sim::SimEvent fault_done_event_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_RELOADED_H_
