#include "revoker/sweep.h"

#include <bit>
#include <cstring>

#include "base/logging.h"
#include "cap/compression.h"
#include "vm/address_space.h"

namespace crev::revoker {

bool
SweepEngine::sweepPage(sim::SimThread &t, Addr page_va)
{
    CREV_ASSERT(pageOffset(page_va) == 0);
    ++stats_.pages_swept;
    return host_fast_paths_ ? sweepPageFast(t, page_va)
                            : sweepPageReference(t, page_va);
}

bool
SweepEngine::sweepPageReference(sim::SimThread &t, Addr page_va)
{
    bool clean = true;

    for (Addr line = page_va; line < page_va + kPageSize;
         line += kLineSize) {
        // The line read brings data and tags on-chip.
        mmu_.chargeRead(t, line, kLineSize);
        ++stats_.lines_read;

        for (Addr g = line; g < line + kLineSize; g += kGranuleSize) {
            // Uncharged peeks are legal here: the chargeRead above
            // paid for the line, which crev_analyze's
            // uncharged-reach pass verifies interprocedurally.
            if (!mmu_.peekTag(g))
                continue;
            clean = false;
            ++stats_.caps_seen;
            const cap::Capability c = mmu_.peekCap(g);
            t.accrue(2); // decode / base extraction
            if (bitmap_.probe(t, c.base)) {
                mmu_.kernelClearTag(t, g);
                ++stats_.caps_revoked;
            }
        }
    }
    return clean;
}

bool
SweepEngine::sweepPageFast(sim::SimThread &t, Addr page_va)
{
    // Resolve the page's frame once instead of re-dispatching through
    // the MMU per line/granule. The pointer stays valid across the
    // yields inside probe(): quiesce blocks munmap while the epoch
    // counter is odd, and Frame storage is never deallocated (freed
    // frames stay in the table for reuse).
    const vm::Pte *pte = mmu_.addressSpace().findPte(page_va);
    CREV_ASSERT(pte != nullptr && pte->valid);
    const mem::Frame &f = mmu_.physMem().frame(pte->pfn);
    const Addr paddr_base = pte->pfn << kPageBits;

    // Speculative pre-scan: candidates pre-decoded ahead of the sweep
    // cursor, usable only when the live raw bits still match the
    // snapshot. The cursor walks the (granule-ordered) list in step
    // with the live scan below.
    const PrescanPipeline::PageScan *scan =
        prescan_ == nullptr ? nullptr : prescan_->find(page_va);
    std::size_t ci = 0;

    bool clean = true;

    for (Addr line = page_va; line < page_va + kPageSize;
         line += kLineSize) {
        mmu_.chargeReadPaddr(t, paddr_base | (line - page_va),
                             kLineSize);
        ++stats_.lines_read;
        const std::size_t li =
            static_cast<std::size_t>(line - page_va) >> kLineBits;

        // One packed nibble replaces four peekTag dispatches, but the
        // probe/clear of a tagged granule can yield and let mutators
        // flip tags mid-line, so decisions must come from LIVE state:
        // re-read the nibble after every processed granule and only
        // ever advance the cursor (a tag set behind it would have been
        // equally invisible to the reference scan, which had already
        // walked past).
        for (unsigned pos = 0; pos < mem::kGranulesPerLine;) {
            // Live re-read (chargeRead above paid for the line).
            const unsigned live = f.lineNibble(li) >> pos;
            if (live == 0)
                break; // rest of the line is untagged right now
            const unsigned gi =
                pos + static_cast<unsigned>(std::countr_zero(live));
            pos = gi + 1;
            const std::size_t gidx =
                li * mem::kGranulesPerLine + gi;
            clean = false;
            ++stats_.caps_seen;
            // Live raw bits (on-chip after the line read).
            cap::CapBits bits;
            const std::uint8_t *raw =
                f.bytes.data() + gidx * kGranuleSize;
            std::memcpy(&bits.lo, raw, 8);
            std::memcpy(&bits.hi, raw + 8, 8);
            cap::Capability c;
            if (scan != nullptr) {
                while (ci < scan->cands.size() &&
                       scan->cands[ci].granule < gidx)
                    ++ci;
            }
            if (scan != nullptr && ci < scan->cands.size() &&
                scan->cands[ci].granule == gidx &&
                scan->cands[ci].bits == bits) {
                // Validated hit: the snapshot's pre-decoded value is
                // the decode of these exact live bits.
                c = scan->cands[ci].cap;
                ++prescan_->stats().validated_hits;
            } else {
                c = cap::decode(bits, true);
                if (scan != nullptr)
                    ++prescan_->stats().mismatches;
            }
            t.accrue(2); // decode / base extraction
            if (bitmap_.probe(t, c.base)) {
                mmu_.kernelClearTag(t, line + Addr{gi} * kGranuleSize);
                ++stats_.caps_revoked;
            }
        }
    }
    return clean;
}

void
SweepEngine::scanRegisters(sim::SimThread &t,
                           std::vector<cap::Capability> &regs)
{
    for (auto &r : regs) {
        t.accrue(mmu_.costs().reg_scan);
        ++stats_.regs_scanned;
        if (!r.tag)
            continue;
        if (bitmap_.probe(t, r.base)) {
            r.tag = false;
            ++stats_.regs_revoked;
        }
    }
}

bool
SweepEngine::publishPage(sim::SimThread &t, vm::Pte &p, Addr page_va,
                         const PublishOptions &o, vm::PteContext ctx)
{
    mmu_.addressSpace().notePtePublish(t, page_va, ctx);

    // Clean-page detection must re-verify against live tags: a
    // capability stored during a lockless sweep makes the caller's
    // verdict stale (§4.2/§7.4). pageHasTags is uncharged host work.
    const bool clean = o.clean && !mmu_.pageHasTags(page_va);
    if (clean && o.clean_page_detection)
        p.cap_ever = false;
    mmu_.addressSpace().noteCapPublish(page_va,
                                       clean && o.clean_page_detection);
    if (o.set_generation) {
        if (clean && o.always_trap_clean) {
            // §7.6: leave the page in the always-trap disposition; its
            // generation need not be maintained while it stays clean.
            p.cap_load_trap = true;
        } else {
            p.clg = o.gen;
            p.cap_load_trap = false;
        }
    }
    p.cap_dirty = false;
    if (o.charge_and_shootdown) {
        t.accrue(mmu_.costs().pte_update);
        mmu_.shootdownPage(t, page_va);
    }
    return clean;
}

bool
SweepEngine::isRevoked(sim::SimThread &t, const cap::Capability &c)
{
    if (!c.tag)
        return false;
    return bitmap_.probe(t, c.base);
}

} // namespace crev::revoker
