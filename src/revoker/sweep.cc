#include "revoker/sweep.h"

#include "base/logging.h"
#include "cap/compression.h"

namespace crev::revoker {

bool
SweepEngine::sweepPage(sim::SimThread &t, Addr page_va)
{
    CREV_ASSERT(pageOffset(page_va) == 0);
    ++stats_.pages_swept;
    bool clean = true;

    for (Addr line = page_va; line < page_va + kPageSize;
         line += kLineSize) {
        // The line read brings data and tags on-chip.
        mmu_.chargeRead(t, line, kLineSize);
        ++stats_.lines_read;

        for (Addr g = line; g < line + kLineSize; g += kGranuleSize) {
            if (!mmu_.peekTag(g))
                continue;
            clean = false;
            ++stats_.caps_seen;
            const cap::Capability c = mmu_.peekCap(g);
            t.accrue(2); // decode / base extraction
            if (bitmap_.probe(t, c.base)) {
                mmu_.kernelClearTag(t, g);
                ++stats_.caps_revoked;
            }
        }
    }
    return clean;
}

void
SweepEngine::scanRegisters(sim::SimThread &t,
                           std::vector<cap::Capability> &regs)
{
    for (auto &r : regs) {
        t.accrue(mmu_.costs().reg_scan);
        ++stats_.regs_scanned;
        if (!r.tag)
            continue;
        if (bitmap_.probe(t, r.base)) {
            r.tag = false;
            ++stats_.regs_revoked;
        }
    }
}

bool
SweepEngine::isRevoked(sim::SimThread &t, const cap::Capability &c)
{
    if (!c.tag)
        return false;
    return bitmap_.probe(t, c.base);
}

} // namespace crev::revoker
