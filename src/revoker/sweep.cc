#include "revoker/sweep.h"

#include <bit>
#include <cstring>

#include "base/logging.h"
#include "base/simd.h"
#include "cap/compression.h"
#include "vm/address_space.h"

namespace crev::revoker {

bool
SweepEngine::sweepPage(sim::SimThread &t, Addr page_va)
{
    CREV_ASSERT(pageOffset(page_va) == 0);
    ++stats_.pages_swept;
    return host_fast_paths_ ? sweepPageFast(t, page_va)
                            : sweepPageReference(t, page_va);
}

bool
SweepEngine::sweepPageReference(sim::SimThread &t, Addr page_va)
{
    bool clean = true;

    for (Addr line = page_va; line < page_va + kPageSize;
         line += kLineSize) {
        // The line read brings data and tags on-chip.
        mmu_.chargeRead(t, line, kLineSize);
        ++stats_.lines_read;

        for (Addr g = line; g < line + kLineSize; g += kGranuleSize) {
            // Uncharged peeks are legal here: the chargeRead above
            // paid for the line, which crev_analyze's
            // uncharged-reach pass verifies interprocedurally.
            if (!mmu_.peekTag(g))
                continue;
            clean = false;
            ++stats_.caps_seen;
            const cap::Capability c = mmu_.peekCap(g);
            t.accrue(2); // decode / base extraction
            if (bitmap_.probe(t, c.base)) {
                mmu_.kernelClearTag(t, g);
                ++stats_.caps_revoked;
            }
        }
    }
    return clean;
}

bool
SweepEngine::sweepPageFast(sim::SimThread &t, Addr page_va)
{
    // Resolve the page's frame once instead of re-dispatching through
    // the MMU per line/granule. The pointer stays valid across the
    // yields inside probe(): quiesce blocks munmap while the epoch
    // counter is odd, and Frame storage is never deallocated (freed
    // frames stay in the table for reuse).
    const vm::Pte *pte = mmu_.addressSpace().findPte(page_va);
    CREV_ASSERT(pte != nullptr && pte->valid);
    const mem::Frame &f = mmu_.physMem().frame(pte->pfn);
    const Addr paddr_base = pte->pfn << kPageBits;

    // Speculative pre-scan: candidates pre-decoded ahead of the sweep
    // cursor, usable only when the live raw bits still match the
    // snapshot. The cursor walks the (granule-ordered) list in step
    // with the live scan below.
    const PrescanPipeline::PageScan *scan =
        prescan_ == nullptr ? nullptr : prescan_->find(page_va);
    std::size_t ci = 0;

    // Cross-epoch memo: when no pre-scan covers the page, a previous
    // sweep's recorded candidates serve the same role under the same
    // bits-validation discipline (memo.h). Reuse only requires the
    // recorded raw bits to equal the live bits — decode is a pure
    // function of them — so even a page-stale entry is consulted; the
    // pfn/frame-epoch check just drops pairings that frame recycling
    // made unlikely to hit. The consult is LAZY — deferred to the
    // first tagged granule — so capability-free pages pay nothing,
    // and empty entries (which could save nothing) are never
    // recorded.
    const std::vector<PrescanPipeline::Candidate> *cands =
        scan == nullptr ? nullptr : &scan->cands;
    bool from_memo = false;
    bool memo_checked = scan != nullptr || memo_ == nullptr;
    // Candidates observed by this sweep, recorded for later epochs —
    // but only when no usable entry exists yet (pre-scanned pages are
    // re-recorded by the pipeline builder itself). A consulted entry
    // that validates in full needs no re-record — the steady state
    // costs zero host allocation per sweep — while one that
    // mismatches the live population is invalidated below so the next
    // sweep rebuilds it.
    bool record_observed = false;
    PrescanPipeline::PageScan observed;
    std::uint64_t memo_gen = 0;
    std::uint64_t memo_frame_epoch = 0;
    // Hit/miss tallies stay in registers through the scan and flush to
    // the owning stats block once per page — a per-granule RMW on a
    // shared counter is measurable at sweep rates.
    std::uint64_t cand_hits = 0, memo_misses = 0;
    std::size_t memo_processed = 0;

    bool clean = true;

    for (Addr line = page_va; line < page_va + kPageSize;
         line += kLineSize) {
        mmu_.chargeReadPaddr(t, paddr_base | (line - page_va),
                             kLineSize);
        ++stats_.lines_read;
        const std::size_t li =
            static_cast<std::size_t>(line - page_va) >> kLineBits;

        // One packed nibble replaces four peekTag dispatches, but the
        // probe/clear of a tagged granule can yield and let mutators
        // flip tags mid-line, so decisions must come from LIVE state:
        // re-read the nibble after every processed granule and only
        // ever advance the cursor (a tag set behind it would have been
        // equally invisible to the reference scan, which had already
        // walked past).
        for (unsigned pos = 0; pos < mem::kGranulesPerLine;) {
            // Live re-read (chargeRead above paid for the line).
            const unsigned live = f.lineNibble(li) >> pos;
            if (live == 0)
                break; // rest of the line is untagged right now
            const unsigned gi =
                pos + static_cast<unsigned>(std::countr_zero(live));
            pos = gi + 1;
            const std::size_t gidx =
                li * mem::kGranulesPerLine + gi;
            clean = false;
            ++stats_.caps_seen;
            if (!memo_checked) {
                // First tagged granule: consult the memo now. The
                // generation is read before this granule's bits, so a
                // racing store still leaves any recorded entry
                // conservatively page-stale.
                memo_checked = true;
                memo_gen = mmu_.addressSpace().storeGen(page_va);
                memo_frame_epoch = mmu_.frameEpoch();
                DecodeMemo::Entry *e = memo_->find(page_va);
                if (e != nullptr && e->pfn == pte->pfn &&
                    e->frame_epoch == memo_frame_epoch) {
                    cands = &e->scan.cands;
                    from_memo = true;
                    if (!DecodeMemo::fresh(*e, pte->pfn, memo_gen,
                                           memo_frame_epoch))
                        ++memo_->stats().stale_pages;
                } else {
                    if (e != nullptr)
                        ++memo_->stats().stale_pages;
                    record_observed = true;
                }
            }
            if (from_memo)
                ++memo_processed;
            // Live raw bits (on-chip after the line read). The
            // candidate is validated straight against the frame bytes
            // (CapBits is the same 16-byte little-endian layout), so
            // the hit path touches nothing beyond the granule and the
            // 32-byte candidate: only the base feeds the probe, and a
            // validated hit loads it directly instead of copying (or
            // re-deriving) the whole capability.
            const std::uint8_t *raw =
                f.bytes.data() + gidx * kGranuleSize;
            Addr cap_base;
            if (cands != nullptr) {
                while (ci < cands->size() &&
                       (*cands)[ci].granule < gidx)
                    ++ci;
            }
            if (cands != nullptr && ci < cands->size() &&
                (*cands)[ci].granule == gidx &&
                simd::equal128(&(*cands)[ci].bits, raw)) {
                // Validated hit: the recorded pre-decoded value is
                // the decode of these exact live bits.
                cap_base = (*cands)[ci].base;
                ++cand_hits;
            } else {
                cap::CapBits bits;
                std::memcpy(&bits.lo, raw, 8);
                std::memcpy(&bits.hi, raw + 8, 8);
                const cap::Capability c = cap::decode(bits, true);
                cap_base = c.base;
                ++memo_misses;
                // A page with no usable entry (every granule "misses")
                // records what this sweep observed for later epochs.
                if (record_observed) {
                    PrescanPipeline::Candidate oc;
                    oc.granule = static_cast<std::uint16_t>(gidx);
                    oc.bits = bits;
                    oc.base = c.base;
                    observed.cands.push_back(oc);
                }
            }
            t.accrue(2); // decode / base extraction
            if (bitmap_.probe(t, cap_base)) {
                mmu_.kernelClearTag(t, line + Addr{gi} * kGranuleSize);
                ++stats_.caps_revoked;
            }
        }
    }

    if (from_memo) {
        memo_->stats().cand_hits += cand_hits;
        memo_->stats().cand_misses += memo_misses;
        if (memo_misses != 0 || memo_processed != cands->size()) {
            // The cached candidate set no longer matches the page's
            // live population (stored bits, or tags set/cleared since
            // it was recorded): drop it so the next sweep re-records
            // in full. A fully validating entry is left untouched —
            // the common steady state re-records nothing.
            memo_->invalidate(page_va);
        }
    } else if (scan != nullptr) {
        prescan_->stats().validated_hits += cand_hits;
        prescan_->stats().mismatches += memo_misses;
    } else if (record_observed) {
        // Stamp with the generation read at sweep start: a mid-sweep
        // store bumps past it, leaving the entry conservatively
        // page-stale (its candidates remain bits-validated usable).
        observed.page_va = page_va;
        memo_->record(pte->pfn, memo_gen, memo_frame_epoch,
                      std::move(observed));
    }
    return clean;
}

void
SweepEngine::scanRegisters(sim::SimThread &t,
                           std::vector<cap::Capability> &regs)
{
    for (auto &r : regs) {
        t.accrue(mmu_.costs().reg_scan);
        ++stats_.regs_scanned;
        if (!r.tag)
            continue;
        if (bitmap_.probe(t, r.base)) {
            r.tag = false;
            ++stats_.regs_revoked;
        }
    }
}

bool
SweepEngine::publishPage(sim::SimThread &t, vm::Pte &p, Addr page_va,
                         const PublishOptions &o, vm::PteContext ctx)
{
    mmu_.addressSpace().notePtePublish(t, page_va, ctx);

    // Clean-page detection must re-verify against live tags: a
    // capability stored during a lockless sweep makes the caller's
    // verdict stale (§4.2/§7.4). pageHasTags is uncharged host work.
    const bool clean = o.clean && !mmu_.pageHasTags(page_va);
    if (clean && o.clean_page_detection)
        p.cap_ever = false;
    mmu_.addressSpace().noteCapPublish(page_va,
                                       clean && o.clean_page_detection);
    if (o.set_generation) {
        if (clean && o.always_trap_clean) {
            // §7.6: leave the page in the always-trap disposition; its
            // generation need not be maintained while it stays clean.
            p.cap_load_trap = true;
        } else {
            p.clg = o.gen;
            p.cap_load_trap = false;
        }
    }
    p.cap_dirty = false;
    if (o.charge_and_shootdown) {
        t.accrue(mmu_.costs().pte_update);
        mmu_.shootdownPage(t, page_va);
    }
    // The publish (and its shootdown) bumped the page's store
    // generation; the entry recorded by the sweep that produced this
    // publish is fresh as of the bumped value — restamp it so
    // untouched pages stay page-fresh into the next epoch.
    if (memo_ != nullptr)
        memo_->restamp(page_va, p.pfn,
                       mmu_.addressSpace().storeGen(page_va),
                       mmu_.frameEpoch());
    return clean;
}

bool
SweepEngine::isRevoked(sim::SimThread &t, const cap::Capability &c)
{
    if (!c.tag)
        return false;
    return bitmap_.probe(t, c.base);
}

} // namespace crev::revoker
